// The auxiliary graph of Sec. VI-A: reduces TMEDB on a DTS to the directed
// Steiner tree / MEMT problem.
//
// Vertices: u_{i,l} for every node i and DTS point l (clipped to the
// deadline), plus one power vertex x_{i,l,k} per discrete-cost-set level k.
// Arcs:
//   * chain     u_{i,l} → u_{i,l+1}       weight 0   ("still informed later")
//   * transmit  u_{i,l} → x_{i,l,k}       weight w^k ("pay level-k energy")
//   * deliver   x_{i,l,k} → u_{j,f}       weight 0   for every neighbor j
//                with edge weight <= w^k; t_{j,f} is the first DTS point of
//                j at or after t_{i,l} + τ.
// The power vertices realize Property 6.1(i) (broadcast nature): one payment
// of w^k reaches every neighbor at or below level k. The published
// construction writes t_{j,f} = t_{i,l} − τ; we read that as a typo for +τ
// (DESIGN.md, interpretive decision 1). Source u_{s,0}; terminals are each
// node's last clipped DTS vertex.
//
// Vertex-id scheme (DESIGN.md "Data layout & hot-path memory"): all u
// vertices come first, node-major — id(u_{i,l}) = point_offset_[i] + l — and
// every id >= first_power_vertex() is a power vertex, numbered in creation
// order. Both directions decode arithmetically; no per-vertex maps exist.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "core/tveg.hpp"
#include "graph/digraph.hpp"
#include "graph/steiner.hpp"
#include "support/budget.hpp"
#include "support/thread_pool.hpp"
#include "tvg/dts.hpp"

namespace tveg::core {

/// The auxiliary digraph plus the bookkeeping needed to translate a Steiner
/// tree back into a broadcast schedule.
class AuxGraph {
 public:
  /// Options for construction.
  struct Options {
    /// Disable the power-level expansion (ablation): transmit/deliver pairs
    /// collapse into one per-edge weighted arc, losing the broadcast
    /// advantage.
    bool power_expansion = true;
    /// Optional worker pool for the discrete-cost-set precompute (the
    /// expensive phase: one ED-function materialization per neighbor).
    /// Vertex ids are assigned in a serial pass either way, so parallel and
    /// serial builds produce byte-identical graphs. nullptr = serial.
    support::ThreadPool* pool = nullptr;
    /// Cooperative solve budget, polled (strided) across the DCS precompute
    /// in both serial and pooled builds. Default: unlimited.
    support::Budget budget;
  };

  /// Builds the auxiliary graph for `instance` over `dts`. The digraph is
  /// frozen (CSR form) before the constructor returns.
  AuxGraph(const TmedbInstance& instance, const DiscreteTimeSet& dts,
           Options options);
  /// As above with default options (power expansion on).
  AuxGraph(const TmedbInstance& instance, const DiscreteTimeSet& dts);

  const graph::Digraph& digraph() const { return g_; }
  graph::VertexId source_vertex() const { return source_; }
  const std::vector<graph::VertexId>& terminals() const { return terminals_; }
  std::size_t vertex_count() const {
    return static_cast<std::size_t>(g_.vertex_count());
  }
  std::size_t arc_count() const { return g_.arc_count(); }

  /// Source vertex u_{s,0} for an alternative source node. The transmission
  /// structure is source-independent, so one AuxGraph built at a deadline
  /// serves every source/target combination at that deadline — the batching
  /// lever of solve_many(). Requires s's first DTS point to be time 0.
  graph::VertexId source_vertex_for(NodeId s) const;
  /// Terminal vertices for an alternative instance sharing this graph's
  /// TVEG and deadline.
  std::vector<graph::VertexId> terminals_for(
      const TmedbInstance& instance) const;

  /// Vertex u_{i,l}; l indexes the node's clipped DTS points.
  graph::VertexId node_vertex(NodeId i, std::size_t l) const;
  /// Number of clipped DTS points of node i.
  std::size_t point_count(NodeId i) const;
  /// Time of point l of node i.
  Time point_time(NodeId i, std::size_t l) const;

  /// First power-vertex id: every vertex v >= this is a power vertex
  /// x_{i,l,k}, every v < this is a node vertex u_{i,l}.
  graph::VertexId first_power_vertex() const { return first_power_; }
  /// Power vertices that carry a transmission (have an incoming transmit
  /// arc); skipped expansion levels leave dead id slots, not entries here.
  std::size_t live_power_vertex_count() const { return live_power_; }

  /// Translates a Steiner tree over this graph into a schedule: every tree
  /// arc entering a power vertex becomes one transmission; coalesced so a
  /// relay pays only its highest selected level per time point.
  Schedule extract_schedule(const graph::SteinerResult& tree) const;

 private:
  struct PowerInfo {
    NodeId relay;
    Time time;
    Cost cost;
  };

  std::size_t point_count_raw(std::size_t i) const {
    return point_offset_[i + 1] - point_offset_[i];
  }

  graph::Digraph g_;
  graph::VertexId source_ = graph::kNoVertex;
  std::vector<graph::VertexId> terminals_;
  /// Clipped DTS times of node i: point_times_[point_offset_[i] + l], which
  /// is also vertex u_{i,l}'s id — the arrays double as the id codec.
  std::vector<Time> point_times_;
  std::vector<std::size_t> point_offset_;  ///< size n+1
  graph::VertexId first_power_ = 0;
  /// power_info_[x - first_power_] decodes power vertex x. Dead slots
  /// (expansion levels with no reachable receiver) stay default-initialized;
  /// they have no incoming arcs, so no tree arc can ever reference them.
  std::vector<PowerInfo> power_info_;
  std::size_t live_power_ = 0;
};

}  // namespace tveg::core
