#include "core/fr.hpp"

#include <algorithm>
#include <numeric>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tveg::core {

namespace {

/// NLP-aware backbone refinement: repeatedly drop the transmission whose
/// removal (after re-running the allocation) lowers the total cost most.
void refine_backbone(const TmedbInstance& instance,
                     const AllocationOptions& allocation_options,
                     const FrOptions& fr_options, FrResult& result) {
  if (!result.allocation.feasible) return;
  obs::TraceSpan span("fr_refine");
  Schedule backbone = result.backbone.schedule;

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& rounds_metric = registry.counter(obs::keys::kFrRounds);
  static obs::Counter& removals_metric = registry.counter(obs::keys::kFrRemovals);
  static obs::Counter& reallocs_metric =
      registry.counter(obs::keys::kFrReallocations);

  for (std::size_t round = 0; round < fr_options.max_refine_rounds; ++round) {
    rounds_metric.add(1);
    bool improved = false;
    // Candidates in descending allocated-cost order: expensive
    // transmissions are the likeliest wins.
    const auto& allocated = result.allocation.schedule.transmissions();
    std::vector<std::size_t> order(allocated.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return allocated[a].cost > allocated[b].cost;
    });

    for (std::size_t k : order) {
      const auto& txs = backbone.transmissions();
      if (k >= txs.size()) continue;  // earlier removals shrank the backbone
      Schedule candidate;
      for (std::size_t m = 0; m < txs.size(); ++m)
        if (m != k) candidate.add(txs[m]);
      const AllocationOutcome out =
          allocate_energy(instance, candidate, allocation_options);
      reallocs_metric.add(1);
      if (out.feasible && out.schedule.total_cost() <
                              result.allocation.schedule.total_cost()) {
        backbone = candidate;
        result.allocation = out;
        improved = true;
        removals_metric.add(1);
        break;  // re-rank against the new allocation
      }
    }
    if (!improved) break;
  }
  result.backbone.schedule = backbone;
}

}  // namespace

FrResult run_fr_eedcb(const TmedbInstance& instance,
                      const EedcbOptions& eedcb_options,
                      const AllocationOptions& allocation_options,
                      const FrOptions& fr_options) {
  const DiscreteTimeSet dts = instance.tveg->build_dts(eedcb_options.dts);
  return run_fr_eedcb(instance, dts, eedcb_options, allocation_options,
                      fr_options);
}

FrResult run_fr_eedcb(const TmedbInstance& instance,
                      const DiscreteTimeSet& dts,
                      const EedcbOptions& eedcb_options,
                      const AllocationOptions& allocation_options,
                      const FrOptions& fr_options) {
  // ε-cost pruning is disabled for the fading backbone: the NLP's objective
  // rewards coverage overlap that the prune pass would strip (see FrOptions).
  auto attempt = [&](SteinerMethod method) {
    EedcbOptions backbone_options = eedcb_options;
    backbone_options.prune = false;
    backbone_options.method = method;
    FrResult result;
    result.backbone = run_eedcb(instance, dts, backbone_options);
    result.allocation = allocate_energy(instance, result.backbone.schedule,
                                        allocation_options);
    if (fr_options.refine_backbone)
      refine_backbone(instance, allocation_options, fr_options, result);
    return result;
  };

  static obs::Counter& runs_metric =
      obs::MetricsRegistry::global().counter(obs::keys::kFrRuns);
  runs_metric.add(1);

  FrResult best = attempt(eedcb_options.method);
  if (fr_options.multi_start) {
    const SteinerMethod other =
        eedcb_options.method == SteinerMethod::kRecursiveGreedy
            ? SteinerMethod::kShortestPath
            : SteinerMethod::kRecursiveGreedy;
    FrResult alt = attempt(other);
    const bool alt_wins =
        alt.feasible() &&
        (!best.feasible() || alt.allocation.schedule.total_cost() <
                                 best.allocation.schedule.total_cost());
    if (alt_wins) best = std::move(alt);
  }
  return best;
}

FrResult run_fr_baseline(const TmedbInstance& instance,
                         const BaselineOptions& baseline_options,
                         const AllocationOptions& allocation_options) {
  const DiscreteTimeSet dts = instance.tveg->build_dts(baseline_options.dts);
  return run_fr_baseline(instance, dts, baseline_options, allocation_options);
}

FrResult run_fr_baseline(const TmedbInstance& instance,
                         const DiscreteTimeSet& dts,
                         const BaselineOptions& baseline_options,
                         const AllocationOptions& allocation_options) {
  FrResult result;
  result.backbone = run_baseline(instance, dts, baseline_options);
  result.allocation =
      allocate_energy(instance, result.backbone.schedule, allocation_options);
  return result;
}

}  // namespace tveg::core
