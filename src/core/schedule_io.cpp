#include "core/schedule_io.hpp"

#include <fstream>
#include <sstream>

#include "support/assert.hpp"

namespace tveg::core {

void write_schedule(std::ostream& out, const Schedule& schedule) {
  out << "# tveg-schedule\n";
  out.precision(17);
  for (const Transmission& tx : schedule.transmissions())
    out << tx.relay << ' ' << tx.time << ' ' << tx.cost << '\n';
}

void write_schedule_file(const std::string& path, const Schedule& schedule) {
  std::ofstream out(path);
  TVEG_REQUIRE(out.good(), "cannot open output file: " + path);
  write_schedule(out, schedule);
}

Schedule read_schedule(std::istream& in) {
  Schedule schedule;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    NodeId relay;
    Time time;
    Cost cost;
    if (!(is >> relay >> time >> cost))
      TVEG_REQUIRE(false, "malformed schedule line: " + line);
    is >> std::ws;
    TVEG_REQUIRE(is.eof(), "trailing garbage on schedule line: " + line);
    TVEG_REQUIRE(relay >= 0, "negative relay id on schedule line: " + line);
    schedule.add(relay, time, cost);
  }
  return schedule;
}

Schedule read_schedule_file(const std::string& path) {
  std::ifstream in(path);
  TVEG_REQUIRE(in.good(), "cannot open schedule file: " + path);
  return read_schedule(in);
}

}  // namespace tveg::core
