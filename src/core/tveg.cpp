#include "core/tveg.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "core/ed_weight_cache.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

using channel::ChannelModel;
using support::kInf;

Tveg::Tveg(const trace::ContactTrace& trace, channel::RadioParams radio,
           Options options)
    : graph_(trace.to_graph(options.tau)),
      radio_(radio),
      options_(options) {
  radio_.validate();
  TVEG_REQUIRE(options_.tau >= 0, "latency must be non-negative");

  // Distance profiles: one sample per contact start, per edge. Contacts of a
  // pair are disjoint in generated traces; overlapping duplicates keep the
  // first sample at a given time.
  distance_.resize(graph_.edge_count());
  std::map<std::size_t, std::map<Time, double>> samples;
  for (const trace::Contact& c : trace.contacts()) {
    // to_graph registered the edge, so lookup must succeed.
    const std::size_t e = edge_of(c.a, c.b);
    TVEG_ASSERT(e != npos);
    samples[e].emplace(c.start, c.distance);
  }
  for (auto& [e, profile_samples] : samples)
    for (const auto& [t, d] : profile_samples) distance_[e].add(t, d);
}

std::size_t Tveg::edge_of(NodeId a, NodeId b) const {
  return graph_.edge_id(a, b);
}

double Tveg::distance(NodeId a, NodeId b, Time t) const {
  const std::size_t e = edge_of(a, b);
  TVEG_REQUIRE(e != npos, "pair has no contacts");
  return distance_[e].at(t);
}

std::unique_ptr<channel::EdFunction> Tveg::ed_function(NodeId a, NodeId b,
                                                       Time t) const {
  TVEG_REQUIRE(graph_.adjacent(a, b, t), "pair not adjacent at t");
  return materialize_ed(edge_of(a, b), t);
}

std::unique_ptr<channel::EdFunction> Tveg::materialize_ed(std::size_t e,
                                                          Time t) const {
  TVEG_ASSERT(e < distance_.size());
  const double d = distance_[e].at(t);
  switch (options_.model) {
    case ChannelModel::kStep:
      return std::make_unique<channel::StepEdFunction>(
          radio_.step_min_cost(d));
    case ChannelModel::kRayleigh:
      return std::make_unique<channel::RayleighEdFunction>(
          radio_.rayleigh_beta(d));
    case ChannelModel::kNakagami:
      return std::make_unique<channel::NakagamiEdFunction>(
          options_.nakagami_m, radio_.rayleigh_beta(d));
    case ChannelModel::kRician:
      return std::make_unique<channel::RicianEdFunction>(
          options_.rician_k, radio_.rayleigh_beta(d));
  }
  TVEG_ASSERT_MSG(false, "unknown channel model");
  return nullptr;
}

double Tveg::failure_probability(NodeId a, NodeId b, Time t, Cost w) const {
  if (!graph_.adjacent(a, b, t)) return 1.0;  // Property 3.1(iii)
  if (cache_) return cache_->ed(*this, edge_of(a, b), t)->failure_probability(w);
  return ed_function(a, b, t)->failure_probability(w);
}

Cost Tveg::edge_weight(NodeId a, NodeId b, Time t) const {
  if (!graph_.adjacent(a, b, t)) return kInf;
  if (cache_) return cache_->edge_weight(*this, edge_of(a, b), t);
  return ed_function(a, b, t)->min_cost_for(radio_.epsilon);
}

std::size_t Tveg::distance_segment(std::size_t e, Time t) const {
  TVEG_ASSERT(e < distance_.size());
  return distance_[e].segment(t);
}

void Tveg::attach_cache(std::shared_ptr<EdWeightCache> cache) {
  cache_ = std::move(cache);
}

std::vector<DcsEntry> Tveg::discrete_cost_set(NodeId i, Time t) const {
  std::vector<DcsEntry> dcs;
  for (NodeId j : graph_.neighbors_at(i, t)) {
    const Cost w = edge_weight(i, j, t);
    if (w < kInf) dcs.push_back({w, j});
  }
  std::sort(dcs.begin(), dcs.end(), [](const DcsEntry& a, const DcsEntry& b) {
    return a.cost < b.cost;
  });
  return dcs;
}

std::vector<std::vector<Time>> Tveg::channel_breakpoints() const {
  std::vector<std::vector<Time>> per_node(
      static_cast<std::size_t>(graph_.node_count()));
  for (std::size_t e = 0; e < graph_.edge_count(); ++e) {
    const auto [a, b] = graph_.edge_nodes(e);
    for (Time t : distance_[e].breakpoints()) {
      per_node[static_cast<std::size_t>(a)].push_back(t);
      per_node[static_cast<std::size_t>(b)].push_back(t);
    }
  }
  return per_node;
}

DiscreteTimeSet Tveg::build_dts(DtsOptions options) const {
  auto breakpoints = channel_breakpoints();
  if (options.extra_points.empty()) {
    options.extra_points = std::move(breakpoints);
  } else {
    TVEG_REQUIRE(options.extra_points.size() == breakpoints.size(),
                 "extra_points must have one entry per node");
    for (std::size_t i = 0; i < breakpoints.size(); ++i)
      options.extra_points[i].insert(options.extra_points[i].end(),
                                     breakpoints[i].begin(),
                                     breakpoints[i].end());
  }
  return DiscreteTimeSet::build(graph_, options);
}

}  // namespace tveg::core
