// Baseline schedulers from the paper's evaluation (Sec. VII):
//
//  * GREED — at each step, among every causally valid action (an informed
//    node transmitting at one of its DTS points before the deadline), pick
//    the one that informs the largest number of currently-uninformed
//    adjacent nodes, paying the smallest discrete-cost-set element
//    sufficient to reach them (DESIGN.md, interpretive decision 3). The
//    action space spans all times up to the delay constraint, which is what
//    makes GREED's energy depend on it: looser deadlines expose
//    higher-degree moments.
//  * RAND — same action space, but the action is drawn uniformly.
//
// Their fading-resistant variants FR-GREED / FR-RAND reuse these backbones
// and re-allocate costs by the NLP (core/energy_allocation.hpp).
#pragma once

#include "core/eedcb.hpp"
#include "core/schedule.hpp"
#include "support/rng.hpp"
#include "tvg/dts.hpp"

namespace tveg::core {

/// Baseline relay-selection rule.
enum class BaselineRule {
  kGreedy,  ///< most newly-informed neighbors, ties by lower cost
  kRandom,  ///< uniform among eligible informed nodes
};

/// Options for the baseline sweep.
struct BaselineOptions {
  BaselineRule rule = BaselineRule::kGreedy;
  /// Seed for kRandom.
  std::uint64_t seed = 1;
  DtsOptions dts;
};

/// Runs GREED or RAND on `instance`.
SchedulerResult run_baseline(const TmedbInstance& instance,
                             const BaselineOptions& options = {});

/// As above over a caller-provided DTS (sweeps reuse one DTS).
SchedulerResult run_baseline(const TmedbInstance& instance,
                             const DiscreteTimeSet& dts,
                             const BaselineOptions& options = {});

}  // namespace tveg::core
