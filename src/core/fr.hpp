// Fading-resistant schedulers (paper Sec. VI-B): FR-EEDCB, FR-GREED and
// FR-RAND. Each runs its backbone-selection algorithm on a fading TVEG
// (where edge weights are single-hop ε-costs) and then re-allocates the
// transmission energies by the NLP of Eq. 14–17.
#pragma once

#include "core/baselines.hpp"
#include "core/eedcb.hpp"
#include "core/energy_allocation.hpp"

namespace tveg::core {

/// FR-EEDCB post-processing knobs.
struct FrOptions {
  /// NLP-aware backbone refinement: greedily drop transmissions whose
  /// removal lowers the *re-allocated* total cost. (Plain ε-cost pruning is
  /// counterproductive here — the NLP exploits coverage overlap to split
  /// failure budgets, so removing "redundant" coverage can raise the true
  /// objective.)
  bool refine_backbone = true;
  /// Each round removes at most one transmission; the loop stops early when
  /// no removal improves the allocated total.
  std::size_t max_refine_rounds = 32;
  /// Multi-start: also build the backbone with the *other* Steiner method
  /// (recursive greedy ↔ SPT) and keep whichever allocates cheaper. Halves
  /// the variance of the two-phase pipeline for 2× backbone work.
  bool multi_start = true;
};

/// Combined backbone + allocation outcome.
struct FrResult {
  SchedulerResult backbone;      ///< relays and times (costs are ε-costs)
  AllocationOutcome allocation;  ///< NLP-optimized costs
  /// Final schedule (allocation.schedule); empty when allocation failed.
  const Schedule& schedule() const { return allocation.schedule; }
  bool feasible() const { return backbone.covered_all && allocation.feasible; }
};

/// FR-EEDCB: EEDCB backbone (without ε-cost pruning) + NLP allocation +
/// optional NLP-aware refinement. `instance.tveg` must use a fading channel
/// model.
FrResult run_fr_eedcb(const TmedbInstance& instance,
                      const EedcbOptions& eedcb_options = {},
                      const AllocationOptions& allocation_options = {},
                      const FrOptions& fr_options = {});

/// FR-GREED / FR-RAND: baseline backbone + NLP allocation (no refinement —
/// the paper's baselines are backbone + NLP only).
FrResult run_fr_baseline(const TmedbInstance& instance,
                         const BaselineOptions& baseline_options = {},
                         const AllocationOptions& allocation_options = {});

/// Variants over a caller-provided DTS.
FrResult run_fr_eedcb(const TmedbInstance& instance,
                      const DiscreteTimeSet& dts,
                      const EedcbOptions& eedcb_options = {},
                      const AllocationOptions& allocation_options = {},
                      const FrOptions& fr_options = {});
FrResult run_fr_baseline(const TmedbInstance& instance,
                         const DiscreteTimeSet& dts,
                         const BaselineOptions& baseline_options = {},
                         const AllocationOptions& allocation_options = {});

}  // namespace tveg::core
