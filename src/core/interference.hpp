// Interference-aware schedule staggering (the scheduling half of the
// paper's Sec. VIII future work; the evaluation half lives in
// sim/monte_carlo.hpp).
//
// Under a collision model, a receiver in range of two concurrent
// transmissions decodes neither. Schedules produced by the (interference-
// oblivious) optimizers sometimes fire several relays at the same instant.
// This pass greedily moves colliding transmissions to later DTS points of
// the same relay, accepting a move only when it reduces collisions and
// keeps the schedule feasible under the cascade semantics.
#pragma once

#include "core/schedule.hpp"
#include "tvg/dts.hpp"

namespace tveg::core {

/// Outcome of one staggering pass.
struct StaggerResult {
  Schedule schedule;
  /// Number of (time-group, receiver) collision events before/after.
  std::size_t collisions_before = 0;
  std::size_t collisions_after = 0;
  std::size_t moves = 0;
};

/// Counts collision events: same-time-group transmissions whose adjacency
/// sets overlap on some receiver (each affected receiver counts once per
/// group).
std::size_t count_collision_events(const Tveg& tveg,
                                   const Schedule& schedule);

/// Staggers `schedule` on the instance's DTS. Never returns an infeasible
/// schedule if the input was feasible; collisions_after may stay > 0 when
/// no feasible move exists.
StaggerResult stagger_schedule(const TmedbInstance& instance,
                               const DiscreteTimeSet& dts,
                               const Schedule& schedule);

}  // namespace tveg::core
