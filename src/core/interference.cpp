#include "core/interference.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

namespace {
constexpr double kTimeTol = 1e-9;
}

std::size_t count_collision_events(const Tveg& tveg,
                                   const Schedule& schedule) {
  const auto& txs = schedule.transmissions();
  const auto n = static_cast<std::size_t>(tveg.node_count());
  std::size_t events = 0;
  std::vector<int> heard(n);

  std::size_t k = 0;
  while (k < txs.size()) {
    const Time t = txs[k].time;
    std::size_t e = k + 1;
    while (e < txs.size() && txs[e].time - t <= kTimeTol) ++e;
    if (e - k >= 2) {
      std::fill(heard.begin(), heard.end(), 0);
      for (std::size_t q = k; q < e; ++q)
        for (NodeId j : tveg.graph().neighbors_at(txs[q].relay, t))
          ++heard[static_cast<std::size_t>(j)];
      for (int h : heard)
        if (h >= 2) ++events;
    }
    k = e;
  }
  return events;
}

StaggerResult stagger_schedule(const TmedbInstance& instance,
                               const DiscreteTimeSet& dts,
                               const Schedule& schedule) {
  instance.validate();
  const Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();

  StaggerResult result;
  result.schedule = schedule;
  result.collisions_before = count_collision_events(tveg, schedule);
  result.collisions_after = result.collisions_before;
  if (result.collisions_before == 0) return result;

  const bool was_feasible = check_feasibility(instance, schedule).feasible;

  // Greedy: while collisions remain, try moving one transmission of a
  // colliding group to a later DTS point of its relay.
  bool progress = true;
  while (progress && result.collisions_after > 0) {
    progress = false;
    const std::vector<Transmission> txs = result.schedule.transmissions();

    for (std::size_t k = 0; k < txs.size() && !progress; ++k) {
      // Is tx k part of a colliding group?
      bool collides = false;
      for (std::size_t q = 0; q < txs.size() && !collides; ++q) {
        if (q == k || std::fabs(txs[q].time - txs[k].time) > kTimeTol)
          continue;
        for (NodeId j : tveg.graph().neighbors_at(txs[k].relay, txs[k].time))
          if (tveg.graph().adjacent(txs[q].relay, j, txs[q].time)) {
            collides = true;
            break;
          }
      }
      if (!collides) continue;

      // Candidate new times: the relay's later DTS points.
      const auto& pts = dts.points(txs[k].relay);
      for (std::size_t p = dts.lower_bound(txs[k].relay, txs[k].time + 1e-6);
           p < pts.size(); ++p) {
        const Time nt = pts[p];
        if (nt + tau > instance.deadline + kTimeTol) break;
        Schedule trial;
        for (std::size_t m = 0; m < txs.size(); ++m)
          trial.add(txs[m].relay, m == k ? nt : txs[m].time, txs[m].cost);
        if (was_feasible && !check_feasibility(instance, trial).feasible)
          continue;
        const std::size_t c = count_collision_events(tveg, trial);
        if (c < result.collisions_after) {
          result.schedule = trial;
          result.collisions_after = c;
          ++result.moves;
          progress = true;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace tveg::core
