// Delay-energy tradeoff utilities: the question every figure in the paper's
// evaluation orbits — "what does a tighter deadline cost?" — packaged as a
// library API. Also computes the absolute floor: the earliest time a
// broadcast can possibly complete (foremost journeys), below which no
// deadline is feasible at any energy.
#pragma once

#include <vector>

#include "core/eedcb.hpp"

namespace tveg::core {

/// One point of a tradeoff curve.
struct TradeoffPoint {
  Time deadline = 0;
  bool feasible = false;
  Cost cost = 0;
  double normalized_energy = 0;
  std::size_t transmissions = 0;
};

/// A sampled delay-energy curve.
struct TradeoffCurve {
  std::vector<TradeoffPoint> points;
  /// max over targets of the foremost arrival from the source — the
  /// smallest deadline any schedule can meet (+inf when some target is
  /// temporally unreachable).
  Time earliest_completion = 0;
};

/// Earliest possible broadcast completion from `source` at t = 0: the
/// latest foremost arrival over the instance's targets (+inf if any is
/// unreachable). Pure topology — no energy involved.
Time earliest_completion(const TmedbInstance& instance);

/// Samples EEDCB's energy at deadlines from `from` to `to` (inclusive) in
/// steps of `step`, reusing one DTS across all points.
TradeoffCurve delay_energy_tradeoff(const TmedbInstance& instance, Time from,
                                    Time to, Time step,
                                    const EedcbOptions& options = {});

}  // namespace tveg::core
