#include "core/energy_allocation.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "nlp/augmented_lagrangian.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace tveg::core {

namespace {
constexpr double kTimeTol = 1e-9;

void flush_allocation_metrics(const AllocationOutcome& outcome) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& allocations =
      registry.counter(obs::keys::kNlpAllocations);
  static obs::Counter& constraints = registry.counter(obs::keys::kNlpConstraints);
  static obs::Counter& passes = registry.counter(obs::keys::kNlpSolverPasses);
  static obs::Counter& infeasible = registry.counter(obs::keys::kNlpInfeasible);
  allocations.add(1);
  constraints.add(outcome.constraint_count);
  passes.add(outcome.solver_passes);
  if (!outcome.feasible) infeasible.add(1);
}

}  // namespace

AllocationOutcome allocate_energy(const TmedbInstance& instance,
                                  const Schedule& backbone,
                                  const AllocationOptions& options) {
  obs::TraceSpan span("nlp_allocation");
  instance.validate();
  const Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();
  const double eps = instance.effective_epsilon();
  const auto& txs = backbone.transmissions();

  AllocationOutcome outcome;
  // Flushes on every return path, including the early "broken backbone" exits.
  struct FlushGuard {
    const AllocationOutcome& outcome;
    ~FlushGuard() { flush_allocation_metrics(outcome); }
  } flush_guard{outcome};

  if (txs.empty()) {
    // Only a single-node broadcast can be feasible with no transmissions.
    outcome.feasible = tveg.node_count() == 1;
    return outcome;
  }

  // Establish a causal fire order for the backbone: replay it assuming
  // every scheduled delivery succeeds (the deterministic semantics the
  // backbone algorithms used) and record the sequence number of each
  // transmission. Eq. 16 terms are then restricted to causally earlier
  // transmissions — a naive "t_k <= t_j" reading would let two same-time
  // transmissions "inform each other" (see core/schedule.hpp).
  std::vector<std::size_t> fire_seq(txs.size(), 0);
  {
    std::vector<char> informed(static_cast<std::size_t>(tveg.node_count()), 0);
    std::vector<Time> informed_at(static_cast<std::size_t>(tveg.node_count()),
                                  support::kInf);
    informed[static_cast<std::size_t>(instance.source)] = 1;
    informed_at[static_cast<std::size_t>(instance.source)] = 0;
    std::vector<char> fired(txs.size(), 0);
    std::size_t seq = 0;

    std::size_t k = 0;
    while (k < txs.size()) {
      const Time t = txs[k].time;
      std::size_t group_end = k + 1;
      while (group_end < txs.size() && txs[group_end].time - t <= kTimeTol)
        ++group_end;
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::size_t q = k; q < group_end; ++q) {
          if (fired[q]) continue;
          const auto relay = static_cast<std::size_t>(txs[q].relay);
          if (!informed[relay] || informed_at[relay] > txs[q].time + kTimeTol)
            continue;
          fired[q] = 1;
          fire_seq[q] = ++seq;
          progress = true;
          for (NodeId j : tveg.graph().neighbors_at(txs[q].relay, t)) {
            const auto ji = static_cast<std::size_t>(j);
            if (!informed[ji] || informed_at[ji] > t + tau) {
              informed[ji] = 1;
              informed_at[ji] = std::min(informed_at[ji], t + tau);
            }
          }
        }
      }
      for (std::size_t q = k; q < group_end; ++q)
        if (!fired[q]) return outcome;  // relay never receives: broken backbone
      k = group_end;
    }
  }

  // Materialized ED-functions must outlive the solver call.
  std::vector<std::unique_ptr<channel::EdFunction>> eds;
  std::vector<nlp::CoverageConstraint> constraints;

  // Transmissions that reach node j by `by`, causally before sequence
  // number `before_seq` (SIZE_MAX = no causal restriction, Eq. 15).
  auto terms_reaching = [&](NodeId j, Time by, std::size_t before_seq) {
    std::vector<nlp::CoverageTerm> terms;
    for (std::size_t k = 0; k < txs.size(); ++k) {
      const Transmission& tx = txs[k];
      if (tx.relay == j) continue;
      if (tx.time + tau > by + kTimeTol) continue;
      if (fire_seq[k] >= before_seq) continue;
      if (!tveg.graph().adjacent(tx.relay, j, tx.time)) continue;
      eds.push_back(tveg.ed_function(tx.relay, j, tx.time));
      terms.push_back({k, eds.back().get()});
    }
    return terms;
  };

  constexpr std::size_t kNoSeqLimit = static_cast<std::size_t>(-1);

  // Eq. 15: every non-source terminal covered to ε by the deadline.
  for (NodeId j : instance.effective_targets()) {
    if (j == instance.source) continue;
    auto terms = terms_reaching(j, instance.deadline, kNoSeqLimit);
    if (terms.empty()) return outcome;  // structurally unreachable
    constraints.push_back({std::move(terms)});
  }

  // Eq. 16: every relay covered to ε by each of its transmissions, using
  // only causally earlier transmissions.
  for (std::size_t q = 0; q < txs.size(); ++q) {
    const Transmission& tx = txs[q];
    if (tx.relay == instance.source) continue;
    auto terms = terms_reaching(tx.relay, tx.time, fire_seq[q]);
    if (terms.empty()) return outcome;  // relay never receives the packet
    constraints.push_back({std::move(terms)});
  }

  outcome.constraint_count = constraints.size();
  const channel::RadioParams& radio = tveg.radio();

  std::vector<Cost> w;
  options.budget.check("energy_allocation");
  switch (options.solver) {
    case AllocationSolver::kCoordinateDescent: {
      const nlp::AllocationResult r = nlp::allocate_coordinate_descent(
          txs.size(), constraints, eps, radio.w_min, radio.w_max);
      outcome.feasible = r.feasible;
      outcome.solver_passes = r.passes;
      w = r.w;
      break;
    }
    case AllocationSolver::kAugmentedLagrangian: {
      nlp::EnergyAllocationProblem problem(txs.size(), constraints, eps,
                                           radio.w_min, radio.w_max);
      // Warm start at the independent allocation: feasible and O(1) scaled.
      const std::vector<Cost> w0 = nlp::independent_allocation(
          txs.size(), constraints, eps, radio.w_min, radio.w_max);
      nlp::AugmentedLagrangianOptions al;
      al.budget = options.budget;
      const nlp::NlpResult r =
          solve_augmented_lagrangian(problem, problem.from_costs(w0), al);
      outcome.feasible = r.feasible;
      outcome.solver_passes = r.outer_iterations;
      w = problem.to_costs(r.w);
      break;
    }
  }

  // Bounded retry before declaring infeasibility: numerical stalls (as
  // opposed to structural unreachability, handled above) are often escaped
  // by re-solving from a perturbed warm start with perturbed multipliers.
  if (!outcome.feasible && options.max_retries > 0) {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& retries_metric = registry.counter(obs::keys::kNlpRetries);
    static obs::Counter& rescued_metric =
        registry.counter(obs::keys::kNlpRetrySuccesses);
    support::Rng rng(options.retry_seed);
    nlp::EnergyAllocationProblem problem(txs.size(), constraints, eps,
                                         radio.w_min, radio.w_max);
    std::vector<Cost> w0 = nlp::independent_allocation(
        txs.size(), constraints, eps, radio.w_min, radio.w_max);
    nlp::AugmentedLagrangianOptions al;
    al.budget = options.budget;
    for (std::size_t attempt = 0; attempt < options.max_retries; ++attempt) {
      options.budget.check("energy_allocation_retry");
      ++outcome.retries;
      retries_metric.add(1);
      al.initial_penalty *= 4.0;  // perturbed multipliers: harder push
      std::vector<Cost> start = w0;
      for (Cost& x : start)
        x *= 1.0 + options.retry_perturbation * rng.uniform();
      const nlp::NlpResult r =
          solve_augmented_lagrangian(problem, problem.from_costs(start), al);
      outcome.solver_passes += r.outer_iterations;
      if (r.feasible) {
        outcome.feasible = true;
        w = problem.to_costs(r.w);
        rescued_metric.add(1);
        break;
      }
    }
  }

  for (std::size_t k = 0; k < txs.size(); ++k)
    outcome.schedule.add(txs[k].relay, txs[k].time, w[k]);
  return outcome;
}

}  // namespace tveg::core
