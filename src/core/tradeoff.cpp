#include "core/tradeoff.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

Time earliest_completion(const TmedbInstance& instance) {
  TVEG_REQUIRE(instance.tveg != nullptr, "instance has no TVEG");
  const Tveg& tveg = *instance.tveg;
  const ArrivalInfo info = tveg.graph().earliest_arrival(instance.source, 0.0);
  Time latest = 0;
  for (NodeId t : instance.effective_targets())
    latest = std::max(latest, info.arrival[static_cast<std::size_t>(t)]);
  return latest;
}

TradeoffCurve delay_energy_tradeoff(const TmedbInstance& instance, Time from,
                                    Time to, Time step,
                                    const EedcbOptions& options) {
  instance.validate();
  TVEG_REQUIRE(from > 0 && to >= from && step > 0,
               "invalid tradeoff sweep range");

  TradeoffCurve curve;
  curve.earliest_completion = earliest_completion(instance);

  const DiscreteTimeSet dts = instance.tveg->build_dts(options.dts);
  for (Time deadline = from; deadline <= to + 1e-9; deadline += step) {
    TmedbInstance point_instance = instance;
    point_instance.deadline = std::min(deadline, instance.tveg->horizon());

    TradeoffPoint point;
    point.deadline = point_instance.deadline;
    if (point.deadline >= curve.earliest_completion) {
      const SchedulerResult r = run_eedcb(point_instance, dts, options);
      if (r.covered_all &&
          check_feasibility(point_instance, r.schedule).feasible) {
        point.feasible = true;
        point.cost = r.schedule.total_cost();
        point.normalized_energy =
            normalized_energy(point_instance, r.schedule);
        point.transmissions = r.schedule.size();
      }
    }
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace tveg::core
