#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

namespace {
constexpr double kTimeTol = 1e-9;
}

void Schedule::add(NodeId relay, Time time, Cost cost) {
  TVEG_REQUIRE(time >= 0, "transmission time must be non-negative");
  TVEG_REQUIRE(cost >= 0, "transmission cost must be non-negative");
  txs_.push_back({relay, time, cost});
  sorted_ = false;
}

void Schedule::ensure_sorted() const {
  if (sorted_) return;
  std::sort(txs_.begin(), txs_.end(),
            [](const Transmission& a, const Transmission& b) {
              return std::tie(a.time, a.relay, a.cost) <
                     std::tie(b.time, b.relay, b.cost);
            });
  sorted_ = true;
}

const std::vector<Transmission>& Schedule::transmissions() const {
  ensure_sorted();
  return txs_;
}

Cost Schedule::total_cost() const {
  Cost sum = 0;
  for (const Transmission& t : txs_) sum += t.cost;
  return sum;
}

Time Schedule::latest_finish(Time tau) const {
  Time latest = 0;
  for (const Transmission& t : txs_) latest = std::max(latest, t.time + tau);
  return latest;
}

void Schedule::coalesce(double time_tolerance) {
  ensure_sorted();
  std::vector<Transmission> merged;
  for (const Transmission& t : txs_) {
    if (!merged.empty() && merged.back().relay == t.relay &&
        std::fabs(merged.back().time - t.time) <= time_tolerance) {
      merged.back().cost = std::max(merged.back().cost, t.cost);
    } else {
      merged.push_back(t);
    }
  }
  txs_ = std::move(merged);
}

std::ostream& operator<<(std::ostream& os, const Schedule& s) {
  os << "schedule[" << s.size() << " tx, cost=" << s.total_cost() << "]";
  for (const Transmission& t : s.transmissions())
    os << "\n  relay=" << t.relay << " t=" << t.time << " w=" << t.cost;
  return os;
}

double TmedbInstance::effective_epsilon() const {
  TVEG_REQUIRE(tveg != nullptr, "instance has no TVEG");
  return epsilon > 0 ? epsilon : tveg->radio().epsilon;
}

std::vector<NodeId> TmedbInstance::effective_targets() const {
  TVEG_REQUIRE(tveg != nullptr, "instance has no TVEG");
  if (!targets.empty()) return targets;
  std::vector<NodeId> all(static_cast<std::size_t>(tveg->node_count()));
  for (NodeId v = 0; v < tveg->node_count(); ++v)
    all[static_cast<std::size_t>(v)] = v;
  return all;
}

void TmedbInstance::validate() const {
  TVEG_REQUIRE(tveg != nullptr, "instance has no TVEG");
  TVEG_REQUIRE(source >= 0 && source < tveg->node_count(),
               "source out of range");
  TVEG_REQUIRE(deadline > 0 && deadline <= tveg->horizon(),
               "deadline must lie in (0, horizon]");
  const double eps = effective_epsilon();
  TVEG_REQUIRE(eps > 0 && eps < 1, "epsilon must lie in (0, 1)");
  for (NodeId t : targets)
    TVEG_REQUIRE(t >= 0 && t < tveg->node_count(), "target out of range");
}

CascadeResult run_cascade(const TmedbInstance& instance,
                          const Schedule& schedule, Time t_query) {
  instance.validate();
  const Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();
  const double eps = instance.effective_epsilon();
  const auto n = static_cast<std::size_t>(tveg.node_count());
  const auto& txs = schedule.transmissions();
  for (const Transmission& tx : txs)
    TVEG_REQUIRE(tx.relay >= 0 && static_cast<std::size_t>(tx.relay) < n,
                 "schedule relay out of range");

  // Work in log space to avoid underflow on long products.
  std::vector<double> log_p(n, 0.0);
  log_p[static_cast<std::size_t>(instance.source)] = -support::kInf;

  // Pending arrival: at `arrival` time, node `receiver`'s log p gains
  // `log_phi`. Kept sorted by arrival (txs are processed in time order and
  // τ is constant, so pushes are already in order).
  struct Arrival {
    Time arrival;
    NodeId receiver;
    double log_phi;
  };
  std::vector<Arrival> pending;
  std::size_t drained = 0;
  auto drain = [&](Time upto) {
    while (drained < pending.size() &&
           pending[drained].arrival <= upto + kTimeTol) {
      const Arrival& a = pending[drained++];
      log_p[static_cast<std::size_t>(a.receiver)] += a.log_phi;
    }
  };

  CascadeResult result;
  result.applied.assign(txs.size(), 0);

  std::size_t k = 0;
  while (k < txs.size()) {
    const Time t = txs[k].time;
    if (t + tau > t_query + kTimeTol) break;  // completes after the query
    std::size_t group_end = k + 1;
    while (group_end < txs.size() && txs[group_end].time - t <= kTimeTol)
      ++group_end;

    drain(t);

    // Fixpoint over the equal-time group: at τ = 0 a node informed within
    // the group may forward within the group (non-stop journey).
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t q = k; q < group_end; ++q) {
        if (result.applied[q]) continue;
        const Transmission& tx = txs[q];
        if (std::exp(log_p[static_cast<std::size_t>(tx.relay)]) >
            eps + 1e-12)
          continue;  // relay not informed (yet)
        result.applied[q] = 1;
        progress = true;
        for (NodeId j : tveg.graph().neighbors_at(tx.relay, tx.time)) {
          if (j == instance.source) continue;
          const double phi =
              tveg.failure_probability(tx.relay, j, tx.time, tx.cost);
          pending.push_back({tx.time + tau, j, support::safe_log(phi)});
        }
        if (tau <= kTimeTol) drain(t);  // same-instant delivery
      }
    }
    for (std::size_t q = k; q < group_end; ++q)
      if (!result.applied[q]) result.all_applied = false;
    k = group_end;
  }

  drain(t_query);

  result.p.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // safe_log floors log(0) at ~-691; flush those back to an exact zero so
    // deterministic (step-channel) successes read as p = 0.
    result.p[i] = log_p[i] <= -600.0 ? 0.0 : std::exp(log_p[i]);
  }
  result.p[static_cast<std::size_t>(instance.source)] = 0.0;
  return result;
}

std::vector<double> uninformed_probabilities(const TmedbInstance& instance,
                                             const Schedule& schedule,
                                             Time t) {
  return run_cascade(instance, schedule, t).p;
}

FeasibilityReport check_feasibility(const TmedbInstance& instance,
                                    const Schedule& schedule) {
  instance.validate();
  const Tveg& tveg = *instance.tveg;
  const double eps = instance.effective_epsilon();
  const Time tau = tveg.latency();

  FeasibilityReport report;

  // (iii) latency.
  report.within_deadline =
      schedule.empty() ||
      schedule.latest_finish(tau) <= instance.deadline + kTimeTol;
  if (!report.within_deadline) report.reason = "transmission after deadline";

  // (iv) budget.
  report.within_budget =
      instance.budget < 0 ||
      schedule.total_cost() <= instance.budget + 1e-12 * instance.budget;
  if (!report.within_budget && report.reason.empty())
    report.reason = "cost budget exceeded";

  // Cost-set membership.
  report.costs_in_range = true;
  for (const Transmission& tx : schedule.transmissions()) {
    if (tx.cost < tveg.radio().w_min - 1e-15 ||
        tx.cost > tveg.radio().w_max) {
      report.costs_in_range = false;
      if (report.reason.empty()) report.reason = "cost outside [w_min, w_max]";
      break;
    }
  }

  // A relay id outside the node set (hostile schedule file) makes the
  // cascade meaningless: report infeasible instead of tripping the
  // cascade's precondition.
  for (const Transmission& tx : schedule.transmissions()) {
    if (tx.relay < 0 || tx.relay >= tveg.node_count()) {
      report.relays_informed = false;
      report.all_informed = false;
      report.max_uninformed_probability = 1.0;
      if (report.reason.empty()) report.reason = "relay node id out of range";
      report.feasible = false;
      return report;
    }
  }

  // (i) + (ii) in one causal cascade to the deadline: condition (i) holds
  // iff every transmission was applied (its relay was informed when it
  // fired), condition (ii) iff the final probabilities are all <= ε.
  const CascadeResult cascade =
      run_cascade(instance, schedule, instance.deadline);
  report.relays_informed = cascade.all_applied;
  if (!report.relays_informed && report.reason.empty())
    report.reason = "relay forwards uninformed";

  report.max_uninformed_probability = 0;
  for (NodeId t : instance.effective_targets())
    report.max_uninformed_probability =
        std::max(report.max_uninformed_probability,
                 cascade.p[static_cast<std::size_t>(t)]);
  report.all_informed = report.max_uninformed_probability <= eps + 1e-12;
  if (!report.all_informed && report.reason.empty())
    report.reason = "some node remains uninformed at the deadline";

  report.feasible = report.within_deadline && report.within_budget &&
                    report.costs_in_range && report.relays_informed &&
                    report.all_informed;
  return report;
}

double normalized_energy(const TmedbInstance& instance,
                         const Schedule& schedule) {
  instance.validate();
  const channel::RadioParams& radio = instance.tveg->radio();
  return schedule.total_cost() /
         (radio.noise_density * radio.gamma_linear());
}

}  // namespace tveg::core
