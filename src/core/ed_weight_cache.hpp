// Memoization of ED-function materialization and min-cost edge weights.
//
// Every consumer of a Tveg — auxiliary-graph construction, the prune pass's
// cascade feasibility checks, FR backbone selection, NLP coverage, and the
// Monte-Carlo executor — ultimately materializes the ED-function of an
// (edge, time) pair from the edge's piecewise-constant distance profile and
// then evaluates it (a heap allocation plus, for Nakagami/Rician, a
// 200-step bisection per min-cost query). The channel is constant on each
// distance-profile segment, so there are only |edges| × |segments| distinct
// ED-functions per TVEG; this cache memoizes them (and their min-cost
// weight at the radio's ε) keyed by (edge, segment) — the refinement of the
// (edge, DTS-interval, ε) key: DTS intervals subdivide profile segments, so
// one entry serves every DTS point of the segment.
//
// Thread safety: lookups are safe from concurrent readers (sharded
// mutex-protected maps; entries are immutable once inserted and handed out
// as shared_ptr so eviction can never free an ED-function mid-use).
// Attach/detach (Tveg::attach_cache) must not race with lookups.
//
// Correctness: entries are built by the exact same code path as the
// uncached Tveg queries (Tveg::materialize_ed), so cached results are
// bit-identical to the memoization-free ones — the differential suite
// (tests/diff/) pins this.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

#include "channel/ed_function.hpp"
#include "support/mem_budget.hpp"
#include "tvg/types.hpp"

namespace tveg::core {

class Tveg;

/// Shared, thread-safe memo of per-(edge, distance-segment) ED-functions
/// and their ε-cost edge weights.
class EdWeightCache {
 public:
  struct Options {
    /// Soft bound on resident entries; exceeding it evicts (whole shards at
    /// a time — cheap, and correctness is unaffected since entries are pure
    /// memos). 0 means unbounded.
    std::size_t max_entries = 1 << 20;
    /// Soft byte bound on this cache's resident footprint (approximated at
    /// kApproxEntryBytes per entry); exceeding it evicts the shard being
    /// inserted into. 0 means unbounded.
    std::size_t max_bytes = 0;
    /// Optional shared memory ledger (Budget.mem): every insert charges it
    /// and every eviction releases it, so several caches can be governed by
    /// one aggregate budget — when the ledger is over its limit, inserts
    /// evict under pressure exactly as with max_bytes. Must outlive the
    /// cache; nullptr = no shared accounting.
    support::MemBudget* mem = nullptr;
  };

  /// Approximate resident bytes per entry: map node + Entry + shared_ptr
  /// control block + the (small, vtable + a few doubles) EdFunction object.
  /// Deliberately a round, stable constant so byte budgets translate
  /// predictably into entry counts.
  static constexpr std::size_t kApproxEntryBytes = 160;

  explicit EdWeightCache(Options options);
  EdWeightCache() : EdWeightCache(Options{}) {}
  ~EdWeightCache();

  EdWeightCache(const EdWeightCache&) = delete;
  EdWeightCache& operator=(const EdWeightCache&) = delete;

  /// The memoized ED-function of edge `e` of `tveg` at time `t` (present
  /// edge assumed — adjacency is the caller's check, exactly as in
  /// Tveg::ed_function).
  std::shared_ptr<const channel::EdFunction> ed(const Tveg& tveg,
                                                std::size_t e, Time t) const;

  /// The memoized min-cost weight at the radio's ε for edge `e` at `t`.
  Cost edge_weight(const Tveg& tveg, std::size_t e, Time t) const;

  /// Counter snapshot (monotone; also flushed into the obs registry under
  /// tveg.cache.* on destruction).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< entries dropped by capacity pressure
    /// Entries dropped specifically by byte/ledger pressure (also counted
    /// in `evictions`).
    std::uint64_t pressure_evictions = 0;
    /// Approximate current resident footprint (entries × kApproxEntryBytes).
    std::uint64_t approx_bytes = 0;
  };
  Stats stats() const;

  /// Drops every entry (stats are kept).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const channel::EdFunction> ed;
    Cost weight = 0;
  };
  struct Shard {
    mutable support::Mutex mutex;
    std::unordered_map<std::uint64_t, Entry> map TVEG_GUARDED_BY(mutex);
  };
  static constexpr std::size_t kShards = 16;

  const Entry lookup(const Tveg& tveg, std::size_t e, Time t) const;
  /// (key, shard index) of edge `e` at time `t`.
  std::pair<std::uint64_t, std::size_t> locate(const Tveg& tveg, std::size_t e,
                                               Time t) const;

  /// Clears `shard` (already locked by the caller), returning its bytes to
  /// the ledger and counting the eviction; `pressure` marks byte-driven
  /// evictions apart from entry-count ones.
  void evict_shard(Shard& shard, std::size_t shard_index,
                   bool pressure) const TVEG_REQUIRES(shard.mutex);

  Options options_;
  mutable Shard shards_[kShards];
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> pressure_evictions_{0};
  /// Approximate resident bytes (kApproxEntryBytes per entry), mirrored
  /// into options_.mem when attached.
  mutable std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace tveg::core
