#include "core/bip.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

using support::kInf;

namespace {

constexpr double kTimeTol = 1e-9;

/// One transmission slot (relay at one of its DTS times) with its DCS.
struct Slot {
  NodeId relay;
  Time time;
  std::vector<DcsEntry> dcs;
  /// Index of the currently-paid DCS level; -1 = slot unused so far.
  int paid_level = -1;

  Cost paid_cost() const {
    return paid_level < 0 ? 0 : dcs[static_cast<std::size_t>(paid_level)].cost;
  }
};

}  // namespace

SchedulerResult run_bip(const TmedbInstance& instance,
                        const BipOptions& options) {
  instance.validate();
  const DiscreteTimeSet dts = instance.tveg->build_dts(options.dts);
  return run_bip(instance, dts, options);
}

SchedulerResult run_bip(const TmedbInstance& instance,
                        const DiscreteTimeSet& dts, const BipOptions& options) {
  instance.validate();
  options.budget.check("bip");
  TVEG_REQUIRE(instance.targets.empty(), "temporal BIP is broadcast-only");
  const Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();
  const auto n = static_cast<std::size_t>(tveg.node_count());

  // Precompute all slots within the deadline.
  std::vector<Slot> slots;
  for (NodeId i = 0; i < tveg.node_count(); ++i) {
    for (Time t : dts.points(i)) {
      if (t + tau > instance.deadline + kTimeTol) break;
      auto dcs = tveg.discrete_cost_set(i, t);
      if (!dcs.empty()) slots.push_back({i, t, std::move(dcs), -1});
    }
  }

  std::vector<Time> informed_time(n, kInf);
  informed_time[static_cast<std::size_t>(instance.source)] = 0;
  std::size_t uninformed = n - 1;

  SchedulerResult result;
  result.stats.dts_points = dts.total_points();

  while (uninformed > 0) {
    options.budget.check("bip");
    // Find the cheapest incremental move: raise slot s to level l (>
    // paid_level) such that at least one new node is covered. A fresh slot
    // is the paid_level = -1 case of the same scan.
    double best_increment = kInf;
    std::size_t best_slot = 0;
    int best_level = -1;

    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      if (informed_time[static_cast<std::size_t>(slot.relay)] >
          slot.time + kTimeTol)
        continue;  // relay does not hold the packet at this slot's time
      for (int l = slot.paid_level + 1;
           l < static_cast<int>(slot.dcs.size()); ++l) {
        const DcsEntry& entry = slot.dcs[static_cast<std::size_t>(l)];
        if (informed_time[static_cast<std::size_t>(entry.neighbor)] < kInf)
          continue;  // level adds no new node yet — keep raising
        const double increment = entry.cost - slot.paid_cost();
        if (increment < best_increment) {
          best_increment = increment;
          best_slot = s;
          best_level = l;
        }
        break;  // higher levels only cost more for this first new node
      }
    }

    if (best_level < 0) break;  // nothing reachable anymore

    Slot& slot = slots[best_slot];
    slot.paid_level = best_level;
    // The paid level covers every neighbor at or below it.
    for (int l = 0; l <= best_level; ++l) {
      const DcsEntry& entry = slot.dcs[static_cast<std::size_t>(l)];
      auto& it = informed_time[static_cast<std::size_t>(entry.neighbor)];
      if (it == kInf) {
        it = slot.time + tau;
        --uninformed;
      } else {
        it = std::min(it, slot.time + tau);
      }
    }
  }

  for (const Slot& slot : slots)
    if (slot.paid_level >= 0)
      result.schedule.add(slot.relay, slot.time, slot.paid_cost());
  result.covered_all = uninformed == 0;
  return result;
}

}  // namespace tveg::core
