// Broadcast relay schedules and the TMEDB problem instance (paper Sec. IV).
//
// A schedule S = [R, T, W] is a list of transmissions (relay, time, cost).
// Feasibility (decision-version conditions i–iv):
//   (i)   every relay is informed when it forwards (p_{r_k, t_k} <= ε),
//   (ii)  every node is informed by the deadline,
//   (iii) the last transmission finishes by the deadline,
//   (iv)  the total cost is within the budget (when one is given).
// p_{i,t} follows Eq. 6 with the arrival-time reading: a transmission at t_k
// contributes to p_{i,t} once its traversal completes, i.e. when
// t_k + τ <= t. (Eq. 6 writes t_k <= t and Eq. 16 writes t_k <= t_j; the two
// only coincide at τ = 0, and the arrival reading is the physically
// meaningful one — a relay cannot forward bits it has not yet received.)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/tveg.hpp"
#include "tvg/types.hpp"

namespace tveg::core {

/// One scheduled transmission s_k = [r_k, t_k, w_k].
struct Transmission {
  NodeId relay;
  Time time;
  Cost cost;

  bool operator==(const Transmission&) const = default;
};

/// An ordered (by time) broadcast relay schedule.
class Schedule {
 public:
  Schedule() = default;

  /// Appends a transmission; the schedule re-sorts lazily on access.
  void add(NodeId relay, Time time, Cost cost);
  void add(const Transmission& t) { add(t.relay, t.time, t.cost); }

  std::size_t size() const { return txs_.size(); }
  bool empty() const { return txs_.empty(); }
  /// Transmissions sorted ascending by (time, relay).
  const std::vector<Transmission>& transmissions() const;

  /// Σ_k w_k (condition iv's left-hand side).
  Cost total_cost() const;
  /// max t_k + τ — the broadcast latency (condition iii's left-hand side).
  Time latest_finish(Time tau) const;

  /// Merges transmissions with identical (relay, time) into one at the max
  /// cost (the cheaper one is redundant by the broadcast nature,
  /// Property 6.1(i)).
  void coalesce(double time_tolerance = 1e-9);

 private:
  void ensure_sorted() const;
  mutable std::vector<Transmission> txs_;
  mutable bool sorted_ = true;
};

std::ostream& operator<<(std::ostream& os, const Schedule& s);

/// A TMEDB problem instance: TVEG + source + delay constraint + error rate
/// (+ optional cost budget for the decision version, + optional terminal
/// subset for the multicast generalization — the MEMT problem of [3] that
/// Sec. VI-A reduces to is natively multicast, so the pipeline supports it
/// for free).
struct TmedbInstance {
  const Tveg* tveg = nullptr;
  NodeId source = 0;
  /// Delay constraint T.
  Time deadline = 0;
  /// Acceptable failure rate ε (defaults to the TVEG radio's ε when <= 0).
  double epsilon = -1;
  /// Cost budget C; < 0 means "no budget" (optimization version).
  Cost budget = -1;
  /// Multicast terminal set; empty = broadcast (all nodes). Non-terminal
  /// nodes may still serve as relays. The GREED/RAND baselines are
  /// broadcast-only (the paper defines them for broadcast).
  std::vector<NodeId> targets;

  double effective_epsilon() const;
  /// The effective terminal list: `targets`, or all nodes when empty
  /// (source included either way — it is trivially informed).
  std::vector<NodeId> effective_targets() const;
  void validate() const;
};

/// Causally-sequenced cascade evaluation of a schedule (the engine behind
/// Eq. 6). Transmissions are applied in time order; a transmission is only
/// *applied* once its relay is informed (p <= ε) from causally earlier
/// arrivals. Same-time transmissions are resolved to a fixpoint, which
/// permits legal non-stop journeys at τ = 0 but rejects circular
/// "A informs B while B informs A" schedules that a naive reading of
/// Eq. 6 / Eq. 16 would accept.
struct CascadeResult {
  /// p_{i, t_query} for every node.
  std::vector<double> p;
  /// applied[k]: transmission k's relay was informed when it fired.
  std::vector<char> applied;
  /// True iff every transmission (with time + τ <= t_query) was applied.
  bool all_applied = true;
};

/// Runs the cascade including transmissions that complete (t_k + τ) by
/// `t_query`, and reports p_{i, t_query}.
CascadeResult run_cascade(const TmedbInstance& instance,
                          const Schedule& schedule, Time t_query);

/// Per-node uninformed probabilities p_{i,t} under `schedule` at time t
/// (convenience wrapper over run_cascade).
std::vector<double> uninformed_probabilities(const TmedbInstance& instance,
                                             const Schedule& schedule, Time t);

/// Structured feasibility verdict.
struct FeasibilityReport {
  bool feasible = false;
  bool relays_informed = false;   ///< condition (i)
  bool all_informed = false;      ///< condition (ii)
  bool within_deadline = false;   ///< condition (iii)
  bool within_budget = false;     ///< condition (iv) (true when no budget)
  bool costs_in_range = false;    ///< every w_k ∈ [w_min, w_max]
  /// max_i p_{i,deadline} over all nodes.
  double max_uninformed_probability = 1.0;
  std::string reason;             ///< human-readable failure cause
};

/// Checks conditions (i)–(iv) of the decision version for `schedule`.
FeasibilityReport check_feasibility(const TmedbInstance& instance,
                                    const Schedule& schedule);

/// Normalized energy of a schedule: Σ w_k / (N0 · γ_th) — total cost in
/// units of the "threshold energy" N0·γ_th, the normalization of [14] the
/// paper's figures use.
double normalized_energy(const TmedbInstance& instance,
                         const Schedule& schedule);

}  // namespace tveg::core
