#include "core/baselines.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

using support::kInf;

namespace {

constexpr double kTimeTol = 1e-9;

/// One candidate transmission slot: relay i at DTS point t with its
/// discrete cost set, precomputed once per run.
struct Slot {
  NodeId relay;
  Time time;
  std::vector<DcsEntry> dcs;
};

/// A concrete action: slot index + what it would newly inform and at what
/// (minimal sufficient) cost.
struct Action {
  std::size_t slot;
  std::size_t new_targets;
  Cost cost;
};

}  // namespace

SchedulerResult run_baseline(const TmedbInstance& instance,
                             const BaselineOptions& options) {
  instance.validate();
  const DiscreteTimeSet dts = instance.tveg->build_dts(options.dts);
  return run_baseline(instance, dts, options);
}

SchedulerResult run_baseline(const TmedbInstance& instance,
                             const DiscreteTimeSet& dts,
                             const BaselineOptions& options) {
  instance.validate();
  TVEG_REQUIRE(instance.targets.empty(),
               "GREED/RAND are broadcast-only (the paper defines them so); "
               "use EEDCB/FR-EEDCB for multicast instances");
  const Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();
  const auto n = static_cast<std::size_t>(tveg.node_count());

  support::Rng rng(options.seed);

  // Precompute all transmission slots within the deadline.
  std::vector<Slot> slots;
  for (NodeId i = 0; i < tveg.node_count(); ++i) {
    for (Time t : dts.points(i)) {
      if (t + tau > instance.deadline + kTimeTol) break;
      auto dcs = tveg.discrete_cost_set(i, t);
      if (!dcs.empty()) slots.push_back({i, t, std::move(dcs)});
    }
  }

  // informed_time[i]: when i (will) hold the packet; +inf = not scheduled.
  std::vector<Time> informed_time(n, kInf);
  informed_time[static_cast<std::size_t>(instance.source)] = 0;
  std::size_t uninformed = n - 1;

  SchedulerResult result;
  result.stats.dts_points = dts.total_points();

  while (uninformed > 0) {
    // Enumerate currently valid actions: relay informed by the slot time,
    // at least one uninformed adjacent node.
    std::vector<Action> actions;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const Slot& slot = slots[s];
      if (informed_time[static_cast<std::size_t>(slot.relay)] >
          slot.time + kTimeTol)
        continue;
      std::size_t targets = 0;
      Cost cost = 0;
      for (const DcsEntry& entry : slot.dcs) {
        if (informed_time[static_cast<std::size_t>(entry.neighbor)] < kInf)
          continue;
        ++targets;
        cost = std::max(cost, entry.cost);  // minimal sufficient DCS level
      }
      if (targets > 0) actions.push_back({s, targets, cost});
    }
    if (actions.empty()) break;

    std::size_t pick = 0;
    if (options.rule == BaselineRule::kRandom) {
      pick = rng.index(actions.size());
    } else {
      for (std::size_t a = 1; a < actions.size(); ++a) {
        const Action& best = actions[pick];
        const Action& cand = actions[a];
        const Slot& best_slot = slots[best.slot];
        const Slot& cand_slot = slots[cand.slot];
        const auto best_key =
            std::tuple(-static_cast<std::ptrdiff_t>(best.new_targets),
                       best.cost, best_slot.time, best_slot.relay);
        const auto cand_key =
            std::tuple(-static_cast<std::ptrdiff_t>(cand.new_targets),
                       cand.cost, cand_slot.time, cand_slot.relay);
        if (cand_key < best_key) pick = a;
      }
    }

    const Action& chosen = actions[pick];
    const Slot& slot = slots[chosen.slot];
    result.schedule.add(slot.relay, slot.time, chosen.cost);
    for (const DcsEntry& entry : slot.dcs) {
      if (entry.cost > chosen.cost + chosen.cost * 1e-12) break;
      auto& it = informed_time[static_cast<std::size_t>(entry.neighbor)];
      if (it == kInf) {
        it = slot.time + tau;
        --uninformed;
      } else {
        // Already-informed neighbors within range get the packet again at
        // no extra cost (broadcast nature) — possibly earlier than their
        // previously scheduled arrival.
        it = std::min(it, slot.time + tau);
      }
    }
  }

  result.covered_all = uninformed == 0;
  return result;
}

}  // namespace tveg::core
