#include "core/brute_force.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <unordered_map>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

using support::kInf;

namespace {

/// Packed state: informed-set mask in the low 32 bits, time index above.
std::uint64_t pack(std::uint32_t mask, std::uint32_t ti) {
  return (static_cast<std::uint64_t>(ti) << 32) | mask;
}

struct Step {
  std::uint64_t prev;
  // Action that produced this state; relay == kNoNode means "wait".
  NodeId relay = kNoNode;
  Time time = 0;
  Cost cost = 0;
};

}  // namespace

BruteForceResult brute_force_optimal(const TmedbInstance& instance,
                                     std::vector<Time> time_points) {
  instance.validate();
  const Tveg& tveg = *instance.tveg;
  TVEG_REQUIRE(tveg.model() == channel::ChannelModel::kStep,
               "brute force requires the step channel model");
  TVEG_REQUIRE(tveg.latency() == 0, "brute force requires tau == 0");
  const int n = tveg.node_count();
  TVEG_REQUIRE(n <= 16, "brute force limited to 16 nodes");

  std::sort(time_points.begin(), time_points.end());
  std::vector<Time> pts;
  for (Time t : time_points) {
    if (t < 0 || t > instance.deadline + 1e-9) continue;
    if (pts.empty() || t - pts.back() > 1e-9) pts.push_back(t);
  }
  TVEG_REQUIRE(!pts.empty(), "no candidate time points before the deadline");

  // Goal: every terminal informed (multicast-aware).
  std::uint32_t goal_mask = 0;
  for (NodeId t : instance.effective_targets()) goal_mask |= 1u << t;
  const std::uint32_t start_mask = 1u << instance.source;
  goal_mask |= start_mask;

  std::unordered_map<std::uint64_t, Cost> dist;
  std::unordered_map<std::uint64_t, Step> parent;
  using Entry = std::pair<Cost, std::uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;

  const std::uint64_t start = pack(start_mask, 0);
  dist[start] = 0;
  pq.emplace(0.0, start);

  BruteForceResult result;
  std::uint64_t goal = 0;
  bool found = false;

  while (!pq.empty()) {
    const auto [d, state] = pq.top();
    pq.pop();
    auto it = dist.find(state);
    if (it == dist.end() || d > it->second) continue;
    ++result.states_expanded;

    const auto mask = static_cast<std::uint32_t>(state & 0xffffffffu);
    const auto ti = static_cast<std::uint32_t>(state >> 32);
    if ((mask & goal_mask) == goal_mask) {
      goal = state;
      found = true;
      break;
    }

    auto relax = [&](std::uint64_t next, Cost nd, const Step& step) {
      auto dit = dist.find(next);
      if (dit == dist.end() || nd < dit->second) {
        dist[next] = nd;
        parent[next] = step;
        pq.emplace(nd, next);
      }
    };

    // Wait: advance to the next time point.
    if (ti + 1 < pts.size())
      relax(pack(mask, ti + 1), d, {state, kNoNode, 0, 0});

    // Transmit: any informed node, any DCS level that informs someone new.
    const Time t = pts[ti];
    for (NodeId i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      const std::vector<DcsEntry> dcs = tveg.discrete_cost_set(i, t);
      std::uint32_t new_mask = mask;
      for (const DcsEntry& entry : dcs) {
        new_mask |= 1u << entry.neighbor;  // level covers all cheaper ones
        if (new_mask == mask) continue;    // nothing new at this level
        relax(pack(new_mask, ti), d + entry.cost,
              {state, i, t, entry.cost});
      }
    }
  }

  if (!found) return result;  // infeasible

  result.feasible = true;
  result.cost = dist[goal];
  // Reconstruct the transmissions along the optimal state path.
  std::uint64_t cur = goal;
  while (cur != start) {
    const Step& step = parent[cur];
    if (step.relay != kNoNode)
      result.schedule.add(step.relay, step.time, step.cost);
    cur = step.prev;
  }
  return result;
}

BruteForceResult brute_force_optimal(const TmedbInstance& instance) {
  const DiscreteTimeSet dts = instance.tveg->build_dts();
  return brute_force_optimal(instance, dts.global_points());
}

}  // namespace tveg::core
