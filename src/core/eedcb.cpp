#include "core/eedcb.hpp"

#include <chrono>

#include "core/prune.hpp"
#include "graph/steiner.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"

namespace tveg::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

SchedulerResult run_eedcb(const TmedbInstance& instance,
                          const EedcbOptions& options) {
  instance.validate();
  const DiscreteTimeSet dts = instance.tveg->build_dts(options.dts);
  return run_eedcb(instance, dts, options);
}

SchedulerResult run_eedcb(const TmedbInstance& instance,
                          const DiscreteTimeSet& dts,
                          const EedcbOptions& options) {
  instance.validate();
  options.budget.check("eedcb");

  const auto aux_start = Clock::now();
  const AuxGraph aux(instance, dts,
                     {.power_expansion = options.power_expansion,
                      .pool = options.pool,
                      .budget = options.budget});
  options.budget.check("aux_graph");
  const double aux_ms = ms_since(aux_start);

  graph::SteinerSolver solver(aux.digraph());
  SchedulerResult result = run_eedcb_on_aux(instance, dts, aux, solver, options);
  result.stats.aux_build_ms = aux_ms;
  return result;
}

SchedulerResult run_eedcb_on_aux(const TmedbInstance& instance,
                                 const DiscreteTimeSet& dts,
                                 const AuxGraph& aux,
                                 graph::SteinerSolver& solver,
                                 const EedcbOptions& options) {
  instance.validate();
  options.budget.check("eedcb");

  SchedulerResult result;
  result.stats.dts_points = dts.total_points();
  result.stats.aux_vertices = aux.vertex_count();
  result.stats.aux_arcs = aux.arc_count();

  const graph::VertexId source = aux.source_vertex_for(instance.source);
  const std::vector<graph::VertexId> terminals = aux.terminals_for(instance);

  solver.set_budget(options.budget);
  solver.set_pool(options.pool);
  graph::SteinerResult tree;
  {
    obs::TraceSpan span("steiner");
    const auto steiner_start = Clock::now();
    switch (options.method) {
      case SteinerMethod::kRecursiveGreedy:
        tree = solver.recursive_greedy(source, terminals,
                                       options.steiner_level);
        break;
      case SteinerMethod::kShortestPath:
        tree = solver.shortest_path_heuristic(source, terminals);
        break;
    }
    result.stats.steiner_ms = ms_since(steiner_start);
  }
  result.stats.steiner_nodes_expanded = solver.last_query_stats().nodes_expanded;
  result.stats.steiner_relaxations = solver.last_query_stats().relaxations;

  result.covered_all = tree.feasible;
  result.schedule = aux.extract_schedule(tree);
  if (options.prune && result.covered_all) {
    const auto prune_start = Clock::now();
    result.schedule = prune_schedule(instance, result.schedule);
    result.stats.prune_ms = ms_since(prune_start);
  }
  return result;
}

}  // namespace tveg::core
