#include "core/eedcb.hpp"

#include "core/prune.hpp"
#include "graph/steiner.hpp"
#include "support/assert.hpp"

namespace tveg::core {

SchedulerResult run_eedcb(const TmedbInstance& instance,
                          const EedcbOptions& options) {
  instance.validate();
  const DiscreteTimeSet dts = instance.tveg->build_dts(options.dts);
  return run_eedcb(instance, dts, options);
}

SchedulerResult run_eedcb(const TmedbInstance& instance,
                          const DiscreteTimeSet& dts,
                          const EedcbOptions& options) {
  instance.validate();

  const AuxGraph aux(instance, dts, {.power_expansion = options.power_expansion});

  SchedulerResult result;
  result.stats.dts_points = dts.total_points();
  result.stats.aux_vertices = aux.vertex_count();
  result.stats.aux_arcs = aux.arc_count();

  graph::SteinerSolver solver(aux.digraph());
  graph::SteinerResult tree;
  switch (options.method) {
    case SteinerMethod::kRecursiveGreedy:
      tree = solver.recursive_greedy(aux.source_vertex(), aux.terminals(),
                                     options.steiner_level);
      break;
    case SteinerMethod::kShortestPath:
      tree = solver.shortest_path_heuristic(aux.source_vertex(),
                                            aux.terminals());
      break;
  }

  result.covered_all = tree.feasible;
  result.schedule = aux.extract_schedule(tree);
  if (options.prune && result.covered_all)
    result.schedule = prune_schedule(instance, result.schedule);
  return result;
}

}  // namespace tveg::core
