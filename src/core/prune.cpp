#include "core/prune.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"

namespace tveg::core {

namespace {

Schedule rebuild(const std::vector<Transmission>& txs,
                 const std::vector<char>& keep) {
  Schedule s;
  for (std::size_t k = 0; k < txs.size(); ++k)
    if (keep[k]) s.add(txs[k]);
  return s;
}

bool feasible(const TmedbInstance& instance, const Schedule& s) {
  return check_feasibility(instance, s).feasible;
}

}  // namespace

Schedule prune_schedule(const TmedbInstance& instance, Schedule schedule) {
  return prune_schedule(instance, std::move(schedule), PruneOptions{});
}

Schedule prune_schedule(const TmedbInstance& instance, Schedule schedule,
                        const PruneOptions& options) {
  obs::TraceSpan span("prune");
  instance.validate();

  std::size_t checks = 0;
  std::size_t removed = 0;
  std::size_t reductions = 0;
  std::size_t rounds = 0;
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& runs_metric = registry.counter(obs::keys::kPruneRuns);
  static obs::Counter& rounds_metric = registry.counter(obs::keys::kPruneRounds);
  static obs::Counter& checks_metric =
      registry.counter(obs::keys::kPruneFeasibilityChecks);
  static obs::Counter& removed_metric = registry.counter(obs::keys::kPruneRemoved);
  static obs::Counter& reductions_metric =
      registry.counter(obs::keys::kPruneLevelReductions);
  const auto flush = [&] {
    runs_metric.add(1);
    rounds_metric.add(rounds);
    checks_metric.add(checks);
    removed_metric.add(removed);
    reductions_metric.add(reductions);
  };

  ++checks;
  if (!feasible(instance, schedule)) {
    flush();
    return schedule;
  }
  const Tveg& tveg = *instance.tveg;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++rounds;
    bool changed = false;

    if (options.try_removal) {
      // Try dropping transmissions, most expensive first.
      std::vector<Transmission> txs = schedule.transmissions();
      std::vector<std::size_t> order(txs.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return txs[a].cost > txs[b].cost;
      });
      std::vector<char> keep(txs.size(), 1);
      for (std::size_t k : order) {
        keep[k] = 0;
        ++checks;
        if (feasible(instance, rebuild(txs, keep))) {
          changed = true;  // the transmission was redundant
          ++removed;
        } else {
          keep[k] = 1;
        }
      }
      schedule = rebuild(txs, keep);
    }

    if (options.try_level_reduction) {
      // Try lowering each transmission to a cheaper DCS level.
      const std::vector<Transmission> txs = schedule.transmissions();
      std::vector<Cost> costs(txs.size());
      for (std::size_t k = 0; k < txs.size(); ++k) costs[k] = txs[k].cost;

      auto build = [&] {
        Schedule s;
        for (std::size_t m = 0; m < txs.size(); ++m)
          s.add(txs[m].relay, txs[m].time, costs[m]);
        return s;
      };

      for (std::size_t k = 0; k < txs.size(); ++k) {
        const auto dcs = tveg.discrete_cost_set(txs[k].relay, txs[k].time);
        // Candidate cheaper levels, ascending: accept the cheapest feasible.
        for (const DcsEntry& entry : dcs) {
          if (entry.cost >= costs[k]) break;
          const Cost saved = costs[k];
          costs[k] = entry.cost;
          ++checks;
          if (feasible(instance, build())) {
            changed = true;
            ++reductions;
            break;
          }
          costs[k] = saved;
        }
      }
      schedule = build();
    }

    if (!changed) break;
  }
  flush();
  return schedule;
}

}  // namespace tveg::core
