// Temporal BIP — Broadcast Incremental Power (Wieselthier/Nguyen/Ephremides),
// the classic minimum-energy broadcast heuristic for static wireless
// networks (the lineage of the paper's refs [1]–[4]), lifted to TVEGs.
//
// BIP grows a broadcast structure one node at a time, always paying the
// minimum *incremental* power: either raise an already-scheduled
// transmission to the next discrete-cost-set level (incremental cost
// w^{k+1} − w^k — the signature move exploiting the broadcast nature), or
// start a new transmission from an informed node at one of its DTS times.
// In the temporal lift, a transmission is pinned to a (relay, DTS time)
// pair, and relays must hold the packet by their transmission time.
//
// Serves as an additional literature baseline between EEDCB and GREED.
#pragma once

#include "core/eedcb.hpp"
#include "support/budget.hpp"
#include "tvg/dts.hpp"

namespace tveg::core {

/// Options for temporal BIP.
struct BipOptions {
  DtsOptions dts;
  /// Unified solve budget, polled once per grown node; expiry raises
  /// support::TimeoutError, a fired cancel token support::CancelledError.
  /// Default: unlimited, non-cancellable.
  support::Budget budget;
};

/// Runs temporal BIP on `instance` (broadcast-only, like the baselines).
SchedulerResult run_bip(const TmedbInstance& instance,
                        const BipOptions& options = {});

/// As above over a caller-provided DTS.
SchedulerResult run_bip(const TmedbInstance& instance,
                        const DiscreteTimeSet& dts,
                        const BipOptions& options = {});

}  // namespace tveg::core
