#include "core/aux_graph.hpp"

#include <algorithm>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

namespace {
constexpr double kTimeTol = 1e-9;
}

AuxGraph::AuxGraph(const TmedbInstance& instance, const DiscreteTimeSet& dts)
    : AuxGraph(instance, dts, Options{}) {}

AuxGraph::AuxGraph(const TmedbInstance& instance, const DiscreteTimeSet& dts,
                   Options options) {
  obs::TraceSpan span("aux_graph");
  instance.validate();
  const Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();
  const auto n = static_cast<std::size_t>(tveg.node_count());
  TVEG_REQUIRE(static_cast<std::size_t>(dts.node_count()) == n,
               "DTS node count mismatch");

  // Clip each node's DTS to the deadline and allocate u_{i,l} vertices.
  points_.resize(n);
  vertex_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (Time t : dts.points(static_cast<NodeId>(i))) {
      if (t > instance.deadline + kTimeTol) break;
      points_[i].push_back(t);
      vertex_[i].push_back(g_.add_vertex());
    }
    TVEG_ASSERT_MSG(!points_[i].empty(), "node has no DTS point before T");
    // Chain arcs u_{i,l} → u_{i,l+1}: once informed, stay informed.
    for (std::size_t l = 0; l + 1 < vertex_[i].size(); ++l)
      g_.add_arc(vertex_[i][l], vertex_[i][l + 1], 0.0);
  }

  source_ = source_vertex_for(instance.source);
  terminals_ = terminals_for(instance);

  // Transmission structure. The discrete cost sets (the expensive part: one
  // ED-function materialization plus min-cost query per neighbor) are
  // precomputed into indexed slots — optionally on the pool — and the graph
  // itself is built in a second, serial pass, so vertex ids (hence extracted
  // schedules) are identical whether or not a pool is supplied.
  struct Slot {
    std::size_t i;
    std::size_t l;
    Time t;
  };
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < points_[i].size(); ++l) {
      const Time t = points_[i][l];
      if (t + tau > instance.deadline + kTimeTol) break;
      slots.push_back({i, l, t});
    }
  }
  std::vector<std::vector<DcsEntry>> dcs_by_slot(slots.size());
  const auto fill = [&](std::size_t s) {
    obs::ScopedSpan fill_span("aux_dcs_fill");
    dcs_by_slot[s] =
        tveg.discrete_cost_set(static_cast<NodeId>(slots[s].i), slots[s].t);
  };
  if (options.pool != nullptr && slots.size() > 1) {
    options.pool->parallel_for(0, slots.size(), [&](std::size_t s) {
      options.budget.check("aux_dcs");
      fill(s);
    }, options.budget.cancel);
    static obs::Counter& par_tasks =
        obs::MetricsRegistry::global().counter(obs::keys::kParallelAuxDcsTasks);
    par_tasks.add(slots.size());
  } else {
    support::Budget::Poller poller(options.budget, "aux_dcs", /*stride=*/16);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      poller.poll();
      fill(s);
    }
  }

  for (std::size_t s = 0; s < slots.size(); ++s) {
    const std::size_t i = slots[s].i;
    const std::size_t l = slots[s].l;
    const Time t = slots[s].t;
    const std::vector<DcsEntry>& dcs = dcs_by_slot[s];
    if (dcs.empty()) continue;

    // Receiver vertex for neighbor j: first clipped point >= t + τ.
    auto receiver_vertex = [&](NodeId j) -> graph::VertexId {
      const auto& jp = points_[static_cast<std::size_t>(j)];
      auto it = std::lower_bound(jp.begin(), jp.end(), t + tau - kTimeTol);
      if (it == jp.end()) return graph::kNoVertex;
      const auto f = static_cast<std::size_t>(it - jp.begin());
      return vertex_[static_cast<std::size_t>(j)][f];
    };

    if (options.power_expansion) {
      // One power vertex per DCS level; level k reaches levels 0..k.
      for (std::size_t k = 0; k < dcs.size(); ++k) {
        bool any_receiver = false;
        const graph::VertexId x = g_.add_vertex();
        for (std::size_t m = 0; m <= k; ++m) {
          const graph::VertexId rv = receiver_vertex(dcs[m].neighbor);
          if (rv == graph::kNoVertex) continue;
          g_.add_arc(x, rv, 0.0);
          any_receiver = true;
        }
        if (!any_receiver) continue;  // x stays isolated, harmless
        g_.add_arc(vertex_[i][l], x, dcs[k].cost);
        power_info_.emplace(x,
                            PowerInfo{static_cast<NodeId>(i), t, dcs[k].cost});
      }
    } else {
      // Ablation: per-receiver singleton "levels" — no broadcast advantage.
      for (const DcsEntry& entry : dcs) {
        const graph::VertexId rv = receiver_vertex(entry.neighbor);
        if (rv == graph::kNoVertex) continue;
        const graph::VertexId x = g_.add_vertex();
        g_.add_arc(vertex_[i][l], x, entry.cost);
        g_.add_arc(x, rv, 0.0);
        power_info_.emplace(x,
                            PowerInfo{static_cast<NodeId>(i), t, entry.cost});
      }
    }
  }

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& builds = registry.counter(obs::keys::kAuxBuilds);
  static obs::Counter& power_vertices =
      registry.counter(obs::keys::kAuxPowerVertices);
  static obs::Gauge& vertices = registry.gauge(obs::keys::kAuxLastVertices);
  static obs::Gauge& arcs = registry.gauge(obs::keys::kAuxLastArcs);
  builds.add(1);
  power_vertices.add(power_info_.size());
  vertices.set(static_cast<double>(vertex_count()));
  arcs.set(static_cast<double>(arc_count()));
}

graph::VertexId AuxGraph::source_vertex_for(NodeId s) const {
  const auto& ps = points_.at(static_cast<std::size_t>(s));
  TVEG_REQUIRE(!ps.empty() && ps.front() <= kTimeTol,
               "source DTS must start at time 0");
  return vertex_[static_cast<std::size_t>(s)].front();
}

std::vector<graph::VertexId> AuxGraph::terminals_for(
    const TmedbInstance& instance) const {
  TVEG_REQUIRE(
      static_cast<std::size_t>(instance.tveg->node_count()) == points_.size(),
      "instance does not match this auxiliary graph");
  std::vector<graph::VertexId> out;
  for (NodeId t : instance.effective_targets())
    out.push_back(vertex_[static_cast<std::size_t>(t)].back());
  return out;
}

graph::VertexId AuxGraph::node_vertex(NodeId i, std::size_t l) const {
  const auto& vs = vertex_.at(static_cast<std::size_t>(i));
  TVEG_REQUIRE(l < vs.size(), "DTS point index out of range");
  return vs[l];
}

std::size_t AuxGraph::point_count(NodeId i) const {
  return points_.at(static_cast<std::size_t>(i)).size();
}

Time AuxGraph::point_time(NodeId i, std::size_t l) const {
  const auto& ps = points_.at(static_cast<std::size_t>(i));
  TVEG_REQUIRE(l < ps.size(), "DTS point index out of range");
  return ps[l];
}

Schedule AuxGraph::extract_schedule(const graph::SteinerResult& tree) const {
  Schedule schedule;
  for (const auto& arc : tree.arcs) {
    auto it = power_info_.find(arc.to);
    if (it == power_info_.end()) continue;  // chain or deliver arc
    schedule.add(it->second.relay, it->second.time, it->second.cost);
  }
  schedule.coalesce();
  return schedule;
}

}  // namespace tveg::core
