#include "core/aux_graph.hpp"

#include <algorithm>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::core {

namespace {
constexpr double kTimeTol = 1e-9;
}

AuxGraph::AuxGraph(const TmedbInstance& instance, const DiscreteTimeSet& dts)
    : AuxGraph(instance, dts, Options{}) {}

AuxGraph::AuxGraph(const TmedbInstance& instance, const DiscreteTimeSet& dts,
                   Options options) {
  obs::TraceSpan span("aux_graph");
  instance.validate();
  const Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();
  const auto n = static_cast<std::size_t>(tveg.node_count());
  TVEG_REQUIRE(static_cast<std::size_t>(dts.node_count()) == n,
               "DTS node count mismatch");

  // Clip each node's DTS to the deadline. The flat offsets are the vertex-id
  // codec: u_{i,l} = point_offset_[i] + l, so ids exist as soon as the clip
  // pass finishes — no per-node vertex tables.
  point_offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t count = 0;
    for (Time t : dts.points(static_cast<NodeId>(i))) {
      if (t > instance.deadline + kTimeTol) break;
      point_times_.push_back(t);
      ++count;
    }
    TVEG_ASSERT_MSG(count > 0, "node has no DTS point before T");
    point_offset_[i + 1] = point_offset_[i] + count;
  }
  first_power_ = static_cast<graph::VertexId>(point_offset_[n]);
  g_.reset(first_power_);

  source_ = source_vertex_for(instance.source);
  terminals_ = terminals_for(instance);

  // Transmission structure. The discrete cost sets (the expensive part: one
  // ED-function materialization plus min-cost query per neighbor) are
  // precomputed into indexed slots — optionally on the pool — and the graph
  // itself is built in a second, serial pass, so vertex ids (hence extracted
  // schedules) are identical whether or not a pool is supplied.
  struct Slot {
    std::size_t i;
    std::size_t l;
    Time t;
  };
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < point_count_raw(i); ++l) {
      const Time t = point_times_[point_offset_[i] + l];
      if (t + tau > instance.deadline + kTimeTol) break;
      slots.push_back({i, l, t});
    }
  }
  std::vector<std::vector<DcsEntry>> dcs_by_slot(slots.size());
  const auto fill = [&](std::size_t s) {
    obs::ScopedSpan fill_span("aux_dcs_fill");
    dcs_by_slot[s] =
        tveg.discrete_cost_set(static_cast<NodeId>(slots[s].i), slots[s].t);
  };
  if (options.pool != nullptr && slots.size() > 1) {
    options.pool->parallel_for(0, slots.size(), [&](std::size_t s) {
      options.budget.check("aux_dcs");
      fill(s);
    }, options.budget.cancel);
    static obs::Counter& par_tasks =
        obs::MetricsRegistry::global().counter(obs::keys::kParallelAuxDcsTasks);
    par_tasks.add(slots.size());
  } else {
    support::Budget::Poller poller(options.budget, "aux_dcs", /*stride=*/16);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      poller.poll();
      fill(s);
    }
  }

  // Receiver precompute + exact arc census. One lower_bound per (slot,
  // neighbor) pair — the assembly pass below reuses the resolved vertices
  // instead of re-searching per (level, member) pair — and the census lets
  // the staging arena be sized in a single allocation before any arc lands.
  std::vector<graph::VertexId> rv_flat;
  std::vector<std::size_t> rv_off(slots.size() + 1, 0);
  std::size_t arc_total = point_offset_[n] - n;  // chain arcs: Σ (cnt_i − 1)
  std::size_t power_total = 0;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    rv_off[s] = rv_flat.size();
    const std::vector<DcsEntry>& dcs = dcs_by_slot[s];
    const Time t = slots[s].t;
    for (const DcsEntry& entry : dcs) {
      const auto j = static_cast<std::size_t>(entry.neighbor);
      const auto jb = point_times_.begin() +
                      static_cast<std::ptrdiff_t>(point_offset_[j]);
      const auto je = point_times_.begin() +
                      static_cast<std::ptrdiff_t>(point_offset_[j + 1]);
      const auto it = std::lower_bound(jb, je, t + tau - kTimeTol);
      rv_flat.push_back(it == je ? graph::kNoVertex
                                 : static_cast<graph::VertexId>(
                                       it - point_times_.begin()));
    }
    const graph::VertexId* rv = rv_flat.data() + rv_off[s];
    if (options.power_expansion) {
      std::size_t valid_prefix = 0;
      for (std::size_t k = 0; k < dcs.size(); ++k) {
        if (rv[k] != graph::kNoVertex) ++valid_prefix;
        arc_total += valid_prefix + (valid_prefix > 0 ? 1 : 0);
      }
      power_total += dcs.size();
    } else {
      for (std::size_t k = 0; k < dcs.size(); ++k)
        if (rv[k] != graph::kNoVertex) {
          arc_total += 2;
          ++power_total;
        }
    }
  }
  rv_off[slots.size()] = rv_flat.size();
  g_.reserve_arcs(arc_total);
  power_info_.reserve(power_total);

  // Chain arcs u_{i,l} → u_{i,l+1}: once informed, stay informed. (Each u
  // vertex has at most one chain arc and it precedes the vertex's transmit
  // arcs, exactly as in the historical interleaved build.)
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t l = 0; l + 1 < point_count_raw(i); ++l) {
      const auto u = static_cast<graph::VertexId>(point_offset_[i] + l);
      g_.add_arc(u, u + 1, 0.0);
    }

  for (std::size_t s = 0; s < slots.size(); ++s) {
    const std::size_t i = slots[s].i;
    const std::size_t l = slots[s].l;
    const Time t = slots[s].t;
    const std::vector<DcsEntry>& dcs = dcs_by_slot[s];
    if (dcs.empty()) continue;
    const graph::VertexId* rv = rv_flat.data() + rv_off[s];
    const auto u = static_cast<graph::VertexId>(point_offset_[i] + l);

    if (options.power_expansion) {
      // One power vertex per DCS level; level k reaches levels 0..k.
      for (std::size_t k = 0; k < dcs.size(); ++k) {
        bool any_receiver = false;
        const graph::VertexId x = g_.add_vertex();
        for (std::size_t m = 0; m <= k; ++m) {
          if (rv[m] == graph::kNoVertex) continue;
          g_.add_arc(x, rv[m], 0.0);
          any_receiver = true;
        }
        power_info_.push_back(any_receiver
                                  ? PowerInfo{static_cast<NodeId>(i), t,
                                              dcs[k].cost}
                                  : PowerInfo{});  // dead slot, never decoded
        if (!any_receiver) continue;  // x stays isolated, harmless
        g_.add_arc(u, x, dcs[k].cost);
        ++live_power_;
      }
    } else {
      // Ablation: per-receiver singleton "levels" — no broadcast advantage.
      for (std::size_t k = 0; k < dcs.size(); ++k) {
        if (rv[k] == graph::kNoVertex) continue;
        const graph::VertexId x = g_.add_vertex();
        g_.add_arc(u, x, dcs[k].cost);
        g_.add_arc(x, rv[k], 0.0);
        power_info_.push_back(
            PowerInfo{static_cast<NodeId>(i), t, dcs[k].cost});
        ++live_power_;
      }
    }
  }
  g_.freeze();

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& builds = registry.counter(obs::keys::kAuxBuilds);
  static obs::Counter& power_vertices =
      registry.counter(obs::keys::kAuxPowerVertices);
  static obs::Gauge& vertices = registry.gauge(obs::keys::kAuxLastVertices);
  static obs::Gauge& arcs = registry.gauge(obs::keys::kAuxLastArcs);
  builds.add(1);
  power_vertices.add(live_power_);
  vertices.set(static_cast<double>(vertex_count()));
  arcs.set(static_cast<double>(arc_count()));
}

graph::VertexId AuxGraph::source_vertex_for(NodeId s) const {
  const auto i = static_cast<std::size_t>(s);
  TVEG_REQUIRE(i < point_offset_.size() - 1, "source node out of range");
  TVEG_REQUIRE(point_count_raw(i) > 0 &&
                   point_times_[point_offset_[i]] <= kTimeTol,
               "source DTS must start at time 0");
  return static_cast<graph::VertexId>(point_offset_[i]);
}

std::vector<graph::VertexId> AuxGraph::terminals_for(
    const TmedbInstance& instance) const {
  TVEG_REQUIRE(static_cast<std::size_t>(instance.tveg->node_count()) ==
                   point_offset_.size() - 1,
               "instance does not match this auxiliary graph");
  std::vector<graph::VertexId> out;
  for (NodeId t : instance.effective_targets())
    out.push_back(static_cast<graph::VertexId>(
        point_offset_[static_cast<std::size_t>(t) + 1] - 1));
  return out;
}

graph::VertexId AuxGraph::node_vertex(NodeId i, std::size_t l) const {
  const auto idx = static_cast<std::size_t>(i);
  TVEG_REQUIRE(idx < point_offset_.size() - 1, "node id out of range");
  TVEG_REQUIRE(l < point_count_raw(idx), "DTS point index out of range");
  return static_cast<graph::VertexId>(point_offset_[idx] + l);
}

std::size_t AuxGraph::point_count(NodeId i) const {
  const auto idx = static_cast<std::size_t>(i);
  TVEG_REQUIRE(idx < point_offset_.size() - 1, "node id out of range");
  return point_count_raw(idx);
}

Time AuxGraph::point_time(NodeId i, std::size_t l) const {
  const auto idx = static_cast<std::size_t>(i);
  TVEG_REQUIRE(idx < point_offset_.size() - 1, "node id out of range");
  TVEG_REQUIRE(l < point_count_raw(idx), "DTS point index out of range");
  return point_times_[point_offset_[idx] + l];
}

Schedule AuxGraph::extract_schedule(const graph::SteinerResult& tree) const {
  Schedule schedule;
  // Power vertices decode arithmetically: any arc head >= first_power_ is a
  // transmit arc into power vertex (head − first_power_) — no map lookups.
  for (const auto& arc : tree.arcs) {
    if (arc.to < first_power_) continue;  // chain or deliver arc
    const PowerInfo& info =
        power_info_[static_cast<std::size_t>(arc.to - first_power_)];
    schedule.add(info.relay, info.time, info.cost);
  }
  schedule.coalesce();
  return schedule;
}

}  // namespace tveg::core
