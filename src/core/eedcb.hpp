// EEDCB — energy-efficient delay-constrained broadcast (paper Sec. VI-A).
//
// Pipeline: build the DTS (Sec. V) → build the auxiliary graph (power-level
// expansion, Sec. VI-A) → solve directed Steiner tree to the per-node
// terminal vertices (the MEMT reduction of Liang [3]) → translate the tree
// back into a broadcast relay schedule. With a step-channel TVEG this solves
// TMEDB-S directly; with a fading TVEG the edge weights are the single-hop
// ε-costs, which makes the same pipeline the backbone-selection step of
// FR-EEDCB (Sec. VI-B).
#pragma once

#include "core/aux_graph.hpp"
#include "core/schedule.hpp"
#include "support/budget.hpp"
#include "tvg/dts.hpp"

namespace tveg::core {

/// Steiner solver choice for the MEMT step.
enum class SteinerMethod {
  /// Charikar recursive greedy — the algorithm behind the paper's O(N^ε)
  /// bound; `steiner_level` picks the level (1 or 2).
  kRecursiveGreedy,
  /// Union of shortest paths + prune; faster, no worst-case guarantee.
  kShortestPath,
};

/// EEDCB options.
struct EedcbOptions {
  SteinerMethod method = SteinerMethod::kRecursiveGreedy;
  int steiner_level = 2;
  DtsOptions dts;
  /// Ablation switch: false disables the broadcast-advantage expansion.
  bool power_expansion = true;
  /// Local-improvement post-pass on the extracted schedule (core/prune.hpp).
  bool prune = true;
  /// Unified solve budget (deadline + cancel token + memory ledger),
  /// polled between pipeline phases and inside the Steiner search; expiry
  /// raises support::TimeoutError, a fired token support::CancelledError.
  /// The fallback ladder (fault/degrade.hpp) catches the former and
  /// descends to a cheaper scheduler; the governance layer (fault/govern.hpp)
  /// catches both per request. Implicitly constructible from a bare
  /// Deadline. Default: unlimited, non-cancellable.
  support::Budget budget;
  /// Optional worker pool for aux-graph construction and the Steiner
  /// solver's parallel phases. Schedules are byte-identical with or without
  /// a pool (tests/diff pins this); nullptr = fully serial.
  support::ThreadPool* pool = nullptr;
};

/// Size and work diagnostics of one scheduler run. The *_ms phase timings
/// are always collected (one clock read per phase); finer-grained tracing
/// lives in obs::trace and is off unless obs::set_enabled(true).
struct SchedulerStats {
  std::size_t dts_points = 0;
  std::size_t aux_vertices = 0;
  std::size_t aux_arcs = 0;
  std::size_t steiner_nodes_expanded = 0;
  std::size_t steiner_relaxations = 0;
  double aux_build_ms = 0;
  double steiner_ms = 0;
  double prune_ms = 0;
};

/// Outcome of a scheduler: a schedule plus whether the construction could
/// structurally reach every node (run check_feasibility for the full
/// condition (i)–(iv) verdict).
struct SchedulerResult {
  Schedule schedule;
  bool covered_all = false;
  SchedulerStats stats;
};

/// Runs EEDCB on `instance`.
SchedulerResult run_eedcb(const TmedbInstance& instance,
                          const EedcbOptions& options = {});

/// Runs EEDCB over a caller-provided DTS (lets sweeps reuse one DTS).
SchedulerResult run_eedcb(const TmedbInstance& instance,
                          const DiscreteTimeSet& dts,
                          const EedcbOptions& options = {});

/// Runs the Steiner + extraction + prune tail of EEDCB over a prebuilt
/// auxiliary graph and solver — the amortization point of solve_many(): one
/// aux graph and one solver (with its Dijkstra-tree cache) serve every
/// instance sharing a TVEG and deadline. `instance` may differ from the one
/// the aux graph was built with in source / targets / ε / budget only.
/// Produces the same schedule run_eedcb would.
SchedulerResult run_eedcb_on_aux(const TmedbInstance& instance,
                                 const DiscreteTimeSet& dts,
                                 const AuxGraph& aux,
                                 graph::SteinerSolver& solver,
                                 const EedcbOptions& options = {});

}  // namespace tveg::core
