// Local-improvement post-pass for extracted schedules.
//
// The directed-Steiner approximation can leave structural redundancy in the
// schedule it induces (e.g. a relay paying at two time points where one
// covers both receiver sets). This pass greedily (a) drops transmissions
// whose removal keeps the schedule feasible, and (b) lowers each remaining
// transmission to the cheapest discrete-cost-set level that keeps it
// feasible. Feasibility is re-checked through the full cascade semantics,
// so the result is never worse and never infeasible if the input was
// feasible.
#pragma once

#include "core/schedule.hpp"

namespace tveg::core {

/// Pruning knobs.
struct PruneOptions {
  bool try_removal = true;
  bool try_level_reduction = true;
  /// Removal/reduction sweeps; each sweep is monotone, so few are needed.
  std::size_t max_rounds = 3;
};

/// Returns an improved (or identical) schedule. If `schedule` is infeasible
/// for `instance` it is returned unchanged.
Schedule prune_schedule(const TmedbInstance& instance, Schedule schedule,
                        const PruneOptions& options);

/// Default-options overload.
Schedule prune_schedule(const TmedbInstance& instance, Schedule schedule);

}  // namespace tveg::core
