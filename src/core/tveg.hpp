// Time-varying energy-demand graphs (paper Def. 3.2).
//
// A Tveg couples a deterministic TVG (topology over time) with per-edge,
// per-time energy-demand functions derived from a channel model and a
// piecewise-constant distance profile: the cost function ψ of Def. 3.2 is
// realized by materializing the ED-function of edge e at time t on demand
// from (model, radio params, distance(e, t)).
#pragma once

#include <memory>
#include <vector>

#include "channel/ed_function.hpp"
#include "channel/profile.hpp"
#include "channel/radio.hpp"
#include "trace/contact_trace.hpp"
#include "tvg/dts.hpp"
#include "tvg/time_varying_graph.hpp"

namespace tveg::core {

class EdWeightCache;

/// One entry of a node's discrete cost set (Prop. 6.1): informing `neighbor`
/// from this node at the query time requires at least `cost`.
struct DcsEntry {
  Cost cost;
  NodeId neighbor;
};

/// A time-varying energy-demand graph bound to one channel model.
class Tveg {
 public:
  /// Channel-model options.
  struct Options {
    channel::ChannelModel model = channel::ChannelModel::kStep;
    /// Edge traversal latency τ (ζ(e, t) = τ).
    Time tau = 0.0;
    /// Nakagami shape (model == kNakagami only).
    double nakagami_m = 2.0;
    /// Rician K-factor (model == kRician only).
    double rician_k = 3.0;
  };

  /// Builds the TVEG induced by a contact trace: presence from the contacts,
  /// distance profiles from the per-contact distances.
  Tveg(const trace::ContactTrace& trace, channel::RadioParams radio,
       Options options);

  const TimeVaryingGraph& graph() const { return graph_; }
  const channel::RadioParams& radio() const { return radio_; }
  channel::ChannelModel model() const { return options_.model; }
  NodeId node_count() const { return graph_.node_count(); }
  Time horizon() const { return graph_.horizon(); }
  Time latency() const { return options_.tau; }

  /// Distance between a and b at time t (last profile sample at or before t).
  double distance(NodeId a, NodeId b, Time t) const;

  /// φ_t^{e_{a,b}}(w): failure probability of a transmission a→b starting at
  /// t with cost w. Returns 1 when the pair is not adjacent (Property
  /// 3.1(iii) together with ρ_τ).
  double failure_probability(NodeId a, NodeId b, Time t, Cost w) const;

  /// Materializes the ED-function of pair (a, b) at time t; requires
  /// adjacency at t.
  std::unique_ptr<channel::EdFunction> ed_function(NodeId a, NodeId b,
                                                   Time t) const;

  /// Deterministic-equivalent edge weight at t: for the step model the exact
  /// minimum decodable cost N0·γ_th/h (Eq. 2); for fading models the cost
  /// driving the single-hop failure probability down to ε — the backbone
  /// edge weight of Sec. VI-B. +inf when not adjacent.
  Cost edge_weight(NodeId a, NodeId b, Time t) const;

  /// Discrete cost set W^di of node i at time t (Sec. VI-A): edge weights to
  /// all adjacent neighbors, sorted ascending.
  std::vector<DcsEntry> discrete_cost_set(NodeId i, Time t) const;

  /// Channel-parameter breakpoints per node (distance profile changes),
  /// fed into DTS construction so every DTS interval has a constant channel.
  std::vector<std::vector<Time>> channel_breakpoints() const;

  /// Builds the DTS of this TVEG: topology partitions plus channel
  /// breakpoints (Sec. V).
  DiscreteTimeSet build_dts(DtsOptions options = {}) const;

  /// Attaches (or, with nullptr, detaches) a memoization cache. Every
  /// subsequent edge_weight / failure_probability / discrete_cost_set query
  /// is served from the cache; results are bit-identical to the uncached
  /// path (tests/diff pins this). The cache may be shared between Tvegs
  /// built from the same trace/radio/options (e.g. step and fading views
  /// must NOT share one — their ED-functions differ). Not safe to call
  /// concurrently with queries; attach before solving.
  void attach_cache(std::shared_ptr<EdWeightCache> cache);
  const EdWeightCache* cache() const { return cache_.get(); }

  /// Materializes the ED-function of edge `e` at time `t` directly from the
  /// distance profile, bypassing the cache and the adjacency check — the
  /// filler the cache itself uses.
  std::unique_ptr<channel::EdFunction> materialize_ed(std::size_t e,
                                                      Time t) const;

  /// Distance-profile segment index of edge `e` at `t` — the memoization
  /// key component: the channel is constant within one segment.
  std::size_t distance_segment(std::size_t e, Time t) const;

  /// Graph edge id of pair (a, b), or npos when the pair never meets.
  std::size_t edge_index(NodeId a, NodeId b) const { return edge_of(a, b); }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::size_t edge_of(NodeId a, NodeId b) const;  // npos when absent

  TimeVaryingGraph graph_;
  channel::RadioParams radio_;
  Options options_;
  /// Distance profile per graph edge id.
  std::vector<channel::PiecewiseConstantProfile> distance_;
  /// Optional memo for ED materialization / edge weights (thread-safe).
  std::shared_ptr<EdWeightCache> cache_;
};

}  // namespace tveg::core
