// Exact TMEDB solver for tiny instances — ground truth for the theorem-
// validation tests (DTS equivalence, Theorem 5.2) and the approximation-
// quality benches.
//
// Restricted to step-channel TVEGs with τ = 0 and N <= 16: the optimum is a
// shortest path in the state graph (informed-set bitmask × time-point index)
// where "transmit at level k" edges cost w^k and "wait" edges cost 0. The
// caller chooses the candidate time points, which is exactly what makes this
// useful: running it on the DTS and on arbitrarily fine refinements must
// give the same optimal cost.
#pragma once

#include <vector>

#include "core/schedule.hpp"

namespace tveg::core {

/// Exact result.
struct BruteForceResult {
  Schedule schedule;
  Cost cost = 0;
  bool feasible = false;
  std::size_t states_expanded = 0;
};

/// Optimal schedule restricted to transmissions at `time_points`
/// (deduplicated, clipped to [0, deadline]). Requires a step-channel TVEG,
/// τ = 0 and N <= 16.
BruteForceResult brute_force_optimal(const TmedbInstance& instance,
                                     std::vector<Time> time_points);

/// Optimal schedule on the instance's own DTS.
BruteForceResult brute_force_optimal(const TmedbInstance& instance);

}  // namespace tveg::core
