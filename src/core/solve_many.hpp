// Batched EEDCB solving for scenario sweeps.
//
// A sweep (benchmark panel, Monte-Carlo study, CLI batch) solves many
// instances over ONE TVEG that differ only in source / deadline / targets /
// ε / budget. Solving them independently rebuilds the DTS, the auxiliary
// graph, and the Steiner solver's shortest-path trees from scratch each
// time, although all three depend only on (TVEG, dts options, deadline).
// solve_many() amortizes them: one DTS for the whole batch, one auxiliary
// graph + SteinerSolver per distinct deadline (the solver's Dijkstra-tree
// cache then serves every request of the group). Results are byte-identical
// to calling run_eedcb once per request — the shared tail is the same
// run_eedcb_on_aux code path (tests/diff pins this).
#pragma once

#include <vector>

#include "core/eedcb.hpp"
#include "core/schedule.hpp"
#include "core/tveg.hpp"

namespace tveg::core {

/// One instance of a batch; fields mirror TmedbInstance minus the TVEG.
struct SolveRequest {
  NodeId source = 0;
  Time deadline = 0;
  /// Acceptable failure rate ε; <= 0 defers to the TVEG radio's ε.
  double epsilon = -1;
  /// Cost budget; < 0 means no budget.
  Cost budget = -1;
  /// Terminal set; empty = broadcast.
  std::vector<NodeId> targets;
};

/// The TmedbInstance a request denotes over `tveg` (what run_eedcb would be
/// handed for the equivalent one-shot solve).
TmedbInstance to_instance(const Tveg& tveg, const SolveRequest& request);

/// Solves every request over one shared DTS, grouping requests with equal
/// deadlines onto one auxiliary graph and Steiner solver. Results are in
/// request order and byte-identical to per-request run_eedcb calls with the
/// same options.
std::vector<SchedulerResult> solve_many(
    const Tveg& tveg, const std::vector<SolveRequest>& requests,
    const EedcbOptions& options = {});

/// As above over a caller-provided DTS (lets a workbench that already built
/// one skip the rebuild).
std::vector<SchedulerResult> solve_many(
    const Tveg& tveg, const DiscreteTimeSet& dts,
    const std::vector<SolveRequest>& requests,
    const EedcbOptions& options = {});

}  // namespace tveg::core
