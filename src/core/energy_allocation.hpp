// Optimal energy allocation (paper Sec. VI-B, Eq. 14–17): given a broadcast
// backbone (relays R and times T fixed), re-choose every transmission's cost
// so that each node's residual failure probability is at most ε at minimum
// total energy. This is the second half of FR-EEDCB and also the "calculated
// by NLP" step of FR-GREED / FR-RAND.
#pragma once

#include "core/schedule.hpp"
#include "nlp/coverage.hpp"
#include "support/budget.hpp"

namespace tveg::core {

/// NLP solver choice.
enum class AllocationSolver {
  /// Monotone coordinate descent (closed-form coordinate minima) — default.
  kCoordinateDescent,
  /// Generic augmented-Lagrangian projected gradient.
  kAugmentedLagrangian,
};

/// Options for allocate_energy.
struct AllocationOptions {
  AllocationSolver solver = AllocationSolver::kCoordinateDescent;
  /// Bounded retry before declaring infeasibility: when the primary solver
  /// reports infeasible on a structurally reachable backbone, re-attempt up
  /// to this many times with the augmented-Lagrangian solver from a
  /// perturbed warm start and perturbed penalty multipliers (deterministic
  /// in retry_seed). 0 disables retries.
  std::size_t max_retries = 0;
  /// Relative warm-start perturbation per retry (multiplicative, uniform in
  /// [1, 1 + p]); the initial penalty also grows 4× per retry.
  double retry_perturbation = 0.25;
  std::uint64_t retry_seed = 1;
  /// Cooperative solve budget: checked between solver attempts and threaded
  /// into the augmented-Lagrangian inner loop. Default: unlimited.
  support::Budget budget;
};

/// Result of an allocation.
struct AllocationOutcome {
  Schedule schedule;              ///< backbone with re-allocated costs
  bool feasible = false;          ///< all constraints satisfiable & satisfied
  std::size_t constraint_count = 0;
  std::size_t solver_passes = 0;  ///< coordinate passes / outer iterations
  std::size_t retries = 0;        ///< perturbed re-attempts that ran
};

/// Solves Eq. 14–17 for the transmissions of `backbone` on
/// `instance.tveg`'s (fading) channel model. Constraints: every node must be
/// covered to ε by the deadline (Eq. 15) and every relay by each of its
/// transmission times (Eq. 16). Infeasible when some node or relay is
/// structurally unreachable from the backbone.
AllocationOutcome allocate_energy(const TmedbInstance& instance,
                                  const Schedule& backbone,
                                  const AllocationOptions& options = {});

}  // namespace tveg::core
