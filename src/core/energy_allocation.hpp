// Optimal energy allocation (paper Sec. VI-B, Eq. 14–17): given a broadcast
// backbone (relays R and times T fixed), re-choose every transmission's cost
// so that each node's residual failure probability is at most ε at minimum
// total energy. This is the second half of FR-EEDCB and also the "calculated
// by NLP" step of FR-GREED / FR-RAND.
#pragma once

#include "core/schedule.hpp"
#include "nlp/coverage.hpp"

namespace tveg::core {

/// NLP solver choice.
enum class AllocationSolver {
  /// Monotone coordinate descent (closed-form coordinate minima) — default.
  kCoordinateDescent,
  /// Generic augmented-Lagrangian projected gradient.
  kAugmentedLagrangian,
};

/// Options for allocate_energy.
struct AllocationOptions {
  AllocationSolver solver = AllocationSolver::kCoordinateDescent;
};

/// Result of an allocation.
struct AllocationOutcome {
  Schedule schedule;              ///< backbone with re-allocated costs
  bool feasible = false;          ///< all constraints satisfiable & satisfied
  std::size_t constraint_count = 0;
  std::size_t solver_passes = 0;  ///< coordinate passes / outer iterations
};

/// Solves Eq. 14–17 for the transmissions of `backbone` on
/// `instance.tveg`'s (fading) channel model. Constraints: every node must be
/// covered to ε by the deadline (Eq. 15) and every relay by each of its
/// transmission times (Eq. 16). Infeasible when some node or relay is
/// structurally unreachable from the backbone.
AllocationOutcome allocate_energy(const TmedbInstance& instance,
                                  const Schedule& backbone,
                                  const AllocationOptions& options = {});

}  // namespace tveg::core
