#include "core/solve_many.hpp"

#include <cstddef>

#include "core/aux_graph.hpp"
#include "graph/steiner.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tveg::core {

TmedbInstance to_instance(const Tveg& tveg, const SolveRequest& request) {
  TmedbInstance instance;
  instance.tveg = &tveg;
  instance.source = request.source;
  instance.deadline = request.deadline;
  instance.epsilon = request.epsilon;
  instance.budget = request.budget;
  instance.targets = request.targets;
  return instance;
}

std::vector<SchedulerResult> solve_many(const Tveg& tveg,
                                        const std::vector<SolveRequest>& requests,
                                        const EedcbOptions& options) {
  // One DTS serves the whole batch: it depends only on the TVEG and the
  // dts options, never on source/deadline/targets.
  const DiscreteTimeSet dts = tveg.build_dts(options.dts);
  return solve_many(tveg, dts, requests, options);
}

std::vector<SchedulerResult> solve_many(const Tveg& tveg,
                                        const DiscreteTimeSet& dts,
                                        const std::vector<SolveRequest>& requests,
                                        const EedcbOptions& options) {
  obs::TraceSpan span("solve_many");
  std::vector<SchedulerResult> results(requests.size());
  if (requests.empty()) return results;

  // Group request indices by deadline (exact equality — sweeps repeat the
  // same double), in first-appearance order for determinism.
  struct Group {
    Time deadline;
    std::vector<std::size_t> indices;
  };
  std::vector<Group> groups;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    Group* group = nullptr;
    for (Group& g : groups)
      if (g.deadline == requests[r].deadline) {
        group = &g;
        break;
      }
    if (group == nullptr) {
      groups.push_back({requests[r].deadline, {}});
      group = &groups.back();
    }
    group->indices.push_back(r);
  }

  std::size_t reused = 0;
  for (const Group& group : groups) {
    // One aux graph + solver per deadline; the graph is source-independent
    // (AuxGraph::source_vertex_for) and the solver's Dijkstra-tree cache
    // carries over between requests of the group without changing results.
    const TmedbInstance first =
        to_instance(tveg, requests[group.indices.front()]);
    const AuxGraph aux(first, dts,
                       {.power_expansion = options.power_expansion,
                        .pool = options.pool,
                        .budget = options.budget});
    graph::SteinerSolver solver(aux.digraph());
    for (std::size_t r : group.indices) {
      const TmedbInstance instance = to_instance(tveg, requests[r]);
      results[r] = run_eedcb_on_aux(instance, dts, aux, solver, options);
    }
    reused += group.indices.size() - 1;
  }

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& batches = registry.counter(obs::keys::kBatchSolves);
  static obs::Counter& batch_requests =
      registry.counter(obs::keys::kBatchRequests);
  static obs::Counter& aux_reuses = registry.counter(obs::keys::kBatchAuxReuses);
  batches.add(1);
  batch_requests.add(requests.size());
  aux_reuses.add(reused);
  return results;
}

}  // namespace tveg::core
