#include "core/ed_weight_cache.hpp"

#include "core/tveg.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/assert.hpp"

namespace tveg::core {

EdWeightCache::EdWeightCache(Options options) : options_(options) {
  static obs::Counter& builds =
      obs::MetricsRegistry::global().counter(obs::keys::kCacheBuilds);
  builds.add(1);
}

EdWeightCache::~EdWeightCache() {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& hits = registry.counter(obs::keys::kCacheHits);
  static obs::Counter& misses = registry.counter(obs::keys::kCacheMisses);
  static obs::Counter& evictions = registry.counter(obs::keys::kCacheEvictions);
  static obs::Counter& pressure =
      registry.counter(obs::keys::kMemPressureEvictions);
  hits.add(hits_.load(std::memory_order_relaxed));
  misses.add(misses_.load(std::memory_order_relaxed));
  evictions.add(evictions_.load(std::memory_order_relaxed));
  pressure.add(pressure_evictions_.load(std::memory_order_relaxed));
  // Return this cache's footprint to the shared ledger before dying —
  // a governed process's MemBudget must not leak bytes across cache
  // lifetimes (Workbench rebuilds caches per view).
  if (options_.mem != nullptr)
    options_.mem->release(
        static_cast<std::size_t>(bytes_.load(std::memory_order_relaxed)));
}

void EdWeightCache::evict_shard(Shard& shard, std::size_t shard_index,
                                bool pressure) const {
  const std::size_t dropped = shard.map.size();
  if (dropped == 0) return;
  const std::size_t freed = dropped * kApproxEntryBytes;
  evictions_.fetch_add(dropped, std::memory_order_relaxed);
  if (pressure) pressure_evictions_.fetch_add(dropped,
                                              std::memory_order_relaxed);
  obs::flight_recorder().record(obs::FlightEventKind::kCacheEviction, dropped,
                                shard_index,
                                pressure ? "mem_pressure" : "entry_cap");
  shard.map.clear();
  bytes_.fetch_sub(freed, std::memory_order_relaxed);
  if (options_.mem != nullptr) options_.mem->release(freed);
  static obs::Gauge& resident =
      obs::MetricsRegistry::global().gauge(obs::keys::kMemCacheBytes);
  resident.set(static_cast<double>(bytes_.load(std::memory_order_relaxed)));
}

std::pair<std::uint64_t, std::size_t> EdWeightCache::locate(const Tveg& tveg,
                                                            std::size_t e,
                                                            Time t) const {
  const std::size_t segment = tveg.distance_segment(e, t);
  TVEG_ASSERT(segment < (std::uint64_t{1} << 32));
  const std::uint64_t key =
      (static_cast<std::uint64_t>(e) << 32) | static_cast<std::uint64_t>(segment);
  return {key, (e + segment * 0x9e3779b9u) % kShards};
}

const EdWeightCache::Entry EdWeightCache::lookup(const Tveg& tveg,
                                                 std::size_t e,
                                                 Time t) const {
  const auto [key, shard_index] = locate(tveg, e, t);
  Shard& shard = shards_[shard_index];
  {
    support::MutexLock lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Fill-vs-hit visibility: hit spans make cache effectiveness legible
      // on the Perfetto timeline (a run dominated by ed_cache_fill spans is
      // a cold or thrashing cache). Disabled-path cost: one load + branch.
      obs::ScopedSpan hit_span("ed_cache_hit");
      return it->second;
    }
  }
  // Miss: materialize outside the lock (bisection for Nakagami/Rician is the
  // expensive part); a racing filler computes the identical value, so the
  // duplicate work is harmless and emplace keeps the first.
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedSpan fill_span("ed_cache_fill");
  Entry entry;
  entry.ed = tveg.materialize_ed(e, t);
  entry.weight = entry.ed->min_cost_for(tveg.radio().epsilon);
  support::MutexLock lock(shard.mutex);
  if (options_.max_entries > 0 &&
      shard.map.size() >= (options_.max_entries + kShards - 1) / kShards)
    evict_shard(shard, shard_index, /*pressure=*/false);
  // Byte/ledger pressure: evicting the shard being inserted into frees the
  // most likely-stale entries reachable without taking a second lock, and
  // handed-out shared_ptrs keep in-flight ED-functions alive regardless.
  const bool over_local =
      options_.max_bytes > 0 &&
      bytes_.load(std::memory_order_relaxed) + kApproxEntryBytes >
          options_.max_bytes;
  const bool over_shared = options_.mem != nullptr && options_.mem->over();
  if (over_local || over_shared)
    evict_shard(shard, shard_index, /*pressure=*/true);
  shard.map.emplace(key, entry);
  bytes_.fetch_add(kApproxEntryBytes, std::memory_order_relaxed);
  if (options_.mem != nullptr) options_.mem->charge(kApproxEntryBytes);
  return entry;
}

std::shared_ptr<const channel::EdFunction> EdWeightCache::ed(const Tveg& tveg,
                                                             std::size_t e,
                                                             Time t) const {
  return lookup(tveg, e, t).ed;
}

Cost EdWeightCache::edge_weight(const Tveg& tveg, std::size_t e,
                                Time t) const {
  // Weight-only fast path: the aux-graph DCS precompute calls this once per
  // (slot, neighbor) pair, and copying the full Entry out of lookup() costs
  // an atomic shared_ptr refcount round-trip per hit. On a hit, read the
  // plain double under the shard lock and never touch the control block.
  const auto [key, shard_index] = locate(tveg, e, t);
  Shard& shard = shards_[shard_index];
  {
    support::MutexLock lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs::ScopedSpan hit_span("ed_cache_hit");
      return it->second.weight;
    }
  }
  return lookup(tveg, e, t).weight;
}

EdWeightCache::Stats EdWeightCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.pressure_evictions = pressure_evictions_.load(std::memory_order_relaxed);
  s.approx_bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

void EdWeightCache::clear() {
  for (auto& shard : shards_) {
    support::MutexLock lock(shard.mutex);
    const std::size_t freed = shard.map.size() * kApproxEntryBytes;
    shard.map.clear();
    bytes_.fetch_sub(freed, std::memory_order_relaxed);
    if (options_.mem != nullptr) options_.mem->release(freed);
  }
}

}  // namespace tveg::core
