// Schedule serialization: lets a computed relay schedule be stored,
// shipped to the nodes that will execute it, and re-evaluated later —
// the artifact a deployment actually consumes.
//
// Format (text, comment-friendly):
//     # tveg-schedule
//     <relay> <time_s> <cost_joules>
#pragma once

#include <iosfwd>
#include <string>

#include "core/schedule.hpp"

namespace tveg::core {

/// Writes `schedule` in the text format above (full double precision).
void write_schedule(std::ostream& out, const Schedule& schedule);
void write_schedule_file(const std::string& path, const Schedule& schedule);

/// Parses a schedule; throws std::invalid_argument on malformed input.
Schedule read_schedule(std::istream& in);
Schedule read_schedule_file(const std::string& path);

}  // namespace tveg::core
