#include "cli/args.hpp"

namespace tveg::cli {

Args::Args(int argc, const char* const* argv, const Spec& spec) {
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0 || a == "--") {
      positional_.push_back(a);
      continue;
    }
    std::string key = a.substr(2);
    const std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      const std::string value = key.substr(eq + 1);
      key = key.substr(0, eq);
      if (spec.flags.count(key))
        throw UsageError("option --" + key + " takes no value");
      if (!spec.valued.count(key)) throw UsageError("unknown option --" + key);
      values_[key] = value;
      continue;
    }
    if (spec.flags.count(key)) {
      values_[key] = "1";
      continue;
    }
    if (!spec.valued.count(key)) throw UsageError("unknown option --" + key);
    if (i + 1 >= argc) throw UsageError("option --" + key + " needs a value");
    values_[key] = argv[++i];
  }
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Args::get_num(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw UsageError("option --" + key + " expects a number, got '" +
                     it->second + "'");
  }
}

}  // namespace tveg::cli
