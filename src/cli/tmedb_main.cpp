// tmedb — command-line front end for the library.
//
//   tmedb generate --kind haggle --nodes 20 --horizon 17000 --seed 1 --out t.trace
//   tmedb info t.trace
//   tmedb run t.trace --algorithm FR-EEDCB --source 0 --deadline 2000
//
// `run` prints the schedule, its feasibility verdict, normalized energy and
// (for fading evaluation) the Monte-Carlo delivery ratio.
#include <cmath>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "core/schedule_io.hpp"
#include "fault/degrade.hpp"
#include "fault/fault_plan.hpp"
#include "fault/repair.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "support/table.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "trace/stats.hpp"

namespace {

using namespace tveg;

using cli::Args;
using cli::UsageError;

/// Per-command option specs; commands absent here accept no options.
const Args::Spec& spec_for(const std::string& cmd) {
  static const std::map<std::string, Args::Spec> specs = {
      {"generate",
       {{"kind", "nodes", "horizon", "seed", "out", "ramp", "pair-probability",
         "metrics-out"},
        {"trace"}}},
      {"info", {{}, {}}},
      {"stats", {{}, {}}},
      {"run",
       {{"algorithm", "source", "deadline", "seed", "trials", "steiner",
         "level", "threads", "save-schedule", "metrics-out", "faults",
         "solver-budget-ms", "fault-log", "trace-out", "flight-out",
         "request-budget-ms", "max-inflight", "cache-budget-mb", "stall-ms",
         "shed-policy"},
        {"trace", "no-cache"}}},
      {"sweep", {{"source", "from", "to", "step", "seed", "threads",
                  "trace-out", "flight-out", "request-budget-ms",
                  "max-inflight", "cache-budget-mb", "stall-ms",
                  "shed-policy"},
                 {"no-cache"}}},
      {"evaluate",
       {{"source", "deadline", "trials", "seed", "reliability", "interference"},
        {}}},
  };
  static const Args::Spec empty;
  auto it = specs.find(cmd);
  return it == specs.end() ? empty : it->second;
}

/// --threads: a small non-negative integer (0 = serial). Validated here so
/// a stray negative value fails as a usage error, not deep inside the
/// thread-pool constructor.
std::size_t parse_threads(const Args& args) {
  const double n = args.get_num("threads", 0);
  if (n < 0 || n > 256 || n != std::floor(n))
    throw UsageError("--threads expects an integer in [0, 256], got " +
                     args.get("threads", "?"));
  return static_cast<std::size_t>(n);
}

/// True when any flag routing EEDCB solves through the governed batch
/// (fault::solve_many_governed) is present.
bool wants_governance(const Args& args) {
  return args.has("request-budget-ms") || args.has("max-inflight") ||
         args.has("stall-ms") || args.has("shed-policy");
}

/// --request-budget-ms / --max-inflight / --stall-ms / --shed-policy.
fault::GovernOptions parse_governance(const Args& args) {
  fault::GovernOptions gov;
  gov.request_budget_ms = args.get_num("request-budget-ms", -1);
  const double inflight = args.get_num("max-inflight", 0);
  if (inflight < 0 || inflight > 1e9 || inflight != std::floor(inflight))
    throw UsageError("--max-inflight expects a non-negative integer, got " +
                     args.get("max-inflight", "?"));
  gov.max_inflight = static_cast<std::size_t>(inflight);
  gov.stall_ms = args.get_num("stall-ms", -1);
  const std::string policy = args.get("shed-policy", "degrade");
  if (policy == "degrade")
    gov.shed_policy = fault::ShedPolicy::kDegrade;
  else if (policy == "error")
    gov.shed_policy = fault::ShedPolicy::kError;
  else
    throw UsageError("--shed-policy expects degrade or error, got '" + policy +
                     "'");
  return gov;
}

/// --cache-budget-mb, converted to the workbench's byte budget.
std::size_t parse_cache_budget(const Args& args) {
  const double mb = args.get_num("cache-budget-mb", 0);
  if (mb < 0)
    throw UsageError("--cache-budget-mb expects a non-negative number, got " +
                     args.get("cache-budget-mb", "?"));
  return static_cast<std::size_t>(mb * 1024.0 * 1024.0);
}

/// Seeds the pipeline phases so exported phase_totals carry the same keys
/// for every algorithm, then turns tracing on.
void enable_observability() {
  obs::declare_phases({"dts_build", "aux_graph", "steiner", "prune",
                       "nlp_allocation", "monte_carlo"});
  obs::set_enabled(true);
}

/// Shared --trace-out / --flight-out prologue: arms span tracing (which
/// implies the aggregate layer, so the ring spans line up with phase totals)
/// and the crash-time flight-recorder dump path.
void arm_tracing(const Args& args) {
  if (args.has("trace-out")) {
    enable_observability();
    obs::set_span_tracing(true);
    obs::set_current_thread_name("main");
  }
  if (args.has("flight-out"))
    obs::set_flight_dump_path(args.get("flight-out", ""));
}

/// Shared --metrics-out / --trace / --trace-out / --flight-out epilogue.
void emit_observability(const Args& args) {
  if (args.has("trace")) obs::trace_report(std::cerr);
  const std::string path = args.get("metrics-out", "");
  if (!path.empty()) {
    obs::write_snapshot_file(path);
    std::cout << "metrics written to: " << path << "\n";
  }
  const std::string trace_path = args.get("trace-out", "");
  if (!trace_path.empty()) {
    obs::write_chrome_trace_file(trace_path);
    std::cout << "trace written to:   " << trace_path
              << " (load in ui.perfetto.dev)\n";
  }
  if (args.has("flight-out")) {
    // On-demand dump: the file exists even when no crash trigger fired
    // during the run (triggers overwrite it with fresher context).
    obs::flight_dump("on demand");
    std::cout << "flight recorder:    " << args.get("flight-out", "") << "\n";
  }
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  tmedb generate --kind haggle|waypoint|dutycycle|snapshots\n"
      "                 [--nodes N] [--horizon T] [--seed S] --out FILE\n"
      "                 [--metrics-out FILE] [--trace]\n"
      "  tmedb info TRACE\n"
      "  tmedb stats TRACE\n"
      "  tmedb run TRACE [--algorithm EEDCB|GREED|RAND|FR-EEDCB|FR-GREED|FR-RAND]\n"
      "                  [--source ID] [--deadline T] [--seed S] [--trials K]\n"
      "                  [--steiner spt|greedy] [--level L]\n"
      "                  [--threads N] [--no-cache]\n"
      "                  [--save-schedule FILE]\n"
      "                  [--faults PLAN] [--solver-budget-ms N]\n"
      "                  [--fault-log FILE]\n"
      "                  [--request-budget-ms N] [--max-inflight K]\n"
      "                  [--cache-budget-mb M] [--stall-ms N]\n"
      "                  [--shed-policy degrade|error]\n"
      "                  [--metrics-out FILE] [--trace]\n"
      "                  [--trace-out FILE] [--flight-out FILE]\n"
      "  tmedb sweep TRACE [--source ID] [--from T0] [--to T1] [--step DT]\n"
      "                  [--threads N] [--no-cache]\n"
      "                  [--request-budget-ms N] [--max-inflight K]\n"
      "                  [--cache-budget-mb M] [--stall-ms N]\n"
      "                  [--shed-policy degrade|error]\n"
      "                  [--trace-out FILE] [--flight-out FILE]\n"
      "  tmedb evaluate TRACE SCHEDULE [--source ID] [--deadline T]\n"
      "                  [--trials K] [--reliability Q] [--interference 1]\n"
      "\n"
      "--metrics-out writes an obs snapshot (JSON, or CSV when FILE ends in\n"
      ".csv); --trace prints the phase tree to stderr.\n"
      "--trace-out records thread-aware spans (phases, pool tasks,\n"
      "queue waits, cache fills, MC trials) and writes a Chrome/Perfetto\n"
      "trace_event JSON — open it in ui.perfetto.dev. --flight-out arms the\n"
      "crash-time flight recorder: the last 256 solver events are dumped to\n"
      "FILE on fallback-ladder demotion, deadline expiry or repair\n"
      "divergence (and once more, on demand, when the command finishes).\n"
      "--faults injects a deterministic fault plan (key=value,... — keys:\n"
      "seed, edge_dropout, node_churn, churn_span, truncation,\n"
      "truncation_keep, jitter, cost_inflation, inflation_factor,\n"
      "tx_failure); the schedule is repaired against the faulted reality\n"
      "and delivery is measured there. --solver-budget-ms bounds the solve\n"
      "wall-clock (EEDCB degrades to BIP, then GREED). --fault-log dumps\n"
      "the injected events for audit/replay.\n"
      "--threads N runs the pipeline's parallel phases on N workers and\n"
      "--no-cache disables ED-function memoization; both leave every\n"
      "schedule byte-identical to the serial uncached solve.\n"
      "--request-budget-ms, --max-inflight, --stall-ms and --shed-policy\n"
      "route the EEDCB solves through the governed batch: each request gets\n"
      "its own deadline + cancel token, requests past the admission bound\n"
      "are shed, a watchdog force-cancels a solve that stops polling its\n"
      "budget for the stall window, and exhausted budgets either degrade to\n"
      "a GREED fallback schedule (shed-policy degrade, the default) or\n"
      "return a structured error (shed-policy error). --cache-budget-mb\n"
      "bounds the aggregate ED-weight cache footprint; pressure evicts\n"
      "whole shards and leaves results byte-identical. In sweep output a\n"
      "trailing * marks a degraded EEDCB cell, 'shed'/'!' a shed or failed\n"
      "request.\n";
  return 2;
}

int cmd_generate(const Args& args) {
  const std::string kind = args.get("kind", "haggle");
  const std::string out = args.get("out", "");
  if (out.empty()) return usage();
  if (args.has("metrics-out") || args.has("trace")) enable_observability();

  trace::ContactTrace result = [&] {
    if (kind == "haggle") {
      trace::HaggleLikeConfig cfg;
      cfg.nodes = static_cast<NodeId>(args.get_num("nodes", cfg.nodes));
      cfg.horizon = args.get_num("horizon", cfg.horizon);
      cfg.activation_ramp_end = args.get_num(
          "ramp", std::min(cfg.activation_ramp_end, 0.45 * cfg.horizon));
      cfg.pair_probability =
          args.get_num("pair-probability", cfg.pair_probability);
      cfg.seed = static_cast<std::uint64_t>(args.get_num("seed", 1));
      return trace::generate_haggle_like(cfg);
    }
    if (kind == "waypoint") {
      trace::RandomWaypointConfig cfg;
      cfg.nodes = static_cast<NodeId>(args.get_num("nodes", cfg.nodes));
      cfg.horizon = args.get_num("horizon", cfg.horizon);
      cfg.seed = static_cast<std::uint64_t>(args.get_num("seed", 1));
      return trace::generate_random_waypoint(cfg);
    }
    if (kind == "dutycycle") {
      trace::DutyCycleConfig cfg;
      cfg.nodes = static_cast<NodeId>(args.get_num("nodes", cfg.nodes));
      cfg.horizon = args.get_num("horizon", cfg.horizon);
      cfg.seed = static_cast<std::uint64_t>(args.get_num("seed", 1));
      return trace::generate_duty_cycle(cfg);
    }
    if (kind == "snapshots") {
      trace::SnapshotConfig cfg;
      cfg.nodes = static_cast<NodeId>(args.get_num("nodes", cfg.nodes));
      cfg.horizon = args.get_num("horizon", cfg.horizon);
      cfg.seed = static_cast<std::uint64_t>(args.get_num("seed", 1));
      return trace::generate_snapshots(cfg);
    }
    throw std::invalid_argument("unknown trace kind: " + kind);
  }();

  trace::write_trace_file(out, result);
  std::cout << "wrote " << result.contact_count() << " contacts over "
            << result.node_count() << " nodes to " << out << "\n";
  emit_observability(args);
  return 0;
}

/// Load a trace through the structured parser, or exit 2 (bad input, like a
/// usage error — distinct from internal failures, which exit 1) with the
/// parse error and its input line on stderr.
trace::ContactTrace load_trace(const std::string& path) {
  auto parsed = trace::parse_trace_file(path);
  if (!parsed.ok()) {
    std::cerr << "error: " << path << ": " << parsed.error().to_string()
              << "\n";
    std::exit(2);
  }
  return std::move(parsed).value();
}

int cmd_info(const Args& args) {
  if (args.positional().size() < 3) return usage();
  const auto trace = load_trace(args.positional()[2]);
  std::cout << "nodes:    " << trace.node_count() << "\n"
            << "horizon:  " << trace.horizon() << " s\n"
            << "contacts: " << trace.contact_count() << "\n"
            << "pairs:    " << trace.pair_count() << "\n";
  support::Table table({"time", "avg_degree"});
  for (int i = 0; i <= 10; ++i) {
    const Time t = trace.horizon() * i / 10.0;
    table.add_row({support::Table::fmt(t, 0),
                   support::Table::fmt(trace.average_degree(t), 2)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional().size() < 3) return usage();
  const auto trace = load_trace(args.positional()[2]);
  const trace::TraceSummary s = trace::summarize(trace);
  std::cout << "nodes:                    " << trace.node_count() << "\n"
            << "horizon:                  " << trace.horizon() << " s\n"
            << "contacts:                 " << s.contacts << "\n"
            << "pairs ever meeting:       " << s.pairs << "\n"
            << "mean contact duration:    " << s.mean_contact_duration
            << " s\n"
            << "mean inter-contact gap:   " << s.mean_inter_contact << " s\n"
            << "inter-contact tail (Hill):" << (s.inter_contact_tail_exponent
                                                    ? std::to_string(
                                                          s.inter_contact_tail_exponent)
                                                    : std::string(" n/a"))
            << "\n"
            << "mean / max avg degree:    " << s.mean_degree << " / "
            << s.max_degree << "\n";
  return 0;
}

int cmd_sweep(const Args& args) {
  if (args.positional().size() < 3) return usage();
  arm_tracing(args);
  const auto trace = load_trace(args.positional()[2]);
  const auto source = static_cast<NodeId>(args.get_num("source", 0));
  const Time from = args.get_num("from", 2000);
  const Time to = args.get_num("to", 6000);
  const Time step = args.get_num("step", 500);
  const auto seed = static_cast<std::uint64_t>(args.get_num("seed", 1));

  sim::Workbench::Options bench_options;
  bench_options.threads = parse_threads(args);
  bench_options.use_cache = !args.has("no-cache");
  bench_options.cache_budget_bytes = parse_cache_budget(args);
  const sim::Workbench bench(trace, sim::paper_radio(), bench_options);

  // Under governance flags the EEDCB column runs as one governed batch
  // (per-deadline requests, isolated budgets); "!" marks a failed request,
  // "shed" an admission shed, a trailing "*" a degraded (fallback) cell.
  const bool governed = wants_governance(args);
  std::vector<std::string> eedcb_col;
  std::vector<core::SolveRequest> requests;
  if (governed) {
    for (Time deadline = from; deadline <= to + 1e-9; deadline += step) {
      core::SolveRequest request;
      request.source = source;
      request.deadline = deadline;
      requests.push_back(request);
    }
    const auto solved =
        bench.run_many_eedcb_governed(requests, parse_governance(args));
    for (std::size_t i = 0; i < solved.size(); ++i) {
      const fault::GovernedSolve& g = solved[i];
      if (!g.outcome.ok()) {
        eedcb_col.push_back(g.shed ? "shed" : "!");
        continue;
      }
      const core::SchedulerResult& r = g.outcome.value();
      std::string cell =
          r.covered_all
              ? support::Table::fmt(
                    core::normalized_energy(
                        bench.step_instance(source, requests[i].deadline),
                        r.schedule),
                    1)
              : "-";
      if (g.degraded() || g.shed) cell += "*";
      eedcb_col.push_back(std::move(cell));
    }
  }

  support::Table table({"deadline_s", "EEDCB", "GREED", "RAND", "FR-EEDCB",
                        "FR-GREED", "FR-RAND"});
  std::size_t row_index = 0;
  for (Time deadline = from; deadline <= to + 1e-9; deadline += step) {
    std::vector<std::string> row{support::Table::fmt(deadline, 0)};
    for (sim::Algorithm a : sim::kAllAlgorithms) {
      if (governed && a == sim::Algorithm::kEedcb) {
        row.push_back(eedcb_col[row_index]);
        continue;
      }
      const auto outcome = bench.run(a, source, deadline, seed);
      row.push_back(outcome.covered_all && outcome.allocation_feasible
                        ? support::Table::fmt(outcome.normalized_energy, 1)
                        : "-");
    }
    table.add_row(std::move(row));
    ++row_index;
  }
  table.print(std::cout);
  emit_observability(args);
  return 0;
}

std::optional<sim::Algorithm> parse_algorithm(const std::string& name) {
  for (sim::Algorithm a : sim::kAllAlgorithms)
    if (name == sim::algorithm_name(a)) return a;
  return std::nullopt;
}

int cmd_run(const Args& args) {
  if (args.positional().size() < 3) return usage();
  const auto trace = load_trace(args.positional()[2]);

  const std::string algo_name = args.get("algorithm", "EEDCB");
  const auto algorithm = parse_algorithm(algo_name);
  if (!algorithm) {
    std::cerr << "unknown algorithm: " << algo_name << "\n";
    return usage();
  }

  const auto source = static_cast<NodeId>(args.get_num("source", 0));
  const Time deadline = args.get_num("deadline", 2000);
  const auto seed = static_cast<std::uint64_t>(args.get_num("seed", 1));
  const auto trials = static_cast<std::size_t>(args.get_num("trials", 2000));

  std::optional<fault::FaultPlan> plan;
  if (args.has("faults")) {
    auto parsed = fault::FaultPlan::parse(args.get("faults", ""));
    if (!parsed.ok()) {
      std::cerr << "bad --faults plan: " << parsed.error().to_string() << "\n";
      return 2;
    }
    plan = parsed.value();
  }
  const double budget_ms = args.get_num("solver-budget-ms", -1);

  if (args.has("metrics-out") || args.has("trace")) enable_observability();
  arm_tracing(args);

  sim::Workbench::Options bench_options;
  const std::string steiner = args.get("steiner", "spt");
  if (steiner == "greedy") {
    bench_options.steiner_method = core::SteinerMethod::kRecursiveGreedy;
    bench_options.steiner_level =
        static_cast<int>(args.get_num("level", 2));
  }
  bench_options.threads = parse_threads(args);
  bench_options.use_cache = !args.has("no-cache");
  bench_options.cache_budget_bytes = parse_cache_budget(args);
  const bool governed = wants_governance(args);
  if (governed && *algorithm != sim::Algorithm::kEedcb)
    throw UsageError(
        "governance flags (--request-budget-ms/--max-inflight/--stall-ms/"
        "--shed-policy) apply to --algorithm EEDCB only");
  const sim::Workbench bench(trace, sim::paper_radio(), bench_options);

  // Solve — through the governed batch when governance flags are present,
  // under the fallback ladder when a budget was given for an EEDCB-pipeline
  // algorithm (the other algorithms already are the lower rungs), plainly
  // otherwise.
  sim::Workbench::RunOutcome outcome;
  std::string rung_note;
  std::vector<support::Error> descents;
  const bool laddered = !governed && budget_ms >= 0 &&
                        (*algorithm == sim::Algorithm::kEedcb ||
                         *algorithm == sim::Algorithm::kFrEedcb);
  if (governed) {
    std::vector<core::SolveRequest> requests(1);
    requests[0].source = source;
    requests[0].deadline = deadline;
    const auto solved =
        bench.run_many_eedcb_governed(requests, parse_governance(args));
    const fault::GovernedSolve& g = solved[0];
    rung_note = fault::rung_name(g.rung);
    if (g.shed) rung_note += " (admission shed)";
    descents = g.descents;
    if (!g.outcome.ok()) {
      std::cout << algo_name << " from node " << source << ", T=" << deadline
                << " s\n"
                << "request failed:     " << g.outcome.error().to_string()
                << "\n"
                << "solver rung:        " << rung_note << "\n";
      for (const auto& d : descents)
        std::cout << "  degraded:         " << d.to_string() << "\n";
      emit_observability(args);
      return 1;
    }
    const core::SchedulerResult& r = g.outcome.value();
    outcome.schedule = r.schedule;
    outcome.covered_all = r.covered_all;
    outcome.stats = r.stats;
    outcome.normalized_energy = core::normalized_energy(
        bench.step_instance(source, deadline), outcome.schedule);
  } else if (laddered) {
    fault::RobustSolveOptions robust;
    robust.budget_ms = budget_ms;
    robust.eedcb.method = bench_options.steiner_method;
    robust.eedcb.steiner_level = bench_options.steiner_level;
    if (*algorithm == sim::Algorithm::kFrEedcb) {
      const auto instance = bench.fading_instance(source, deadline);
      core::AllocationOptions alloc;
      alloc.max_retries = 2;
      alloc.retry_seed = seed;
      const auto fr =
          fault::robust_solve_fr(instance, bench.dts(), robust, alloc);
      outcome.schedule = fr.schedule();
      outcome.covered_all = fr.backbone.result.covered_all;
      outcome.allocation_feasible = fr.allocation.feasible;
      outcome.stats = fr.backbone.result.stats;
      outcome.normalized_energy =
          core::normalized_energy(instance, outcome.schedule);
      rung_note = fault::rung_name(fr.backbone.rung);
      descents = fr.backbone.descents;
    } else {
      const auto instance = bench.step_instance(source, deadline);
      const auto rs = fault::robust_solve(instance, bench.dts(), robust);
      outcome.schedule = rs.result.schedule;
      outcome.covered_all = rs.result.covered_all;
      outcome.stats = rs.result.stats;
      outcome.normalized_energy =
          core::normalized_energy(instance, outcome.schedule);
      rung_note = fault::rung_name(rs.rung);
      descents = rs.descents;
    }
  } else {
    outcome = bench.run(*algorithm, source, deadline, seed);
  }

  std::cout << algo_name << " from node " << source << ", T=" << deadline
            << " s\n"
            << outcome.schedule << "\n"
            << "covered all nodes:  " << (outcome.covered_all ? "yes" : "no")
            << "\n"
            << "normalized energy:  " << outcome.normalized_energy << "\n";
  if (!rung_note.empty()) {
    std::cout << "solver rung:        " << rung_note << "\n";
    for (const auto& d : descents)
      std::cout << "  degraded:         " << d.to_string() << "\n";
  }
  if (outcome.stats.aux_vertices > 0) {
    std::cout << "pipeline:           " << outcome.stats.dts_points
              << " DTS points, " << outcome.stats.aux_vertices
              << " aux vertices, " << outcome.stats.aux_arcs << " aux arcs\n"
              << "phase times:        aux " << outcome.stats.aux_build_ms
              << " ms, steiner " << outcome.stats.steiner_ms << " ms, prune "
              << outcome.stats.prune_ms << " ms\n";
  }

  const auto& instance = sim::fading_resistant(*algorithm)
                             ? bench.fading_instance(source, deadline)
                             : bench.step_instance(source, deadline);
  const auto report = core::check_feasibility(instance, outcome.schedule);
  std::cout << "feasible:           " << (report.feasible ? "yes" : "no");
  if (!report.feasible) std::cout << " (" << report.reason << ")";
  std::cout << "\n";

  if (plan && plan->any()) {
    // Inject the plan, repair the schedule against the faulted reality, and
    // measure delivery there (with forced tx failures when configured).
    const fault::FaultedTrace faulted = fault::apply_plan(trace, *plan);
    std::cout << "faults injected:    " << faulted.log.events.size()
              << " event(s)\n";
    const std::string log_path = args.get("fault-log", "");
    if (!log_path.empty()) {
      std::ofstream log_out(log_path);
      log_out << faulted.log.serialize();
      if (!log_out) {
        std::cerr << "error: cannot write fault log to " << log_path << "\n";
        return 1;
      }
      std::cout << "fault log saved to: " << log_path << "\n";
    }

    const sim::Workbench faulted_bench(faulted.trace, sim::paper_radio(),
                                       bench_options);
    const bool fading = sim::fading_resistant(*algorithm);
    const auto real_instance =
        fading ? faulted_bench.fading_instance(source, deadline)
               : faulted_bench.step_instance(source, deadline);
    const auto repair =
        fault::repair_schedule(instance, real_instance, faulted_bench.dts(),
                               outcome.schedule, {.seed = seed});
    std::cout << "fault impact:       " << repair.uncovered_before
              << " node(s) uncovered without repair\n";
    if (repair.diverged()) {
      std::cout << "repair:             detected at t=" << repair.detect_time
                << " s, patched " << repair.patch.size()
                << " transmission(s), " << repair.uncovered_after
                << " node(s) still uncovered\n";
    }

    sim::McOptions mc;
    mc.trials = trials;
    mc.seed = seed;
    if (plan->tx_failure > 0)
      mc.tx_faults = fault::TxFaultModel(plan->seed, plan->tx_failure);
    const auto delivery =
        faulted_bench.delivery_under_fading(source, repair.repaired, mc);
    std::cout << "faulted delivery:   " << delivery.mean_delivery_ratio * 100
              << "% (over " << delivery.trials
              << " trials, repaired schedule)\n";
  } else {
    const auto delivery = bench.delivery_under_fading(
        source, outcome.schedule, {.trials = trials, .seed = seed});
    std::cout << "fading delivery:    " << delivery.mean_delivery_ratio * 100
              << "% (over " << delivery.trials << " trials)\n";
  }

  const std::string save_path = args.get("save-schedule", "");
  if (!save_path.empty()) {
    core::write_schedule_file(save_path, outcome.schedule);
    std::cout << "schedule saved to:  " << save_path << "\n";
  }
  emit_observability(args);
  return 0;
}

int cmd_evaluate(const Args& args) {
  if (args.positional().size() < 4) return usage();
  const auto trace = load_trace(args.positional()[2]);
  const core::Schedule schedule =
      core::read_schedule_file(args.positional()[3]);

  const auto source = static_cast<NodeId>(args.get_num("source", 0));
  const Time deadline = args.get_num("deadline", 2000);
  const auto trials = static_cast<std::size_t>(args.get_num("trials", 2000));

  const sim::Workbench bench(trace, sim::paper_radio());
  const auto step_report =
      core::check_feasibility(bench.step_instance(source, deadline), schedule);
  const auto fading_report = core::check_feasibility(
      bench.fading_instance(source, deadline), schedule);
  std::cout << "schedule:           " << schedule.size() << " transmissions, "
            << "normalized energy "
            << core::normalized_energy(bench.step_instance(source, deadline),
                                       schedule)
            << "\n"
            << "feasible (step):    "
            << (step_report.feasible ? "yes" : step_report.reason) << "\n"
            << "feasible (fading):  "
            << (fading_report.feasible ? "yes" : fading_report.reason) << "\n";

  sim::McOptions mc{.trials = trials,
                    .seed = static_cast<std::uint64_t>(args.get_num("seed", 1))};
  mc.presence_reliability = args.get_num("reliability", 1.0);
  mc.model_interference = args.get_num("interference", 0) != 0;
  const auto delivery =
      sim::simulate_delivery(bench.fading(), source, schedule, mc);
  std::cout << "fading delivery:    " << delivery.mean_delivery_ratio * 100
            << "% (over " << delivery.trials << " trials"
            << (mc.model_interference ? ", interference on" : "")
            << (mc.presence_reliability < 1.0 ? ", unreliable edges" : "")
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc >= 2 ? argv[1] : "";
  try {
    const Args args(argc, argv, spec_for(cmd));
    if (args.positional().size() < 2) return usage();
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    std::cerr << "unknown command: " << cmd << "\n";
    return usage();
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
