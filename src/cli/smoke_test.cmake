# generate → info → run round trip through the CLI binary.
execute_process(
  COMMAND ${TMEDB} generate --kind haggle --nodes 8 --horizon 4000
          --seed 5 --out ${WORKDIR}/smoke.trace
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc}")
endif()
execute_process(COMMAND ${TMEDB} info ${WORKDIR}/smoke.trace RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "info failed: ${rc}")
endif()
execute_process(
  COMMAND ${TMEDB} run ${WORKDIR}/smoke.trace --algorithm FR-EEDCB
          --source 0 --deadline 3500 --trials 100
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run failed: ${rc}")
endif()
if(NOT out MATCHES "normalized energy")
  message(FATAL_ERROR "run output missing energy line: ${out}")
endif()
