// Command-line option parsing shared by the tmedb and tveg-certify front
// ends (and fuzzed directly by tests/fuzz/fuzz_cli_args.cpp).
//
// Each command declares which options it accepts and which of those are
// valueless boolean flags, so unknown options are rejected and flags never
// swallow the next token. Both --key value and --key=value spellings work.
#pragma once

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace tveg::cli {

/// Bad command line (unknown option, missing value, non-numeric value, ...):
/// callers print the message and their usage text, then exit 2.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// --key value / --key=value argument parser.
class Args {
 public:
  struct Spec {
    std::set<std::string> valued;  ///< options taking a value
    std::set<std::string> flags;   ///< valueless boolean options
  };

  /// Parses argv against `spec`; throws UsageError on an unknown option, a
  /// flag given a value, or a valued option missing its value.
  Args(int argc, const char* const* argv, const Spec& spec);

  bool has(const std::string& key) const { return values_.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const;
  /// Numeric value of --key; throws UsageError when the value does not parse
  /// completely as a finite-or-infinite double.
  double get_num(const std::string& key, double fallback) const;
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tveg::cli
