# generate → run --metrics-out/--trace → validate the exported JSON:
# it must parse, carry the tveg-obs-1 schema, and list every pipeline
# phase under phase_totals regardless of which phases actually ran.
execute_process(
  COMMAND ${TMEDB} generate --kind haggle --nodes 8 --horizon 4000
          --seed 5 --out ${WORKDIR}/metrics_smoke.trace
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc}")
endif()

execute_process(
  COMMAND ${TMEDB} run ${WORKDIR}/metrics_smoke.trace --algorithm FR-EEDCB
          --source 0 --deadline 3500 --trials 100 --trace
          --metrics-out ${WORKDIR}/metrics_smoke.json
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run --metrics-out failed: ${rc}")
endif()
if(NOT err MATCHES "phase tree")
  message(FATAL_ERROR "--trace printed no phase tree on stderr: ${err}")
endif()

file(READ ${WORKDIR}/metrics_smoke.json doc)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON schema ERROR_VARIABLE json_err GET "${doc}" schema)
  if(json_err)
    message(FATAL_ERROR "metrics JSON does not parse: ${json_err}")
  endif()
  if(NOT schema STREQUAL "tveg-obs-1")
    message(FATAL_ERROR "unexpected schema: ${schema}")
  endif()
  foreach(phase dts_build aux_graph steiner prune nlp_allocation monte_carlo)
    string(JSON wall ERROR_VARIABLE json_err
           GET "${doc}" phase_totals ${phase})
    if(json_err)
      message(FATAL_ERROR "phase_totals missing '${phase}': ${json_err}")
    endif()
  endforeach()
  string(JSON dts_builds ERROR_VARIABLE json_err
         GET "${doc}" metrics counters tveg.dts.builds)
  if(json_err OR dts_builds LESS 1)
    message(FATAL_ERROR "counter tveg.dts.builds missing or zero")
  endif()
else()
  # Pre-3.19 fallback: textual checks only.
  foreach(phase dts_build aux_graph steiner prune nlp_allocation monte_carlo)
    if(NOT doc MATCHES "\"${phase}\"")
      message(FATAL_ERROR "phase_totals missing '${phase}'")
    endif()
  endforeach()
endif()

# The CSV flavor of --metrics-out.
execute_process(
  COMMAND ${TMEDB} run ${WORKDIR}/metrics_smoke.trace --algorithm EEDCB
          --source 0 --deadline 3500 --trials 50
          --metrics-out ${WORKDIR}/metrics_smoke.csv
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run --metrics-out csv failed: ${rc}")
endif()
file(READ ${WORKDIR}/metrics_smoke.csv csv)
if(NOT csv MATCHES "kind,name,count")
  message(FATAL_ERROR "metrics CSV missing header: ${csv}")
endif()
