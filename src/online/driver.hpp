// Online broadcast driver: replays the TVEG's event timeline and offers
// each informed node a transmission opportunity at every event time,
// consulting a Policy (which sees only the present). Produces the same
// SchedulerResult the offline schedulers do, so the whole evaluation stack
// (feasibility checking, NLP allocation, Monte-Carlo delivery) composes.
#pragma once

#include "core/eedcb.hpp"
#include "online/policy.hpp"
#include "tvg/dts.hpp"

namespace tveg::online {

/// Options for one online run.
struct OnlineOptions {
  /// RNG seed (gossip draws).
  std::uint64_t seed = 1;
  DtsOptions dts;
};

/// Runs `policy` over the instance's event timeline. The policy is reset
/// first. Broadcast-only (multicast target subsets are an offline notion).
core::SchedulerResult run_online(const core::TmedbInstance& instance,
                                 Policy& policy,
                                 const OnlineOptions& options = {});

/// As above over a caller-provided DTS.
core::SchedulerResult run_online(const core::TmedbInstance& instance,
                                 const DiscreteTimeSet& dts, Policy& policy,
                                 const OnlineOptions& options = {});

/// Resumes a broadcast mid-flight: `informed_time[v]` is when v came to
/// hold the packet (+inf = uninformed), and the driver offers opportunities
/// only at event times >= `start_time`. This is the re-solve primitive of
/// the schedule-repair engine (fault/repair.hpp): after a fault invalidates
/// part of a schedule, the already-informed set keeps disseminating from
/// the failure time instead of the whole broadcast failing.
core::SchedulerResult run_online_from(const core::TmedbInstance& instance,
                                      const DiscreteTimeSet& dts,
                                      Policy& policy,
                                      std::vector<Time> informed_time,
                                      Time start_time,
                                      const OnlineOptions& options = {});

}  // namespace tveg::online
