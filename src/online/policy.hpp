// Online broadcast policies: what a *deployed* node can actually run.
//
// The paper's schedulers are offline oracles — they see the whole TVEG,
// future contacts included. An online policy sees only the present: "I hold
// the packet, it is time t, these currently-uninformed neighbors are in
// range at these costs." The gap between the two quantifies the value of
// future knowledge (bench/online_vs_offline).
//
// A policy answers one question per opportunity: cover how many of the
// cheapest currently-uninformed neighbors right now? (0 = wait for a better
// moment.) The driver (online/driver.hpp) charges the minimal sufficient
// discrete-cost-set level, exactly like the offline baselines.
#pragma once

#include <cstddef>
#include <memory>

#include "core/tveg.hpp"
#include "support/rng.hpp"

namespace tveg::online {

/// What a relay sees at a transmission opportunity.
struct Observation {
  NodeId relay;
  Time now;
  /// The broadcast's delay constraint and when the packet was born (t = 0).
  Time deadline;
  /// Currently-uninformed adjacent nodes, ascending by required cost.
  const std::vector<core::DcsEntry>& uninformed;
  /// Total adjacent nodes (including already-informed ones).
  std::size_t neighbors_total;
};

/// Interface for online relay policies.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual const char* name() const = 0;
  /// How many of the cheapest uninformed neighbors to cover now (0 = wait,
  /// clamped to uninformed.size() by the driver).
  virtual std::size_t coverage(const Observation& obs, support::Rng& rng) = 0;
  /// Called once per run before any opportunity.
  virtual void reset() {}
};

/// Epidemic flooding: transmit to every uninformed neighbor at the first
/// opportunity. Fastest dissemination, highest energy.
class EpidemicPolicy final : public Policy {
 public:
  const char* name() const override { return "epidemic"; }
  std::size_t coverage(const Observation& obs, support::Rng&) override {
    return obs.uninformed.size();
  }
};

/// Deadline-aware thresholding: early in the budget, transmit only when the
/// opportunity is "good" (at least min_targets uninformed neighbors in one
/// shot — amortizing the broadcast advantage); once the remaining time
/// fraction drops below `urgency`, transmit unconditionally.
class DeadlineAwarePolicy final : public Policy {
 public:
  explicit DeadlineAwarePolicy(std::size_t min_targets, double urgency = 0.3)
      : min_targets_(min_targets), urgency_(urgency) {}
  const char* name() const override { return "deadline-aware"; }
  std::size_t coverage(const Observation& obs, support::Rng&) override {
    const double remaining_fraction =
        obs.deadline > 0 ? (obs.deadline - obs.now) / obs.deadline : 0.0;
    if (remaining_fraction <= urgency_) return obs.uninformed.size();
    return obs.uninformed.size() >= min_targets_ ? obs.uninformed.size() : 0;
  }

 private:
  std::size_t min_targets_;
  double urgency_;
};

/// Probabilistic gossip: forward with probability p per opportunity
/// (always, once the urgency window is reached).
class GossipPolicy final : public Policy {
 public:
  explicit GossipPolicy(double p, double urgency = 0.2)
      : p_(p), urgency_(urgency) {}
  const char* name() const override { return "gossip"; }
  std::size_t coverage(const Observation& obs, support::Rng& rng) override {
    const double remaining_fraction =
        obs.deadline > 0 ? (obs.deadline - obs.now) / obs.deadline : 0.0;
    if (remaining_fraction <= urgency_) return obs.uninformed.size();
    return rng.bernoulli(p_) ? obs.uninformed.size() : 0;
  }

 private:
  double p_;
  double urgency_;
};

}  // namespace tveg::online
