#include "online/driver.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::online {

using support::kInf;

namespace {
constexpr double kTimeTol = 1e-9;
}

core::SchedulerResult run_online(const core::TmedbInstance& instance,
                                 Policy& policy,
                                 const OnlineOptions& options) {
  instance.validate();
  const DiscreteTimeSet dts = instance.tveg->build_dts(options.dts);
  return run_online(instance, dts, policy, options);
}

core::SchedulerResult run_online(const core::TmedbInstance& instance,
                                 const DiscreteTimeSet& dts, Policy& policy,
                                 const OnlineOptions& options) {
  const auto n = static_cast<std::size_t>(instance.tveg->node_count());
  std::vector<Time> informed_time(n, kInf);
  informed_time[static_cast<std::size_t>(instance.source)] = 0;
  return run_online_from(instance, dts, policy, std::move(informed_time), 0,
                         options);
}

core::SchedulerResult run_online_from(const core::TmedbInstance& instance,
                                      const DiscreteTimeSet& dts,
                                      Policy& policy,
                                      std::vector<Time> informed_time,
                                      Time start_time,
                                      const OnlineOptions& options) {
  instance.validate();
  TVEG_REQUIRE(instance.targets.empty(), "online driver is broadcast-only");
  const core::Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();
  const auto n = static_cast<std::size_t>(tveg.node_count());
  TVEG_REQUIRE(informed_time.size() == n,
               "informed_time must have one entry per node");

  policy.reset();
  support::Rng rng(options.seed);

  std::size_t uninformed_count = 0;
  for (Time t : informed_time)
    if (t == kInf) ++uninformed_count;

  core::SchedulerResult result;
  result.stats.dts_points = dts.total_points();

  for (Time t : dts.global_points()) {
    if (uninformed_count == 0) break;
    if (t + kTimeTol < start_time) continue;
    if (t + tau > instance.deadline + kTimeTol) break;

    // Same-time cascade: a node informed at this instant (τ = 0) may get
    // its own opportunity within the same event time.
    bool progress = true;
    while (progress && uninformed_count > 0) {
      progress = false;
      for (NodeId i = 0; i < tveg.node_count(); ++i) {
        if (informed_time[static_cast<std::size_t>(i)] > t + kTimeTol)
          continue;  // not holding the packet yet

        const auto dcs = tveg.discrete_cost_set(i, t);
        std::vector<core::DcsEntry> uninformed;
        for (const core::DcsEntry& e : dcs)
          if (informed_time[static_cast<std::size_t>(e.neighbor)] == kInf)
            uninformed.push_back(e);
        if (uninformed.empty()) continue;

        const Observation obs{i, t, instance.deadline, uninformed,
                              dcs.size()};
        const std::size_t want =
            std::min(policy.coverage(obs, rng), uninformed.size());
        if (want == 0) continue;

        // Cover the `want` cheapest uninformed neighbors: pay the minimal
        // sufficient DCS level (the want-th uninformed entry's cost).
        const Cost cost = uninformed[want - 1].cost;
        result.schedule.add(i, t, cost);
        for (std::size_t m = 0; m < uninformed.size(); ++m) {
          if (uninformed[m].cost > cost + cost * 1e-12) break;
          informed_time[static_cast<std::size_t>(uninformed[m].neighbor)] =
              t + tau;
          --uninformed_count;
        }
        progress = true;
      }
    }
  }

  result.covered_all = uninformed_count == 0;
  return result;
}

}  // namespace tveg::online
