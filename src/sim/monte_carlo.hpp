// Monte-Carlo execution of a broadcast schedule under stochastic channels —
// the measurement behind Fig. 6(b)'s packet delivery ratio.
//
// Each trial replays the schedule chronologically with independent channel
// draws: a relay forwards only if it actually holds the packet at its
// scheduled time, and each potential receiver independently decodes with
// probability 1 − φ_t(w). Static-channel schedules evaluated on a fading
// TVEG therefore lose the ~1/3 of nodes the paper reports; FR schedules do
// not.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "core/tveg.hpp"
#include "fault/fault_plan.hpp"
#include "support/budget.hpp"
#include "support/stats.hpp"

namespace tveg::sim {

/// Monte-Carlo options. The last two fields implement the paper's stated
/// future work (Sec. VIII) as *evaluation* models: schedules are still
/// computed on the deterministic, interference-free TVEG, and the
/// simulator measures how they hold up when those assumptions break.
struct McOptions {
  std::size_t trials = 2000;
  std::uint64_t seed = 1;
  /// Run trials through the global thread pool.
  bool parallel = true;
  /// Non-deterministic TVG: each edge is independently "up" for the whole
  /// trial with this probability (1 = the deterministic model).
  double presence_reliability = 1.0;
  /// Interference: a receiver hearing two or more concurrent (same time
  /// group) transmissions decodes none of them; concurrent relaying is
  /// disabled (a node cannot receive and transmit in the same instant).
  bool model_interference = false;
  /// Forced transmission failures (FaultPlan::tx_failure): a failing
  /// transmission emits nothing that trial — no deliveries, no channel
  /// draws. Deterministic per (seed, trial, tx index); default inactive.
  fault::TxFaultModel tx_faults;
  /// Cooperative solve budget, polled once per trial (serial and parallel);
  /// a fired cancel token drains the remaining trials. Default: unlimited.
  support::Budget budget;
};

/// Aggregated delivery statistics.
struct DeliveryStats {
  /// Mean fraction of nodes holding the packet after the schedule ran.
  double mean_delivery_ratio = 0;
  double stddev_delivery_ratio = 0;
  /// Fraction of trials in which every node was informed.
  double full_delivery_fraction = 0;
  std::size_t trials = 0;
};

/// Replays `schedule` on `tveg`'s channel model, broadcasting from `source`.
DeliveryStats simulate_delivery(const core::Tveg& tveg, NodeId source,
                                const core::Schedule& schedule,
                                const McOptions& options = {});

}  // namespace tveg::sim
