#include "sim/monte_carlo.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <vector>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace tveg::sim {

using support::kInf;

namespace {

/// Per-trial channel/topology state.
struct TrialState {
  const core::Tveg& tveg;
  const McOptions& options;
  support::Rng& rng;
  /// This trial's index (TxFaultModel decisions are per-trial).
  std::size_t trial = 0;
  /// edge_up[e]: the edge exists this trial (presence_reliability draw).
  std::vector<char> edge_up;
  /// Bernoulli draws this trial (presence + channel); flushed per run.
  std::size_t draws = 0;
  /// Transmissions forced to fail by the fault model this trial.
  std::size_t tx_faults_hit = 0;

  TrialState(const core::Tveg& t, const McOptions& o, support::Rng& r,
             std::size_t trial_index = 0)
      : tveg(t), options(o), rng(r), trial(trial_index) {
    if (options.presence_reliability < 1.0) {
      edge_up.resize(tveg.graph().edge_count());
      for (auto& up : edge_up)
        up = rng.bernoulli(options.presence_reliability) ? 1 : 0;
      draws += edge_up.size();
    }
  }

  bool edge_alive(NodeId a, NodeId b) const {
    if (edge_up.empty()) return true;
    const std::size_t e = tveg.graph().edge_id(a, b);
    return e != static_cast<std::size_t>(-1) && edge_up[e];
  }

  /// True when transmission k is forced to fail this trial (counted).
  bool tx_forced_fail(std::size_t k) {
    if (!options.tx_faults.active() || !options.tx_faults.fails(trial, k))
      return false;
    ++tx_faults_hit;
    return true;
  }
};

/// One trial without interference: equal-time groups run to a fixpoint
/// (non-stop journeys at τ = 0 are legal), each transmission draws its
/// channel once.
std::size_t run_trial_plain(const std::vector<core::Transmission>& txs,
                            NodeId source, TrialState& state,
                            std::vector<Time>& informed_at) {
  const core::Tveg& tveg = state.tveg;
  const Time tau = tveg.latency();
  informed_at.assign(informed_at.size(), kInf);
  // The source has held the packet "since before time began".
  informed_at[static_cast<std::size_t>(source)] = -1.0;

  std::vector<char> fired(txs.size(), 0);
  std::size_t group_begin = 0;
  while (group_begin < txs.size()) {
    std::size_t group_end = group_begin + 1;
    while (group_end < txs.size() &&
           txs[group_end].time - txs[group_begin].time <= 1e-9)
      ++group_end;

    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t k = group_begin; k < group_end; ++k) {
        if (fired[k]) continue;
        const core::Transmission& tx = txs[k];
        if (informed_at[static_cast<std::size_t>(tx.relay)] > tx.time + 1e-9)
          continue;  // relay does not hold the packet (yet)
        fired[k] = 1;
        progress = true;
        if (state.tx_forced_fail(k)) continue;  // fault: emits nothing
        for (NodeId j : tveg.graph().neighbors_at(tx.relay, tx.time)) {
          if (!state.edge_alive(tx.relay, j)) continue;
          if (informed_at[static_cast<std::size_t>(j)] <= tx.time + tau)
            continue;
          const double phi =
              tveg.failure_probability(tx.relay, j, tx.time, tx.cost);
          ++state.draws;
          if (!state.rng.bernoulli(phi))
            informed_at[static_cast<std::size_t>(j)] = tx.time + tau;
        }
      }
    }
    group_begin = group_end;
  }

  std::size_t informed = 0;
  for (Time t : informed_at)
    if (t < kInf) ++informed;
  return informed;
}

/// One trial with interference: only relays informed strictly before the
/// group may transmit; a receiver in range of two or more of the group's
/// active relays decodes nothing.
std::size_t run_trial_interference(const std::vector<core::Transmission>& txs,
                                   NodeId source, TrialState& state,
                                   std::vector<Time>& informed_at) {
  const core::Tveg& tveg = state.tveg;
  const Time tau = tveg.latency();
  const auto n = informed_at.size();
  informed_at.assign(n, kInf);
  // The source has held the packet "since before time began".
  informed_at[static_cast<std::size_t>(source)] = -1.0;

  std::vector<int> heard(n, 0);
  std::size_t group_begin = 0;
  while (group_begin < txs.size()) {
    const Time t = txs[group_begin].time;
    std::size_t group_end = group_begin + 1;
    while (group_end < txs.size() && txs[group_end].time - t <= 1e-9)
      ++group_end;

    // Active relays: informed strictly before this instant (no same-time
    // receive-and-forward under the interference model). With τ > 0 an
    // arrival exactly at t came from a strictly earlier transmission, so it
    // also qualifies.
    std::vector<std::size_t> active;
    for (std::size_t k = group_begin; k < group_end; ++k) {
      const Time ia = informed_at[static_cast<std::size_t>(txs[k].relay)];
      if (ia < t - 1e-9 || (tau > 1e-9 && ia <= t + 1e-9)) {
        if (state.tx_forced_fail(k)) continue;  // fault: emits nothing
        active.push_back(k);
      }
    }

    // Count concurrent signals per potential receiver.
    std::fill(heard.begin(), heard.end(), 0);
    for (std::size_t k : active)
      for (NodeId j : tveg.graph().neighbors_at(txs[k].relay, t))
        if (state.edge_alive(txs[k].relay, j))
          ++heard[static_cast<std::size_t>(j)];

    for (std::size_t k : active) {
      const core::Transmission& tx = txs[k];
      for (NodeId j : tveg.graph().neighbors_at(tx.relay, t)) {
        const auto ji = static_cast<std::size_t>(j);
        if (!state.edge_alive(tx.relay, j)) continue;
        if (heard[ji] >= 2) continue;  // collision
        if (informed_at[ji] <= t + tau) continue;
        const double phi = tveg.failure_probability(tx.relay, j, t, tx.cost);
        ++state.draws;
        if (!state.rng.bernoulli(phi)) informed_at[ji] = t + tau;
      }
    }
    group_begin = group_end;
  }

  std::size_t informed = 0;
  for (Time x : informed_at)
    if (x < kInf) ++informed;
  return informed;
}

}  // namespace

DeliveryStats simulate_delivery(const core::Tveg& tveg, NodeId source,
                                const core::Schedule& schedule,
                                const McOptions& options) {
  TVEG_REQUIRE(options.trials > 0, "need at least one trial");
  TVEG_REQUIRE(source >= 0 && source < tveg.node_count(),
               "source out of range");
  TVEG_REQUIRE(options.presence_reliability > 0 &&
                   options.presence_reliability <= 1,
               "presence reliability must lie in (0, 1]");
  const auto& txs = schedule.transmissions();
  const auto n = static_cast<double>(tveg.node_count());

  obs::TraceSpan span("monte_carlo");
  std::vector<double> ratios(options.trials);
  std::atomic<std::size_t> full_count{0};
  std::atomic<std::size_t> total_draws{0};

  std::atomic<std::size_t> total_tx_faults{0};

  auto trial = [&](std::size_t i) {
    obs::ScopedSpan trial_span("mc_trial");
    options.budget.check("mc_trial");
    // Per-trial stream via double-avalanche derivation: XOR with a multiple
    // of the golden gamma (the old scheme) let two scenario seeds share
    // trial streams at shifted indices.
    support::Rng rng(support::stream_seed(options.seed, i));
    TrialState state(tveg, options, rng, i);
    std::vector<Time> informed_at(static_cast<std::size_t>(tveg.node_count()));
    const std::size_t informed =
        options.model_interference
            ? run_trial_interference(txs, source, state, informed_at)
            : run_trial_plain(txs, source, state, informed_at);
    ratios[i] = static_cast<double>(informed) / n;
    if (informed == static_cast<std::size_t>(tveg.node_count()))
      full_count.fetch_add(1, std::memory_order_relaxed);
    total_draws.fetch_add(state.draws, std::memory_order_relaxed);
    total_tx_faults.fetch_add(state.tx_faults_hit, std::memory_order_relaxed);
  };

  const auto sim_start = std::chrono::steady_clock::now();
  if (options.parallel) {
    support::parallel_for(0, options.trials, trial, options.budget.cancel);
  } else {
    for (std::size_t i = 0; i < options.trials; ++i) trial(i);
  }
  const double sim_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sim_start)
          .count();

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& runs_metric = registry.counter(obs::keys::kMcRuns);
  static obs::Counter& trials_metric = registry.counter(obs::keys::kMcTrials);
  static obs::Counter& draws_metric =
      registry.counter(obs::keys::kMcChannelDraws);
  static obs::Gauge& rate_metric =
      registry.gauge(obs::keys::kMcLastDrawsPerSec);
  static obs::Counter& tx_faults_metric =
      registry.counter(obs::keys::kFaultInjectedTxFailure);
  runs_metric.add(1);
  trials_metric.add(options.trials);
  draws_metric.add(total_draws.load());
  tx_faults_metric.add(total_tx_faults.load());
  if (sim_seconds > 0)
    rate_metric.set(static_cast<double>(total_draws.load()) / sim_seconds);

  support::RunningStat stat;
  for (double r : ratios) stat.add(r);

  DeliveryStats out;
  out.trials = options.trials;
  out.mean_delivery_ratio = stat.mean();
  out.stddev_delivery_ratio = stat.stddev();
  out.full_delivery_fraction =
      static_cast<double>(full_count.load()) /
      static_cast<double>(options.trials);
  return out;
}

}  // namespace tveg::sim
