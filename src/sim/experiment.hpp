// Shared experiment harness: one trace → step & Rayleigh TVEG views, a
// shared DTS, and a uniform "run algorithm X" entry point. Every figure
// bench and several integration tests sit on top of this.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "channel/radio.hpp"
#include "core/ed_weight_cache.hpp"
#include "core/fr.hpp"
#include "core/solve_many.hpp"
#include "core/tveg.hpp"
#include "fault/govern.hpp"
#include "sim/monte_carlo.hpp"
#include "support/mem_budget.hpp"
#include "support/thread_pool.hpp"
#include "trace/contact_trace.hpp"

namespace tveg::sim {

/// The six algorithms of the paper's evaluation (Sec. VII).
enum class Algorithm {
  kEedcb,
  kGreed,
  kRand,
  kFrEedcb,
  kFrGreed,
  kFrRand,
};

/// "EEDCB", "GREED", ... as printed in the figures.
const char* algorithm_name(Algorithm a);

/// True for the FR-* algorithms (backbone on fading weights + NLP).
bool fading_resistant(Algorithm a);

/// All six, in the paper's order.
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kEedcb,   Algorithm::kGreed,   Algorithm::kRand,
    Algorithm::kFrEedcb, Algorithm::kFrGreed, Algorithm::kFrRand,
};

/// The paper's radio parameter set (Sec. VII).
channel::RadioParams paper_radio();

/// One trace instrumented with both channel views and a shared DTS.
class Workbench {
 public:
  /// Options applied to all runs from this workbench.
  struct Options {
    Time tau = 0.0;
    core::SteinerMethod steiner_method =
        core::SteinerMethod::kRecursiveGreedy;
    int steiner_level = 2;
    DtsOptions dts;
    /// Worker threads for the parallel pipeline phases; 0 = fully serial
    /// (the differential-testing oracle). Schedules are byte-identical for
    /// every thread count.
    std::size_t threads = 0;
    /// Memoize ED-function materialization and edge weights (one
    /// core::EdWeightCache per channel view). Disabling reproduces the
    /// memoization-free pipeline bit for bit, only slower.
    bool use_cache = true;
    /// Aggregate byte budget for BOTH views' ED-weight caches, enforced via
    /// a shared support::MemBudget (pressure evicts whole shards; cached
    /// results stay bit-identical, only residency changes). 0 = unbounded.
    std::size_t cache_budget_bytes = 0;
  };

  Workbench(const trace::ContactTrace& trace, channel::RadioParams radio,
            Options options);
  /// As above with default options.
  Workbench(const trace::ContactTrace& trace, channel::RadioParams radio);

  const core::Tveg& step() const { return *step_; }
  const core::Tveg& fading() const { return *fading_; }
  const DiscreteTimeSet& dts() const { return dts_; }

  /// Instance against the step view (EEDCB/GREED/RAND run here).
  core::TmedbInstance step_instance(NodeId source, Time deadline) const;
  /// Instance against the Rayleigh view (FR-* run here; Fig. 6 evaluates
  /// every schedule here).
  core::TmedbInstance fading_instance(NodeId source, Time deadline) const;

  /// One algorithm run.
  struct RunOutcome {
    core::Schedule schedule;
    bool covered_all = false;        ///< backbone reached every node
    bool allocation_feasible = true; ///< NLP solved (FR-* only)
    double normalized_energy = 0;    ///< Σw / (N0·γ_th)
    /// Backbone scheduler diagnostics (sizes + phase timings); zero for the
    /// baseline rules, which bypass the EEDCB pipeline.
    core::SchedulerStats stats;
  };

  /// Runs `algorithm` from `source` under `deadline`; `seed` drives RAND.
  RunOutcome run(Algorithm algorithm, NodeId source, Time deadline,
                 std::uint64_t seed = 1) const;

  /// Batched EEDCB panel via core::solve_many: one auxiliary graph and
  /// Steiner solver per distinct deadline serve the whole batch. Outcomes
  /// are in request order and byte-identical to per-request
  /// run(kEedcb, ...) calls.
  std::vector<RunOutcome> run_many_eedcb(
      const std::vector<core::SolveRequest>& requests) const;

  /// Governed EEDCB batch (fault::solve_many_governed): per-request budgets,
  /// isolation, optional watchdog and shedding; the workbench wires its own
  /// pool, dts options, and cache MemBudget into `options` (its eedcb
  /// budget/pool fields are overwritten). Un-governed requests produce
  /// schedules byte-identical to run_many_eedcb.
  std::vector<fault::GovernedSolve> run_many_eedcb_governed(
      const std::vector<core::SolveRequest>& requests,
      fault::GovernOptions options = {}) const;

  /// The shared cache ledger (valid when cache_budget_bytes > 0); exposed
  /// so callers can read tveg.mem occupancy mid-run.
  const support::MemBudget* cache_budget() const {
    return cache_budget_ ? cache_budget_.get() : nullptr;
  }

  /// Monte-Carlo delivery of `schedule` under the fading view (Fig. 6(b)).
  DeliveryStats delivery_under_fading(NodeId source,
                                      const core::Schedule& schedule,
                                      const McOptions& mc = {}) const;

 private:
  core::EedcbOptions eedcb_options() const;

  Options options_;
  /// Declared before the Tvegs: their attached caches hold a raw pointer to
  /// this ledger and must release into it during their own destruction.
  std::unique_ptr<support::MemBudget> cache_budget_;
  std::unique_ptr<support::ThreadPool> pool_;
  std::unique_ptr<core::Tveg> step_;
  std::unique_ptr<core::Tveg> fading_;
  DiscreteTimeSet dts_;
};

}  // namespace tveg::sim
