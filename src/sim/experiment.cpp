#include "sim/experiment.hpp"

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::sim {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kEedcb:
      return "EEDCB";
    case Algorithm::kGreed:
      return "GREED";
    case Algorithm::kRand:
      return "RAND";
    case Algorithm::kFrEedcb:
      return "FR-EEDCB";
    case Algorithm::kFrGreed:
      return "FR-GREED";
    case Algorithm::kFrRand:
      return "FR-RAND";
  }
  return "?";
}

bool fading_resistant(Algorithm a) {
  return a == Algorithm::kFrEedcb || a == Algorithm::kFrGreed ||
         a == Algorithm::kFrRand;
}

channel::RadioParams paper_radio() {
  channel::RadioParams radio;
  radio.noise_density = 4.32e-21;   // W/Hz
  radio.decoding_threshold_db = 25.9;
  radio.path_loss_exponent = 2.0;
  radio.epsilon = 0.01;
  radio.w_min = 0.0;
  radio.w_max = support::kInf;
  return radio;
}

Workbench::Workbench(const trace::ContactTrace& trace,
                     channel::RadioParams radio)
    : Workbench(trace, radio, Options{}) {}

Workbench::Workbench(const trace::ContactTrace& trace,
                     channel::RadioParams radio, Options options)
    : options_(options),
      cache_budget_(options.cache_budget_bytes > 0
                        ? std::make_unique<support::MemBudget>(
                              options.cache_budget_bytes)
                        : nullptr),
      pool_(options.threads > 0
                ? std::make_unique<support::ThreadPool>(options.threads)
                : nullptr),
      step_(std::make_unique<core::Tveg>(
          trace, radio,
          core::Tveg::Options{.model = channel::ChannelModel::kStep,
                              .tau = options.tau})),
      fading_(std::make_unique<core::Tveg>(
          trace, radio,
          core::Tveg::Options{.model = channel::ChannelModel::kRayleigh,
                              .tau = options.tau})),
      // Both views share topology and breakpoints, so one DTS serves both.
      dts_(step_->build_dts(options.dts)) {
  if (options.use_cache) {
    // One cache per channel view — their ED-functions differ, so they must
    // never share entries. They do share the byte ledger (when bounded), so
    // the budget governs their aggregate footprint.
    core::EdWeightCache::Options cache;
    cache.mem = cache_budget_.get();
    step_->attach_cache(std::make_shared<core::EdWeightCache>(cache));
    fading_->attach_cache(std::make_shared<core::EdWeightCache>(cache));
  }
}

core::EedcbOptions Workbench::eedcb_options() const {
  core::EedcbOptions eedcb;
  eedcb.method = options_.steiner_method;
  eedcb.steiner_level = options_.steiner_level;
  eedcb.dts = options_.dts;
  eedcb.pool = pool_.get();
  return eedcb;
}

core::TmedbInstance Workbench::step_instance(NodeId source,
                                             Time deadline) const {
  return core::TmedbInstance{step_.get(), source, deadline};
}

core::TmedbInstance Workbench::fading_instance(NodeId source,
                                               Time deadline) const {
  return core::TmedbInstance{fading_.get(), source, deadline};
}

Workbench::RunOutcome Workbench::run(Algorithm algorithm, NodeId source,
                                     Time deadline,
                                     std::uint64_t seed) const {
  const core::EedcbOptions eedcb = eedcb_options();

  RunOutcome outcome;
  switch (algorithm) {
    case Algorithm::kEedcb: {
      const auto r = run_eedcb(step_instance(source, deadline), dts_, eedcb);
      outcome.schedule = r.schedule;
      outcome.covered_all = r.covered_all;
      outcome.stats = r.stats;
      break;
    }
    case Algorithm::kGreed:
    case Algorithm::kRand: {
      core::BaselineOptions opt;
      opt.rule = algorithm == Algorithm::kGreed ? core::BaselineRule::kGreedy
                                                : core::BaselineRule::kRandom;
      opt.seed = seed;
      const auto r = run_baseline(step_instance(source, deadline), dts_, opt);
      outcome.schedule = r.schedule;
      outcome.covered_all = r.covered_all;
      break;
    }
    case Algorithm::kFrEedcb: {
      const auto r =
          run_fr_eedcb(fading_instance(source, deadline), dts_, eedcb);
      outcome.schedule = r.schedule();
      outcome.covered_all = r.backbone.covered_all;
      outcome.allocation_feasible = r.allocation.feasible;
      outcome.stats = r.backbone.stats;
      break;
    }
    case Algorithm::kFrGreed:
    case Algorithm::kFrRand: {
      core::BaselineOptions opt;
      opt.rule = algorithm == Algorithm::kFrGreed
                     ? core::BaselineRule::kGreedy
                     : core::BaselineRule::kRandom;
      opt.seed = seed;
      const auto r =
          run_fr_baseline(fading_instance(source, deadline), dts_, opt);
      outcome.schedule = r.schedule();
      outcome.covered_all = r.backbone.covered_all;
      outcome.allocation_feasible = r.allocation.feasible;
      break;
    }
  }

  const core::TmedbInstance metric_instance = step_instance(source, deadline);
  outcome.normalized_energy =
      core::normalized_energy(metric_instance, outcome.schedule);
  return outcome;
}

std::vector<Workbench::RunOutcome> Workbench::run_many_eedcb(
    const std::vector<core::SolveRequest>& requests) const {
  const std::vector<core::SchedulerResult> solved =
      core::solve_many(*step_, dts_, requests, eedcb_options());
  std::vector<RunOutcome> outcomes(solved.size());
  for (std::size_t i = 0; i < solved.size(); ++i) {
    outcomes[i].schedule = solved[i].schedule;
    outcomes[i].covered_all = solved[i].covered_all;
    outcomes[i].stats = solved[i].stats;
    outcomes[i].normalized_energy = core::normalized_energy(
        step_instance(requests[i].source, requests[i].deadline),
        solved[i].schedule);
  }
  return outcomes;
}

std::vector<fault::GovernedSolve> Workbench::run_many_eedcb_governed(
    const std::vector<core::SolveRequest>& requests,
    fault::GovernOptions options) const {
  options.eedcb = eedcb_options();
  if (options.mem == nullptr) options.mem = cache_budget_.get();
  return fault::solve_many_governed(*step_, dts_, requests, options);
}

DeliveryStats Workbench::delivery_under_fading(NodeId source,
                                               const core::Schedule& schedule,
                                               const McOptions& mc) const {
  return simulate_delivery(*fading_, source, schedule, mc);
}

}  // namespace tveg::sim
