#include "obs/flight_recorder.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace tveg::obs {

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSolveStart: return "solve_start";
    case FlightEventKind::kRungStart: return "rung_start";
    case FlightEventKind::kRungDemoted: return "rung_demoted";
    case FlightEventKind::kRungSelected: return "rung_selected";
    case FlightEventKind::kDeadlineExpired: return "deadline_expired";
    case FlightEventKind::kFaultInjected: return "fault_injected";
    case FlightEventKind::kCacheEviction: return "cache_eviction";
    case FlightEventKind::kRepairDivergence: return "repair_divergence";
    case FlightEventKind::kRepairPatched: return "repair_patched";
    case FlightEventKind::kRungSkipped: return "rung_skipped";
    case FlightEventKind::kStallDetected: return "stall_detected";
    case FlightEventKind::kRequestShed: return "request_shed";
    case FlightEventKind::kNote: return "note";
  }
  return "?";
}

void FlightRecorder::record(FlightEventKind kind, std::uint64_t a,
                            std::uint64_t b, const char* detail) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kCapacity];
  // Mark the slot in-flight (seq 0) so a racing dump skips it rather than
  // mixing old and new fields, then publish with the new sequence.
  slot.seq.store(0, std::memory_order_release);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::dump(std::ostream& os) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t retained = head < kCapacity ? head : kCapacity;
  std::vector<FlightEvent> events;
  events.reserve(retained);
  for (std::uint64_t i = head - retained; i < head; ++i) {
    const Slot& slot = slots_[i % kCapacity];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != i + 1) continue;  // empty, in-flight or already overwritten
    FlightEvent e;
    e.seq = i;
    e.kind = static_cast<FlightEventKind>(
        slot.kind.load(std::memory_order_relaxed));
    e.a = slot.a.load(std::memory_order_relaxed);
    e.b = slot.b.load(std::memory_order_relaxed);
    e.detail = slot.detail.load(std::memory_order_relaxed);
    events.push_back(e);
  }
  os << "flight-recorder: " << head << " event(s), " << events.size()
     << " retained\n";
  for (const FlightEvent& e : events) {
    os << "#" << e.seq << " " << flight_event_kind_name(e.kind) << " a=" << e.a
       << " b=" << e.b;
    if (e.detail != nullptr && e.detail[0] != '\0') os << " " << e.detail;
    os << "\n";
  }
}

std::string FlightRecorder::dump_string() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

void FlightRecorder::reset() noexcept {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.seq.store(0, std::memory_order_relaxed);
    slot.kind.store(0, std::memory_order_relaxed);
    slot.a.store(0, std::memory_order_relaxed);
    slot.b.store(0, std::memory_order_relaxed);
    slot.detail.store("", std::memory_order_relaxed);
  }
}

FlightRecorder& flight_recorder() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

namespace {

struct DumpConfig {
  support::Mutex mutex;
  std::string path TVEG_GUARDED_BY(mutex);
};

DumpConfig& dump_config() {
  static DumpConfig* config = new DumpConfig();
  return *config;
}

}  // namespace

void set_flight_dump_path(const std::string& path) {
  DumpConfig& config = dump_config();
  support::MutexLock lock(config.mutex);
  config.path = path;
}

std::string flight_dump_path() {
  DumpConfig& config = dump_config();
  support::MutexLock lock(config.mutex);
  return config.path;
}

bool flight_dump(const char* reason) noexcept {
  auto& registry = MetricsRegistry::global();
  static Counter& dumps = registry.counter(keys::kObsFlightDumps);
  static Counter& errors = registry.counter(keys::kObsFlightDumpErrors);
  flight_recorder().record(FlightEventKind::kNote, 0, 0, reason);
  const std::string path = flight_dump_path();
  if (path.empty()) return false;
  try {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    flight_recorder().dump(out);
    if (!out) {
      errors.add(1);
      return false;
    }
    dumps.add(1);
    return true;
  } catch (...) {
    errors.add(1);
    return false;
  }
}

}  // namespace tveg::obs
