// Minimal self-contained JSON value: builder, serializer and parser.
//
// The observability layer needs machine-readable output (metrics snapshots,
// bench reports) without third-party dependencies, and the tests need to
// read that output back to verify it round-trips — so both directions live
// here. Deliberately small: null/bool/number/string/array/object, UTF-8
// passed through verbatim, numbers serialized with shortest round-trip
// formatting. Object member order is preserved (deterministic output).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tveg::obs {

/// One JSON value (recursive).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  ///< null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long v) : Json(static_cast<double>(v)) {}
  Json(long long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long long v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() { return Json(Type::kArray); }
  static Json object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Appends to an array (the value must be an array).
  Json& push_back(Json v);
  /// Sets/overwrites a member of an object (the value must be an object).
  Json& set(std::string key, Json v);

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Serializes; indent < 0 = compact single line, otherwise pretty-printed
  /// with `indent` spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  explicit Json(Type t) : type_(t) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace tveg::obs
