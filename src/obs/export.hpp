// Machine-readable export of the observability state: one JSON document
// (schema "tveg-obs-1") combining the metrics registry and the phase tree,
// plus a flat CSV view of the metrics.
//
// Document layout:
//   {
//     "schema": "tveg-obs-1",
//     "metrics": {
//       "counters":   { "tveg.dts.builds": 3, ... },
//       "gauges":     { "tveg.aux.vertices": 812, ... },
//       "histograms": { "tveg.pool.queue_wait_us":
//                         {"count","sum","min","max","p50","p90","p99"} }
//     },
//     "phases": [ {"name","count","wall_ms","rss_delta_kb","children":[...]} ],
//     "phase_totals": { "<phase name>": <wall_ms summed across the tree> }
//   }
#pragma once

#include <string>

#include "obs/json.hpp"

namespace tveg::obs {

/// The full snapshot as a structured value (for embedding, e.g. in bench
/// reports).
Json snapshot();

/// snapshot() serialized; indent as in Json::dump.
std::string snapshot_json(int indent = 2);

/// Per-phase attribution block (bench reports, bench_gate): a name-sorted
/// array of { name, count, wall_ms [, p50_ms, p95_ms, p99_ms] } joining the
/// aggregate phase tree with the tveg.obs.phase_ms.* duration histograms.
Json phase_attribution();

/// Flat CSV of the metrics registry:
///   kind,name,count,sum/value,min,max,p50,p90,p99
/// (counter/gauge rows fill only the value column).
std::string metrics_csv();

/// Writes snapshot_json() to `path` (throws std::runtime_error on I/O
/// failure). A ".csv" path gets metrics_csv() instead.
void write_snapshot_file(const std::string& path);

}  // namespace tveg::obs
