// Scoped phase tracing: a process-wide hierarchical phase tree built from
// RAII spans.
//
//   obs::set_enabled(true);
//   {
//     obs::TraceSpan span("steiner");   // nests under the caller's span
//     ... work ...
//   }                                   // accumulates wall time + count
//
// The tree aggregates by (parent, name): re-entering the same phase under
// the same parent accumulates into one node, so repeated pipeline runs
// produce totals, not an ever-growing trace. Each thread tracks its own
// current span; spans opened on ThreadPool workers attach under the root.
//
// Cost model: when tracing is disabled (the default), constructing a span
// is two relaxed atomic loads and a branch — no clock read, no allocation,
// no lock. When enabled, open/close takes a short mutex-protected child
// lookup plus two steady_clock reads; optional RSS tracking adds a
// /proc/self/statm read per open/close and is off unless requested.
//
// Observability v2: every TraceSpan additionally (a) feeds the per-phase
// duration histogram `tveg.obs.phase_ms.<name>` (the bench-gate attribution
// source) when tracing is enabled, and (b) records an individual span into
// the calling thread's ring (obs/span.hpp) when span tracing is enabled —
// so the same call sites serve the aggregate tree, the per-phase
// percentiles, and the Perfetto export.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace tveg::obs {

/// Master switch for tracing and for any metric needing clock or /proc
/// reads. Off by default.
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

/// When on (and tracing is enabled), every span also records the RSS delta
/// across its lifetime. Off by default: it costs two /proc reads per span.
void set_rss_tracking(bool on) noexcept;

/// RAII phase span. Construction pushes this span as the calling thread's
/// current phase; destruction pops it and accumulates elapsed wall time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Wall time since construction in ms; 0 when tracing is disabled.
  double elapsed_ms() const noexcept;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t node_ = kNone;
  void* node_ptr_ = nullptr;  ///< stable Node*; avoids locking on close
  std::size_t prev_ = kNone;
  std::chrono::steady_clock::time_point start_;
  long long rss_before_kb_ = -1;
  const char* ring_name_ = nullptr;  ///< non-null while a ring span is open
  std::uint64_t ring_open_seq_ = 0;
};

/// The natural name at pipeline call sites ("time this phase").
using PhaseTimer = TraceSpan;

/// Ensures the named phases exist as root children (zero counts if never
/// entered) — keeps exported schemas stable across algorithms that skip
/// phases. Works whether or not tracing is enabled.
void declare_phases(std::initializer_list<const char*> names);

/// One aggregated node of the phase tree.
struct TraceNodeSnapshot {
  std::string name;
  std::uint64_t count = 0;        ///< completed entries
  double wall_ms = 0;             ///< summed wall time
  long long rss_delta_kb = 0;     ///< summed RSS delta (0 unless tracked)
  std::vector<TraceNodeSnapshot> children;
};

/// Point-in-time copy of the root's children (the top-level phases).
std::vector<TraceNodeSnapshot> trace_snapshot();

/// Wall time summed by phase name across the whole tree, name-sorted —
/// the flat view exported as "phase_totals".
std::vector<std::pair<std::string, TraceNodeSnapshot>> phase_totals();

/// Drops the whole tree. Only call with no spans open (e.g. between CLI
/// commands or bench sections); open spans would accumulate into a node
/// that no longer exists.
void trace_reset();

/// Human-readable indented tree (the CLI's --trace stderr summary).
void trace_report(std::ostream& os);

}  // namespace tveg::obs
