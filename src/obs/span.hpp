// Thread-aware span tracing (observability v2, see DESIGN.md).
//
// Where obs/trace.hpp aggregates phases into one process-wide tree, this
// module records *individual* spans per thread — a low-overhead,
// thread-local ring of completed span records, merged at export time into
// Chrome/Perfetto `trace_event` JSON (loadable in ui.perfetto.dev). It is
// what makes wall-clock visible *across threads*: ThreadPool workers show
// their queue-wait and task spans on their own tracks, the parallel
// Steiner/aux phases show which worker ran which chunk, and Monte-Carlo
// trials show per-trial durations.
//
// Cost model: when span tracing is disabled (the default), opening a span
// is one relaxed atomic load and a branch — no clock read, no lock, no
// allocation. When enabled, a span close takes two steady_clock reads plus
// a short uncontended per-thread mutex push into that thread's ring
// (contended only by an exporter). Rings are fixed-size; overflow drops the
// oldest records and counts them (tveg.obs.span_drops).
//
// Determinism note: span records carry steady_clock timestamps (allowed —
// monotonic, never feeds results); they exist for humans and Perfetto, not
// for the solver. Nothing here may read a wall clock (enforced by the
// tveg-lint `no-wall-clock-in-spans` rule).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace tveg::obs {

class Json;

/// Master switch for span recording. Off by default; independent of
/// obs::set_enabled (the aggregate phase tree), though the CLI turns both
/// on for --trace-out.
void set_span_tracing(bool on) noexcept;
bool span_tracing() noexcept;

/// Nanoseconds since the process-wide tracing epoch (first use).
std::uint64_t now_epoch_ns() noexcept;
/// Converts an already-taken steady_clock reading to epoch-relative ns.
std::uint64_t to_epoch_ns(std::chrono::steady_clock::time_point tp) noexcept;

/// Registers a human-readable name for the calling thread ("main",
/// "pool-worker-3"); shown as the Perfetto track name. Cheap; callable
/// whether or not tracing is enabled.
void set_current_thread_name(const std::string& name);

/// Low-level span protocol (used by TraceSpan and ThreadPool; prefer
/// ScopedSpan at call sites). `span_open` reserves the calling thread's
/// next sequence token; `span_close` writes the completed record. `name`
/// must have static storage duration (string literals).
std::uint64_t span_open() noexcept;
void span_close(const char* name, std::uint64_t open_seq,
                std::uint64_t begin_ns, std::uint64_t end_ns) noexcept;

/// Records a queue-wait interval (task enqueue → dequeue) on the calling
/// worker's queue track; exported as a Perfetto complete ("X") event.
void span_queue_wait(std::uint64_t begin_ns, std::uint64_t end_ns) noexcept;

/// RAII ring-only span: records into the calling thread's span ring when
/// span tracing is enabled, and does nothing else (no aggregate-tree
/// accounting — use obs::TraceSpan for phases that should also aggregate).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (!span_tracing()) return;
    name_ = name;
    open_seq_ = span_open();
    begin_ns_ = now_epoch_ns();
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    span_close(name_, open_seq_, begin_ns_, now_epoch_ns());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t open_seq_ = 0;
  std::uint64_t begin_ns_ = 0;
};

/// Merges every thread's ring into one Chrome `trace_event` document:
///   { "traceEvents": [ {"ph":"M"...}, {"ph":"B"...}, {"ph":"E"...},
///                      {"ph":"X"...} ], "displayTimeUnit": "ms" }
/// Span records become matched B/E pairs on the owning thread's track (pid
/// 1, tid = thread slot); queue waits become X events on a per-worker
/// queue track (tid = slot + 1000); thread names become "M" metadata.
/// Within each tid, events are emitted in non-decreasing ts order.
Json chrome_trace();

/// chrome_trace() serialized.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; throws std::runtime_error on I/O
/// failure.
void write_chrome_trace_file(const std::string& path);

/// Structural validation of a Chrome trace_event document (used by tests
/// and the CI obs stage): traceEvents must be an array of objects carrying
/// ph/pid/tid/name, B/E/X events need numeric ts (X also dur >= 0), ts must
/// be non-decreasing per tid, and B/E pairs must match LIFO per tid.
/// Returns "" when valid, else the first violation.
std::string validate_chrome_trace(const Json& doc);

/// Total records dropped to ring overflow since the last reset.
std::uint64_t span_drop_count() noexcept;

/// Clears every thread's ring and drop counts (thread registrations and
/// names survive). Only call with no spans open and recording quiescent.
void span_reset();

}  // namespace tveg::obs
