// Crash-time flight recorder (observability v2, see DESIGN.md).
//
// A fixed-size lock-free ring that captures the last N solver events —
// fallback-ladder rung transitions, fault injections, deadline expirations,
// cache evictions, schedule-repair divergences — so that when something
// goes sideways (a rung demotes, a budget expires, a repair diverges) the
// recent history can be dumped and attached to a bug report or replayed
// against the seed.
//
// Hard invariants:
//  * recording is lock-free and wait-free for writers: one fetch_add on the
//    head plus relaxed stores into the claimed slot — safe from ThreadPool
//    workers and solver hot paths;
//  * recorded payloads are clock-free and seeded-deterministic: events
//    carry a logical sequence number, a kind, two integer payloads and a
//    static detail string — never a timestamp — so a dump for a fixed seed
//    is byte-stable run over run (the `no-wall-clock-in-spans` lint rule
//    pins this file clock-free);
//  * dumping never throws on the auto-dump path (a dump triggered by a
//    failing solve must not turn the failure into a crash).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace tveg::obs {

/// What happened; dumped by name, so renames change golden dumps.
enum class FlightEventKind : std::uint8_t {
  kSolveStart,        ///< robust_solve entered (a = start rung)
  kRungStart,         ///< a ladder rung began (a = rung)
  kRungDemoted,       ///< a rung was abandoned (a = rung, b = error code)
  kRungSelected,      ///< a rung produced the result (a = rung, b = covered)
  kDeadlineExpired,   ///< a solve budget ran out (a = rung)
  kFaultInjected,     ///< a fault event entered the trace (a = kind, b = count)
  kCacheEviction,     ///< an EdWeightCache shard was evicted (a = entries, b = shard)
  kRepairDivergence,  ///< schedule repair detected divergence (a = uncovered)
  kRepairPatched,     ///< repair emitted a patch (a = patch size, b = still uncovered)
  kRungSkipped,       ///< an already-expired rung was short-circuited (a = rung)
  kStallDetected,     ///< watchdog saw no budget poll in a stall window (a = handle)
  kRequestShed,       ///< governance shed a request (a = request, b = policy)
  kNote,              ///< freeform marker (detail string only)
};

const char* flight_event_kind_name(FlightEventKind kind);

/// One recorded event. `detail` must point to static storage (string
/// literals, rung_name(...) results).
struct FlightEvent {
  std::uint64_t seq = 0;  ///< global logical order (monotone)
  FlightEventKind kind = FlightEventKind::kNote;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  const char* detail = "";
};

/// The ring. All members are atomics so concurrent record/dump is race-free
/// without locks; a dump that races writers may skip in-flight slots.
class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 256;

  void record(FlightEventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
              const char* detail = "") noexcept;

  /// Events recorded since construction/reset (monotone; may exceed
  /// kCapacity — only the last kCapacity are retained).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Writes the retained events oldest-first, one per line:
  ///   #<seq> <kind> a=<a> b=<b> <detail>
  /// preceded by a `flight-recorder: <n> event(s), <m> retained` header.
  /// Byte-stable for a fixed event history.
  void dump(std::ostream& os) const;
  std::string dump_string() const;

  void reset() noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 1 + event seq; 0 = empty
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<const char*> detail{""};
  };
  std::atomic<std::uint64_t> head_{0};
  std::array<Slot, kCapacity> slots_{};
};

/// Process-wide recorder; every subsystem records here.
FlightRecorder& flight_recorder();

/// Arms automatic dumping: when set to a non-empty path, flight_dump() (the
/// trigger hook called on rung demotion, deadline expiry and repair
/// divergence) rewrites that file with the current ring. Empty disarms.
void set_flight_dump_path(const std::string& path);
std::string flight_dump_path();

/// Dump trigger: records a kNote with `reason`, then — when armed — writes
/// the ring to the configured path. Never throws; I/O failures are counted
/// (tveg.obs.flight_dump_errors) and swallowed. Returns true when a file
/// was (re)written.
bool flight_dump(const char* reason) noexcept;

}  // namespace tveg::obs
