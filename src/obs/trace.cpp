#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <ostream>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

#ifdef __linux__
#include <unistd.h>
#endif

namespace tveg::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_rss{false};

constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

/// Resident set size in KiB, or -1 when unavailable.
long long read_rss_kb() noexcept {
#ifdef __linux__
  static const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return -1;
  long long size = 0, resident = 0;
  const int got = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  return got == 2 ? resident * page_kb : -1;
#else
  return -1;
#endif
}

struct Node {
  std::string name;
  std::size_t parent = kNoNode;
  std::vector<std::size_t> children;  // guarded by Tree::mutex
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> count{0};
  std::atomic<long long> rss_delta_kb{0};
  /// Per-phase duration histogram (tveg.obs.phase_ms.<name>), resolved once
  /// at node creation so span close never takes the registry mutex.
  Histogram* hist = nullptr;
};

struct Tree {
  support::Mutex mutex;
  // deque: references stay valid as the tree grows, so accumulation through
  // stable Node pointers needs no lock; the deque itself (growth and child
  // lists) is guarded.
  std::deque<Node> nodes TVEG_GUARDED_BY(mutex);

  // Single-threaded construction: no other thread can alias the tree yet,
  // so the REQUIRES contract on root() is vacuously met.
  Tree() TVEG_NO_THREAD_SAFETY_ANALYSIS { root(); }

  std::size_t root() TVEG_REQUIRES(mutex) {
    if (nodes.empty()) {
      nodes.emplace_back();
      nodes[0].name = "root";
    }
    return 0;
  }

  /// Finds or creates the child of `parent` named `name`. Returns the index
  /// (for the thread's current-phase cursor) and a stable pointer (deque
  /// references survive growth, so accumulation needs no lock).
  std::pair<std::size_t, Node*> child(std::size_t parent, const char* name) {
    support::MutexLock lock(mutex);
    for (std::size_t c : nodes[parent].children)
      if (nodes[c].name == name) return {c, &nodes[c]};
    const std::size_t id = nodes.size();
    nodes.emplace_back();
    nodes[id].name = name;
    nodes[id].parent = parent;
    nodes[id].hist = &MetricsRegistry::global().histogram(
        std::string(keys::kPhaseMsPrefix) + name);
    nodes[parent].children.push_back(id);
    return {id, &nodes[id]};
  }
};

Tree& tree() {
  static Tree* t = new Tree();  // never destroyed: spans may outlive main
  return *t;
}

thread_local std::size_t t_current = 0;

TraceNodeSnapshot snapshot_node(const Tree& t, std::size_t id)
    TVEG_REQUIRES(t.mutex) {
  const Node& n = t.nodes[id];
  TraceNodeSnapshot s;
  s.name = n.name;
  s.count = n.count.load(std::memory_order_relaxed);
  s.wall_ms =
      static_cast<double>(n.total_ns.load(std::memory_order_relaxed)) / 1e6;
  s.rss_delta_kb = n.rss_delta_kb.load(std::memory_order_relaxed);
  for (std::size_t c : n.children) s.children.push_back(snapshot_node(t, c));
  return s;
}

void report_node(std::ostream& os, const TraceNodeSnapshot& n, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%10.3f ms", n.wall_ms);
  os << n.name << "  x" << n.count << "  " << buf;
  if (n.rss_delta_kb != 0) os << "  rss" << std::showpos << n.rss_delta_kb
                              << std::noshowpos << "kB";
  os << "\n";
  for (const auto& c : n.children) report_node(os, c, depth + 1);
}

void accumulate_totals(const TraceNodeSnapshot& n,
                       std::map<std::string, TraceNodeSnapshot>& totals) {
  auto& slot = totals[n.name];
  slot.name = n.name;
  slot.count += n.count;
  slot.wall_ms += n.wall_ms;
  slot.rss_delta_kb += n.rss_delta_kb;
  for (const auto& c : n.children) accumulate_totals(c, totals);
}

}  // namespace

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_rss_tracking(bool on) noexcept {
  g_rss.store(on, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name) noexcept {
  const bool aggregate = enabled();
  const bool ring = span_tracing();
  if (!aggregate && !ring) return;
  if (aggregate) {
    const auto [id, ptr] = tree().child(t_current, name);
    node_ = id;
    node_ptr_ = ptr;
    prev_ = t_current;
    t_current = node_;
    if (g_rss.load(std::memory_order_relaxed)) rss_before_kb_ = read_rss_kb();
  }
  if (ring) {
    ring_name_ = name;
    ring_open_seq_ = span_open();
  }
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (node_ == kNone && ring_name_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const auto elapsed = end - start_;
  if (ring_name_ != nullptr)
    span_close(ring_name_, ring_open_seq_, to_epoch_ns(start_),
               to_epoch_ns(end));
  if (node_ == kNone) return;
  Node& n = *static_cast<Node*>(node_ptr_);
  const auto elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  n.total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  n.count.fetch_add(1, std::memory_order_relaxed);
  if (n.hist != nullptr)
    n.hist->observe(static_cast<double>(elapsed_ns) / 1e6);
  if (rss_before_kb_ >= 0) {
    const long long after = read_rss_kb();
    if (after >= 0)
      n.rss_delta_kb.fetch_add(after - rss_before_kb_,
                               std::memory_order_relaxed);
  }
  t_current = prev_;
}

double TraceSpan::elapsed_ms() const noexcept {
  if (node_ == kNone && ring_name_ == nullptr) return 0;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

void declare_phases(std::initializer_list<const char*> names) {
  Tree& t = tree();
  for (const char* name : names) t.child(0, name);
}

std::vector<TraceNodeSnapshot> trace_snapshot() {
  Tree& t = tree();
  support::MutexLock lock(t.mutex);
  std::vector<TraceNodeSnapshot> out;
  for (std::size_t c : t.nodes[0].children)
    out.push_back(snapshot_node(t, c));
  return out;
}

std::vector<std::pair<std::string, TraceNodeSnapshot>> phase_totals() {
  std::map<std::string, TraceNodeSnapshot> totals;
  for (const TraceNodeSnapshot& n : trace_snapshot())
    accumulate_totals(n, totals);
  std::vector<std::pair<std::string, TraceNodeSnapshot>> out;
  for (auto& [name, node] : totals) {
    node.children.clear();
    out.emplace_back(name, std::move(node));
  }
  return out;
}

void trace_reset() {
  Tree& t = tree();
  support::MutexLock lock(t.mutex);
  t.nodes.clear();
  t.nodes.emplace_back();
  t.nodes[0].name = "root";
  t_current = 0;  // resets the calling thread; others must have no open spans
}

void trace_report(std::ostream& os) {
  os << "phase tree (wall time, entries):\n";
  for (const TraceNodeSnapshot& n : trace_snapshot()) report_node(os, n, 1);
}

}  // namespace tveg::obs
