#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tveg::obs {

namespace {

void fail(const char* what, std::size_t at) {
  throw std::runtime_error("json: " + std::string(what) + " at offset " +
                           std::to_string(at));
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // JSON has no inf/nan; map them to null rather than emit invalid output.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

/// Recursive-descent parser over a string_view with one position cursor.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input", pos);
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos);
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string", pos);
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape", pos);
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape", pos);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos - 1);
          }
          // Encode as UTF-8 (BMP only; surrogate pairs are not needed for
          // our ASCII metric names but are passed through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape", pos - 1);
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    double value = 0;
    const auto res =
        std::from_chars(text.data() + start, text.data() + pos, value);
    if (res.ec != std::errc{} || res.ptr != text.data() + pos)
      fail("malformed number", start);
    return value;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.set(std::move(key), parse_value());
        skip_ws();
        const char sep = peek();
        ++pos;
        if (sep == '}') return obj;
        if (sep != ',') fail("expected ',' or '}'", pos - 1);
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value());
        skip_ws();
        const char sep = peek();
        ++pos;
        if (sep == ']') return arr;
        if (sep != ',') fail("expected ',' or ']'", pos - 1);
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    return Json(parse_number());
  }
};

}  // namespace

Json& Json::push_back(Json v) {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  items_.push_back(std::move(v));
  return *this;
}

Json& Json::set(std::string key, Json v) {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  for (auto& [k, existing] : members_)
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return members_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        append_escaped(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json value = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) fail("trailing garbage", p.pos);
  return value;
}

}  // namespace tveg::obs
