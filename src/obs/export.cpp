#include "obs/export.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tveg::obs {

namespace {

Json histogram_json(const Histogram::Snapshot& h) {
  Json j = Json::object();
  j.set("count", h.count);
  j.set("sum", h.sum);
  j.set("min", h.count ? h.min : 0.0);
  j.set("max", h.count ? h.max : 0.0);
  j.set("p50", h.p50);
  j.set("p90", h.p90);
  j.set("p95", h.p95);
  j.set("p99", h.p99);
  return j;
}

Json phase_json(const TraceNodeSnapshot& n) {
  Json j = Json::object();
  j.set("name", n.name);
  j.set("count", n.count);
  j.set("wall_ms", n.wall_ms);
  j.set("rss_delta_kb", n.rss_delta_kb);
  Json children = Json::array();
  for (const auto& c : n.children) children.push_back(phase_json(c));
  j.set("children", std::move(children));
  return j;
}

}  // namespace

Json snapshot() {
  const MetricsRegistry::Snapshot m = MetricsRegistry::global().snapshot();

  Json counters = Json::object();
  for (const auto& [name, v] : m.counters) counters.set(name, v);
  Json gauges = Json::object();
  for (const auto& [name, v] : m.gauges) gauges.set(name, v);
  Json histograms = Json::object();
  for (const auto& [name, h] : m.histograms)
    histograms.set(name, histogram_json(h));

  Json metrics = Json::object();
  metrics.set("counters", std::move(counters));
  metrics.set("gauges", std::move(gauges));
  metrics.set("histograms", std::move(histograms));

  Json phases = Json::array();
  for (const auto& n : trace_snapshot()) phases.push_back(phase_json(n));

  Json totals = Json::object();
  for (const auto& [name, node] : phase_totals())
    totals.set(name, node.wall_ms);

  Json doc = Json::object();
  doc.set("schema", "tveg-obs-1");
  doc.set("metrics", std::move(metrics));
  doc.set("phases", std::move(phases));
  doc.set("phase_totals", std::move(totals));
  return doc;
}

std::string snapshot_json(int indent) { return snapshot().dump(indent); }

Json phase_attribution() {
  // Join phase_totals (wall time + counts summed across the tree) with the
  // per-phase duration histograms fed by TraceSpan closes; name-sorted so
  // bench reports diff cleanly.
  const MetricsRegistry::Snapshot m = MetricsRegistry::global().snapshot();
  const std::string prefix = keys::kPhaseMsPrefix;
  std::map<std::string, Histogram::Snapshot> hists;
  for (const auto& [name, h] : m.histograms)
    if (name.rfind(prefix, 0) == 0) hists[name.substr(prefix.size())] = h;

  Json out = Json::array();
  for (const auto& [name, node] : phase_totals()) {
    Json p = Json::object();
    p.set("name", name);
    p.set("count", node.count);
    p.set("wall_ms", node.wall_ms);
    const auto it = hists.find(name);
    if (it != hists.end() && it->second.count > 0) {
      p.set("p50_ms", it->second.p50);
      p.set("p95_ms", it->second.p95);
      p.set("p99_ms", it->second.p99);
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::string metrics_csv() {
  const MetricsRegistry::Snapshot m = MetricsRegistry::global().snapshot();
  std::ostringstream os;
  os << "kind,name,count,value,min,max,p50,p90,p99\n";
  for (const auto& [name, v] : m.counters)
    os << "counter," << name << ",," << v << ",,,,,\n";
  for (const auto& [name, v] : m.gauges)
    os << "gauge," << name << ",," << v << ",,,,,\n";
  for (const auto& [name, h] : m.histograms)
    os << "histogram," << name << ',' << h.count << ',' << h.sum << ','
       << (h.count ? h.min : 0.0) << ',' << (h.count ? h.max : 0.0) << ','
       << h.p50 << ',' << h.p90 << ',' << h.p99 << "\n";
  return os.str();
}

void write_snapshot_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  out << (csv ? metrics_csv() : snapshot_json()) << "\n";
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace tveg::obs
