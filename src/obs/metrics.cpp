#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

namespace tveg::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Atomic min/max via CAS (no fetch_min for doubles).
void atomic_min(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur &&
         !target.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur &&
         !target.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Counter::shard_index() noexcept {
  // A stable small per-thread index; hashing the thread id spreads threads
  // over shards well enough, and collisions only cost contention.
  thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return index;
}

Histogram::Histogram() : min_(kInf), max_(-kInf) {}

std::size_t Histogram::bucket_index(double x) noexcept {
  if (!(x > 0) || !std::isfinite(x)) return 0;  // <=0 and nan land in [0]
  const double idx =
      std::floor(std::log2(x) * kSubBucketsPerOctave) + kBuckets / 2.0;
  if (idx < 1) return 1;
  if (idx > static_cast<double>(kBuckets - 1))
    return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double Histogram::bucket_lower(std::size_t i) noexcept {
  return std::exp2((static_cast<double>(i) - kBuckets / 2.0) /
                   kSubBucketsPerOctave);
}

void Histogram::observe(double x) noexcept {
  buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(x)) {
    sum_.fetch_add(x, std::memory_order_relaxed);
    atomic_min(min_, x);
    atomic_max(max_, x);
  }
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk buckets.
  const double rank = q * static_cast<double>(n - 1) + 1.0;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= rank) {
      double estimate;
      if (i == 0) {
        estimate = 0.0;  // the <=0 bucket
      } else {
        // Linear interpolation inside the geometric bucket.
        const double lo = bucket_lower(i);
        const double hi = bucket_lower(i + 1);
        const double frac =
            (rank - static_cast<double>(seen)) / static_cast<double>(c);
        estimate = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      }
      // A racing reset() can momentarily leave min > max; std::clamp with
      // an inverted range is UB, so only clamp when the bounds are sane.
      const double lo = min(), hi = max();
      return lo <= hi ? std::clamp(estimate, lo, hi) : estimate;
    }
    seen += c;
  }
  return max();
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  s.count = count();
  if (s.count == 0) return s;
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  support::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  support::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  support::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  support::MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  support::MutexLock lock(mutex_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace_back(name, h->snapshot());
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace tveg::obs
