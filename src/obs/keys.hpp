// Single manifest of every observability key the tree may emit.
//
// Every `tveg.<subsystem>.<name>` counter/gauge/histogram key and every
// flight-recorder event name lives here as a named constant; call sites
// reference the constant, never a string literal. `tveg-analyze`
// (src/tools/analyze/) enforces the closure cross-TU: any `tveg.*` string
// literal in src/ outside this file must match a manifest entry (exact
// match, or prefix match against a `*Prefix` constant for the dynamic
// families), every `FlightEventKind::k<Name>` used anywhere must have its
// snake_case name in kFlightEventNames, and manifest entries nothing
// references fail the build as dead keys. A typo'd key therefore cannot
// silently vanish from dashboards — it fails `scripts/ci.sh`'s lint stage.
//
// Naming: constant `k<Subsystem><Name>` for key `tveg.<subsystem>.<name>`;
// dynamic families (per-worker, per-phase, per-fault-kind) get a
// `...Prefix` constant whose value is the literal prefix call sites
// concatenate onto.
#pragma once

namespace tveg::obs::keys {

// -- support/thread_pool ----------------------------------------------------
inline constexpr char kPoolWorkers[] = "tveg.pool.workers";
inline constexpr char kPoolTasks[] = "tveg.pool.tasks";
inline constexpr char kPoolQueueWaitUs[] = "tveg.pool.queue_wait_us";
inline constexpr char kPoolUncaughtExceptions[] =
    "tveg.pool.uncaught_exceptions";
/// Per-worker busy time: `tveg.pool.worker<N>.busy_us`.
inline constexpr char kPoolWorkerPrefix[] = "tveg.pool.worker";

// -- obs itself -------------------------------------------------------------
/// Per-phase duration histograms: `tveg.obs.phase_ms.<phase>`.
inline constexpr char kPhaseMsPrefix[] = "tveg.obs.phase_ms.";
inline constexpr char kObsSpanDrops[] = "tveg.obs.span_drops";
inline constexpr char kObsFlightDumps[] = "tveg.obs.flight_dumps";
inline constexpr char kObsFlightDumpErrors[] = "tveg.obs.flight_dump_errors";

// -- tvg/dts ----------------------------------------------------------------
inline constexpr char kDtsBuilds[] = "tveg.dts.builds";
inline constexpr char kDtsPoints[] = "tveg.dts.points";
inline constexpr char kDtsClosureSteps[] = "tveg.dts.closure_steps";
inline constexpr char kDtsTruncations[] = "tveg.dts.truncations";

// -- core/aux_graph ---------------------------------------------------------
inline constexpr char kAuxBuilds[] = "tveg.aux.builds";
inline constexpr char kAuxPowerVertices[] = "tveg.aux.power_vertices";
inline constexpr char kAuxLastVertices[] = "tveg.aux.last_vertices";
inline constexpr char kAuxLastArcs[] = "tveg.aux.last_arcs";

// -- graph/digraph ----------------------------------------------------------
inline constexpr char kGraphFreezes[] = "tveg.graph.freezes";
inline constexpr char kGraphFrozenArcs[] = "tveg.graph.frozen_arcs";

// -- graph/steiner ----------------------------------------------------------
inline constexpr char kSteinerQueries[] = "tveg.steiner.queries";
inline constexpr char kSteinerDijkstraRuns[] = "tveg.steiner.dijkstra_runs";
inline constexpr char kSteinerNodesExpanded[] = "tveg.steiner.nodes_expanded";
inline constexpr char kSteinerRelaxations[] = "tveg.steiner.relaxations";
inline constexpr char kSteinerHeapAcquires[] = "tveg.steiner.heap.acquires";
inline constexpr char kSteinerHeapReuses[] = "tveg.steiner.heap.reuses";

// -- support/object_pool ----------------------------------------------------
/// Objects constructed by workspace pools after warmup: zero in steady
/// state (asserted by tests/perf/steady_state_alloc_test).
inline constexpr char kAllocSteadyState[] = "tveg.alloc.steady_state";

// -- parallel phases --------------------------------------------------------
inline constexpr char kParallelSteinerDijkstras[] =
    "tveg.parallel.steiner_dijkstras";
inline constexpr char kParallelAuxDcsTasks[] = "tveg.parallel.aux_dcs_tasks";

// -- core/prune -------------------------------------------------------------
inline constexpr char kPruneRuns[] = "tveg.prune.runs";
inline constexpr char kPruneRounds[] = "tveg.prune.rounds";
inline constexpr char kPruneFeasibilityChecks[] =
    "tveg.prune.feasibility_checks";
inline constexpr char kPruneRemoved[] = "tveg.prune.removed";
inline constexpr char kPruneLevelReductions[] = "tveg.prune.level_reductions";

// -- core/fr ----------------------------------------------------------------
inline constexpr char kFrRuns[] = "tveg.fr.runs";
inline constexpr char kFrRounds[] = "tveg.fr.rounds";
inline constexpr char kFrRemovals[] = "tveg.fr.removals";
inline constexpr char kFrReallocations[] = "tveg.fr.reallocations";

// -- core/energy_allocation + nlp -------------------------------------------
inline constexpr char kNlpAllocations[] = "tveg.nlp.allocations";
inline constexpr char kNlpConstraints[] = "tveg.nlp.constraints";
inline constexpr char kNlpSolverPasses[] = "tveg.nlp.solver_passes";
inline constexpr char kNlpInfeasible[] = "tveg.nlp.infeasible";
inline constexpr char kNlpRetries[] = "tveg.nlp.retries";
inline constexpr char kNlpRetrySuccesses[] = "tveg.nlp.retry_successes";
inline constexpr char kNlpAlSolves[] = "tveg.nlp.al.solves";
inline constexpr char kNlpAlOuterIterations[] = "tveg.nlp.al.outer_iterations";
inline constexpr char kNlpAlInnerIterations[] = "tveg.nlp.al.inner_iterations";
inline constexpr char kNlpAlFinalViolation[] = "tveg.nlp.al.final_violation";

// -- core/ed_weight_cache + memory ledger -----------------------------------
inline constexpr char kCacheBuilds[] = "tveg.cache.builds";
inline constexpr char kCacheHits[] = "tveg.cache.hits";
inline constexpr char kCacheMisses[] = "tveg.cache.misses";
inline constexpr char kCacheEvictions[] = "tveg.cache.evictions";
inline constexpr char kMemPressureEvictions[] = "tveg.mem.pressure_evictions";
inline constexpr char kMemCacheBytes[] = "tveg.mem.cache_bytes";

// -- core/solve_many --------------------------------------------------------
inline constexpr char kBatchSolves[] = "tveg.batch.solves";
inline constexpr char kBatchRequests[] = "tveg.batch.requests";
inline constexpr char kBatchAuxReuses[] = "tveg.batch.aux_reuses";

// -- sim/monte_carlo --------------------------------------------------------
inline constexpr char kMcRuns[] = "tveg.mc.runs";
inline constexpr char kMcTrials[] = "tveg.mc.trials";
inline constexpr char kMcChannelDraws[] = "tveg.mc.channel_draws";
inline constexpr char kMcLastDrawsPerSec[] = "tveg.mc.last_draws_per_sec";

// -- fault ------------------------------------------------------------------
/// Per-kind injection counters: `tveg.fault.injected.<kind>`.
inline constexpr char kFaultInjectedPrefix[] = "tveg.fault.injected.";
inline constexpr char kFaultInjectedTxFailure[] =
    "tveg.fault.injected.tx_failure";
inline constexpr char kFaultPlansApplied[] = "tveg.fault.plans_applied";
inline constexpr char kFaultSolveAttempts[] = "tveg.fault.solve.attempts";
inline constexpr char kFaultSolveDescents[] = "tveg.fault.solve.descents";
inline constexpr char kFaultSolveTimeouts[] = "tveg.fault.solve.timeouts";
inline constexpr char kFaultSolveDegraded[] = "tveg.fault.solve.degraded";
inline constexpr char kFaultSolveRungSkips[] = "tveg.fault.solve.rung_skips";
inline constexpr char kFaultRepairPasses[] = "tveg.fault.repair.passes";
inline constexpr char kFaultRepairDiverged[] = "tveg.fault.repair.diverged";
inline constexpr char kFaultRepairPatchTransmissions[] =
    "tveg.fault.repair.patch_transmissions";
inline constexpr char kFaultRepairNodesRecovered[] =
    "tveg.fault.repair.nodes_recovered";

// -- fault/govern -----------------------------------------------------------
inline constexpr char kGovernRequests[] = "tveg.govern.requests";
inline constexpr char kGovernOk[] = "tveg.govern.ok";
inline constexpr char kGovernDegraded[] = "tveg.govern.degraded";
inline constexpr char kGovernCancelled[] = "tveg.govern.cancelled";
inline constexpr char kGovernErrors[] = "tveg.govern.errors";
inline constexpr char kGovernShed[] = "tveg.govern.shed";
inline constexpr char kGovernStalls[] = "tveg.govern.stalls";

// -- flight-recorder event names --------------------------------------------
// Must stay in lockstep with FlightEventKind / flight_event_kind_name
// (obs/flight_recorder.*): tveg-analyze maps every `FlightEventKind::kX`
// use to snake_case and requires it to appear here, and flags entries that
// no longer correspond to a used kind.
inline constexpr const char* kFlightEventNames[] = {
    "solve_start",       "rung_start",      "rung_demoted",
    "rung_selected",     "deadline_expired", "fault_injected",
    "cache_eviction",    "repair_divergence", "repair_patched",
    "rung_skipped",      "stall_detected",  "request_shed",
    "note",
};

}  // namespace tveg::obs::keys
