// Metrics registry: named counters, gauges and histograms with cheap
// thread-safe updates.
//
// Design constraints (see DESIGN.md "Observability"):
//  * updates must be safe from ThreadPool workers and cost a handful of
//    nanoseconds — counters are sharded cache-line-padded atomics, gauges
//    and histogram cells are single atomics;
//  * registration (name lookup) takes a mutex, so hot paths cache the
//    returned reference once:
//        static obs::Counter& c =
//            obs::MetricsRegistry::global().counter("tveg.foo.bar");
//    references stay valid for the registry's lifetime;
//  * metric names follow `tveg.<subsystem>.<metric>` (dot-separated,
//    lower_snake per segment).
//
// Counters/gauges/histograms are always live (no enabled check): an
// uncontended relaxed atomic add is too cheap to be worth a branch.
// Anything needing clock or /proc reads is gated behind obs::enabled()
// (see obs/trace.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace tveg::obs {

/// Monotone counter, sharded across cache lines so concurrent writers from
/// different threads do not bounce one line.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 8;
  static std::size_t shard_index() noexcept;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> shards_;
};

/// Last-value gauge (double); `add` is an atomic read-modify-write.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Lock-free histogram over geometric buckets (8 sub-buckets per octave,
/// ~9% relative resolution, covering ~2^-32 .. 2^32 with saturation at the
/// ends). Exact count/sum/min/max; quantiles are bucket-interpolated
/// estimates. Concurrent `observe` calls never lose samples.
class Histogram {
 public:
  void observe(double x) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  double min() const noexcept;  ///< +inf when empty
  double max() const noexcept;  ///< -inf when empty
  /// Estimated q-quantile (q in [0,1]); 0 when empty. Clamped to the exact
  /// observed [min, max].
  double quantile(double q) const noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0, min = 0, max = 0;
    double p50 = 0, p90 = 0, p95 = 0, p99 = 0;
  };
  Snapshot snapshot() const noexcept;

  void reset() noexcept;

 private:
  static constexpr std::size_t kBuckets = 512;
  static constexpr int kSubBucketsPerOctave = 8;
  static std::size_t bucket_index(double x) noexcept;
  static double bucket_lower(std::size_t i) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;

 public:
  Histogram();
};

/// Name → metric directory. Counters, gauges and histograms live in
/// separate namespaces; lookups create on first use and return stable
/// references.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every metric (registrations and references stay valid).
  void reset();

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  /// Name-sorted point-in-time copy of every metric.
  Snapshot snapshot() const;

  /// Process-wide registry.
  static MetricsRegistry& global();

 private:
  mutable support::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TVEG_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      TVEG_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TVEG_GUARDED_BY(mutex_);
};

}  // namespace tveg::obs
