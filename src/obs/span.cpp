#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace tveg::obs {

namespace {

std::atomic<bool> g_span_tracing{false};

/// Queue-track tids live 1000 above the owning worker's slot so both rows
/// can coexist in Perfetto without colliding with real thread slots.
constexpr std::uint32_t kQueueTidOffset = 1000;

/// One completed span. `open_seq`/`close_seq` come from a single per-thread
/// counter, so r2 nests inside r1 iff r1.open < r2.open && r2.close <
/// r1.close — the export replay reconstructs B/E order from sequences, not
/// timestamps, which keeps ties unambiguous.
struct Record {
  const char* name = nullptr;  ///< static storage duration
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t open_seq = 0;
  std::uint64_t close_seq = 0;
  bool queue = false;  ///< queue-wait interval (exported as an X event)
};

constexpr std::size_t kRingCapacity = 1 << 15;

/// Per-thread ring; owned jointly by the thread (thread_local shared_ptr)
/// and the registry, so records survive thread exit until the next export.
struct Ring {
  support::Mutex mutex;  // uncontended except at export
  std::vector<Record> records TVEG_GUARDED_BY(mutex);  // capacity kRingCapacity
  std::uint64_t written TVEG_GUARDED_BY(mutex) = 0;  // records ever pushed
  std::uint64_t dropped TVEG_GUARDED_BY(mutex) = 0;
  std::uint32_t slot = 0;  // written once at registration, then immutable
  std::string name TVEG_GUARDED_BY(mutex);

  void push(const Record& r) {
    support::MutexLock lock(mutex);
    if (records.size() < kRingCapacity) {
      records.push_back(r);
    } else {
      records[written % kRingCapacity] = r;
      ++dropped;
    }
    ++written;
  }
};

struct Registry {
  support::Mutex mutex;
  // Lock order: Registry::mutex before Ring::mutex, always (export paths
  // hold the registry lock while visiting each ring).
  std::vector<std::shared_ptr<Ring>> rings TVEG_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: spans may outlive main
  return *r;
}

/// Per-thread state. The sequence counter is plain (only the owning thread
/// touches it); the ring pointer is shared with the registry.
struct ThreadState {
  std::shared_ptr<Ring> ring;
  std::uint64_t next_seq = 0;
};

ThreadState& thread_state() {
  thread_local ThreadState state = [] {
    ThreadState s;
    s.ring = std::make_shared<Ring>();
    Registry& reg = registry();
    support::MutexLock lock(reg.mutex);
    s.ring->slot = static_cast<std::uint32_t>(reg.rings.size());
    reg.rings.push_back(s.ring);
    return s;
  }();
  return state;
}

std::chrono::steady_clock::time_point epoch() noexcept {
  static const std::chrono::steady_clock::time_point e =
      std::chrono::steady_clock::now();
  return e;
}

Counter& drop_counter() {
  static Counter& c = MetricsRegistry::global().counter(keys::kObsSpanDrops);
  return c;
}

Json event(const char* ph, std::uint32_t tid, const std::string& name,
           double ts_us) {
  Json e = Json::object();
  e.set("ph", Json(ph));
  e.set("pid", Json(1));
  e.set("tid", Json(static_cast<double>(tid)));
  e.set("name", Json(name));
  e.set("ts", Json(ts_us));
  return e;
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// Emits one thread's span records as matched B/E pairs: sort by open
/// sequence, then replay with a stack, closing any span whose close_seq
/// precedes the next open. Dropped records at worst flatten nesting — the
/// pairs stay matched.
void emit_thread_spans(std::vector<Record> records, std::uint32_t tid,
                       Json& events) {
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.open_seq < b.open_seq;
            });
  std::vector<const Record*> stack;
  auto close_top = [&] {
    const Record* top = stack.back();
    stack.pop_back();
    events.push_back(event("E", tid, top->name, us(top->end_ns)));
  };
  for (const Record& r : records) {
    while (!stack.empty() && stack.back()->close_seq < r.open_seq) close_top();
    events.push_back(event("B", tid, r.name, us(r.begin_ns)));
    stack.push_back(&r);
  }
  while (!stack.empty()) close_top();
}

}  // namespace

void set_span_tracing(bool on) noexcept {
  g_span_tracing.store(on, std::memory_order_relaxed);
}

bool span_tracing() noexcept {
  return g_span_tracing.load(std::memory_order_relaxed);
}

std::uint64_t now_epoch_ns() noexcept {
  return to_epoch_ns(std::chrono::steady_clock::now());
}

std::uint64_t to_epoch_ns(std::chrono::steady_clock::time_point tp) noexcept {
  const auto d = tp - epoch();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  return ns.count() > 0 ? static_cast<std::uint64_t>(ns.count()) : 0;
}

void set_current_thread_name(const std::string& name) {
  Ring& ring = *thread_state().ring;
  support::MutexLock lock(ring.mutex);
  ring.name = name;
}

std::uint64_t span_open() noexcept { return thread_state().next_seq++; }

void span_close(const char* name, std::uint64_t open_seq,
                std::uint64_t begin_ns, std::uint64_t end_ns) noexcept {
  ThreadState& state = thread_state();
  Record r;
  r.name = name;
  r.begin_ns = begin_ns;
  r.end_ns = end_ns;
  r.open_seq = open_seq;
  r.close_seq = state.next_seq++;
  state.ring->push(r);
}

void span_queue_wait(std::uint64_t begin_ns, std::uint64_t end_ns) noexcept {
  ThreadState& state = thread_state();
  Record r;
  r.name = "queue_wait";
  r.begin_ns = begin_ns;
  r.end_ns = end_ns;
  r.open_seq = state.next_seq++;
  r.close_seq = state.next_seq++;
  r.queue = true;
  state.ring->push(r);
}

Json chrome_trace() {
  // Snapshot every ring under its own mutex; drop counts roll into the
  // registry metric here so exports and metrics snapshots agree.
  struct Snapshot {
    std::uint32_t slot;
    std::string name;
    std::vector<Record> spans;
    std::vector<Record> queue;
  };
  std::vector<Snapshot> threads;
  std::uint64_t dropped = 0;
  {
    Registry& reg = registry();
    support::MutexLock lock(reg.mutex);
    for (const auto& ring : reg.rings) {
      support::MutexLock ring_lock(ring->mutex);
      Snapshot s;
      s.slot = ring->slot;
      s.name = ring->name;
      for (const Record& r : ring->records)
        (r.queue ? s.queue : s.spans).push_back(r);
      dropped += ring->dropped;
      threads.push_back(std::move(s));
    }
  }
  if (dropped > 0) {
    // value() is a total since reset; re-sync rather than double-add.
    Counter& c = drop_counter();
    const std::uint64_t have =
        c.value();  // tveg-lint: allow(unchecked-result) -- Counter, not Result
    if (dropped > have) c.add(dropped - have);
  }

  Json events = Json::array();
  Json process_meta = event("M", 0, "process_name", 0);
  process_meta.set("args", [] {
    Json a = Json::object();
    a.set("name", Json("tveg"));
    return a;
  }());
  events.push_back(std::move(process_meta));

  for (const Snapshot& t : threads) {
    const std::string label =
        t.name.empty() ? "thread-" + std::to_string(t.slot) : t.name;
    Json meta = event("M", t.slot, "thread_name", 0);
    Json args = Json::object();
    args.set("name", Json(label));
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));

    if (!t.queue.empty()) {
      Json qmeta = event("M", t.slot + kQueueTidOffset, "thread_name", 0);
      Json qargs = Json::object();
      qargs.set("name", Json("queue-wait " + label));
      qmeta.set("args", std::move(qargs));
      events.push_back(std::move(qmeta));
    }

    emit_thread_spans(t.spans, t.slot, events);

    // Queue waits: the pool queue is FIFO, so each worker's dequeue order
    // sees non-decreasing enqueue times — sorting by open_seq (dequeue
    // order) keeps the queue track ts-monotone.
    std::vector<Record> queue = t.queue;
    std::sort(queue.begin(), queue.end(),
              [](const Record& a, const Record& b) {
                return a.open_seq < b.open_seq;
              });
    for (const Record& r : queue) {
      Json x = event("X", t.slot + kQueueTidOffset, r.name, us(r.begin_ns));
      const std::uint64_t dur = r.end_ns > r.begin_ns ? r.end_ns - r.begin_ns : 0;
      x.set("dur", Json(us(dur)));
      events.push_back(std::move(x));
    }
  }

  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json("ms"));
  return doc;
}

std::string chrome_trace_json() { return chrome_trace().dump(-1); }

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  out << chrome_trace_json() << "\n";
  if (!out) throw std::runtime_error("cannot write trace to " + path);
}

std::string validate_chrome_trace(const Json& doc) {
  if (!doc.is_object()) return "document is not an object";
  const Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return "missing traceEvents array";
  std::map<std::uint64_t, double> last_ts;
  std::map<std::uint64_t, std::vector<std::string>> stacks;
  std::size_t i = 0;
  for (const Json& e : events->items()) {
    const std::string at = "event " + std::to_string(i++);
    if (!e.is_object()) return at + ": not an object";
    const Json* ph = e.find("ph");
    const Json* pid = e.find("pid");
    const Json* tid = e.find("tid");
    const Json* name = e.find("name");
    if (ph == nullptr || ph->type() != Json::Type::kString)
      return at + ": missing ph";
    if (pid == nullptr || pid->type() != Json::Type::kNumber)
      return at + ": missing numeric pid";
    if (tid == nullptr || tid->type() != Json::Type::kNumber)
      return at + ": missing numeric tid";
    if (name == nullptr || name->type() != Json::Type::kString)
      return at + ": missing name";
    const std::string& kind = ph->as_string();
    if (kind == "M") continue;  // metadata: no timing constraints
    if (kind != "B" && kind != "E" && kind != "X" && kind != "i")
      return at + ": unknown ph '" + kind + "'";
    const Json* ts = e.find("ts");
    if (ts == nullptr || ts->type() != Json::Type::kNumber)
      return at + ": missing numeric ts";
    const auto key = static_cast<std::uint64_t>(tid->as_number());
    const auto it = last_ts.find(key);
    if (it != last_ts.end() && ts->as_number() < it->second)
      return at + ": ts goes backwards on tid " + std::to_string(key);
    last_ts[key] = ts->as_number();
    if (kind == "X") {
      const Json* dur = e.find("dur");
      if (dur == nullptr || dur->type() != Json::Type::kNumber ||
          dur->as_number() < 0)
        return at + ": X event without non-negative dur";
      continue;
    }
    if (kind == "B") {
      stacks[key].push_back(name->as_string());
    } else if (kind == "E") {
      auto& stack = stacks[key];
      if (stack.empty())
        return at + ": E without matching B on tid " + std::to_string(key);
      if (stack.back() != name->as_string())
        return at + ": E '" + name->as_string() + "' does not match open B '" +
               stack.back() + "'";
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks)
    if (!stack.empty())
      return "unclosed B '" + stack.back() + "' on tid " + std::to_string(tid);
  return "";
}

std::uint64_t span_drop_count() noexcept {
  Registry& reg = registry();
  support::MutexLock lock(reg.mutex);
  std::uint64_t dropped = 0;
  for (const auto& ring : reg.rings) {
    support::MutexLock ring_lock(ring->mutex);
    dropped += ring->dropped;
  }
  return dropped;
}

void span_reset() {
  Registry& reg = registry();
  support::MutexLock lock(reg.mutex);
  for (const auto& ring : reg.rings) {
    support::MutexLock ring_lock(ring->mutex);
    ring->records.clear();
    ring->written = 0;
    ring->dropped = 0;
  }
}

}  // namespace tveg::obs
