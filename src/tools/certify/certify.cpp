#include "tools/certify/certify.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <fstream>
#include <map>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "channel/radio.hpp"
#include "trace/contact_trace.hpp"

namespace tveg::certify {

namespace {

// ---------------------------------------------------------------------------
// Strict schedule parsing.

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("schedule line " + std::to_string(line_no) +
                              ": " + what);
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j])))
      ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

double parse_finite(const std::string& tok, std::size_t line_no,
                    const char* field) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size())
    parse_fail(line_no,
               std::string(field) + " is not a number: '" + tok + "'");
  if (!std::isfinite(v))
    parse_fail(line_no, std::string(field) + " is not finite: '" + tok + "'");
  return v;
}

NodeId parse_relay(const std::string& tok, std::size_t line_no) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (tok.empty() || end != tok.c_str() + tok.size())
    parse_fail(line_no, "relay is not an integer: '" + tok + "'");
  if (errno == ERANGE || v < std::numeric_limits<NodeId>::min() ||
      v > std::numeric_limits<NodeId>::max())
    parse_fail(line_no, "relay out of representable range: '" + tok + "'");
  return static_cast<NodeId>(v);
}

// ---------------------------------------------------------------------------
// Independent view of the trace: merged presence intervals and
// piecewise-constant distance samples per node pair, derived from the raw
// contact records only.

struct PairView {
  NodeId a = 0;
  NodeId b = 0;
  /// Merged half-open presence intervals, sorted; touching contacts merge
  /// (the pair stays in range across the boundary).
  std::vector<std::pair<Time, Time>> intervals;
  /// (time, distance) samples sorted by time; the distance at t is the value
  /// of the last sample at or before t (first value before the first sample).
  std::vector<std::pair<Time, double>> samples;

  double distance_at(Time t) const {
    auto it = std::upper_bound(
        samples.begin(), samples.end(), t,
        [](Time value, const std::pair<Time, double>& s) {
          return value < s.first;
        });
    if (it == samples.begin()) return samples.front().second;
    return (it - 1)->second;
  }
};

/// Sorted insert with tolerance dedup (Def. 5.1 representative rule);
/// returns true when the point was new.
bool insert_point(std::vector<Time>& pts, Time t, double tol) {
  auto it = std::lower_bound(pts.begin(), pts.end(), t);
  if (it != pts.end() && *it - t <= tol) return false;
  if (it != pts.begin() && t - *(it - 1) <= tol) return false;
  pts.insert(it, t);
  return true;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Everything the checks need, built once per verify() call.
struct Certifier {
  const Options& opt;
  NodeId n = 0;
  Time horizon = 0;
  channel::RadioParams radio;
  std::vector<PairView> pairs;
  std::vector<std::vector<std::size_t>> incident;  // node -> pair indices

  Certifier(const trace::ContactTrace& trace, const Options& options)
      : opt(options),
        n(trace.node_count()),
        horizon(trace.horizon()) {
    radio.noise_density = opt.noise_density;
    radio.decoding_threshold_db = opt.decoding_threshold_db;
    radio.path_loss_exponent = opt.path_loss_exponent;
    radio.w_min = opt.w_min;
    radio.w_max = opt.w_max;
    radio.epsilon = opt.epsilon;
    radio.validate();

    std::map<std::pair<NodeId, NodeId>, std::size_t> index;
    incident.assign(static_cast<std::size_t>(n), {});
    for (const trace::Contact& c : trace.contacts()) {
      const auto key = std::minmax(c.a, c.b);
      auto [it, inserted] = index.emplace(key, pairs.size());
      if (inserted) {
        pairs.push_back({key.first, key.second, {}, {}});
        incident[static_cast<std::size_t>(key.first)].push_back(it->second);
        incident[static_cast<std::size_t>(key.second)].push_back(it->second);
      }
      pairs[it->second].intervals.push_back({c.start, c.end});
    }
    for (PairView& p : pairs) {
      std::sort(p.intervals.begin(), p.intervals.end());
      std::vector<std::pair<Time, Time>> merged;
      for (const auto& iv : p.intervals) {
        if (!merged.empty() && iv.first <= merged.back().second)
          merged.back().second = std::max(merged.back().second, iv.second);
        else
          merged.push_back(iv);
      }
      p.intervals = std::move(merged);
    }
    // Distance samples keyed by contact start, first record wins on ties —
    // the same rule the solver's profile construction uses, restated here
    // from the trace format contract ("time-varying separations are encoded
    // as consecutive contacts of the same pair").
    std::map<std::pair<NodeId, NodeId>, std::map<Time, double>> samples;
    for (const trace::Contact& c : trace.contacts())
      samples[std::minmax(c.a, c.b)].emplace(c.start, c.distance);
    for (PairView& p : pairs) {
      const auto& s = samples[{p.a, p.b}];
      p.samples.assign(s.begin(), s.end());
    }
  }

  /// rho_tau adjacency: the pair is in contact throughout [t, t + tau], the
  /// transmission starts strictly before the contact ends, and the whole
  /// window lies inside the time span.
  bool pair_adjacent(const PairView& p, Time t) const {
    if (t < 0 || t + opt.tau > horizon) return false;
    auto it = std::upper_bound(
        p.intervals.begin(), p.intervals.end(), t,
        [](Time value, const std::pair<Time, Time>& iv) {
          return value < iv.first;
        });
    if (it == p.intervals.begin()) return false;
    --it;
    return t < it->second && t + opt.tau <= it->second;
  }

  /// phi(w) for one pair at one time under the configured channel model.
  double failure(const PairView& p, Time t, Cost w) const {
    if (!pair_adjacent(p, t)) return 1.0;
    if (w < 0) return 1.0;  // a negative energy never decodes
    const double d = p.distance_at(t);
    switch (opt.model) {
      case channel::ChannelModel::kStep:
        return channel::StepEdFunction(radio.step_min_cost(d))
            .failure_probability(w);
      case channel::ChannelModel::kRayleigh:
        return channel::RayleighEdFunction(radio.rayleigh_beta(d))
            .failure_probability(w);
      case channel::ChannelModel::kNakagami:
        return channel::NakagamiEdFunction(opt.nakagami_m,
                                           radio.rayleigh_beta(d))
            .failure_probability(w);
      case channel::ChannelModel::kRician:
        return channel::RicianEdFunction(opt.rician_k, radio.rayleigh_beta(d))
            .failure_probability(w);
    }
    return 1.0;
  }

  /// Independent DTS closure (Def. 5.2): adjacent-partition boundary points
  /// plus channel breakpoints, closed under +tau propagation to adjacent
  /// nodes. Returns one sorted point vector per node; sets `truncated` when
  /// the per-node cap was hit (membership is then not certifiable).
  std::vector<std::vector<Time>> build_dts(bool& truncated) const {
    truncated = false;
    std::vector<std::vector<Time>> pts(static_cast<std::size_t>(n));
    std::deque<std::pair<NodeId, Time>> worklist;
    const double tol = 1e-9;  // closure dedup, not the membership tolerance

    auto add = [&](NodeId v, Time t) {
      auto& vp = pts[static_cast<std::size_t>(v)];
      if (vp.size() >= opt.max_dts_points_per_node) {
        truncated = true;
        return;
      }
      if (insert_point(vp, t, tol)) worklist.push_back({v, t});
    };

    for (NodeId v = 0; v < n; ++v) {
      add(v, 0);
      add(v, horizon);
      for (std::size_t e : incident[static_cast<std::size_t>(v)]) {
        const PairView& p = pairs[e];
        // Eq. 9 boundary points of the valid-start windows.
        for (const auto& iv : p.intervals) {
          if (iv.second - iv.first < opt.tau) continue;
          add(v, iv.first);
          add(v, iv.second - opt.tau);
        }
        // Channel breakpoints: each distance change after the first sample.
        for (std::size_t k = 1; k < p.samples.size(); ++k)
          add(v, p.samples[k].first);
      }
    }

    while (!worklist.empty()) {
      const auto [v, t] = worklist.front();
      worklist.pop_front();
      if (t + opt.tau > horizon) continue;
      for (std::size_t e : incident[static_cast<std::size_t>(v)]) {
        const PairView& p = pairs[e];
        if (!pair_adjacent(p, t)) continue;
        add(p.a == v ? p.b : p.a, t + opt.tau);
      }
    }
    return pts;
  }
};

bool near_point(const std::vector<Time>& pts, Time t, double tol) {
  auto it = std::lower_bound(pts.begin(), pts.end(), t);
  if (it != pts.end() && *it - t <= tol) return true;
  return it != pts.begin() && t - *(it - 1) <= tol;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

const Check* Verdict::find(const std::string& id) const {
  for (const Check& c : checks)
    if (c.id == id) return &c;
  return nullptr;
}

std::string Verdict::json() const {
  std::ostringstream os;
  os << "{\"feasible\":" << (feasible ? "true" : "false")
     << ",\"transmissions\":" << transmissions
     << ",\"total_cost\":" << json_number(total_cost)
     << ",\"max_uninformed_probability\":"
     << json_number(max_uninformed_probability) << ",\"checks\":[";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (i) os << ',';
    os << "{\"id\":\"" << json_escape(checks[i].id) << "\",\"passed\":"
       << (checks[i].passed ? "true" : "false") << ",\"detail\":\""
       << json_escape(checks[i].detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::vector<Transmission> parse_schedule(std::istream& in) {
  std::vector<Transmission> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::vector<std::string> toks = split_tokens(line);
    if (toks.empty() || toks[0][0] == '#') continue;
    if (toks.size() != 3)
      parse_fail(line_no, "expected '<relay> <time> <cost>', got " +
                              std::to_string(toks.size()) + " field(s)");
    Transmission tx;
    tx.relay = parse_relay(toks[0], line_no);
    tx.time = parse_finite(toks[1], line_no, "time");
    tx.cost = parse_finite(toks[2], line_no, "cost");
    out.push_back(tx);
  }
  return out;
}

std::vector<Transmission> parse_schedule_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open schedule file: " + path);
  return parse_schedule(in);
}

Verdict verify(const trace::ContactTrace& trace,
               const std::vector<Transmission>& schedule,
               const Options& opt) {
  const NodeId n = trace.node_count();
  const Time horizon = trace.horizon();
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  require(n > 0, "trace has no nodes");
  require(opt.source >= 0 && opt.source < n, "source node out of range");
  require(opt.deadline > 0 && opt.deadline <= horizon,
          "deadline must lie in (0, horizon]");
  require(opt.epsilon > 0 && opt.epsilon < 1, "eps must lie in (0, 1)");
  require(opt.tau >= 0 && opt.tau < horizon,
          "tau must lie in [0, horizon)");
  for (NodeId t : opt.targets)
    require(t >= 0 && t < n, "target node out of range");
  require(opt.time_tolerance >= 0 && opt.dts_tolerance >= 0,
          "tolerances must be non-negative");

  const Certifier cert(trace, opt);  // validates the radio parameters

  Verdict verdict;
  verdict.transmissions = schedule.size();

  // --- condition: well-formed triples ------------------------------------
  std::vector<std::string> malformed;
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    const Transmission& tx = schedule[k];
    std::string why;
    if (tx.relay < 0 || tx.relay >= n)
      why = "relay " + std::to_string(tx.relay) + " outside [0, " +
            std::to_string(n) + ")";
    else if (!std::isfinite(tx.time) || tx.time < 0)
      why = "time " + fmt(tx.time) + " is not a finite time >= 0";
    else if (!std::isfinite(tx.cost))
      why = "cost is not finite";
    if (!why.empty())
      malformed.push_back("tx#" + std::to_string(k) + ": " + why);
  }
  const bool well_formed = malformed.empty();
  {
    std::string detail;
    for (std::size_t i = 0; i < malformed.size() && i < 3; ++i)
      detail += (i ? "; " : "") + malformed[i];
    if (malformed.size() > 3)
      detail += "; +" + std::to_string(malformed.size() - 3) + " more";
    verdict.checks.push_back({"schedule-well-formed", well_formed, detail});
  }

  // --- condition iv: costs within W = [w_min, w_max] (Eq. 17) ------------
  {
    std::string detail;
    // Slack proportional to the bound itself: paper energies sit near
    // 1e-16 J, so any absolute tolerance either rejects legitimate costs
    // or accepts negative ones. With w_min = 0 every negative cost fails.
    const double lo_tol = 1e-12 * std::fabs(opt.w_min);
    for (std::size_t k = 0; k < schedule.size() && detail.empty(); ++k) {
      const Cost w = schedule[k].cost;
      if (!std::isfinite(w)) {
        detail = "tx#" + std::to_string(k) + ": non-finite cost";
      } else if (w < opt.w_min - lo_tol) {
        detail = "tx#" + std::to_string(k) + ": cost " + fmt(w) +
                 " below w_min=" + fmt(opt.w_min);
      } else if (w > opt.w_max * (1 + 1e-12)) {
        detail = "tx#" + std::to_string(k) + ": cost " + fmt(w) +
                 " above w_max=" + fmt(opt.w_max);
      }
    }
    verdict.checks.push_back({"costs-in-range", detail.empty(), detail});
  }

  // --- condition iii: the last transmission finishes by T ----------------
  {
    std::string detail;
    for (std::size_t k = 0; k < schedule.size() && detail.empty(); ++k) {
      const Time t = schedule[k].time;
      if (std::isfinite(t) && t + opt.tau > opt.deadline + opt.time_tolerance)
        detail = "tx#" + std::to_string(k) + ": finishes at " +
                 fmt(t + opt.tau) + " > deadline " + fmt(opt.deadline);
    }
    verdict.checks.push_back({"within-deadline", detail.empty(), detail});
  }

  // --- condition iv: total cost within budget ----------------------------
  Cost total = 0;
  for (const Transmission& tx : schedule)
    total += std::isfinite(tx.cost) ? tx.cost : 0;
  verdict.total_cost = total;
  if (opt.budget >= 0) {
    const bool ok = total <= opt.budget * (1 + 1e-12) + 1e-300;
    verdict.checks.push_back(
        {"within-budget", ok,
         ok ? "" : "total cost " + fmt(total) + " > budget " +
                   fmt(opt.budget)});
  }

  // --- condition v: transmit times are DTS points (Def. 5.2) -------------
  if (opt.check_dts) {
    if (!well_formed) {
      verdict.checks.push_back(
          {"dts-membership", false, "skipped: schedule not well-formed"});
    } else {
      bool truncated = false;
      const std::vector<std::vector<Time>> dts = cert.build_dts(truncated);
      std::string detail;
      bool ok = true;
      if (truncated) {
        detail = "skipped: closure truncated at " +
                 std::to_string(opt.max_dts_points_per_node) +
                 " points/node; membership not certified";
      } else {
        for (std::size_t k = 0; k < schedule.size() && ok; ++k) {
          const Transmission& tx = schedule[k];
          if (!near_point(dts[static_cast<std::size_t>(tx.relay)], tx.time,
                          opt.dts_tolerance)) {
            ok = false;
            detail = "tx#" + std::to_string(k) + ": time " + fmt(tx.time) +
                     " is not a DTS point of node " +
                     std::to_string(tx.relay);
          }
        }
      }
      verdict.checks.push_back({"dts-membership", ok, detail});
    }
  }

  // --- conditions i + ii: Eq. 6 cumulative failure-probability replay ----
  if (!well_formed) {
    verdict.checks.push_back(
        {"relays-informed", false, "skipped: schedule not well-formed"});
    verdict.checks.push_back(
        {"all-informed", false, "skipped: schedule not well-formed"});
    verdict.feasible = false;
    return verdict;
  }

  // p[i] = probability node i is still uninformed (product of phi over all
  // transmissions whose signal has arrived).
  std::vector<double> p(static_cast<std::size_t>(n), 1.0);
  p[static_cast<std::size_t>(opt.source)] = 0.0;

  struct Arrival {
    Time at;
    NodeId node;
    double phi;
    bool operator>(const Arrival& o) const { return at > o.at; }
  };
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> pending;
  auto drain = [&](Time upto) {
    while (!pending.empty() &&
           pending.top().at <= upto + opt.time_tolerance) {
      const Arrival a = pending.top();
      pending.pop();
      p[static_cast<std::size_t>(a.node)] *= a.phi;
    }
  };

  std::vector<std::size_t> order(schedule.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x,
                                                   std::size_t y) {
    return schedule[x].time < schedule[y].time;
  });

  std::vector<std::string> uninformed_relays;
  bool snapshot_taken = false;
  double max_uninformed = 0.0;
  auto take_snapshot = [&] {
    drain(opt.deadline);
    const std::vector<NodeId>* targets = &opt.targets;
    std::vector<NodeId> all;
    if (targets->empty()) {
      all.resize(static_cast<std::size_t>(n));
      for (NodeId i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
      targets = &all;
    }
    for (NodeId i : *targets)
      max_uninformed =
          std::max(max_uninformed, p[static_cast<std::size_t>(i)]);
    snapshot_taken = true;
  };

  std::size_t g = 0;
  while (g < order.size()) {
    const Time group_time = schedule[order[g]].time;
    std::size_t g_end = g;
    while (g_end < order.size() &&
           schedule[order[g_end]].time - group_time <= opt.time_tolerance)
      ++g_end;

    // The informedness-at-T snapshot happens before any post-deadline group
    // advances the drained-arrival frontier past T.
    if (!snapshot_taken && group_time > opt.deadline + opt.time_tolerance)
      take_snapshot();

    drain(group_time);
    std::vector<bool> applied(g_end - g, false);
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t k = g; k < g_end; ++k) {
        if (applied[k - g]) continue;
        const Transmission& tx = schedule[order[k]];
        if (p[static_cast<std::size_t>(tx.relay)] >
            opt.epsilon + opt.probability_slack)
          continue;
        applied[k - g] = true;
        progress = true;
        for (std::size_t e :
             cert.incident[static_cast<std::size_t>(tx.relay)]) {
          const PairView& pv = cert.pairs[e];
          const double phi = cert.failure(pv, tx.time, tx.cost);
          if (phi >= 1.0) continue;
          const NodeId other = pv.a == tx.relay ? pv.b : pv.a;
          pending.push({tx.time + opt.tau, other, phi});
        }
        // Zero-latency arrivals land inside the same instant: non-stop
        // journeys may chain within one equal-time group.
        if (opt.tau <= opt.time_tolerance) drain(group_time);
      }
    }
    for (std::size_t k = g; k < g_end; ++k) {
      if (applied[k - g]) continue;
      const Transmission& tx = schedule[order[k]];
      uninformed_relays.push_back(
          "tx#" + std::to_string(order[k]) + ": relay " +
          std::to_string(tx.relay) + " uninformed at t=" + fmt(tx.time) +
          " (p=" + fmt(p[static_cast<std::size_t>(tx.relay)]) + " > eps=" +
          fmt(opt.epsilon) + ")");
    }
    g = g_end;
  }
  if (!snapshot_taken) take_snapshot();
  verdict.max_uninformed_probability = max_uninformed;

  {
    std::string detail;
    for (std::size_t i = 0; i < uninformed_relays.size() && i < 3; ++i)
      detail += (i ? "; " : "") + uninformed_relays[i];
    if (uninformed_relays.size() > 3)
      detail += "; +" + std::to_string(uninformed_relays.size() - 3) +
                " more";
    verdict.checks.push_back(
        {"relays-informed", uninformed_relays.empty(), detail});
  }
  {
    const bool ok = max_uninformed <= opt.epsilon + opt.probability_slack;
    verdict.checks.push_back(
        {"all-informed", ok,
         ok ? ""
            : "max uninformed probability " + fmt(max_uninformed) +
                  " > eps=" + fmt(opt.epsilon) + " at T=" +
                  fmt(opt.deadline)});
  }

  verdict.feasible = true;
  for (const Check& c : verdict.checks) verdict.feasible &= c.passed;
  return verdict;
}

}  // namespace tveg::certify
