// tveg-certify: standalone schedule certifier.
//
//   tveg-certify --trace contacts.trace --schedule out.sched
//                --deadline 1500 --eps 0.01
//
// Certifies the schedule against the paper's feasibility conditions using
// the independent oracle in tools/certify (no solver code). Prints a JSON
// verdict on stdout and a human-readable summary on stderr.
//
// Exit status: 0 = schedule certified feasible, 1 = schedule rejected,
// 2 = usage error or unreadable/malformed input.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "tools/certify/certify.hpp"
#include "trace/io.hpp"

namespace {

using tveg::certify::Options;
using tveg::cli::Args;
using tveg::cli::UsageError;

constexpr const char* kUsage = R"(usage: tveg-certify --trace FILE --schedule FILE --deadline T [options]

required:
  --trace FILE        contact trace (tveg-trace text format)
  --schedule FILE     schedule to certify (tveg-schedule text format)
  --deadline T        delay constraint T (must lie in (0, horizon])

problem options:
  --eps E             reliability bound (default 0.01)
  --source N          source node (default 0)
  --tau T             edge traversal latency (default 0)
  --budget C          energy budget (default: unconstrained)
  --targets A,B,...   nodes that must be informed (default: all)

trace options (when the file has no header line):
  --nodes N           node count
  --horizon T         time horizon

channel options (defaults: the paper Sec. VII radio):
  --model M           step | rayleigh | nakagami | rician (default step)
  --nakagami-m M      Nakagami shape (default 2)
  --rician-k K        Rician K-factor (default 3)
  --noise N0          noise power density (default 4.32e-21)
  --gamma-db G        decoding SNR threshold in dB (default 25.9)
  --alpha A           path-loss exponent (default 2)
  --w-min W           minimum per-transmission cost (default 0)
  --w-max W           maximum per-transmission cost (default inf)

certifier options:
  --no-dts-check      skip the DTS-membership check (condition v)
  --dts-tol T         DTS membership tolerance (default 1e-6)
  --json FILE         also write the JSON verdict to FILE
  --quiet             suppress the human-readable summary on stderr
)";

tveg::channel::ChannelModel parse_model(const std::string& name) {
  if (name == "step") return tveg::channel::ChannelModel::kStep;
  if (name == "rayleigh") return tveg::channel::ChannelModel::kRayleigh;
  if (name == "nakagami") return tveg::channel::ChannelModel::kNakagami;
  if (name == "rician") return tveg::channel::ChannelModel::kRician;
  throw UsageError("unknown channel model '" + name + "'");
}

std::vector<tveg::NodeId> parse_targets(const std::string& list) {
  std::vector<tveg::NodeId> out;
  std::stringstream ss(list);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      std::size_t used = 0;
      const int v = std::stoi(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      out.push_back(v);
    } catch (const std::exception&) {
      throw UsageError("--targets expects a comma-separated node list, got '" +
                       tok + "'");
    }
  }
  return out;
}

int run(int argc, char** argv) {
  const Args::Spec spec{
      {"trace", "schedule", "deadline", "eps", "source", "tau", "budget",
       "targets", "nodes", "horizon", "model", "nakagami-m", "rician-k",
       "noise", "gamma-db", "alpha", "w-min", "w-max", "dts-tol", "json"},
      {"no-dts-check", "quiet", "help"}};
  const Args args(argc - 1, argv + 1, spec);
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  for (const char* req : {"trace", "schedule", "deadline"})
    if (!args.has(req))
      throw UsageError(std::string("missing required option --") + req);
  if (!args.positional().empty())
    throw UsageError("unexpected positional argument '" +
                     args.positional().front() + "'");

  Options opt;
  opt.deadline = args.get_num("deadline", 0);
  opt.epsilon = args.get_num("eps", opt.epsilon);
  opt.source = static_cast<tveg::NodeId>(args.get_num("source", 0));
  opt.tau = args.get_num("tau", 0);
  opt.budget = args.get_num("budget", -1);
  if (args.has("targets")) opt.targets = parse_targets(args.get("targets", ""));
  opt.model = parse_model(args.get("model", "step"));
  opt.nakagami_m = args.get_num("nakagami-m", opt.nakagami_m);
  opt.rician_k = args.get_num("rician-k", opt.rician_k);
  opt.noise_density = args.get_num("noise", opt.noise_density);
  opt.decoding_threshold_db = args.get_num("gamma-db",
                                           opt.decoding_threshold_db);
  opt.path_loss_exponent = args.get_num("alpha", opt.path_loss_exponent);
  opt.w_min = args.get_num("w-min", opt.w_min);
  opt.w_max = args.get_num("w-max", opt.w_max);
  opt.dts_tolerance = args.get_num("dts-tol", opt.dts_tolerance);
  opt.check_dts = !args.has("no-dts-check");

  tveg::trace::ParseOptions trace_opt;
  trace_opt.nodes = static_cast<tveg::NodeId>(args.get_num("nodes", 0));
  trace_opt.horizon = args.get_num("horizon", 0);
  auto trace = tveg::trace::parse_trace_file(args.get("trace", ""), trace_opt);
  if (!trace) {
    std::cerr << "tveg-certify: trace: " << trace.error().to_string() << "\n";
    return 2;
  }

  std::vector<tveg::certify::Transmission> schedule;
  try {
    schedule = tveg::certify::parse_schedule_file(args.get("schedule", ""));
  } catch (const std::invalid_argument& e) {
    std::cerr << "tveg-certify: schedule: " << e.what() << "\n";
    return 2;
  }

  tveg::certify::Verdict verdict;
  try {
    verdict = tveg::certify::verify(trace.value(), schedule, opt);
  } catch (const std::invalid_argument& e) {
    std::cerr << "tveg-certify: " << e.what() << "\n";
    return 2;
  }

  std::cout << verdict.json() << "\n";
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    out << verdict.json() << "\n";
    if (!out) {
      std::cerr << "tveg-certify: cannot write " << args.get("json", "")
                << "\n";
      return 2;
    }
  }
  if (!args.has("quiet")) {
    std::cerr << (verdict.feasible ? "FEASIBLE" : "REJECTED") << " ("
              << verdict.transmissions << " transmissions, total cost "
              << verdict.total_cost << ")\n";
    for (const auto& c : verdict.checks)
      if (!c.passed)
        std::cerr << "  failed " << c.id
                  << (c.detail.empty() ? "" : ": " + c.detail) << "\n";
  }
  return verdict.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "tveg-certify: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "tveg-certify: " << e.what() << "\n";
    return 2;
  }
}
