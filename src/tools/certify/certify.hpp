// Independent schedule certifier (the repo's external oracle).
//
// `certify::verify` re-implements the paper's feasibility conditions for a
// TMEDB schedule S = [R, T, W] directly from the text, with deliberately
// zero dependence on src/core/ solver internals:
//
//   (i)   every relay is informed (Eq. 6 cumulative failure probability
//         <= eps) at the moment it transmits,
//   (ii)  every target node is informed by the deadline T,
//   (iii) the last transmission finishes (start + tau) by T,
//   (iv)  total cost is within budget and each cost lies in [w_min, w_max]
//         (Eq. 14-17 allocation validity for FR schedules),
//   (v)   every transmit time is a DTS point (Def. 5.2), checked against an
//         independently constructed adjacent-partition + "+tau" closure.
//
// The only project headers this subsystem may include are support/ (scalar
// helpers), trace/ (the raw contact records and their parser), channel/
// (the ED-function physics, which is the problem statement, not the
// solver), and tvg/types.hpp. It must NOT include core/, graph/, nlp/,
// sim/, fault/, tvg/dts.hpp or tvg/time_varying_graph.hpp — adjacency,
// distance-at-t, the Eq. 6 replay and the DTS closure are re-derived here
// from the contact list alone. tveg-lint's no-core-include-in-certify rule
// enforces the core/ ban mechanically; DESIGN.md "Correctness tooling"
// documents the full table.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "channel/ed_function.hpp"
#include "support/math.hpp"
#include "tvg/types.hpp"

namespace tveg::trace {
class ContactTrace;
}

namespace tveg::certify {

/// One scheduled transmission: node `relay` transmits at `time` with energy
/// `cost`. Mirrors the paper's S = [R, T, W] triples; intentionally not the
/// core::Transmission type.
struct Transmission {
  NodeId relay = 0;
  Time time = 0;
  Cost cost = 0;

  bool operator==(const Transmission&) const = default;
};

/// Certification parameters. Radio defaults are the paper Sec. VII values
/// (identical to channel::RadioParams defaults).
struct Options {
  NodeId source = 0;
  /// Delay constraint T. Must lie in (0, horizon].
  Time deadline = 0;
  /// Reliability bound eps in (0, 1).
  double epsilon = 0.01;
  /// Edge traversal latency tau >= 0.
  Time tau = 0;
  /// Energy budget B; negative means unconstrained.
  Cost budget = -1;
  /// Nodes that must be informed by T; empty means broadcast (all nodes).
  std::vector<NodeId> targets;

  channel::ChannelModel model = channel::ChannelModel::kStep;
  double nakagami_m = 2.0;
  double rician_k = 3.0;

  double noise_density = 4.32e-21;
  double decoding_threshold_db = 25.9;
  double path_loss_exponent = 2.0;
  Cost w_min = 0.0;
  Cost w_max = support::kInf;

  /// When false, skip the DTS-membership check (condition v). Schedules
  /// from continuous-time baselines are certified on conditions i-iv only.
  bool check_dts = true;

  /// Equal-time grouping / deadline-comparison tolerance.
  double time_tolerance = 1e-9;
  /// Slack added to eps when testing informedness (float-product drift).
  double probability_slack = 1e-12;
  /// Matching tolerance for DTS membership. Looser than the closure's
  /// dedup tolerance because the solver and the certifier may pick
  /// different representatives inside a 1e-9 cluster of +tau chains.
  double dts_tolerance = 1e-6;
  /// Safety cap on the independent closure; when hit, the DTS check is
  /// reported as skipped rather than guessed.
  std::size_t max_dts_points_per_node = 50000;
};

/// One named feasibility check with its outcome.
struct Check {
  std::string id;      ///< stable machine-readable identifier
  bool passed = false;
  std::string detail;  ///< human-readable evidence (empty when passed)
};

/// Certification result: overall verdict plus the per-check breakdown.
struct Verdict {
  bool feasible = false;
  std::size_t transmissions = 0;
  Cost total_cost = 0;
  /// max over targets of the Eq. 6 cumulative failure probability at T.
  double max_uninformed_probability = 1.0;
  std::vector<Check> checks;

  /// Lookup by check id; nullptr when absent.
  const Check* find(const std::string& id) const;
  /// Machine-readable verdict (single JSON object, no trailing newline).
  std::string json() const;
  /// Process exit status the CLI maps this verdict to: 0 ok, 1 rejected.
  int exit_code() const { return feasible ? 0 : 1; }
};

/// Certifies `schedule` against `trace` under `options`.
/// Throws std::invalid_argument on invalid *parameters* (bad source,
/// deadline outside (0, horizon], eps outside (0,1), tau < 0, bad radio
/// values) — parameter misuse is exit 2, not a verdict about the schedule.
Verdict verify(const trace::ContactTrace& trace,
               const std::vector<Transmission>& schedule,
               const Options& options);

/// Strict, independent parser for the `# tveg-schedule` text format: one
/// `<relay> <time> <cost>` triple per line, '#' comments and blank lines
/// ignored. Rejects wrong arity, trailing garbage, non-numeric or
/// non-finite fields, and non-integer relay tokens with a line-numbered
/// std::invalid_argument. Value-level problems (negative cost, relay out
/// of range, ...) are accepted here and rejected by verify() so they
/// surface as a verdict, not a parse error.
std::vector<Transmission> parse_schedule(std::istream& in);

/// As above from a file path (unreadable file -> std::invalid_argument).
std::vector<Transmission> parse_schedule_file(const std::string& path);

}  // namespace tveg::certify
