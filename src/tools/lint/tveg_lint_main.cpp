// tveg-lint CLI: domain-invariant checker for the tveg tree.
//
//   tveg-lint --root src                       # text rules over a tree
//   tveg-lint --root src --check-headers --include src --compiler g++
//                                              # + isolated header compiles
//   tveg-lint file.cpp [file2.hpp ...]         # explicit files
//   tveg-lint --root src --audit-suppressions  # stale allow() pragmas only
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O failure — mirroring the
// CLI's "bad input is exit 2" convention. scripts/lint.sh is the canonical
// driver; see tools/lint/rules.hpp for the rule table.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/rules.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: tveg-lint [options] [file ...]\n"
         "  --root <dir>      lint every .hpp/.cpp under <dir> (repeatable)\n"
         "  --include <dir>   include dir for --check-headers (repeatable)\n"
         "  --compiler <cxx>  compiler for --check-headers (default: $CXX "
         "or c++)\n"
         "  --check-headers   verify each header compiles in isolation\n"
         "  --audit-suppressions\n"
         "                    report stale tveg-lint: allow() pragmas "
         "instead of linting\n"
         "  --list-rules      print the rule ids and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> files;
  bool audit = false;
  tveg::lint::Options options;
  if (const char* cxx = std::getenv("CXX"); cxx != nullptr && *cxx != '\0')
    options.compiler = cxx;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usage();
      roots.emplace_back(v);
    } else if (arg == "--include") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.include_dirs.emplace_back(v);
    } else if (arg == "--compiler") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.compiler = v;
    } else if (arg == "--check-headers") {
      options.check_headers = true;
    } else if (arg == "--audit-suppressions") {
      audit = true;
    } else if (arg == "--list-rules") {
      for (const std::string& id : tveg::lint::rule_ids())
        std::cout << id << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tveg-lint: unknown option " << arg << "\n";
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (roots.empty() && files.empty()) return usage();

  std::vector<tveg::lint::Finding> findings;
  bool io_error = false;
  for (const std::string& root : roots) {
    auto tree = audit ? tveg::lint::audit_suppressions(root, options)
                      : tveg::lint::lint_tree(root, options);
    findings.insert(findings.end(), tree.begin(), tree.end());
  }
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "tveg-lint: cannot read " << file << "\n";
      io_error = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto one = audit ? tveg::lint::audit_file_suppressions(file, buf.str())
                     : tveg::lint::lint_source(file, buf.str());
    findings.insert(findings.end(), one.begin(), one.end());
    if (!audit && options.check_headers && file.size() > 4 &&
        file.compare(file.size() - 4, 4, ".hpp") == 0) {
      auto iso = tveg::lint::lint_header_isolation(file, options);
      findings.insert(findings.end(), iso.begin(), iso.end());
    }
  }

  for (const auto& finding : findings) {
    if (finding.rule == "io-error") io_error = true;
    std::cout << tveg::lint::to_string(finding) << "\n";
  }
  std::cerr << "tveg-lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}
