// tveg-lint: domain-invariant checks that generic tooling cannot know.
//
// clang-tidy (scripts/lint.sh) covers the language-level bug classes; this
// checker enforces the *project* invariants that keep the reproduction
// byte-stable and the ET-law equivalence arguments valid:
//
//   no-unseeded-rng          all randomness flows through support::Rng so a
//                            single seed reproduces every experiment; a stray
//                            std::rand/random_device breaks FaultLog and
//                            Monte-Carlo determinism silently.
//   no-wall-clock            wall-clock reads (time(), system_clock, ...) are
//                            non-deterministic inputs; only support::Deadline
//                            may consult a clock for budgets (steady_clock is
//                            allowed: it is monotonic and never feeds results).
//   unchecked-result         Result<T>::value() without a visible ok() /
//                            has_value() / !r guard nearby — the degrade
//                            ladder relies on callers branching, not asserting.
//   metrics-key              metric names must match the registered
//                            `tveg.<subsystem>.<name>` convention so exports
//                            stay machine-parsable and dashboards stable.
//   no-float                 `float` anywhere in src/: Eq. 6 cumulative replay
//                            and the Eq. 14–17 NLP accumulations require
//                            double precision; a single float truncation
//                            shifts breakpoint comparisons.
//   no-wall-clock-in-spans   span-tracing files (path contains "span") may
//                            read steady_clock but never a wall clock —
//                            exported traces must be monotone and
//                            machine-local; flight-recorder files (path
//                            contains "flight_record") may not touch
//                            <chrono> at all, because crash dumps are
//                            byte-stable for a fixed seed and therefore
//                            carry logical sequence numbers only.
//   header-not-self-contained  every .hpp must compile in isolation
//                            (include-what-you-use-lite, behind
//                            Options::check_headers since it shells out to
//                            the compiler).
//
// Suppression: a line containing `tveg-lint: allow(<rule-id>)` (normally in
// a trailing comment) silences that rule on that line only. Files under a
// `tools/` directory are exempt from the text rules — the linter's own rule
// tables necessarily spell the forbidden tokens.
//
// Suppressions are themselves audited: `tveg-lint --audit-suppressions`
// re-runs the text rules with every pragma ignored and reports, as
//   stale-suppression
// any allow() that no longer masks a finding of that rule on its line (the
// code was fixed or moved) or that names a rule this checker does not have.
// Stale pragmas are the rot that makes real suppressions unreviewable, so
// CI fails on them like any other finding.
#pragma once

#include <string>
#include <vector>

namespace tveg::lint {

/// One violation; `line` is 1-based.
struct Finding {
  std::string file;
  long line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  bool check_headers = false;           ///< run the isolated-compile rule
  std::string compiler = "c++";         ///< compiler for header checks
  std::vector<std::string> include_dirs;  ///< -I dirs for header checks
};

/// Every rule id this checker can emit, in documentation order.
const std::vector<std::string>& rule_ids();

/// Text rules against one file's contents; `path` drives per-file scoping
/// (e.g. support/rng.* may name random_device) and reporting.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& text);

/// Stale-suppression audit of one file: every `tveg-lint: allow(<rule>)`
/// pragma must still mask a finding of that rule on its own line.
/// (header-not-self-contained pragmas are exempt — that rule's findings
/// come from a compiler run and carry no stable line.)
std::vector<Finding> audit_file_suppressions(const std::string& path,
                                             const std::string& text);

/// audit_file_suppressions over every .hpp/.cpp under `root` (same walk as
/// lint_tree). Findings sorted by file then line.
std::vector<Finding> audit_suppressions(const std::string& root,
                                        const Options& options);

/// Isolated compilation of one header: `<compiler> -fsyntax-only -x c++`.
/// Empty result when the header is self-contained.
std::vector<Finding> lint_header_isolation(const std::string& path,
                                           const Options& options);

/// Walks `root` for .hpp/.cpp files (skipping tools/ and build dirs), runs
/// the text rules on each, and — when options.check_headers — the isolation
/// rule on each header. Findings come back sorted by file then line.
std::vector<Finding> lint_tree(const std::string& root,
                               const Options& options);

/// "file:line: [rule] message" — the canonical one-line rendering.
std::string to_string(const Finding& finding);

}  // namespace tveg::lint
