#include "tools/lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <tuple>

#include "tools/common/source_text.hpp"

namespace tveg::lint {

namespace {

using srctext::Views;
using srctext::line_of;
using srctext::line_starts;
using srctext::normalized;
using srctext::path_ends_with;
using srctext::strip;

/// The tveg-lint suppression marker; `honor == false` is the
/// audit-suppressions path, which wants every finding regardless of pragmas.
bool suppressed(bool honor, const std::string& text,
                const std::vector<std::size_t>& starts, long line,
                const std::string& rule) {
  return honor && srctext::suppressed(text, starts, line, "tveg-lint", rule);
}

/// One regex-driven token rule; `view_with_strings` selects which stripped
/// view it scans.
struct TokenRule {
  const char* id;
  const char* pattern;
  const char* message;
  bool view_with_strings = false;
};

const std::array<TokenRule, 3>& token_rules() {
  static const std::array<TokenRule, 3> rules = {{
      {"no-unseeded-rng",
       R"(\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bdefault_random_engine\b|\bmt19937(?:_64)?\b|\buniform_int_distribution\b|\buniform_real_distribution\b|(?:^|[^\w.:])rand\s*\()",
       "unseeded/platform randomness; draw from support::Rng so one seed "
       "reproduces the experiment"},
      {"no-wall-clock",
       R"(\bstd::time\s*\(|\bsystem_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\blocaltime\b|\bgmtime\b|\bstrftime\b|\basctime\b|\bctime\b|\bclock\s*\(|(?:^|[^\w.:>])time\s*\()",
       "wall-clock read; budgets go through support::Deadline, timing "
       "metrics use steady_clock"},
      {"no-float",
       R"(\bfloat\b)",
       "float in an accumulation codebase; Eq. 6 / Eq. 14-17 paths require "
       "double"},
  }};
  return rules;
}

bool rule_applies(const std::string& rule, const std::string& path) {
  if (rule == "no-unseeded-rng")
    return !path_ends_with(path, "support/rng.hpp") &&
           !path_ends_with(path, "support/rng.cpp");
  if (rule == "no-wall-clock")
    return !path_ends_with(path, "support/deadline.hpp");
  return true;
}

/// Registered metric subsystems; a key must read tveg.<subsystem>.<name>.
const char* kMetricKeyPattern =
    R"(^tveg\.(pool|obs|support|tvg|dts|aux|channel|trace|graph|steiner|nlp|core|eedcb|fr|prune|bip|online|fault|sim|mc|cli|cache|parallel|batch|govern|mem|alloc)\.[a-z0-9_]+(\.[a-z0-9_]+)*$)";

void check_metrics_keys(bool honor, const std::string& path,
                        const Views& views,
                        const std::vector<std::size_t>& starts,
                        const std::string& raw,
                        std::vector<Finding>& findings) {
  static const std::regex call(
      R"(\.(counter|gauge|histogram)\s*\(\s*"([^"\n]*)\")");
  static const std::regex key(kMetricKeyPattern);
  for (auto it = std::sregex_iterator(views.with_strings.begin(),
                                      views.with_strings.end(), call);
       it != std::sregex_iterator(); ++it) {
    const std::string literal = (*it)[2].str();
    if (std::regex_match(literal, key)) continue;
    const long line =
        line_of(starts, static_cast<std::size_t>(it->position(2)));
    if (suppressed(honor, raw, starts, line, "metrics-key")) continue;
    findings.push_back(
        {path, line, "metrics-key",
         "metric key \"" + literal +
             "\" does not match tveg.<subsystem>.<name> (registered "
             "subsystems: see tools/lint/rules.cpp)"});
  }
}

void check_unchecked_result(bool honor, const std::string& path,
                            const Views& views, const std::string& raw,
                            std::vector<Finding>& findings) {
  std::vector<std::string> lines;
  {
    std::istringstream in(views.tokens);
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }
  const auto starts = line_starts(raw);
  static const std::regex value_call(
      R"((?:std::move\s*\(\s*([A-Za-z_]\w*)\s*\)|([A-Za-z_]\w*))\s*\.\s*value\s*\(\s*\))");
  constexpr std::size_t kLookback = 30;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    for (auto it = std::sregex_iterator(lines[li].begin(), lines[li].end(),
                                        value_call);
         it != std::sregex_iterator(); ++it) {
      const std::string recv =
          (*it)[1].matched ? (*it)[1].str() : (*it)[2].str();
      const std::regex guard(
          "(" + recv + R"(\s*\.\s*(ok|has_value)\s*\()" + "|" +
          R"(!\s*)" + recv + R"(\b)" + "|" +
          R"((if|while)\s*\(\s*)" + recv + R"(\b)" + "|" +
          R"((TVEG_ASSERT\w*|TVEG_REQUIRE\w*|assert)\s*\(\s*)" + recv +
          R"(\b)" + "|" + recv + R"(\s*\?)" + ")");
      bool guarded = false;
      const std::size_t lo = li >= kLookback ? li - kLookback : 0;
      for (std::size_t back = li + 1; back-- > lo && !guarded;) {
        // the .value() expression itself must not count as its own guard
        std::string hay = lines[back];
        if (back == li)
          hay = hay.substr(0, static_cast<std::size_t>(it->position(0)));
        guarded = std::regex_search(hay, guard);
      }
      const long line = static_cast<long>(li + 1);
      if (!guarded &&
          !suppressed(honor, raw, starts, line, "unchecked-result"))
        findings.push_back(
            {path, line, "unchecked-result",
             recv + ".value() without a visible ok()/has_value()/!" + recv +
                 " guard; branch (or take_or_throw) instead of asserting"});
    }
  }
}

/// Observability-v2 invariant: span and flight-recorder code stays off the
/// wall clock. Span files (path contains "span") may use steady_clock —
/// trace timestamps must be monotone — but none of the wall clocks;
/// flight-recorder files (path contains "flight_record") must not touch
/// <chrono> at all: their dumps are byte-stable for a fixed seed, so
/// recorded payloads carry logical sequence numbers only.
void check_no_wall_clock_in_spans(bool honor, const std::string& path,
                                  const Views& views,
                                  const std::vector<std::size_t>& starts,
                                  const std::string& raw,
                                  std::vector<Finding>& findings) {
  const std::string p = normalized(path);
  const bool span_scope = p.find("span") != std::string::npos;
  const bool flight_scope = p.find("flight_record") != std::string::npos;
  if (!span_scope && !flight_scope) return;
  static const std::regex wall(
      R"(\bsystem_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\bstd::time\s*\(|\blocaltime\b|\bgmtime\b|\bstrftime\b|(?:^|[^\w.:>])clock\s*\()",
      std::regex::multiline);
  static const std::regex any_clock(
      R"(\bsteady_clock\b|\bchrono\b|::\s*now\s*\()", std::regex::multiline);
  const auto scan = [&](const std::regex& re, const char* message) {
    for (auto it = std::sregex_iterator(views.tokens.begin(),
                                        views.tokens.end(), re);
         it != std::sregex_iterator(); ++it) {
      const std::string matched = it->str();
      std::size_t off = static_cast<std::size_t>(it->position(0));
      const std::size_t skip = matched.find_first_not_of(" \t(,;=");
      if (skip != std::string::npos) off += skip;
      const long line = line_of(starts, off);
      if (suppressed(honor, raw, starts, line, "no-wall-clock-in-spans"))
        continue;
      findings.push_back({path, line, "no-wall-clock-in-spans", message});
    }
  };
  scan(wall,
       "wall-clock read in span-tracing code; span timestamps must come "
       "from steady_clock so exported traces are monotone");
  if (flight_scope)
    scan(any_clock,
         "clock use in flight-recorder code; dumps are byte-stable for a "
         "fixed seed, so events carry logical sequence numbers only");
}

/// Resource-governance invariant: a pooled loop in solver code must be
/// budget-aware. A `parallel_for` whose call region (through the matching
/// close paren, lambda bodies included) mentions neither a budget/cancel
/// token nor a poll is invisible to cooperative cancellation — the watchdog
/// can fire, and the pool keeps grinding the full index range anyway. Scoped
/// to the solver layers (core/, graph/, nlp/, sim/); support/ itself hosts
/// the mechanism and the obs/cli layers never loop on the pool.
void check_no_unbudgeted_pool_loop(bool honor, const std::string& path,
                                   const Views& views,
                                   const std::vector<std::size_t>& starts,
                                   const std::string& raw,
                                   std::vector<Finding>& findings) {
  const std::string p = normalized(path);
  const bool in_scope = p.find("/core/") != std::string::npos ||
                        p.find("/graph/") != std::string::npos ||
                        p.find("/nlp/") != std::string::npos ||
                        p.find("/sim/") != std::string::npos ||
                        p.find("pool_loop") != std::string::npos;
  if (!in_scope) return;
  static const std::regex call(R"(\bparallel_for\s*\()");
  static const std::regex budgeted(
      R"(\bbudget\b|\bcancel\b|\bpoll\s*\(|\.\s*check\s*\()");
  const std::string& hay = views.tokens;
  for (auto it = std::sregex_iterator(hay.begin(), hay.end(), call);
       it != std::sregex_iterator(); ++it) {
    const auto open = static_cast<std::size_t>(it->position(0)) +
                      it->str().size() - 1;
    // Match the call's closing paren; strings are blanked in this view, so
    // only structural parens count.
    std::size_t depth = 0;
    std::size_t end = open;
    for (; end < hay.size(); ++end) {
      if (hay[end] == '(') ++depth;
      if (hay[end] == ')' && --depth == 0) break;
    }
    const std::string region =
        hay.substr(static_cast<std::size_t>(it->position(0)),
                   end - static_cast<std::size_t>(it->position(0)) + 1);
    if (std::regex_search(region, budgeted)) continue;
    const long line =
        line_of(starts, static_cast<std::size_t>(it->position(0)));
    if (suppressed(honor, raw, starts, line, "no-unbudgeted-pool-loop"))
      continue;
    findings.push_back(
        {path, line, "no-unbudgeted-pool-loop",
         "parallel_for in solver code without a budget/cancel token or "
         "poll in the call region; pass options.budget.cancel (and poll "
         "the budget in the body) so governed solves can drain the pool"});
  }
}

/// Certifier-independence invariant: src/tools/certify re-derives schedule
/// feasibility from the paper text, so a certifier bug and a solver bug
/// would have to agree twice for a bad schedule to pass. That argument dies
/// the moment certify code includes solver headers — so certify-scoped
/// files (path contains "certify", excluding tests/certify/, whose sweep
/// tests legitimately drive the solvers) may include only support/, trace/,
/// channel/, cli/, tvg/types.hpp and their own headers. Direct includes
/// only: trace/contact_trace.hpp transitively pulls the TVG container, the
/// one documented exception (see tools/certify/certify.hpp).
void check_no_core_include_in_certify(bool honor, const std::string& path,
                                      const Views& views,
                                      const std::vector<std::size_t>& starts,
                                      const std::string& raw,
                                      std::vector<Finding>& findings) {
  const std::string p = normalized(path);
  const bool in_scope = p.find("certify") != std::string::npos &&
                        p.find("tests/certify") == std::string::npos;
  if (!in_scope) return;
  static const std::regex include(R"re(#\s*include\s*"([^"\n]+)")re");
  static const std::regex forbidden(
      R"(^(core|graph|nlp|sim|fault|online)/|^tvg/(dts|time_varying_graph)\.hpp$)");
  for (auto it = std::sregex_iterator(views.with_strings.begin(),
                                      views.with_strings.end(), include);
       it != std::sregex_iterator(); ++it) {
    const std::string header = (*it)[1].str();
    if (!std::regex_search(header, forbidden)) continue;
    const long line =
        line_of(starts, static_cast<std::size_t>(it->position(0)));
    if (suppressed(honor, raw, starts, line, "no-core-include-in-certify"))
      continue;
    findings.push_back(
        {path, line, "no-core-include-in-certify",
         "certifier code includes solver header \"" + header +
             "\"; tveg-certify must stay independent of the implementation "
             "it checks (allowed: support/, trace/, channel/, cli/, "
             "tvg/types.hpp)"});
  }
}

/// Flat-memory invariant (DESIGN.md "Data layout & hot-path memory"): the
/// solve core's hot-path state is dense and index-addressed — CSR arc
/// arrays, slot vectors, arithmetic vertex-id codecs. An `unordered_map` or
/// nested `std::vector<std::vector<...>>` declared in a hot-path header
/// reintroduces per-query hashing/pointer-chasing, so the rule flags them
/// in src/graph/ headers and core/aux_graph.hpp. Deliberate exceptions
/// (e.g. a cold-path memo) take a `tveg-lint: allow(no-map-in-hot-path)`
/// pragma with a comment defending the container choice.
void check_no_map_in_hot_path(bool honor, const std::string& path,
                              const Views& views,
                              const std::vector<std::size_t>& starts,
                              const std::string& raw,
                              std::vector<Finding>& findings) {
  const std::string p = normalized(path);
  const bool hot_header =
      path_ends_with(p, ".hpp") &&
      (p.find("/graph/") != std::string::npos ||
       path_ends_with(p, "core/aux_graph.hpp"));
  const bool in_scope =
      hot_header || p.find("map_in_hot_path") != std::string::npos;
  if (!in_scope) return;
  static const std::regex hot_container(
      R"(\bunordered_map\s*<|\bvector\s*<\s*(?:std\s*::\s*)?vector\b)");
  const std::string& hay = views.tokens;
  for (auto it = std::sregex_iterator(hay.begin(), hay.end(), hot_container);
       it != std::sregex_iterator(); ++it) {
    const long line =
        line_of(starts, static_cast<std::size_t>(it->position(0)));
    if (suppressed(honor, raw, starts, line, "no-map-in-hot-path")) continue;
    findings.push_back(
        {path, line, "no-map-in-hot-path",
         "unordered_map / nested vector in a hot-path header; use flat "
         "indexed storage (CSR offsets, slot arrays, arithmetic id codecs) "
         "per DESIGN.md \"Data layout & hot-path memory\""});
  }
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s)
    out += c == '\'' ? std::string("'\\''") : std::string(1, c);
  out += '\'';
  return out;
}

std::vector<Finding> lint_source_impl(const std::string& path,
                                      const std::string& text, bool honor) {
  std::vector<Finding> findings;
  const Views views = strip(text);
  const auto starts = line_starts(text);
  for (const TokenRule& rule : token_rules()) {
    if (!rule_applies(rule.id, path)) continue;
    const std::regex re(rule.pattern, std::regex::multiline);
    const std::string& hay = rule.view_with_strings ? views.with_strings
                                                    : views.tokens;
    for (auto it = std::sregex_iterator(hay.begin(), hay.end(), re);
         it != std::sregex_iterator(); ++it) {
      // group-less leading-context alternatives put the token one char in
      const std::string matched = it->str();
      std::size_t off = static_cast<std::size_t>(it->position(0));
      const std::size_t skip = matched.find_first_not_of(" \t(,;=");
      if (skip != std::string::npos) off += skip;
      const long line = line_of(starts, off);
      if (suppressed(honor, text, starts, line, rule.id)) continue;
      findings.push_back({path, line, rule.id, rule.message});
    }
  }
  check_metrics_keys(honor, path, views, starts, text, findings);
  check_unchecked_result(honor, path, views, text, findings);
  check_no_wall_clock_in_spans(honor, path, views, starts, text, findings);
  check_no_unbudgeted_pool_loop(honor, path, views, starts, text, findings);
  check_no_core_include_in_certify(honor, path, views, starts, text,
                                   findings);
  check_no_map_in_hot_path(honor, path, views, starts, text, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "no-unseeded-rng", "no-wall-clock",          "unchecked-result",
      "metrics-key",     "no-float",               "header-not-self-contained",
      "no-wall-clock-in-spans",                    "no-unbudgeted-pool-loop",
      "no-core-include-in-certify",                "no-map-in-hot-path",
  };
  return ids;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& text) {
  return lint_source_impl(path, text, /*honor=*/true);
}

std::vector<Finding> audit_file_suppressions(const std::string& path,
                                             const std::string& text) {
  std::vector<Finding> findings;
  const auto sites = srctext::suppression_sites(text, "tveg-lint");
  if (sites.empty()) return findings;
  // What the rules would say with every pragma ignored; a pragma is live
  // only if it still masks one of these on its own line.
  const std::vector<Finding> unsuppressed =
      lint_source_impl(path, text, /*honor=*/false);
  const auto& ids = rule_ids();
  for (const auto& [line, rule] : sites) {
    if (std::find(ids.begin(), ids.end(), rule) == ids.end()) {
      findings.push_back(
          {path, line, "stale-suppression",
           "allow(" + rule + ") names a rule tveg-lint does not have; " +
               "fix the id or delete the pragma"});
      continue;
    }
    // header-not-self-contained findings come from a compiler run, not the
    // text rules, and always report line 1 — auditing them line-by-line
    // would be noise, so they are exempt.
    if (rule == "header-not-self-contained") continue;
    const bool live = std::any_of(
        unsuppressed.begin(), unsuppressed.end(), [&](const Finding& f) {
          return f.line == line && f.rule == rule;
        });
    if (!live)
      findings.push_back(
          {path, line, "stale-suppression",
           "allow(" + rule + ") no longer masks a finding on this line; " +
               "the code was fixed or moved — delete the pragma"});
  }
  return findings;
}

std::vector<Finding> audit_suppressions(const std::string& root,
                                        const Options& options) {
  (void)options;
  std::vector<Finding> findings;
  std::string error;
  const auto files = srctext::source_files(root, error);
  if (!error.empty()) {
    findings.push_back({root, 0, "io-error", "cannot walk tree: " + error});
    return findings;
  }
  for (const std::string& file : files) {
    bool ok = false;
    const std::string text = srctext::read_file(file, ok);
    if (!ok) {
      findings.push_back({file, 0, "io-error", "cannot read file"});
      continue;
    }
    auto one = audit_file_suppressions(file, text);
    findings.insert(findings.end(), one.begin(), one.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_header_isolation(const std::string& path,
                                           const Options& options) {
  std::string cmd = options.compiler + " -std=c++20 -fsyntax-only -x c++";
  for (const std::string& dir : options.include_dirs)
    cmd += " -I" + shell_quote(dir);
  cmd += " " + shell_quote(path) + " 2>&1";
  std::string output;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr)
    return {{path, 1, "header-not-self-contained",
             "could not spawn compiler '" + options.compiler + "'"}};
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = std::fread(buf.data(), 1, buf.size(), pipe)) > 0)
    output.append(buf.data(), got);
  const int status = ::pclose(pipe);
  if (status == 0) return {};
  std::string first = output.substr(0, output.find('\n'));
  if (first.size() > 200) first = first.substr(0, 200) + "...";
  return {{path, 1, "header-not-self-contained",
           "does not compile in isolation: " + first}};
}

std::vector<Finding> lint_tree(const std::string& root,
                               const Options& options) {
  std::vector<Finding> findings;
  std::string error;
  const auto files = srctext::source_files(root, error);
  if (!error.empty()) {
    findings.push_back({root, 0, "io-error", "cannot walk tree: " + error});
    return findings;
  }
  for (const std::string& file : files) {
    bool ok = false;
    const std::string text = srctext::read_file(file, ok);
    if (!ok) {
      findings.push_back({file, 0, "io-error", "cannot read file"});
      continue;
    }
    auto one = lint_source(file, text);
    findings.insert(findings.end(), one.begin(), one.end());
    if (options.check_headers && path_ends_with(file, ".hpp")) {
      auto iso = lint_header_isolation(file, options);
      findings.insert(findings.end(), iso.begin(), iso.end());
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace tveg::lint
