#include "tools/lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <tuple>

namespace tveg::lint {

namespace {

namespace fs = std::filesystem;

/// Comment- and string-aware views of a source file. Both views preserve
/// byte offsets and line structure exactly (stripped characters become
/// spaces), so regex match positions map straight back to lines.
struct Views {
  std::string tokens;        ///< comments gone, string/char contents blanked
  std::string with_strings;  ///< comments gone, string literals kept
};

Views strip(const std::string& text) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  Views v;
  v.tokens.assign(text.size(), ' ');
  v.with_strings.assign(text.size(), ' ');
  State state = State::kCode;
  std::string raw_delim;  // ")delim" that terminates the active raw string
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      v.tokens[i] = '\n';
      v.with_strings[i] = '\n';
      if (state == State::kLine) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          std::size_t p = i + 2;
          raw_delim = ")";
          while (p < text.size() && text[p] != '(') raw_delim += text[p++];
          raw_delim += '"';
          v.tokens[i] = 'R';
          v.with_strings[i] = 'R';
          state = State::kRaw;
          // keep the opening quote visible in both views
          if (i + 1 < text.size()) {
            v.tokens[i + 1] = '"';
            v.with_strings[i + 1] = '"';
            ++i;
          }
        } else if (c == '"') {
          v.tokens[i] = '"';
          v.with_strings[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          v.tokens[i] = '\'';
          v.with_strings[i] = '\'';
          state = State::kChar;
        } else {
          v.tokens[i] = c;
          v.with_strings[i] = c;
        }
        break;
      case State::kLine:
        break;  // swallowed until newline
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        v.with_strings[i] = c;
        if (c == '\\' && next != '\0') {
          if (i + 1 < text.size() && next != '\n') v.with_strings[i + 1] = next;
          ++i;
        } else if (c == '"') {
          v.tokens[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          v.tokens[i] = '\'';
          v.with_strings[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        v.with_strings[i] = c;
        if (c == ')' &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          const std::size_t end = i + raw_delim.size() - 1;
          for (std::size_t p = i; p <= end && p < text.size(); ++p)
            if (text[p] != '\n') v.with_strings[p] = text[p];
          if (end < text.size()) {
            v.tokens[end] = '"';
            i = end;
          }
          state = State::kCode;
        }
        break;
    }
  }
  return v;
}

std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') starts.push_back(i + 1);
  return starts;
}

long line_of(const std::vector<std::size_t>& starts, std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<long>(it - starts.begin());
}

/// Per-line rule suppressions declared as `tveg-lint: allow(rule-a,rule-b)`.
bool suppressed(const std::string& text,
                const std::vector<std::size_t>& starts, long line,
                const std::string& rule) {
  const auto idx = static_cast<std::size_t>(line - 1);
  if (idx >= starts.size()) return false;
  const std::size_t begin = starts[idx];
  const std::size_t end =
      idx + 1 < starts.size() ? starts[idx + 1] : text.size();
  const std::string src_line = text.substr(begin, end - begin);
  const std::size_t at = src_line.find("tveg-lint: allow(");
  if (at == std::string::npos) return false;
  const std::size_t close = src_line.find(')', at);
  if (close == std::string::npos) return false;
  const std::string list = src_line.substr(at, close - at);
  return list.find(rule) != std::string::npos;
}

std::string normalized(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_ends_with(const std::string& path, const std::string& tail) {
  const std::string p = normalized(path);
  return p.size() >= tail.size() &&
         p.compare(p.size() - tail.size(), tail.size(), tail) == 0;
}

bool in_tools_dir(const std::string& path) {
  const std::string p = normalized(path);
  return p.find("/tools/") != std::string::npos ||
         p.rfind("tools/", 0) == 0;
}

/// One regex-driven token rule; `view_with_strings` selects which stripped
/// view it scans.
struct TokenRule {
  const char* id;
  const char* pattern;
  const char* message;
  bool view_with_strings = false;
};

const std::array<TokenRule, 3>& token_rules() {
  static const std::array<TokenRule, 3> rules = {{
      {"no-unseeded-rng",
       R"(\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bdefault_random_engine\b|\bmt19937(?:_64)?\b|\buniform_int_distribution\b|\buniform_real_distribution\b|(?:^|[^\w.:])rand\s*\()",
       "unseeded/platform randomness; draw from support::Rng so one seed "
       "reproduces the experiment"},
      {"no-wall-clock",
       R"(\bstd::time\s*\(|\bsystem_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\blocaltime\b|\bgmtime\b|\bstrftime\b|\basctime\b|\bctime\b|\bclock\s*\(|(?:^|[^\w.:>])time\s*\()",
       "wall-clock read; budgets go through support::Deadline, timing "
       "metrics use steady_clock"},
      {"no-float",
       R"(\bfloat\b)",
       "float in an accumulation codebase; Eq. 6 / Eq. 14-17 paths require "
       "double"},
  }};
  return rules;
}

bool rule_applies(const std::string& rule, const std::string& path) {
  if (rule == "no-unseeded-rng")
    return !path_ends_with(path, "support/rng.hpp") &&
           !path_ends_with(path, "support/rng.cpp");
  if (rule == "no-wall-clock")
    return !path_ends_with(path, "support/deadline.hpp");
  return true;
}

/// Registered metric subsystems; a key must read tveg.<subsystem>.<name>.
const char* kMetricKeyPattern =
    R"(^tveg\.(pool|obs|support|tvg|dts|aux|channel|trace|graph|steiner|nlp|core|eedcb|fr|prune|bip|online|fault|sim|mc|cli|cache|parallel|batch|govern|mem)\.[a-z0-9_]+(\.[a-z0-9_]+)*$)";

void check_metrics_keys(const std::string& path, const Views& views,
                        const std::vector<std::size_t>& starts,
                        const std::string& raw,
                        std::vector<Finding>& findings) {
  static const std::regex call(
      R"(\.(counter|gauge|histogram)\s*\(\s*"([^"\n]*)\")");
  static const std::regex key(kMetricKeyPattern);
  for (auto it = std::sregex_iterator(views.with_strings.begin(),
                                      views.with_strings.end(), call);
       it != std::sregex_iterator(); ++it) {
    const std::string literal = (*it)[2].str();
    if (std::regex_match(literal, key)) continue;
    const long line =
        line_of(starts, static_cast<std::size_t>(it->position(2)));
    if (suppressed(raw, starts, line, "metrics-key")) continue;
    findings.push_back(
        {path, line, "metrics-key",
         "metric key \"" + literal +
             "\" does not match tveg.<subsystem>.<name> (registered "
             "subsystems: see tools/lint/rules.cpp)"});
  }
}

void check_unchecked_result(const std::string& path, const Views& views,
                            const std::string& raw,
                            std::vector<Finding>& findings) {
  std::vector<std::string> lines;
  {
    std::istringstream in(views.tokens);
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }
  const auto starts = line_starts(raw);
  static const std::regex value_call(
      R"((?:std::move\s*\(\s*([A-Za-z_]\w*)\s*\)|([A-Za-z_]\w*))\s*\.\s*value\s*\(\s*\))");
  constexpr std::size_t kLookback = 30;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    for (auto it = std::sregex_iterator(lines[li].begin(), lines[li].end(),
                                        value_call);
         it != std::sregex_iterator(); ++it) {
      const std::string recv =
          (*it)[1].matched ? (*it)[1].str() : (*it)[2].str();
      const std::regex guard(
          "(" + recv + R"(\s*\.\s*(ok|has_value)\s*\()" + "|" +
          R"(!\s*)" + recv + R"(\b)" + "|" +
          R"((if|while)\s*\(\s*)" + recv + R"(\b)" + "|" +
          R"((TVEG_ASSERT\w*|TVEG_REQUIRE\w*|assert)\s*\(\s*)" + recv +
          R"(\b)" + "|" + recv + R"(\s*\?)" + ")");
      bool guarded = false;
      const std::size_t lo = li >= kLookback ? li - kLookback : 0;
      for (std::size_t back = li + 1; back-- > lo && !guarded;) {
        // the .value() expression itself must not count as its own guard
        std::string hay = lines[back];
        if (back == li)
          hay = hay.substr(0, static_cast<std::size_t>(it->position(0)));
        guarded = std::regex_search(hay, guard);
      }
      const long line = static_cast<long>(li + 1);
      if (!guarded && !suppressed(raw, starts, line, "unchecked-result"))
        findings.push_back(
            {path, line, "unchecked-result",
             recv + ".value() without a visible ok()/has_value()/!" + recv +
                 " guard; branch (or take_or_throw) instead of asserting"});
    }
  }
}

/// Observability-v2 invariant: span and flight-recorder code stays off the
/// wall clock. Span files (path contains "span") may use steady_clock —
/// trace timestamps must be monotone — but none of the wall clocks;
/// flight-recorder files (path contains "flight_record") must not touch
/// <chrono> at all: their dumps are byte-stable for a fixed seed, so
/// recorded payloads carry logical sequence numbers only.
void check_no_wall_clock_in_spans(const std::string& path, const Views& views,
                                  const std::vector<std::size_t>& starts,
                                  const std::string& raw,
                                  std::vector<Finding>& findings) {
  const std::string p = normalized(path);
  const bool span_scope = p.find("span") != std::string::npos;
  const bool flight_scope = p.find("flight_record") != std::string::npos;
  if (!span_scope && !flight_scope) return;
  static const std::regex wall(
      R"(\bsystem_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\bstd::time\s*\(|\blocaltime\b|\bgmtime\b|\bstrftime\b|(?:^|[^\w.:>])clock\s*\()",
      std::regex::multiline);
  static const std::regex any_clock(
      R"(\bsteady_clock\b|\bchrono\b|::\s*now\s*\()", std::regex::multiline);
  const auto scan = [&](const std::regex& re, const char* message) {
    for (auto it = std::sregex_iterator(views.tokens.begin(),
                                        views.tokens.end(), re);
         it != std::sregex_iterator(); ++it) {
      const std::string matched = it->str();
      std::size_t off = static_cast<std::size_t>(it->position(0));
      const std::size_t skip = matched.find_first_not_of(" \t(,;=");
      if (skip != std::string::npos) off += skip;
      const long line = line_of(starts, off);
      if (suppressed(raw, starts, line, "no-wall-clock-in-spans")) continue;
      findings.push_back({path, line, "no-wall-clock-in-spans", message});
    }
  };
  scan(wall,
       "wall-clock read in span-tracing code; span timestamps must come "
       "from steady_clock so exported traces are monotone");
  if (flight_scope)
    scan(any_clock,
         "clock use in flight-recorder code; dumps are byte-stable for a "
         "fixed seed, so events carry logical sequence numbers only");
}

/// Resource-governance invariant: a pooled loop in solver code must be
/// budget-aware. A `parallel_for` whose call region (through the matching
/// close paren, lambda bodies included) mentions neither a budget/cancel
/// token nor a poll is invisible to cooperative cancellation — the watchdog
/// can fire, and the pool keeps grinding the full index range anyway. Scoped
/// to the solver layers (core/, graph/, nlp/, sim/); support/ itself hosts
/// the mechanism and the obs/cli layers never loop on the pool.
void check_no_unbudgeted_pool_loop(const std::string& path, const Views& views,
                                   const std::vector<std::size_t>& starts,
                                   const std::string& raw,
                                   std::vector<Finding>& findings) {
  const std::string p = normalized(path);
  const bool in_scope = p.find("/core/") != std::string::npos ||
                        p.find("/graph/") != std::string::npos ||
                        p.find("/nlp/") != std::string::npos ||
                        p.find("/sim/") != std::string::npos ||
                        p.find("pool_loop") != std::string::npos;
  if (!in_scope) return;
  static const std::regex call(R"(\bparallel_for\s*\()");
  static const std::regex budgeted(
      R"(\bbudget\b|\bcancel\b|\bpoll\s*\(|\.\s*check\s*\()");
  const std::string& hay = views.tokens;
  for (auto it = std::sregex_iterator(hay.begin(), hay.end(), call);
       it != std::sregex_iterator(); ++it) {
    const auto open = static_cast<std::size_t>(it->position(0)) +
                      it->str().size() - 1;
    // Match the call's closing paren; strings are blanked in this view, so
    // only structural parens count.
    std::size_t depth = 0;
    std::size_t end = open;
    for (; end < hay.size(); ++end) {
      if (hay[end] == '(') ++depth;
      if (hay[end] == ')' && --depth == 0) break;
    }
    const std::string region =
        hay.substr(static_cast<std::size_t>(it->position(0)),
                   end - static_cast<std::size_t>(it->position(0)) + 1);
    if (std::regex_search(region, budgeted)) continue;
    const long line =
        line_of(starts, static_cast<std::size_t>(it->position(0)));
    if (suppressed(raw, starts, line, "no-unbudgeted-pool-loop")) continue;
    findings.push_back(
        {path, line, "no-unbudgeted-pool-loop",
         "parallel_for in solver code without a budget/cancel token or "
         "poll in the call region; pass options.budget.cancel (and poll "
         "the budget in the body) so governed solves can drain the pool"});
  }
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s)
    out += c == '\'' ? std::string("'\\''") : std::string(1, c);
  out += '\'';
  return out;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "no-unseeded-rng", "no-wall-clock",          "unchecked-result",
      "metrics-key",     "no-float",               "header-not-self-contained",
      "no-wall-clock-in-spans",                    "no-unbudgeted-pool-loop",
  };
  return ids;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& text) {
  std::vector<Finding> findings;
  const Views views = strip(text);
  const auto starts = line_starts(text);
  for (const TokenRule& rule : token_rules()) {
    if (!rule_applies(rule.id, path)) continue;
    const std::regex re(rule.pattern, std::regex::multiline);
    const std::string& hay = rule.view_with_strings ? views.with_strings
                                                    : views.tokens;
    for (auto it = std::sregex_iterator(hay.begin(), hay.end(), re);
         it != std::sregex_iterator(); ++it) {
      // group-less leading-context alternatives put the token one char in
      const std::string matched = it->str();
      std::size_t off = static_cast<std::size_t>(it->position(0));
      const std::size_t skip = matched.find_first_not_of(" \t(,;=");
      if (skip != std::string::npos) off += skip;
      const long line = line_of(starts, off);
      if (suppressed(text, starts, line, rule.id)) continue;
      findings.push_back({path, line, rule.id, rule.message});
    }
  }
  check_metrics_keys(path, views, starts, text, findings);
  check_unchecked_result(path, views, text, findings);
  check_no_wall_clock_in_spans(path, views, starts, text, findings);
  check_no_unbudgeted_pool_loop(path, views, starts, text, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_header_isolation(const std::string& path,
                                           const Options& options) {
  std::string cmd = options.compiler + " -std=c++20 -fsyntax-only -x c++";
  for (const std::string& dir : options.include_dirs)
    cmd += " -I" + shell_quote(dir);
  cmd += " " + shell_quote(path) + " 2>&1";
  std::string output;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr)
    return {{path, 1, "header-not-self-contained",
             "could not spawn compiler '" + options.compiler + "'"}};
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = std::fread(buf.data(), 1, buf.size(), pipe)) > 0)
    output.append(buf.data(), got);
  const int status = ::pclose(pipe);
  if (status == 0) return {};
  std::string first = output.substr(0, output.find('\n'));
  if (first.size() > 200) first = first.substr(0, 200) + "...";
  return {{path, 1, "header-not-self-contained",
           "does not compile in isolation: " + first}};
}

std::vector<Finding> lint_tree(const std::string& root,
                               const Options& options) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string p = it->path().generic_string();
    const std::string ext = it->path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    if (in_tools_dir(p)) continue;
    if (p.find("/build") != std::string::npos) continue;
    files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  if (ec) {
    findings.push_back({root, 0, "io-error",
                        "cannot walk tree: " + ec.message()});
    return findings;
  }
  for (const std::string& file : files) {
    bool ok = false;
    const std::string text = read_file(file, ok);
    if (!ok) {
      findings.push_back({file, 0, "io-error", "cannot read file"});
      continue;
    }
    auto one = lint_source(file, text);
    findings.insert(findings.end(), one.begin(), one.end());
    if (options.check_headers && path_ends_with(file, ".hpp")) {
      auto iso = lint_header_isolation(file, options);
      findings.insert(findings.end(), iso.begin(), iso.end());
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace tveg::lint
