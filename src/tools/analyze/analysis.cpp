#include "tools/analyze/analysis.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <tuple>

#include "tools/common/source_text.hpp"

namespace tveg::analyze {

namespace {

using srctext::Views;
using srctext::line_of;
using srctext::line_starts;

struct SourceFile {
  std::string path;
  std::string text;
  Views views;
  std::vector<std::size_t> starts;
};

bool allowed(const SourceFile& f, long line, const std::string& rule) {
  return srctext::suppressed(f.text, f.starts, line, "tveg-analyze", rule);
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// `id` as a whole identifier anywhere in `hay`.
bool mentions_identifier(const std::string& hay, const std::string& id) {
  std::size_t pos = 0;
  while ((pos = hay.find(id, pos)) != std::string::npos) {
    const bool lb = pos == 0 || !ident_char(hay[pos - 1]);
    const bool rb =
        pos + id.size() >= hay.size() || !ident_char(hay[pos + id.size()]);
    if (lb && rb) return true;
    pos += 1;
  }
  return false;
}

std::string camel_to_snake(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (std::isupper(static_cast<unsigned char>(c))) {
      if (!out.empty()) out += '_';
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Manifest (src/obs/keys.hpp) checks
// ---------------------------------------------------------------------------

struct ManifestEntry {
  std::string name;   ///< constant identifier, e.g. kCacheHits
  std::string value;  ///< key literal, e.g. tveg.cache.hits
  bool prefix = false;
  long line = 0;
};

struct FlightName {
  std::string name;
  long line = 0;
};

struct Manifest {
  const SourceFile* file = nullptr;
  std::vector<ManifestEntry> entries;
  bool has_flight_list = false;
  std::vector<FlightName> flight_names;
};

Manifest parse_manifest(const SourceFile& f) {
  Manifest m;
  m.file = &f;
  static const std::regex entry_re(
      R"re((k[A-Za-z0-9]\w*)\s*\[\]\s*=\s*"([^"]*)")re");
  const std::string& hay = f.views.with_strings;
  for (auto it = std::sregex_iterator(hay.begin(), hay.end(), entry_re);
       it != std::sregex_iterator(); ++it) {
    ManifestEntry e;
    e.name = (*it)[1].str();
    if (e.name == "kFlightEventNames") continue;
    e.value = (*it)[2].str();
    e.prefix = (e.name.size() > 6 &&
                e.name.compare(e.name.size() - 6, 6, "Prefix") == 0) ||
               (!e.value.empty() && e.value.back() == '.');
    e.line = line_of(f.starts, static_cast<std::size_t>(it->position(1)));
    m.entries.push_back(std::move(e));
  }
  const std::size_t at = hay.find("kFlightEventNames");
  if (at == std::string::npos) return m;
  m.has_flight_list = true;
  const std::size_t end = hay.find('}', at);
  const std::string region =
      hay.substr(at, (end == std::string::npos ? hay.size() : end) - at);
  static const std::regex name_re(R"re("([a-z0-9_]+)")re");
  for (auto it = std::sregex_iterator(region.begin(), region.end(), name_re);
       it != std::sregex_iterator(); ++it)
    m.flight_names.push_back(
        {(*it)[1].str(),
         line_of(f.starts, at + static_cast<std::size_t>(it->position(1)))});
  return m;
}

bool key_in_manifest(const Manifest& m, const std::string& literal) {
  for (const ManifestEntry& e : m.entries) {
    if (literal == e.value) return true;
    if (e.prefix && literal.size() > e.value.size() &&
        literal.compare(0, e.value.size(), e.value) == 0)
      return true;
  }
  return false;
}

void check_manifest(const std::vector<SourceFile>& files, const Manifest& m,
                    std::vector<Finding>& findings) {
  static const std::regex lit_re(R"re("(tveg\.[A-Za-z0-9_.]*)")re");
  static const std::regex flight_re(R"(FlightEventKind\s*::\s*k([A-Z]\w*))");
  std::vector<std::string> literals;  // every tveg.* literal outside keys.hpp
  std::set<std::string> used_flight;
  for (const SourceFile& f : files) {
    const bool is_manifest = m.file == &f;
    if (!is_manifest) {
      const std::string& hay = f.views.with_strings;
      for (auto it = std::sregex_iterator(hay.begin(), hay.end(), lit_re);
           it != std::sregex_iterator(); ++it) {
        const std::string literal = (*it)[1].str();
        literals.push_back(literal);
        if (key_in_manifest(m, literal)) continue;
        const long line =
            line_of(f.starts, static_cast<std::size_t>(it->position(1)));
        if (allowed(f, line, "metrics-manifest")) continue;
        findings.push_back(
            {f.path, line, "metrics-manifest",
             "key \"" + literal +
                 "\" is not in the keys.hpp manifest; add a constant there "
                 "(and use it) or fix the typo"});
      }
    }
    const std::string& tok = f.views.tokens;
    for (auto it = std::sregex_iterator(tok.begin(), tok.end(), flight_re);
         it != std::sregex_iterator(); ++it) {
      const std::string snake = camel_to_snake((*it)[1].str());
      used_flight.insert(snake);
      if (!m.has_flight_list) continue;
      const bool listed = std::any_of(
          m.flight_names.begin(), m.flight_names.end(),
          [&](const FlightName& fn) { return fn.name == snake; });
      if (listed) continue;
      const long line =
          line_of(f.starts, static_cast<std::size_t>(it->position(0)));
      if (allowed(f, line, "flight-manifest")) continue;
      findings.push_back(
          {f.path, line, "flight-manifest",
           "FlightEventKind::k" + (*it)[1].str() + " (\"" + snake +
               "\") is missing from kFlightEventNames in the keys.hpp "
               "manifest"});
    }
  }
  // Dead entries: neither the identifier nor the literal value is used
  // anywhere outside the manifest itself.
  for (const ManifestEntry& e : m.entries) {
    bool live = false;
    for (const SourceFile& f : files) {
      if (m.file == &f) continue;
      if (mentions_identifier(f.views.tokens, e.name)) {
        live = true;
        break;
      }
    }
    if (!live)
      live = std::any_of(
          literals.begin(), literals.end(), [&](const std::string& l) {
            return l == e.value ||
                   (e.prefix && l.size() > e.value.size() &&
                    l.compare(0, e.value.size(), e.value) == 0);
          });
    if (live || allowed(*m.file, e.line, "manifest-dead-key")) continue;
    findings.push_back(
        {m.file->path, e.line, "manifest-dead-key",
         e.name + " (\"" + e.value +
             "\") is referenced nowhere outside the manifest; delete the "
             "dead key or wire up the call site"});
  }
  for (const FlightName& fn : m.flight_names) {
    if (used_flight.count(fn.name) != 0 ||
        allowed(*m.file, fn.line, "manifest-dead-key"))
      continue;
    findings.push_back(
        {m.file->path, fn.line, "manifest-dead-key",
         "flight event name \"" + fn.name +
             "\" has no FlightEventKind::k" + "... use anywhere; remove it "
             "from kFlightEventNames or restore the event"});
  }
}

// ---------------------------------------------------------------------------
// Lock-order graph
// ---------------------------------------------------------------------------

/// Normalized mutex identity: whitespace removed, `->` folded to `.`,
/// leading `this.` / `&` / `*` stripped. The same expression in two TUs
/// aggregates into one node — that is what makes the check cross-TU.
std::string normalize_mutex(const std::string& raw) {
  std::string s;
  for (const char c : raw)
    if (!std::isspace(static_cast<unsigned char>(c))) s += c;
  std::string t;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '-' && i + 1 < s.size() && s[i + 1] == '>') {
      t += '.';
      ++i;
    } else {
      t += s[i];
    }
  }
  while (!t.empty() && (t.front() == '&' || t.front() == '*'))
    t.erase(t.begin());
  if (t.rfind("this.", 0) == 0) t = t.substr(5);
  return t;
}

struct EdgeSite {
  std::string file;
  long line = 0;
};

/// from -> to -> first example site.
using LockGraph = std::map<std::string, std::map<std::string, EdgeSite>>;

struct LockEvent {
  enum class Kind { kAcquire, kRequireOpen, kUnlock };
  std::size_t offset = 0;
  Kind kind = Kind::kAcquire;
  std::vector<std::string> ids;  ///< normalized mutex ids
  std::string var;               ///< lock variable (acquire/unlock)
};

/// Splits a paren-group body on top-level commas.
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<LockEvent> lock_events(const SourceFile& f) {
  std::vector<LockEvent> events;
  const std::string& tok = f.views.tokens;
  static const std::regex acquire_re(
      R"((?:\bsupport\s*::\s*)?\bMutexLock\s+(\w+)\s*\(([^();]*)\))");
  static const std::regex std_acquire_re(
      R"(\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock)\s*<[^<>]*>\s+(\w+)\s*\(([^();]*)\))");
  static const std::regex unlock_re(R"(\b(\w+)\s*\.\s*unlock\s*\(\s*\))");
  const auto add_acquires = [&](const std::regex& re) {
    for (auto it = std::sregex_iterator(tok.begin(), tok.end(), re);
         it != std::sregex_iterator(); ++it) {
      LockEvent e;
      e.offset = static_cast<std::size_t>(it->position(0));
      e.kind = LockEvent::Kind::kAcquire;
      e.var = (*it)[1].str();
      for (const std::string& a : split_args((*it)[2].str())) {
        const std::string id = normalize_mutex(a);
        // std::adopt_lock / std::defer_lock tag arguments are not mutexes
        if (!id.empty() && id.rfind("std::", 0) != 0) e.ids.push_back(id);
      }
      if (!e.ids.empty()) events.push_back(std::move(e));
    }
  };
  add_acquires(acquire_re);
  add_acquires(std_acquire_re);
  for (auto it = std::sregex_iterator(tok.begin(), tok.end(), unlock_re);
       it != std::sregex_iterator(); ++it) {
    LockEvent e;
    e.offset = static_cast<std::size_t>(it->position(0));
    e.kind = LockEvent::Kind::kUnlock;
    e.var = (*it)[1].str();
    events.push_back(std::move(e));
  }
  // TVEG_REQUIRES(mu) on a *definition* means mu is held throughout the
  // body that follows — seed the graph with it. Declarations (`;` before
  // `{`) contribute nothing.
  std::size_t pos = 0;
  while ((pos = tok.find("TVEG_REQUIRES", pos)) != std::string::npos) {
    const std::size_t after = pos + 13;
    if ((pos > 0 && ident_char(tok[pos - 1])) ||
        (after < tok.size() && ident_char(tok[after]))) {
      pos = after;
      continue;
    }
    std::size_t open = after;
    while (open < tok.size() &&
           std::isspace(static_cast<unsigned char>(tok[open])))
      ++open;
    if (open >= tok.size() || tok[open] != '(') {
      pos = after;
      continue;
    }
    int depth = 0;
    std::size_t close = open;
    for (; close < tok.size(); ++close) {
      if (tok[close] == '(') ++depth;
      if (tok[close] == ')' && --depth == 0) break;
    }
    if (close >= tok.size()) break;
    const std::string args = tok.substr(open + 1, close - open - 1);
    std::size_t q = close + 1;
    while (q < tok.size() && tok[q] != '{' && tok[q] != ';' && tok[q] != '=')
      ++q;
    if (q < tok.size() && tok[q] == '{') {
      LockEvent e;
      e.offset = q;
      e.kind = LockEvent::Kind::kRequireOpen;
      for (const std::string& a : split_args(args)) {
        const std::string id = normalize_mutex(a);
        if (!id.empty() && id != "...") e.ids.push_back(id);
      }
      if (!e.ids.empty()) events.push_back(std::move(e));
    }
    pos = close;
  }
  std::sort(events.begin(), events.end(),
            [](const LockEvent& a, const LockEvent& b) {
              return a.offset < b.offset;
            });
  return events;
}

void scan_lock_order(const SourceFile& f, LockGraph& graph) {
  const std::vector<LockEvent> events = lock_events(f);
  if (events.empty()) return;
  struct Held {
    std::string id;
    std::string var;
    int scope = 0;
  };
  std::vector<Held> held;
  const std::string& tok = f.views.tokens;
  int depth = 0;
  std::size_t ei = 0;
  for (std::size_t i = 0; i < tok.size(); ++i) {
    const char c = tok[i];
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      while (!held.empty() && held.back().scope > depth) held.pop_back();
    }
    while (ei < events.size() && events[ei].offset == i) {
      const LockEvent& e = events[ei++];
      switch (e.kind) {
        case LockEvent::Kind::kAcquire:
        case LockEvent::Kind::kRequireOpen: {
          const long line = line_of(f.starts, e.offset);
          const bool drop = allowed(f, line, "lock-order-cycle");
          for (const std::string& id : e.ids) {
            for (const Held& h : held) {
              if (h.id == id || drop) continue;
              auto& slot = graph[h.id];
              if (slot.find(id) == slot.end())
                slot.emplace(id, EdgeSite{f.path, line});
            }
            held.push_back({id, e.var, depth});
          }
          break;
        }
        case LockEvent::Kind::kUnlock: {
          for (std::size_t k = held.size(); k-- > 0;) {
            if (held[k].var == e.var && !held[k].var.empty()) {
              held.erase(held.begin() + static_cast<std::ptrdiff_t>(k));
              break;
            }
          }
          break;
        }
      }
    }
  }
}

void check_lock_order(const std::vector<SourceFile>& files,
                      std::vector<Finding>& findings) {
  LockGraph graph;
  for (const SourceFile& f : files) scan_lock_order(f, graph);
  // DFS cycle detection with deterministic order and one finding per
  // distinct cycle (canonicalized by rotating to its smallest node).
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        const auto it = graph.find(node);
        if (it != graph.end()) {
          for (const auto& [next, site] : it->second) {
            if (color[next] == 2) continue;
            if (color[next] == 1) {
              const auto at =
                  std::find(stack.begin(), stack.end(), next);
              std::vector<std::string> cycle(at, stack.end());
              const auto min_it =
                  std::min_element(cycle.begin(), cycle.end());
              std::rotate(cycle.begin(), min_it, cycle.end());
              std::string canon;
              for (const std::string& n : cycle) canon += n + ";";
              if (!reported.insert(canon).second) continue;
              std::string path;
              for (std::size_t k = 0; k < cycle.size(); ++k)
                path += cycle[k] + " -> ";
              path += cycle.front();
              std::string sites;
              for (std::size_t k = 0; k < cycle.size(); ++k) {
                const std::string& a = cycle[k];
                const std::string& b = cycle[(k + 1) % cycle.size()];
                const EdgeSite& es = graph[a][b];
                if (!sites.empty()) sites += ", ";
                sites += a + " -> " + b + " at " + es.file + ":" +
                         std::to_string(es.line);
              }
              findings.push_back(
                  {site.file, site.line, "lock-order-cycle",
                   "lock-order cycle " + path + " (" + sites +
                       "); pick one acquisition order and document it in "
                       "DESIGN.md"});
              continue;
            }
            dfs(next);
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, _] : graph)
    if (color[node] == 0) dfs(node);
}

// ---------------------------------------------------------------------------
// Exception boundaries (noexcept-throw)
// ---------------------------------------------------------------------------

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",        "while",     "switch",   "catch",
      "return",   "sizeof",     "alignof",   "alignas",  "decltype",
      "noexcept", "static_assert",           "operator", "throw",
      "new",      "delete",     "assert",    "defined",  "case",
      "goto",     "co_await",   "co_return", "co_yield", "requires",
      "explicit", "template",   "typename",  "using",    "namespace",
      "else",     "do",         "try",       "constexpr"};
  return kw;
}

struct Definition {
  const SourceFile* file = nullptr;
  std::string name;     ///< last component, the cross-TU link key
  std::string display;  ///< as written, possibly qualified
  bool is_noexcept = false;
  std::size_t body_begin = 0;  ///< offset of the opening brace
  std::size_t body_end = 0;    ///< offset of the matching close brace
  /// try-block ranges covered by a catch (...) barrier.
  std::vector<std::pair<std::size_t, std::size_t>> guarded;
  bool thrower = false;
};

std::size_t match_brace(const std::string& tok, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tok.size(); ++i) {
    if (tok[i] == '{') ++depth;
    if (tok[i] == '}' && --depth == 0) return i;
  }
  return tok.size();
}

std::size_t match_paren(const std::string& tok, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tok.size(); ++i) {
    if (tok[i] == '(') ++depth;
    if (tok[i] == ')' && --depth == 0) return i;
  }
  return tok.size();
}

std::size_t skip_ws(const std::string& tok, std::size_t i) {
  while (i < tok.size() && std::isspace(static_cast<unsigned char>(tok[i])))
    ++i;
  return i;
}

/// Scans the token stream after a parameter list for the definition body,
/// classifying `noexcept` on the way. Returns npos when the construct is a
/// declaration/expression rather than a definition.
std::size_t find_body(const std::string& tok, std::size_t after_params,
                      bool& is_noexcept) {
  std::size_t q = after_params;
  is_noexcept = false;
  while (q < tok.size()) {
    q = skip_ws(tok, q);
    if (q >= tok.size()) break;
    const char c = tok[q];
    if (c == '{') return q;
    if (c == ';' || c == '=' || c == ',' || c == ')') return std::string::npos;
    if (c == ':') {
      // constructor init list: body is the first top-level '{'
      int pd = 0;
      ++q;
      while (q < tok.size()) {
        const char d = tok[q];
        if (d == '(') ++pd;
        if (d == ')') --pd;
        if (pd == 0 && d == '{') return q;
        if (pd == 0 && d == ';') return std::string::npos;
        ++q;
      }
      return std::string::npos;
    }
    if (c == '-' && q + 1 < tok.size() && tok[q + 1] == '>') {
      // trailing return type: scan to body or terminator
      q += 2;
      while (q < tok.size() && tok[q] != '{' && tok[q] != ';' &&
             tok[q] != '=')
        ++q;
      continue;
    }
    if (c == '&') {  // ref-qualifier
      ++q;
      continue;
    }
    if (ident_char(c)) {
      std::size_t w = q;
      while (w < tok.size() && ident_char(tok[w])) ++w;
      const std::string word = tok.substr(q, w - q);
      q = w;
      if (word == "noexcept") {
        is_noexcept = true;
        const std::size_t p = skip_ws(tok, q);
        if (p < tok.size() && tok[p] == '(') {
          const std::size_t close = match_paren(tok, p);
          std::string cond = tok.substr(p + 1, close - p - 1);
          cond.erase(std::remove_if(cond.begin(), cond.end(),
                                    [](unsigned char ch) {
                                      return std::isspace(ch) != 0;
                                    }),
                     cond.end());
          if (cond != "true") is_noexcept = false;
          q = close + 1;
        }
        continue;
      }
      if (word == "const" || word == "override" || word == "final" ||
          word == "mutable" || word == "volatile")
        continue;
      if (word.rfind("TVEG_", 0) == 0) {  // annotation macros
        const std::size_t p = skip_ws(tok, q);
        if (p < tok.size() && tok[p] == '(') q = match_paren(tok, p) + 1;
        continue;
      }
      return std::string::npos;  // an expression continues — not a def
    }
    return std::string::npos;
  }
  return std::string::npos;
}

void find_definitions(const SourceFile& f, std::vector<Definition>& defs) {
  const std::string& tok = f.views.tokens;
  static const std::regex def_re(
      R"(((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\()");
  for (auto it = std::sregex_iterator(tok.begin(), tok.end(), def_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position(0));
    if (at > 0 && ident_char(tok[at - 1])) continue;  // mid-token
    // member access before the name means a call, never a definition
    std::size_t back = at;
    while (back > 0 &&
           std::isspace(static_cast<unsigned char>(tok[back - 1])))
      --back;
    if (back > 0 && (tok[back - 1] == '.' ||
                     (back > 1 && tok[back - 2] == '-' &&
                      tok[back - 1] == '>')))
      continue;
    const std::string qualified = (*it)[1].str();
    const std::size_t sep = qualified.rfind("::");
    const std::string name =
        sep == std::string::npos ? qualified : qualified.substr(sep + 2);
    if (cpp_keywords().count(name) != 0) continue;
    const std::size_t open =
        at + static_cast<std::size_t>(it->length(0)) - 1;
    const std::size_t close = match_paren(tok, open);
    if (close >= tok.size()) continue;
    bool is_noexcept = false;
    const std::size_t body = find_body(tok, close + 1, is_noexcept);
    if (body == std::string::npos) continue;
    Definition d;
    d.file = &f;
    d.name = name;
    d.display = qualified;
    d.is_noexcept = is_noexcept;
    d.body_begin = body;
    d.body_end = match_brace(tok, body);
    // catch (...) barriers inside the body
    std::size_t pos = body;
    while ((pos = tok.find("try", pos + 1)) != std::string::npos &&
           pos < d.body_end) {
      if (ident_char(tok[pos - 1]) ||
          (pos + 3 < tok.size() && ident_char(tok[pos + 3])))
        continue;
      std::size_t brace = skip_ws(tok, pos + 3);
      if (brace >= tok.size() || tok[brace] != '{') continue;
      const std::size_t try_end = match_brace(tok, brace);
      bool catches_all = false;
      std::size_t q = skip_ws(tok, try_end + 1);
      while (q + 5 < tok.size() && tok.compare(q, 5, "catch") == 0) {
        const std::size_t po = skip_ws(tok, q + 5);
        if (po >= tok.size() || tok[po] != '(') break;
        const std::size_t pc = match_paren(tok, po);
        if (tok.substr(po, pc - po).find("...") != std::string::npos)
          catches_all = true;
        const std::size_t bo = skip_ws(tok, pc + 1);
        if (bo >= tok.size() || tok[bo] != '{') break;
        q = skip_ws(tok, match_brace(tok, bo) + 1);
      }
      if (catches_all) d.guarded.emplace_back(brace, try_end);
      pos = try_end;
    }
    defs.push_back(std::move(d));
  }
}

bool in_guarded(const Definition& d, std::size_t offset) {
  for (const auto& [lo, hi] : d.guarded)
    if (offset >= lo && offset <= hi) return true;
  return false;
}

void check_noexcept_throw(const std::vector<SourceFile>& files,
                          std::vector<Finding>& findings) {
  std::vector<Definition> defs;
  for (const SourceFile& f : files) find_definitions(f, defs);
  // Direct throwers: a `throw` token in the unguarded body.
  for (Definition& d : defs) {
    const std::string& tok = d.file->views.tokens;
    std::size_t pos = d.body_begin;
    while ((pos = tok.find("throw", pos + 1)) != std::string::npos &&
           pos < d.body_end) {
      const bool lb = !ident_char(tok[pos - 1]);
      const bool rb =
          pos + 5 >= tok.size() || !ident_char(tok[pos + 5]);
      if (lb && rb && !in_guarded(d, pos)) {
        d.thrower = true;
        break;
      }
    }
  }
  // Call graph: name -> definitions; calls resolved by last identifier.
  std::map<std::string, std::vector<const Definition*>> by_name;
  for (const Definition& d : defs) by_name[d.name].push_back(&d);
  static const std::regex call_re(
      R"(((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\()");
  struct Call {
    std::string name;
    std::size_t offset = 0;
  };
  const auto calls_of = [&](const Definition& d) {
    std::vector<Call> calls;
    const std::string& tok = d.file->views.tokens;
    const std::string body =
        tok.substr(d.body_begin, d.body_end - d.body_begin);
    for (auto it = std::sregex_iterator(body.begin(), body.end(), call_re);
         it != std::sregex_iterator(); ++it) {
      // Member calls (`obj.f(...)`, `p->f(...)`) are receiver-dispatched;
      // resolving them by bare name across unrelated classes produces
      // collisions (any `x.size()` against a throwing Json::size), so a
      // text tool only follows free and `::`-qualified calls.
      std::size_t back = static_cast<std::size_t>(it->position(0));
      while (back > 0 &&
             std::isspace(static_cast<unsigned char>(body[back - 1])))
        --back;
      if (back > 0 && (body[back - 1] == '.' ||
                       (back > 1 && body[back - 2] == '-' &&
                        body[back - 1] == '>')))
        continue;
      const std::string qualified = (*it)[1].str();
      const std::size_t sep = qualified.rfind("::");
      const std::string name =
          sep == std::string::npos ? qualified : qualified.substr(sep + 2);
      if (cpp_keywords().count(name) != 0) continue;
      if (by_name.find(name) == by_name.end()) continue;
      calls.push_back(
          {name, d.body_begin + static_cast<std::size_t>(it->position(0))});
    }
    return calls;
  };
  std::vector<std::vector<Call>> all_calls;
  all_calls.reserve(defs.size());
  for (const Definition& d : defs) all_calls.push_back(calls_of(d));
  const auto name_throws = [&](const std::string& name) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) return false;
    // A name with several definitions (Counter::add vs IntervalSet::add)
    // cannot be resolved by a text tool; propagating "any definition
    // throws" through it flags unrelated classes, so ambiguous names stop
    // the walk. Direct `throw` inside the noexcept body is still caught.
    if (it->second.size() > 1) return false;
    return it->second.front()->thrower;
  };
  // Fixpoint: callers of throwers become throwers (unless barriered).
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < defs.size(); ++i) {
      Definition& d = defs[i];
      if (d.thrower) continue;
      for (const Call& c : all_calls[i]) {
        if (c.name == d.name) continue;  // recursion/self-name
        if (in_guarded(d, c.offset)) continue;
        if (name_throws(c.name)) {
          d.thrower = true;
          changed = true;
          break;
        }
      }
    }
  }
  // Findings: noexcept definitions with an unguarded throw or a call that
  // can throw.
  for (std::size_t i = 0; i < defs.size(); ++i) {
    const Definition& d = defs[i];
    if (!d.is_noexcept) continue;
    const SourceFile& f = *d.file;
    const std::string& tok = f.views.tokens;
    std::size_t pos = d.body_begin;
    while ((pos = tok.find("throw", pos + 1)) != std::string::npos &&
           pos < d.body_end) {
      const bool lb = !ident_char(tok[pos - 1]);
      const bool rb =
          pos + 5 >= tok.size() || !ident_char(tok[pos + 5]);
      if (!lb || !rb || in_guarded(d, pos)) continue;
      const long line = line_of(f.starts, pos);
      if (allowed(f, line, "noexcept-throw")) continue;
      findings.push_back(
          {f.path, line, "noexcept-throw",
           "throw inside noexcept function '" + d.display +
               "'; a throw crossing a noexcept boundary is "
               "std::terminate"});
    }
    std::set<std::string> flagged;
    for (const Call& c : all_calls[i]) {
      if (c.name == d.name || in_guarded(d, c.offset)) continue;
      if (!name_throws(c.name)) continue;
      if (!flagged.insert(c.name).second) continue;
      const long line = line_of(f.starts, c.offset);
      if (allowed(f, line, "noexcept-throw")) continue;
      findings.push_back(
          {f.path, line, "noexcept-throw",
           "noexcept function '" + d.display + "' calls '" + c.name +
               "', which can throw; wrap the call in a catch (...) "
               "barrier or drop noexcept"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<std::string> compdb_files(const std::string& compdb,
                                      const std::string& root,
                                      std::string& error) {
  bool ok = false;
  const std::string text = srctext::read_file(compdb, ok);
  if (!ok) {
    error = "cannot read compile_commands: " + compdb;
    return {};
  }
  std::vector<std::string> files;
  static const std::regex file_re(R"re("file"\s*:\s*"([^"]+)")re");
  const std::string norm_root = srctext::normalized(root);
  for (auto it = std::sregex_iterator(text.begin(), text.end(), file_re);
       it != std::sregex_iterator(); ++it) {
    const std::string p = srctext::normalized((*it)[1].str());
    if (p.find(norm_root) == std::string::npos) continue;
    if (srctext::in_tools_dir(p)) continue;
    if (p.size() < 4 || p.compare(p.size() - 4, 4, ".cpp") != 0) continue;
    files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "metrics-manifest", "flight-manifest", "manifest-dead-key",
      "lock-order-cycle", "noexcept-throw",
  };
  return ids;
}

std::vector<Finding> analyze_tree(const std::string& root,
                                  const Options& options) {
  std::vector<Finding> findings;
  std::string error;
  std::vector<std::string> paths = srctext::source_files(root, error);
  if (!error.empty()) {
    findings.push_back({root, 0, "io-error", "cannot walk tree: " + error});
    return findings;
  }
  if (!options.compdb.empty()) {
    // compile_commands defines the .cpp list (exactly what the build
    // compiles); the walk keeps supplying headers.
    std::string compdb_error;
    const std::vector<std::string> tus =
        compdb_files(options.compdb, root, compdb_error);
    if (!compdb_error.empty()) {
      findings.push_back({options.compdb, 0, "io-error", compdb_error});
      return findings;
    }
    std::vector<std::string> merged;
    for (const std::string& p : paths)
      if (srctext::path_ends_with(p, ".hpp")) merged.push_back(p);
    merged.insert(merged.end(), tus.begin(), tus.end());
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    paths = std::move(merged);
  }
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    bool ok = false;
    std::string text = srctext::read_file(p, ok);
    if (!ok) {
      findings.push_back({p, 0, "io-error", "cannot read file"});
      continue;
    }
    SourceFile f;
    f.path = p;
    f.text = std::move(text);
    f.views = srctext::strip(f.text);
    f.starts = line_starts(f.text);
    files.push_back(std::move(f));
  }
  // The manifest is obs/keys.hpp when present (the real tree), else any
  // keys.hpp (fixture corpora); with neither, the manifest rules are moot.
  const SourceFile* manifest_file = nullptr;
  for (const SourceFile& f : files)
    if (srctext::path_ends_with(f.path, "obs/keys.hpp")) manifest_file = &f;
  if (manifest_file == nullptr)
    for (const SourceFile& f : files)
      if (srctext::path_ends_with(f.path, "keys.hpp")) manifest_file = &f;
  if (manifest_file != nullptr) {
    const Manifest manifest = parse_manifest(*manifest_file);
    check_manifest(files, manifest, findings);
  }
  check_lock_order(files, findings);
  check_noexcept_throw(files, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace tveg::analyze
