// tveg-analyze CLI: cross-TU invariant checker for the tveg tree.
//
//   tveg-analyze --root src                                # whole tree
//   tveg-analyze --root src --compdb build/compile_commands.json
//                                                          # build-accurate
//   tveg-analyze --root tests/analyze/corpus/bad_lock_cycle
//                                                          # a fixture
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O failure — the same
// convention as tveg-lint. scripts/lint.sh and scripts/ci.sh are the
// canonical drivers; see tools/analyze/analysis.hpp for the rule table.
#include <iostream>
#include <string>
#include <vector>

#include "tools/analyze/analysis.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: tveg-analyze [options] --root <dir>\n"
         "  --root <dir>      analyze every .hpp/.cpp under <dir> "
         "(repeatable)\n"
         "  --compdb <file>   compile_commands.json; restricts the .cpp "
         "list to what the build compiles\n"
         "  --list-rules      print the rule ids and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  tveg::analyze::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usage();
      roots.emplace_back(v);
    } else if (arg == "--compdb") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.compdb = v;
    } else if (arg == "--list-rules") {
      for (const std::string& id : tveg::analyze::rule_ids())
        std::cout << id << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tveg-analyze: unknown option " << arg << "\n";
      return usage();
    } else {
      // bare directory arguments behave like --root, mirroring the
      // `tveg-lint <fixture-dir>` ctest idiom
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<tveg::analyze::Finding> findings;
  for (const std::string& root : roots) {
    auto tree = tveg::analyze::analyze_tree(root, options);
    findings.insert(findings.end(), tree.begin(), tree.end());
  }

  bool io_error = false;
  for (const auto& finding : findings) {
    if (finding.rule == "io-error") io_error = true;
    std::cout << tveg::analyze::to_string(finding) << "\n";
  }
  std::cerr << "tveg-analyze: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}
