// tveg-analyze: cross-translation-unit invariant checks (static-analysis
// layer 2, see DESIGN.md "Static analysis & concurrency correctness").
//
// tveg-lint checks one file at a time; clang's -Wthread-safety checks one
// TU at a time. The invariants this tool enforces only exist *across* TUs:
//
//   metrics-manifest    every `tveg.*` string literal in the tree must be
//                       declared in the src/obs/keys.hpp manifest (exact
//                       match, or prefix match against a `*Prefix` entry for
//                       the dynamic families) — a typo'd key can otherwise
//                       ship and silently vanish from dashboards.
//   flight-manifest     every `FlightEventKind::kX` used anywhere must have
//                       its snake_case name listed in keys.hpp's
//                       kFlightEventNames, keeping dump consumers and the
//                       enum in lockstep.
//   manifest-dead-key   a manifest entry nothing references (neither its
//                       identifier nor its literal value appears outside
//                       keys.hpp) is a dead key and fails the build.
//   lock-order-cycle    the aggregate lock-order graph — edges from every
//                       MutexLock / lock_guard / unique_lock acquired while
//                       another is held, seeded with TVEG_REQUIRES
//                       annotations — must be acyclic across the whole tree.
//                       Two TUs can each be locally consistent and still
//                       deadlock against each other; only a cross-TU view
//                       catches it.
//   noexcept-throw      a function defined `noexcept` must not contain a
//                       reachable `throw` or call (transitively, across
//                       TUs) a function that throws, except under a
//                       `catch (...)` barrier. A throw crossing a noexcept
//                       boundary is std::terminate — on a pool worker that
//                       takes the whole process down.
//
// Mutex identity is the normalized lock-argument expression (whitespace
// removed, `->` folded to `.`, leading `this.` dropped), so `reg.mutex`
// and `ring.mutex` are distinct nodes while the same expression in two TUs
// aggregates into one. Sequential locks through one expression (shard
// loops) are self-edges and ignored. Function identity for the exception
// pass is the unqualified name; propagation follows only free and
// `::`-qualified calls through names with exactly one definition —
// receiver-dispatched `obj.f(...)` calls and ambiguous names stop the
// walk, since a text tool cannot resolve them (clang's per-TU analysis
// covers what this deliberately leaves out).
//
// Suppression: a line containing `tveg-analyze: allow(<rule-id>)` silences
// that rule on that line (for lock-order-cycle: drops edges recorded on
// that line; for manifest-dead-key: on the manifest entry's line). Files
// under tools/ are exempt, as with tveg-lint.
#pragma once

#include <string>
#include <vector>

namespace tveg::analyze {

/// One violation; `line` is 1-based.
struct Finding {
  std::string file;
  long line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Optional compile_commands.json; when set, its entries (restricted to
  /// the analyzed root) define the .cpp list so the tool sees exactly what
  /// the build compiles. Headers always come from the tree walk.
  std::string compdb;
};

/// Every rule id this tool can emit, in documentation order.
const std::vector<std::string>& rule_ids();

/// Runs all cross-TU checks over every .hpp/.cpp under `root` (skipping
/// tools/ and build dirs). Findings come back sorted by file then line.
std::vector<Finding> analyze_tree(const std::string& root,
                                  const Options& options);

/// "file:line: [rule] message" — the canonical one-line rendering.
std::string to_string(const Finding& finding);

}  // namespace tveg::analyze
