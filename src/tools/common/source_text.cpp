#include "tools/common/source_text.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tveg::srctext {

namespace fs = std::filesystem;

Views strip(const std::string& text) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  Views v;
  v.tokens.assign(text.size(), ' ');
  v.with_strings.assign(text.size(), ' ');
  State state = State::kCode;
  std::string raw_delim;  // ")delim" that terminates the active raw string
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      v.tokens[i] = '\n';
      v.with_strings[i] = '\n';
      if (state == State::kLine) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          std::size_t p = i + 2;
          raw_delim = ")";
          while (p < text.size() && text[p] != '(') raw_delim += text[p++];
          raw_delim += '"';
          v.tokens[i] = 'R';
          v.with_strings[i] = 'R';
          state = State::kRaw;
          // keep the opening quote visible in both views
          if (i + 1 < text.size()) {
            v.tokens[i + 1] = '"';
            v.with_strings[i + 1] = '"';
            ++i;
          }
        } else if (c == '"') {
          v.tokens[i] = '"';
          v.with_strings[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          v.tokens[i] = '\'';
          v.with_strings[i] = '\'';
          state = State::kChar;
        } else {
          v.tokens[i] = c;
          v.with_strings[i] = c;
        }
        break;
      case State::kLine:
        break;  // swallowed until newline
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        v.with_strings[i] = c;
        if (c == '\\' && next != '\0') {
          if (i + 1 < text.size() && next != '\n') v.with_strings[i + 1] = next;
          ++i;
        } else if (c == '"') {
          v.tokens[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          v.tokens[i] = '\'';
          v.with_strings[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        v.with_strings[i] = c;
        if (c == ')' &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          const std::size_t end = i + raw_delim.size() - 1;
          for (std::size_t p = i; p <= end && p < text.size(); ++p)
            if (text[p] != '\n') v.with_strings[p] = text[p];
          if (end < text.size()) {
            v.tokens[end] = '"';
            i = end;
          }
          state = State::kCode;
        }
        break;
    }
  }
  return v;
}

std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') starts.push_back(i + 1);
  return starts;
}

long line_of(const std::vector<std::size_t>& starts, std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<long>(it - starts.begin());
}

namespace {

std::string line_text(const std::string& text,
                      const std::vector<std::size_t>& starts, long line) {
  const auto idx = static_cast<std::size_t>(line - 1);
  if (idx >= starts.size()) return {};
  const std::size_t begin = starts[idx];
  const std::size_t end =
      idx + 1 < starts.size() ? starts[idx + 1] : text.size();
  return text.substr(begin, end - begin);
}

}  // namespace

bool suppressed(const std::string& text,
                const std::vector<std::size_t>& starts, long line,
                const std::string& marker, const std::string& rule) {
  const std::string src_line = line_text(text, starts, line);
  const std::string tag = marker + ": allow(";
  const std::size_t at = src_line.find(tag);
  if (at == std::string::npos) return false;
  const std::size_t close = src_line.find(')', at);
  if (close == std::string::npos) return false;
  const std::string list = src_line.substr(at, close - at);
  return list.find(rule) != std::string::npos;
}

std::vector<std::pair<long, std::string>> suppression_sites(
    const std::string& text, const std::string& marker) {
  std::vector<std::pair<long, std::string>> sites;
  const auto starts = line_starts(text);
  const std::string tag = marker + ": allow(";
  for (std::size_t li = 0; li < starts.size(); ++li) {
    const long line = static_cast<long>(li + 1);
    const std::string src_line = line_text(text, starts, line);
    const std::size_t at = src_line.find(tag);
    if (at == std::string::npos) continue;
    const std::size_t open = at + tag.size();
    const std::size_t close = src_line.find(')', open);
    if (close == std::string::npos) continue;
    std::string list = src_line.substr(open, close - open);
    std::size_t pos = 0;
    while (pos <= list.size()) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      std::string rule = list.substr(pos, comma - pos);
      const auto is_space = [](unsigned char ch) { return std::isspace(ch); };
      rule.erase(rule.begin(),
                 std::find_if_not(rule.begin(), rule.end(), is_space));
      rule.erase(std::find_if_not(rule.rbegin(), rule.rend(), is_space).base(),
                 rule.end());
      if (!rule.empty()) sites.emplace_back(line, rule);
      pos = comma + 1;
    }
  }
  return sites;
}

std::string normalized(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_ends_with(const std::string& path, const std::string& tail) {
  const std::string p = normalized(path);
  return p.size() >= tail.size() &&
         p.compare(p.size() - tail.size(), tail.size(), tail) == 0;
}

bool in_tools_dir(const std::string& path) {
  const std::string p = normalized(path);
  return p.find("/tools/") != std::string::npos ||
         p.rfind("tools/", 0) == 0;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> source_files(const std::string& root,
                                      std::string& error) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string p = it->path().generic_string();
    const std::string ext = it->path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    // tools/ sources are exempt (their rule tables spell the forbidden
    // tokens) — except the certifier, which the no-core-include-in-certify
    // independence rule exists to police and which triggers no other rule.
    if (in_tools_dir(p) && p.find("tools/certify") == std::string::npos)
      continue;
    if (p.find("/build") != std::string::npos) continue;
    files.push_back(p);
  }
  if (ec) {
    error = ec.message();
    return {};
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace tveg::srctext
