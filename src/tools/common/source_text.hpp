// Shared source-text machinery for the tveg developer tools (tveg-lint,
// tveg-analyze): a comment/string-aware lexer, line mapping, per-line
// `<tool>: allow(rule)` suppression parsing, and tree walking. Both tools
// operate on the same stripped views so a rule that matched in one tool
// maps to identical offsets in the other.
#pragma once

#include <string>
#include <vector>

namespace tveg::srctext {

/// Comment- and string-aware views of a source file. Both views preserve
/// byte offsets and line structure exactly (stripped characters become
/// spaces), so regex match positions map straight back to lines.
struct Views {
  std::string tokens;        ///< comments gone, string/char contents blanked
  std::string with_strings;  ///< comments gone, string literals kept
};

/// Builds both stripped views; handles //, /* */, "..." with escapes,
/// '...' and R"delim(...)delim" raw strings.
Views strip(const std::string& text);

/// Byte offset of the first character of each line (line 1 first).
std::vector<std::size_t> line_starts(const std::string& text);

/// 1-based line containing `offset`.
long line_of(const std::vector<std::size_t>& starts, std::size_t offset);

/// Per-line rule suppressions declared as `<marker>: allow(rule-a,rule-b)`
/// (normally in a trailing comment); `marker` is "tveg-lint" or
/// "tveg-analyze" so the two tools' pragmas never shadow each other.
bool suppressed(const std::string& text,
                const std::vector<std::size_t>& starts, long line,
                const std::string& marker, const std::string& rule);

/// The comma-separated rule list of every `<marker>: allow(...)` pragma in
/// `text`, as (line, rule) pairs — the raw material for stale-suppression
/// auditing.
std::vector<std::pair<long, std::string>> suppression_sites(
    const std::string& text, const std::string& marker);

/// Path with backslashes normalized to forward slashes.
std::string normalized(const std::string& path);

/// True when the normalized path ends with `tail`.
bool path_ends_with(const std::string& path, const std::string& tail);

/// True for paths under a tools/ directory (the linters' own rule tables
/// necessarily spell the forbidden tokens, so text rules skip them).
bool in_tools_dir(const std::string& path);

/// Whole-file read; `ok` reports whether the open succeeded.
std::string read_file(const std::string& path, bool& ok);

/// Every .hpp/.cpp under `root`, sorted, skipping tools/ (except
/// tools/certify, which the certifier-independence lint rule polices) and
/// build dirs. On walk failure returns empty and sets `error` to the OS
/// message.
std::vector<std::string> source_files(const std::string& root,
                                      std::string& error);

}  // namespace tveg::srctext
