#include "channel/profile.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tveg::channel {

void PiecewiseConstantProfile::add(Time t, double value) {
  TVEG_REQUIRE(samples_.empty() || t > samples_.back().t,
               "profile samples must be strictly increasing in time");
  samples_.push_back({t, value});
}

double PiecewiseConstantProfile::at(Time t) const {
  TVEG_REQUIRE(!samples_.empty(), "querying an empty profile");
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](Time value, const Sample& s) { return value < s.t; });
  if (it == samples_.begin()) return samples_.front().value;
  return (it - 1)->value;
}

std::size_t PiecewiseConstantProfile::segment(Time t) const {
  TVEG_REQUIRE(!samples_.empty(), "querying an empty profile");
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](Time value, const Sample& s) { return value < s.t; });
  if (it == samples_.begin()) return 0;
  return static_cast<std::size_t>((it - 1) - samples_.begin());
}

std::vector<Time> PiecewiseConstantProfile::breakpoints() const {
  std::vector<Time> out;
  for (std::size_t i = 1; i < samples_.size(); ++i)
    out.push_back(samples_[i].t);
  return out;
}

double PiecewiseConstantProfile::min_value() const {
  TVEG_REQUIRE(!samples_.empty(), "min of an empty profile");
  double m = samples_.front().value;
  for (const auto& s : samples_) m = std::min(m, s.value);
  return m;
}

double PiecewiseConstantProfile::max_value() const {
  TVEG_REQUIRE(!samples_.empty(), "max of an empty profile");
  double m = samples_.front().value;
  for (const auto& s : samples_) m = std::max(m, s.value);
  return m;
}

}  // namespace tveg::channel
