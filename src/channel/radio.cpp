#include "channel/radio.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace tveg::channel {

double RadioParams::gain(double distance) const {
  TVEG_REQUIRE(distance > 0, "distance must be positive");
  return std::pow(distance, -path_loss_exponent);
}

Cost RadioParams::step_min_cost(double distance) const {
  return noise_density * gamma_linear() / gain(distance);
}

double RadioParams::rayleigh_beta(double distance) const {
  // β = N0·γ_th / d^-α == N0·γ_th · d^α.
  return noise_density * gamma_linear() *
         std::pow(distance, path_loss_exponent);
}

void RadioParams::validate() const {
  TVEG_REQUIRE(noise_density > 0, "noise density must be positive");
  TVEG_REQUIRE(path_loss_exponent > 0, "path-loss exponent must be positive");
  TVEG_REQUIRE(w_min >= 0, "w_min must be non-negative");
  TVEG_REQUIRE(w_max > w_min, "w_max must exceed w_min");
  TVEG_REQUIRE(epsilon > 0 && epsilon < 1, "epsilon must lie in (0, 1)");
}

}  // namespace tveg::channel
