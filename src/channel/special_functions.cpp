#include "channel/special_functions.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace tveg::channel {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

/// Series expansion of P(a, x), converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Lentz continued fraction for Q(a, x), converges quickly for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  TVEG_REQUIRE(a > 0, "gamma shape must be positive");
  TVEG_REQUIRE(x >= 0, "gamma argument must be non-negative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  return 1.0 - regularized_gamma_p(a, x);
}

double bessel_i0(double x) {
  x = std::fabs(x);
  if (x < 15.0) {
    // Power series: I0(x) = Σ (x/2)^{2k} / (k!)^2.
    const double y = x * x / 4.0;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k < kMaxIterations; ++k) {
      term *= y / (static_cast<double>(k) * static_cast<double>(k));
      sum += term;
      if (term < sum * kEpsilon) break;
    }
    return sum;
  }
  // Asymptotic expansion for large argument.
  const double inv8x = 1.0 / (8.0 * x);
  const double series =
      1.0 + inv8x * (1.0 + inv8x * (4.5 + inv8x * 37.5));
  return std::exp(x) / std::sqrt(2.0 * M_PI * x) * series;
}

double bessel_i1(double x) {
  const double ax = std::fabs(x);
  double result;
  if (ax < 15.0) {
    // I1(x) = (x/2) Σ (x²/4)^k / (k! (k+1)!).
    const double y = ax * ax / 4.0;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k < kMaxIterations; ++k) {
      term *= y / (static_cast<double>(k) * static_cast<double>(k + 1));
      sum += term;
      if (term < sum * kEpsilon) break;
    }
    result = ax / 2.0 * sum;
  } else {
    const double inv8x = 1.0 / (8.0 * ax);
    const double series =
        1.0 - inv8x * (3.0 + inv8x * (7.5 + inv8x * 52.5));
    result = std::exp(ax) / std::sqrt(2.0 * M_PI * ax) * series;
  }
  return x < 0 ? -result : result;
}

double marcum_q1(double a, double b) {
  TVEG_REQUIRE(a >= 0 && b >= 0, "Marcum Q arguments must be non-negative");
  if (b == 0.0) return 1.0;
  // Q1(a, b) = 1 - F(b²) where F is the CDF of a noncentral chi-square with
  // 2 degrees of freedom and noncentrality a²: a Poisson(a²/2) mixture of
  // central chi-squares, each reducing to a regularized gamma.
  const double lambda = a * a / 2.0;
  const double x = b * b / 2.0;
  double log_poisson = -lambda;  // log of e^{-λ} λ^k / k! at k = 0
  double cdf = 0.0;
  const int max_k =
      static_cast<int>(lambda + 12.0 * std::sqrt(lambda + 1.0)) + 30;
  for (int k = 0; k <= max_k; ++k) {
    cdf += std::exp(log_poisson) *
           regularized_gamma_p(static_cast<double>(k) + 1.0, x);
    log_poisson += std::log(lambda) - std::log(static_cast<double>(k) + 1.0);
    if (lambda == 0.0) break;  // only the k = 0 term exists
  }
  return std::fmin(std::fmax(1.0 - cdf, 0.0), 1.0);
}

}  // namespace tveg::channel
