// Energy-demand functions (paper Sec. III-B/C).
//
// An ED-function φ maps a transmit cost w to the probability that the
// transmission FAILS to be decoded at the receiver. Property 3.1 requires:
//   (i)  φ(w) → 0 as w → ∞ (when the edge is present),
//   (ii) φ(0) = 1,
//   (iii) φ ≡ 1 when the edge is absent,
//   (iv) φ is non-increasing.
// Absence of the edge is handled at the graph layer (ρ_τ); the objects here
// model a present edge at a fixed time.
#pragma once

#include <memory>

#include "support/math.hpp"
#include "tvg/types.hpp"

namespace tveg::channel {

/// Interface for one edge-at-one-time energy-demand function.
class EdFunction {
 public:
  virtual ~EdFunction() = default;

  /// φ(w): probability of failed decoding at transmit cost w >= 0.
  virtual double failure_probability(Cost w) const = 0;

  /// Smallest cost w with φ(w) <= target_failure, or +inf when unattainable
  /// at any finite cost. target_failure ∈ (0, 1).
  virtual Cost min_cost_for(double target_failure) const = 0;

  /// dφ/dw at w > 0 (<= 0 by Property 3.1(iv)); default central difference,
  /// overridden with the closed form where available. Used by the
  /// gradient-based energy-allocation solver.
  virtual double failure_derivative(Cost w) const;

  /// True for deterministic (0/1) step functions — the static-channel model.
  virtual bool deterministic() const { return false; }
};

/// Step ED-function (Eq. 2): φ(w) = 0 iff w >= threshold, else 1.
/// The static-channel model, threshold = N0·γ_th / h_{i,j,t}.
class StepEdFunction final : public EdFunction {
 public:
  explicit StepEdFunction(Cost threshold);
  double failure_probability(Cost w) const override;
  Cost min_cost_for(double target_failure) const override;
  bool deterministic() const override { return true; }
  Cost threshold() const { return threshold_; }

 private:
  Cost threshold_;
};

/// Rayleigh fading ED-function (Eq. 5): φ(w) = 1 − exp(−β/w),
/// β = N0·γ_th·d^α.
class RayleighEdFunction final : public EdFunction {
 public:
  explicit RayleighEdFunction(double beta);
  double failure_probability(Cost w) const override;
  /// Closed form: w = β / ln(1 / (1 − target)).
  Cost min_cost_for(double target_failure) const override;
  /// Closed form: dφ/dw = −exp(−β/w)·β/w².
  double failure_derivative(Cost w) const override;
  double beta() const { return beta_; }

 private:
  double beta_;
};

/// Nakagami-m fading ED-function (paper footnote 1 extension): |h|² is
/// Gamma(m, σ²/m) distributed, so φ(w) = P(m, m·β/w) with the regularized
/// lower incomplete gamma P. m = 1 recovers Rayleigh.
class NakagamiEdFunction final : public EdFunction {
 public:
  NakagamiEdFunction(double m, double beta);
  double failure_probability(Cost w) const override;
  /// Monotone bisection (no closed form for general m).
  Cost min_cost_for(double target_failure) const override;
  double shape() const { return m_; }
  double beta() const { return beta_; }

 private:
  double m_;
  double beta_;
};

/// Rician fading ED-function (paper footnote 1 extension): a line-of-sight
/// component with Rician K-factor; φ(w) = 1 − Q1(√(2K), √(2(K+1)β/w)).
/// K = 0 recovers Rayleigh.
class RicianEdFunction final : public EdFunction {
 public:
  RicianEdFunction(double k_factor, double beta);
  double failure_probability(Cost w) const override;
  /// Monotone bisection.
  Cost min_cost_for(double target_failure) const override;
  double k_factor() const { return k_; }
  double beta() const { return beta_; }

 private:
  double k_;
  double beta_;
};

/// Channel-model selector used when materializing ED-functions from a TVEG's
/// per-edge distance profiles.
enum class ChannelModel {
  kStep,      ///< deterministic static channel (Eq. 2)
  kRayleigh,  ///< Rayleigh fading (Eq. 5)
  kNakagami,  ///< Nakagami-m fading (extension)
  kRician,    ///< Rician fading (extension)
};

/// Human-readable channel-model name ("step", "rayleigh", ...).
const char* channel_model_name(ChannelModel model);

}  // namespace tveg::channel
