#include "channel/ed_function.hpp"

#include <cmath>

#include "channel/special_functions.hpp"
#include "support/assert.hpp"

namespace tveg::channel {

namespace {

void check_target(double target_failure) {
  TVEG_REQUIRE(target_failure > 0 && target_failure < 1,
               "target failure probability must lie in (0, 1)");
}

/// Monotone bisection for min { w : φ(w) <= target }. φ must be
/// non-increasing; the search brackets upward from `hint` first.
Cost bisect_min_cost(const EdFunction& f, double target, Cost hint) {
  Cost hi = hint > 0 ? hint : 1.0;
  int doublings = 0;
  while (f.failure_probability(hi) > target) {
    hi *= 2.0;
    if (++doublings > 400) return support::kInf;  // target unattainable
  }
  Cost lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Cost mid = 0.5 * (lo + hi);
    if (f.failure_probability(mid) <= target) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (hi - lo <= 1e-15 * hi) break;
  }
  return hi;
}

}  // namespace

double EdFunction::failure_derivative(Cost w) const {
  TVEG_REQUIRE(w > 0, "derivative requires positive cost");
  const double h = std::max(1e-8 * w, 1e-30);
  const double lo = w > h ? w - h : w / 2;
  return (failure_probability(w + h) - failure_probability(lo)) / (w + h - lo);
}

StepEdFunction::StepEdFunction(Cost threshold) : threshold_(threshold) {
  TVEG_REQUIRE(threshold > 0, "step threshold must be positive");
}

double StepEdFunction::failure_probability(Cost w) const {
  TVEG_REQUIRE(w >= 0, "cost must be non-negative");
  return w >= threshold_ ? 0.0 : 1.0;
}

Cost StepEdFunction::min_cost_for(double target_failure) const {
  check_target(target_failure);
  return threshold_;  // any target < 1 requires exactly the threshold
}

RayleighEdFunction::RayleighEdFunction(double beta) : beta_(beta) {
  TVEG_REQUIRE(beta > 0, "Rayleigh beta must be positive");
}

double RayleighEdFunction::failure_probability(Cost w) const {
  TVEG_REQUIRE(w >= 0, "cost must be non-negative");
  if (w == 0.0) return 1.0;
  return 1.0 - std::exp(-beta_ / w);
}

Cost RayleighEdFunction::min_cost_for(double target_failure) const {
  check_target(target_failure);
  return beta_ / std::log(1.0 / (1.0 - target_failure));
}

double RayleighEdFunction::failure_derivative(Cost w) const {
  TVEG_REQUIRE(w > 0, "derivative requires positive cost");
  return -std::exp(-beta_ / w) * beta_ / (w * w);
}

NakagamiEdFunction::NakagamiEdFunction(double m, double beta)
    : m_(m), beta_(beta) {
  TVEG_REQUIRE(m >= 0.5, "Nakagami shape must be >= 0.5");
  TVEG_REQUIRE(beta > 0, "Nakagami beta must be positive");
}

double NakagamiEdFunction::failure_probability(Cost w) const {
  TVEG_REQUIRE(w >= 0, "cost must be non-negative");
  if (w == 0.0) return 1.0;
  // SNR ~ Gamma(m, σ²/(m·N0)); failure = P(SNR < γ_th) = P(m, m·β/w).
  return regularized_gamma_p(m_, m_ * beta_ / w);
}

Cost NakagamiEdFunction::min_cost_for(double target_failure) const {
  check_target(target_failure);
  return bisect_min_cost(*this, target_failure, beta_);
}

RicianEdFunction::RicianEdFunction(double k_factor, double beta)
    : k_(k_factor), beta_(beta) {
  TVEG_REQUIRE(k_factor >= 0, "Rician K-factor must be non-negative");
  TVEG_REQUIRE(beta > 0, "Rician beta must be positive");
}

double RicianEdFunction::failure_probability(Cost w) const {
  TVEG_REQUIRE(w >= 0, "cost must be non-negative");
  if (w == 0.0) return 1.0;
  const double a = std::sqrt(2.0 * k_);
  const double b = std::sqrt(2.0 * (k_ + 1.0) * beta_ / w);
  return 1.0 - marcum_q1(a, b);
}

Cost RicianEdFunction::min_cost_for(double target_failure) const {
  check_target(target_failure);
  return bisect_min_cost(*this, target_failure, beta_);
}

const char* channel_model_name(ChannelModel model) {
  switch (model) {
    case ChannelModel::kStep:
      return "step";
    case ChannelModel::kRayleigh:
      return "rayleigh";
    case ChannelModel::kNakagami:
      return "nakagami";
    case ChannelModel::kRician:
      return "rician";
  }
  return "unknown";
}

}  // namespace tveg::channel
