// Special functions needed by the Nakagami-m and Rician ED-functions
// (paper footnote 1): regularized incomplete gamma and the first-order
// Marcum Q function. Self-contained implementations — the library has no
// external math dependencies.
#pragma once

namespace tveg::channel {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0,
/// x >= 0. Series expansion for x < a + 1, continued fraction otherwise;
/// absolute accuracy ~1e-12.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Modified Bessel function of the first kind, order 0.
double bessel_i0(double x);

/// Modified Bessel function of the first kind, order 1.
double bessel_i1(double x);

/// First-order Marcum Q function Q1(a, b) = P(X > b) for a Rician envelope;
/// computed by the canonical series with numerically-stable term recurrence.
double marcum_q1(double a, double b);

}  // namespace tveg::channel
