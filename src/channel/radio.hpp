// Radio-layer parameter set shared by every channel model (paper Sec. VII
// defaults: N0 = 4.32e-21 W/Hz, γ_th = 25.9 dB, α = 2, ε = 0.01).
#pragma once

#include "support/math.hpp"
#include "tvg/types.hpp"

namespace tveg::channel {

/// Physical and problem-level radio parameters.
struct RadioParams {
  /// Noise power density N0 [W/Hz].
  double noise_density = 4.32e-21;
  /// Decoding SNR threshold γ_th in dB.
  double decoding_threshold_db = 25.9;
  /// Path-loss exponent α.
  double path_loss_exponent = 2.0;
  /// Cost set W = [w_min, w_max].
  Cost w_min = 0.0;
  Cost w_max = support::kInf;
  /// Acceptable failure (error) rate ε.
  double epsilon = 0.01;

  /// γ_th in linear scale.
  double gamma_linear() const {
    return support::db_to_linear(decoding_threshold_db);
  }

  /// Static-channel propagation gain at distance d: h = d^-α.
  double gain(double distance) const;

  /// Step-channel minimum cost N0·γ_th / h at distance d (Eq. 2).
  Cost step_min_cost(double distance) const;

  /// Rayleigh β = N0·γ_th / d^-α (Eq. 5).
  double rayleigh_beta(double distance) const;

  /// Validates internal consistency; throws std::invalid_argument otherwise.
  void validate() const;
};

}  // namespace tveg::channel
