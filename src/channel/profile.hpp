// Piecewise-constant time profiles for channel parameters.
//
// The paper assumes the ED-function of an edge is unchanged over any
// transmission window [t, t+τ]; we realize that by making every channel
// parameter (distance d_{i,j,t}, hence gain and β) piecewise constant, and
// feeding the breakpoints into the adjacent partitions so that each DTS
// interval sees a constant channel (DESIGN.md, interpretive decision 5).
#pragma once

#include <vector>

#include "tvg/types.hpp"

namespace tveg::channel {

/// Right-open piecewise-constant real function of time.
/// Defined by samples (t_k, v_k): value is v_k on [t_k, t_{k+1}).
/// Queries before the first sample return the first value.
class PiecewiseConstantProfile {
 public:
  PiecewiseConstantProfile() = default;

  /// Appends a sample; times must be strictly increasing.
  void add(Time t, double value);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  /// Value at time t.
  double at(Time t) const;

  /// Index of the sample whose value `at(t)` returns (0 for queries before
  /// the first sample). Two times with equal segment index see the same
  /// value — the memoization key of core::EdWeightCache.
  std::size_t segment(Time t) const;

  /// All sample times after the first (the points where the value may
  /// change) — these are the partition breakpoints.
  std::vector<Time> breakpoints() const;

  /// Smallest and largest values over all samples.
  double min_value() const;
  double max_value() const;

 private:
  struct Sample {
    Time t;
    double value;
  };
  std::vector<Sample> samples_;
};

}  // namespace tveg::channel
