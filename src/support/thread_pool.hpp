// Minimal work-stealing-free thread pool with a blocking parallel_for and a
// future-returning submit.
//
// Used for embarrassingly parallel loops: Monte-Carlo channel draws and the
// benchmark parameter sweeps. The pool is deliberately simple — static
// chunking over an index range — because every task in this library is
// CPU-bound and uniform enough that dynamic scheduling buys nothing.
//
// Failure semantics: an exception thrown inside a pooled task always
// reaches the waiting caller — parallel_for rethrows the first body
// exception after the whole range ran, submit delivers it through the
// returned future — and never terminates or wedges a worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tveg::support {

/// Fixed-size thread pool; `submit` enqueues one task, `parallel_for`
/// blocks until an index range has been fully processed.
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs body(i) for every i in [begin, end), split into contiguous chunks
  /// across the pool plus the calling thread; returns when all complete.
  /// Exceptions from body are rethrown (first one wins); the remaining
  /// indices of the throwing chunk are skipped, other chunks run to
  /// completion.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Enqueues one callable; the returned future yields its result, or
  /// rethrows whatever it threw. The pool itself survives throwing tasks.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  /// Queued task; `enqueued` is only meaningful when `timed` (obs enabled at
  /// enqueue time) so the disabled path never reads the clock.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool timed = false;
  };

  void enqueue(std::function<void()> fn);
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace tveg::support
