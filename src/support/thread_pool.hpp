// Minimal work-stealing-free thread pool with a blocking parallel_for and a
// future-returning submit.
//
// Used for embarrassingly parallel loops: Monte-Carlo channel draws and the
// benchmark parameter sweeps. The pool is deliberately simple — static
// chunking over an index range — because every task in this library is
// CPU-bound and uniform enough that dynamic scheduling buys nothing.
//
// Failure semantics: an exception thrown inside a pooled task always
// reaches the waiting caller — parallel_for rethrows the first body
// exception after the whole range ran, submit delivers it through the
// returned future — and never terminates or wedges a worker.
//
// Shutdown semantics: `shutdown()` (also run by the destructor) stops
// intake first, then drains already-queued tasks and joins the workers.
// A submit that races with shutdown either wins — its task runs and the
// future resolves — or loses and throws std::runtime_error synchronously;
// a future returned by submit never silently wedges. parallel_for on a
// stopped pool degrades to running the whole range inline on the caller.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/cancel.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace tveg::support {

/// Fixed-size thread pool; `submit` enqueues one task, `parallel_for`
/// blocks until an index range has been fully processed.
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count chosen at construction (stable across shutdown).
  std::size_t thread_count() const { return thread_count_; }

  /// Runs body(i) for every i in [begin, end), split into contiguous chunks
  /// across the pool plus the calling thread; returns when all complete.
  /// Exceptions from body are rethrown; when several chunks throw
  /// concurrently, the lowest-index chunk's exception wins deterministically
  /// and the others are swallowed. The remaining indices of a throwing
  /// chunk are skipped, other chunks run to completion.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Cancellable variant: every chunk observes `cancel` before each index
  /// (one relaxed load) and drains — skips its remaining indices — as soon
  /// as cancellation is requested, so an expired solve stops occupying the
  /// pool. Still blocks until every chunk has returned (no task is left
  /// running), then throws CancelledError when the range was cut short —
  /// unless a body exception is pending, which wins. On the uncancelled
  /// path results are byte-identical to the plain overload: the checks
  /// never reorder, split, or skip work.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    const CancelToken& cancel);

  /// Stops intake, drains the queue, joins the workers. Idempotent and
  /// safe to call concurrently with submit (racing submits throw).
  void shutdown();

  /// Enqueues one callable; the returned future yields its result, or
  /// rethrows whatever it threw. The pool itself survives throwing tasks.
  /// Throws std::runtime_error if the pool is shut down (see above).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  /// Queued task; `enqueued` is only meaningful when `timed` (obs enabled at
  /// enqueue time) so the disabled path never reads the clock.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool timed = false;
  };

  void enqueue(std::function<void()> fn);
  void worker_loop(std::size_t worker_index);
  /// Shared implementation; `cancel` == nullptr is the plain overload.
  void parallel_for_impl(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         const CancelToken* cancel);

  std::vector<std::thread> workers_;
  std::size_t thread_count_ = 0;
  Mutex mutex_;
  std::queue<Task> tasks_ TVEG_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stopping_ TVEG_GUARDED_BY(mutex_) = false;
};

/// Convenience wrappers over ThreadPool::global().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const CancelToken& cancel);

}  // namespace tveg::support
