// Wall-clock solve budgets with cooperative cancellation.
//
// A Deadline is a point in time a solver promises not to run past. The
// expensive loops (Steiner search, auxiliary-graph build) poll it every few
// thousand iterations and throw TimeoutError when it has passed; the
// fallback ladder (fault/degrade.hpp) catches that and retries with a
// cheaper algorithm. Default-constructed deadlines are unlimited and cost
// one branch per poll — no clock read.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace tveg::support {

/// Thrown by a solver whose Deadline expired mid-search. Derives from
/// std::runtime_error (not logic_error): blowing a time budget is an
/// operational condition, not a bug.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An optional wall-clock cutoff. Copyable and cheap; pass by value.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires.
  Deadline() = default;

  /// Expires `budget_ms` from now; a non-positive budget is already expired
  /// (useful for forcing the fallback path in tests).
  static Deadline after_ms(double budget_ms) {
    Deadline d;
    d.limited_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   budget_ms > 0 ? budget_ms : 0));
    return d;
  }

  bool unlimited() const { return !limited_; }

  bool expired() const { return limited_ && Clock::now() >= at_; }

  /// Milliseconds until expiry; +inf when unlimited, 0 when expired.
  double remaining_ms() const {
    if (!limited_) return std::numeric_limits<double>::infinity();
    const auto left =
        std::chrono::duration<double, std::milli>(at_ - Clock::now()).count();
    return left > 0 ? left : 0;
  }

  /// Throws TimeoutError when expired; `where` names the phase for the
  /// message ("steiner", "aux_graph", ...).
  void check(const char* where) const {
    if (expired())
      throw TimeoutError(std::string("solve budget exceeded in ") + where);
  }

  class Poller;

 private:
  bool limited_ = false;
  Clock::time_point at_{};
};

/// Strided deadline poller for hot loops: `Deadline::check` reads the clock
/// on every call, which adds up when polled per inner iteration (the
/// level-2 density scan visits every vertex per round). A Poller reads the
/// clock only every `stride` polls — the other polls are one increment and
/// one branch — bounding detection latency by `stride` iterations, which
/// the budgeted loops keep well under a millisecond of work.
class Deadline::Poller {
 public:
  explicit Poller(const Deadline& deadline, const char* where,
                  std::uint32_t stride = 64)
      : deadline_(deadline), where_(where), stride_(stride) {}

  /// One poll; throws TimeoutError on the striding clock reads once the
  /// deadline has passed.
  void poll() {
    if (++count_ >= stride_) {
      count_ = 0;
      deadline_.check(where_);
    }
  }

 private:
  Deadline deadline_;
  const char* where_;
  std::uint32_t stride_;
  std::uint32_t count_ = 0;
};

}  // namespace tveg::support
