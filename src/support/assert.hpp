// Checked assertions and input validation used throughout the library.
//
// TVEG_ASSERT  — internal invariant; compiled in all build types because the
//                algorithms here are combinatorial and cheap relative to the
//                cost of silently corrupt schedules.
// TVEG_REQUIRE — precondition on user-supplied input; throws
//                std::invalid_argument with a descriptive message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tveg::support {

/// Thrown when an internal invariant is violated (a library bug).
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError(os.str());
}

[[noreturn]] inline void require_fail(const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace detail
}  // namespace tveg::support

#define TVEG_ASSERT(expr)                                                     \
  do {                                                                        \
    if (!(expr))                                                              \
      ::tveg::support::detail::assert_fail(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define TVEG_ASSERT_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr))                                                              \
      ::tveg::support::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define TVEG_REQUIRE(expr, msg)                                               \
  do {                                                                        \
    if (!(expr)) ::tveg::support::detail::require_fail(#expr, (msg));         \
  } while (0)
