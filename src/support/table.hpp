// Plain-text table / CSV emission for the benchmark harness: every figure
// bench prints the same rows/series the paper reports, in a form that is
// both human-readable and trivially machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tveg::support {

/// Column-aligned text table with an optional CSV dump.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  /// Writes an aligned, boxed text rendering.
  void print(std::ostream& os) const;
  /// Writes RFC-4180-ish CSV (no embedded quoting needed for our content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tveg::support
