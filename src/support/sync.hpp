// Capability-annotated synchronization primitives (static-analysis layer 1,
// see DESIGN.md "Static analysis & concurrency correctness").
//
// Thin, zero-overhead wrappers over std::mutex / std::unique_lock /
// std::condition_variable that carry the Clang Thread Safety Analysis
// capability attributes. libstdc++'s std types are not annotated, so a bare
// `std::lock_guard<std::mutex>` is invisible to -Wthread-safety; routing
// every guarded-state lock through these wrappers makes the discipline
// checkable at compile time under clang and costs nothing under GCC (the
// attributes expand to nothing, the wrappers inline to the std calls).
//
// Condition-variable protocol: CondVar::wait takes both the MutexLock and
// the Mutex it holds, because an attribute argument can name a function
// parameter but not a member of one — `wait(lock, mutex_, pred)` lets the
// REQUIRES(mu) contract bind to the actual capability. The predicate runs
// with the lock held (the std contract) but is a separate function to the
// analysis, hence the TVEG_NO_THREAD_SAFETY_ANALYSIS on wait predicates
// that read guarded fields.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace tveg::support {

/// std::mutex with the `capability` attribute; lock discipline on anything
/// TVEG_GUARDED_BY one of these is compiler-checked under clang.
class TVEG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TVEG_ACQUIRE() { m_.lock(); }
  void unlock() TVEG_RELEASE() { m_.unlock(); }
  bool try_lock() TVEG_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for interop (CondVar waits through it). Callers
  /// must not lock through this handle directly — the analysis cannot see
  /// such acquisitions.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII scoped acquisition of a Mutex (std::unique_lock underneath, so a
/// CondVar can wait through it and early unlock() is available).
class TVEG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TVEG_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexLock() TVEG_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (the destructor then does nothing). After unlock() the
  /// guarded state is off limits again — clang enforces this.
  void unlock() TVEG_RELEASE() { lock_.unlock(); }

  /// The wrapped unique_lock, for CondVar interop only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to support::Mutex through MutexLock. The extra
/// Mutex& parameter exists purely so TVEG_REQUIRES can name the capability
/// the caller must hold (it must be the mutex `lock` holds).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Pred>
  void wait(MutexLock& lock, Mutex& mutex, Pred pred) TVEG_REQUIRES(mutex) {
    (void)mutex;
    cv_.wait(lock.native(), std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(MutexLock& lock, Mutex& mutex,
                const std::chrono::duration<Rep, Period>& d,
                Pred pred) TVEG_REQUIRES(mutex) {
    (void)mutex;
    return cv_.wait_for(lock.native(), d, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace tveg::support
