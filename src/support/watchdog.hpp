// Stall watchdog (resource-governance subsystem, see DESIGN.md).
//
// Cooperative cancellation only works when the solve keeps polling; a solve
// stuck in a non-polling region (an NLP inner loop that converged onto a
// pathological line search, a pathological Dijkstra) would ignore both its
// deadline and its cancel token forever. The Watchdog closes that hole from
// outside: a monitor thread samples each registered CancelSource's poll
// counter (the heartbeat every token poll ticks) and, when a solve has not
// polled within the configured stall window, records a `stall_detected`
// flight-recorder event, counts tveg.govern.stalls, and force-cancels the
// source — the next poll the solve *does* make then throws CancelledError,
// and if it never polls again the caller at least has the event trail.
//
// The monitor uses steady_clock (never the wall clock) and holds its lock
// only while scanning the registration list, so registering/unregistering
// from solve threads is cheap.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/cancel.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace tveg::support {

/// One monitor thread watching any number of CancelSources.
class Watchdog {
 public:
  struct Options {
    /// A watched solve that has not polled for this long is declared
    /// stalled and force-cancelled.
    double stall_ms = 1000;
    /// Monitor sampling period; 0 derives stall_ms / 4 (min 1 ms). The
    /// detection latency bound is stall_ms + one tick.
    double tick_ms = 0;
  };

  explicit Watchdog(Options options);
  Watchdog() : Watchdog(Options{}) {}
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers `source` for stall monitoring; returns a handle for
  /// unwatch(). The Watchdog copies the source (shared state), so the
  /// caller's object may go out of scope first — but a stall after the
  /// solve finished would then cancel a dead token harmlessly.
  std::uint64_t watch(const CancelSource& source);

  /// Stops monitoring the handle (idempotent; unknown handles ignored).
  void unwatch(std::uint64_t handle);

  /// RAII watch registration for the common scoped-solve pattern.
  class Scope {
   public:
    Scope(Watchdog& dog, const CancelSource& source)
        : dog_(dog), handle_(dog.watch(source)) {}
    ~Scope() { dog_.unwatch(handle_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Watchdog& dog_;
    std::uint64_t handle_;
  };

  /// Stalls detected since construction.
  std::uint64_t stalls() const;

 private:
  struct Watched {
    std::uint64_t handle;
    CancelSource source;
    std::uint64_t last_polls;
    std::chrono::steady_clock::time_point last_beat;
    bool flagged;  ///< already declared stalled (one event per stall)
  };

  void loop();

  Options options_;
  mutable Mutex mutex_;
  CondVar cv_;
  bool stopping_ TVEG_GUARDED_BY(mutex_) = false;
  std::uint64_t next_handle_ TVEG_GUARDED_BY(mutex_) = 1;
  std::uint64_t stalls_ TVEG_GUARDED_BY(mutex_) = 0;
  std::vector<Watched> watched_ TVEG_GUARDED_BY(mutex_);
  std::thread thread_;
};

}  // namespace tveg::support
