// Structured error taxonomy for fallible operations.
//
// The solve chain and the parsers return Result<T> instead of throwing on
// *expected* failure modes (malformed input, blown time budgets, infeasible
// programs), so callers can degrade gracefully — fall back to a cheaper
// solver, skip a bad input line, repair a schedule — without catching and
// re-classifying exceptions. TVEG_ASSERT / TVEG_REQUIRE remain the right
// tool for library bugs and API misuse; Result is for failures the caller
// is expected to handle.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "support/assert.hpp"

namespace tveg::support {

/// What went wrong, coarsely: the ladder in fault/degrade.cpp and the CLI
/// both branch on this, so keep the taxonomy small and stable.
enum class ErrorCode {
  kParse,         ///< malformed textual input
  kInvalidInput,  ///< well-formed but semantically out of range
  kTimeout,       ///< a wall-clock solve budget expired
  kCancelled,     ///< the request's CancelToken fired (caller or watchdog)
  kInfeasible,    ///< no feasible solution exists (or was found)
  kIo,            ///< file system / stream failure
  kInternal,      ///< invariant violation surfaced as a value
};

const char* error_code_name(ErrorCode code);

/// A structured error: code + message (+ 1-based input line when the error
/// came from a parser; -1 otherwise).
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  long line = -1;

  /// "parse error at line 12: bad node id 'x'" — the human rendering.
  std::string to_string() const;
};

/// Value-or-Error. Deliberately tiny: ok()/value()/error() and a couple of
/// constructors; no monadic combinators (call sites here are short).
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    TVEG_ASSERT_MSG(ok(), "Result::value() on error: " + error_to_string());
    return std::get<T>(state_);
  }
  const T& value() const& {
    TVEG_ASSERT_MSG(ok(), "Result::value() on error: " + error_to_string());
    return std::get<T>(state_);
  }
  T&& value() && {
    TVEG_ASSERT_MSG(ok(), "Result::value() on error: " + error_to_string());
    return std::get<T>(std::move(state_));
  }

  const Error& error() const {
    TVEG_ASSERT_MSG(!ok(), "Result::error() on success");
    return std::get<Error>(state_);
  }

  /// value(), or throws std::invalid_argument rendering the error — the
  /// bridge for legacy call sites that still want throwing semantics.
  T take_or_throw() && {
    if (!ok()) throw std::invalid_argument(error().to_string());
    return std::get<T>(std::move(state_));
  }

 private:
  std::string error_to_string() const {
    return ok() ? std::string() : std::get<Error>(state_).to_string();
  }

  std::variant<T, Error> state_;
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParse:
      return "parse error";
    case ErrorCode::kInvalidInput:
      return "invalid input";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kInfeasible:
      return "infeasible";
    case ErrorCode::kIo:
      return "i/o error";
    case ErrorCode::kInternal:
      return "internal error";
  }
  return "error";
}

inline std::string Error::to_string() const {
  std::string out = error_code_name(code);
  if (line >= 0) out += " at line " + std::to_string(line);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace tveg::support
