// Streaming statistics and small histogram utilities used by the
// simulation harness and the benchmark drivers.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace tveg::support {

/// Welford streaming accumulator: mean / variance / min / max without
/// storing samples.
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x);
  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples; supports exact quantiles. For modest sample counts
/// (Monte-Carlo trials, sweep points), exactness beats sketching.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  /// Linear-interpolated quantile, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// boundary bins. Used for inter-contact-time CCDFs in trace statistics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  /// Center of bin i.
  double bin_center(std::size_t i) const;
  /// Empirical complementary CDF evaluated at bin edges.
  std::vector<double> ccdf() const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tveg::support
