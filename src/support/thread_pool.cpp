#include "support/thread_pool.hpp"

#include <exception>
#include <stdexcept>
#include <string>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace tveg::support {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  thread_count_ = workers_.size();
  obs::MetricsRegistry::global()
      .gauge(obs::keys::kPoolWorkers)
      .set(static_cast<double>(workers_.size()));
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    if (stopping_) return;  // idempotent; workers already joined or joining
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& tasks_metric = registry.counter(obs::keys::kPoolTasks);
  static obs::Histogram& wait_metric =
      registry.histogram(obs::keys::kPoolQueueWaitUs);
  obs::Counter& busy_metric = registry.counter(
      obs::keys::kPoolWorkerPrefix + std::to_string(worker_index) + ".busy_us");
  obs::set_current_thread_name("pool-worker-" +
                               std::to_string(worker_index));
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      // The predicate runs with mutex_ held (the condition-variable
      // contract) but is a separate function to the thread-safety analysis.
      cv_.wait(lock, mutex_, [this]() TVEG_NO_THREAD_SAFETY_ANALYSIS {
        return stopping_ || !tasks_.empty();
      });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    tasks_metric.add(1);
    // A task must never unwind into the worker loop: parallel_for chunks
    // catch internally and submit goes through packaged_task, but a stray
    // throw here would std::terminate the process. Swallow-and-count is the
    // worst case, not the contract.
    static obs::Counter& dropped_metric =
        registry.counter(obs::keys::kPoolUncaughtExceptions);
    if (task.timed) {
      const auto start = Clock::now();
      wait_metric.observe(us_between(task.enqueued, start));
      // Span tracing: the enqueue→dequeue gap lands on this worker's queue
      // track; the task body itself is a pool_task span on the worker's own
      // track (phase TraceSpans inside the body nest under it).
      if (obs::span_tracing())
        obs::span_queue_wait(obs::to_epoch_ns(task.enqueued),
                             obs::to_epoch_ns(start));
      {
        obs::ScopedSpan task_span("pool_task");
        try {
          task.fn();
        } catch (...) {
          dropped_metric.add(1);
        }
      }
      busy_metric.add(
          static_cast<std::uint64_t>(us_between(start, Clock::now())));
    } else {
      try {
        task.fn();
      } catch (...) {
        dropped_metric.add(1);
      }
    }
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    MutexLock lock(mutex_);
    if (stopping_)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    const bool timed = obs::enabled() || obs::span_tracing();
    const auto now = timed ? Clock::now() : Clock::time_point{};
    tasks_.push({std::move(fn), now, timed});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_impl(begin, end, body, nullptr);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              const CancelToken& cancel) {
  parallel_for_impl(begin, end, body, &cancel);
}

void ThreadPool::parallel_for_impl(std::size_t begin, std::size_t end,
                                   const std::function<void(std::size_t)>& body,
                                   const CancelToken* cancel) {
  const auto cancelled = [cancel] {
    return cancel != nullptr && cancel->cancelled();
  };
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, thread_count_ + 1);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) {
      if (cancelled()) throw CancelledError("parallel_for cancelled");
      body(i);
    }
    return;
  }

  std::size_t remaining = chunks;  // guarded by done_mutex (a local — the
                                   // analysis cannot annotate it, TSan can)
  // One exception slot per chunk: "first exception wins" must mean the
  // lowest *chunk index*, not whichever thread reached the error mutex
  // first — a race that made multi-chunk failures nondeterministic. Writes
  // are per-slot (no lock needed); the completion barrier below sequences
  // them before the rethrow scan.
  std::vector<std::exception_ptr> chunk_error(chunks);
  Mutex done_mutex;
  CondVar done_cv;

  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t lo = begin + chunk * n / chunks;
    const std::size_t hi = begin + (chunk + 1) * n / chunks;
    try {
      for (std::size_t i = lo; i < hi; ++i) {
        // Drain on cancellation: skip the remaining indices so the pool
        // frees up immediately. The caller-facing CancelledError is thrown
        // once, after the barrier, by the waiting thread.
        if (cancelled()) break;
        body(i);
      }
    } catch (...) {
      chunk_error[chunk] = std::current_exception();
    }
    // The decrement must happen under done_mutex: if it were done outside
    // (say with an atomic), the waiter could observe zero, return, and
    // destroy done_mutex/done_cv while this worker was still about to lock
    // them — a use-after-free of the caller's stack frame (caught by the
    // TSan tier). Holding the mutex delays the waiter's predicate read
    // until this worker is done touching the locals.
    MutexLock lock(done_mutex);
    if (--remaining == 0) done_cv.notify_one();
  };

  {
    MutexLock lock(mutex_);
    if (stopping_) {
      // Stopped pool: degrade to inline serial execution (outside the
      // intake lock so body may itself touch the pool without deadlock).
      lock.unlock();
      for (std::size_t i = begin; i < end; ++i) {
        if (cancelled()) throw CancelledError("parallel_for cancelled");
        body(i);
      }
      return;
    }
    const bool timed = obs::enabled() || obs::span_tracing();
    const auto now = timed ? Clock::now() : Clock::time_point{};
    for (std::size_t chunk = 1; chunk < chunks; ++chunk)
      tasks_.push({[run_chunk, chunk] { run_chunk(chunk); }, now, timed});
  }
  cv_.notify_all();
  run_chunk(0);  // calling thread takes the first chunk

  {
    MutexLock lock(done_mutex);
    done_cv.wait(lock, done_mutex, [&] { return remaining == 0; });
  }
  for (std::size_t chunk = 0; chunk < chunks; ++chunk)
    if (chunk_error[chunk]) std::rethrow_exception(chunk_error[chunk]);
  if (cancelled()) throw CancelledError("parallel_for cancelled");
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const CancelToken& cancel) {
  ThreadPool::global().parallel_for(begin, end, body, cancel);
}

}  // namespace tveg::support
