// Small numeric helpers shared across modules: tolerant floating-point
// comparison (time points are doubles produced by +τ arithmetic), dB
// conversions, and safe logs for probability products.
#pragma once

#include <cmath>
#include <limits>

namespace tveg::support {

/// Absolute-plus-relative tolerance comparison suitable for the time and
/// energy magnitudes used throughout (seconds in [0, 1e5], joules ≥ 1e-21).
inline bool almost_equal(double a, double b, double abs_tol = 1e-9,
                         double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::fmax(std::fabs(a), std::fabs(b));
}

inline bool almost_leq(double a, double b, double abs_tol = 1e-9,
                       double rel_tol = 1e-9) {
  return a <= b || almost_equal(a, b, abs_tol, rel_tol);
}

/// Converts a ratio expressed in decibels to linear scale.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Converts a linear ratio to decibels.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// log(p) clamped so that p == 0 yields a large negative number instead of
/// -inf; keeps probability-product accumulations NaN-free.
inline double safe_log(double p) {
  constexpr double kFloor = 1e-300;
  return std::log(p < kFloor ? kFloor : p);
}

/// Positive infinity shorthand.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace tveg::support
