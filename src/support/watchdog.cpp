#include "support/watchdog.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"

namespace tveg::support {

namespace {
using Clock = std::chrono::steady_clock;

Clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}
}  // namespace

Watchdog::Watchdog(Options options) : options_(options) {
  if (options_.stall_ms < 1) options_.stall_ms = 1;
  if (options_.tick_ms <= 0)
    options_.tick_ms = options_.stall_ms / 4 > 1 ? options_.stall_ms / 4 : 1;
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t Watchdog::watch(const CancelSource& source) {
  MutexLock lock(mutex_);
  const std::uint64_t handle = next_handle_++;
  watched_.push_back({handle, source, source.polls(), Clock::now(), false});
  return handle;
}

void Watchdog::unwatch(std::uint64_t handle) {
  MutexLock lock(mutex_);
  for (std::size_t i = 0; i < watched_.size(); ++i)
    if (watched_[i].handle == handle) {
      watched_.erase(watched_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
}

std::uint64_t Watchdog::stalls() const {
  MutexLock lock(mutex_);
  return stalls_;
}

void Watchdog::loop() {
  static obs::Counter& stall_metric =
      obs::MetricsRegistry::global().counter(obs::keys::kGovernStalls);
  const auto stall_window = ms_duration(options_.stall_ms);
  MutexLock lock(mutex_);
  for (;;) {
    // Predicate runs under mutex_ (cv contract) but is opaque to the
    // thread-safety analysis, hence the escape hatch.
    cv_.wait_for(lock, mutex_, ms_duration(options_.tick_ms),
                 [this]() TVEG_NO_THREAD_SAFETY_ANALYSIS {
                   return stopping_;
                 });
    if (stopping_) return;
    const auto now = Clock::now();
    for (Watched& w : watched_) {
      const std::uint64_t polls = w.source.polls();
      if (polls != w.last_polls) {
        w.last_polls = polls;
        w.last_beat = now;
        w.flagged = false;
        continue;
      }
      if (w.flagged || now - w.last_beat < stall_window) continue;
      // Stalled: no heartbeat for a whole window. Record first (so the
      // trail exists even if nothing ever observes the cancel), then
      // force-cancel.
      w.flagged = true;
      ++stalls_;
      obs::flight_recorder().record(obs::FlightEventKind::kStallDetected,
                                    w.handle, w.last_polls, "watchdog");
      stall_metric.add(1);
      w.source.request_cancel();
    }
  }
}

}  // namespace tveg::support
