// Shared memory budget for cache growth governance (see DESIGN.md,
// "Resource governance").
//
// A MemBudget is an atomic byte ledger shared by every EdWeightCache of a
// sweep (and whatever else wants to participate): caches charge it as they
// insert and release it as they evict, and consult over() to decide when to
// shed shards. The budget never blocks or throws — exceeding it triggers
// eviction pressure in the chargers, not failure — so a tight budget trades
// hit rate for residency, never correctness.
#pragma once

#include <atomic>
#include <cstddef>

namespace tveg::support {

/// Atomic byte ledger; limit 0 = unlimited (charges are still tracked so
/// tveg.mem.* gauges stay meaningful).
class MemBudget {
 public:
  explicit MemBudget(std::size_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemBudget(const MemBudget&) = delete;
  MemBudget& operator=(const MemBudget&) = delete;

  std::size_t limit() const { return limit_; }

  std::size_t used() const { return used_.load(std::memory_order_relaxed); }

  void charge(std::size_t bytes) {
    used_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Releases up to `bytes` (clamped: eviction races can otherwise briefly
  /// drive the ledger through zero).
  void release(std::size_t bytes) {
    std::size_t cur = used_.load(std::memory_order_relaxed);
    while (!used_.compare_exchange_weak(cur, cur - (bytes < cur ? bytes : cur),
                                        std::memory_order_relaxed)) {
    }
  }

  /// True when a limit is set and currently exceeded — the eviction
  /// pressure signal.
  bool over() const { return limit_ > 0 && used() > limit_; }

 private:
  std::size_t limit_;
  std::atomic<std::size_t> used_{0};
};

}  // namespace tveg::support
