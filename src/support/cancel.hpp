// Cooperative cancellation (resource-governance subsystem, see DESIGN.md).
//
// A CancelSource owns a shared flag; the CancelTokens it hands out are
// copied into solver options and polled from the hot loops. A poll is one
// relaxed atomic load — cheap enough for per-iteration checks — plus a
// relaxed counter increment that doubles as the liveness heartbeat the
// Watchdog (support/watchdog.hpp) monitors: a solve whose poll counter
// stops advancing is stuck in a non-polling region and can be force-
// cancelled from outside.
//
// Cancellation is *cooperative*: nothing is interrupted preemptively. The
// contract is that every budgeted loop polls often enough that a cancel
// request is observed within a bounded number of polls (the governance
// tests pin this bound).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace tveg::support {

/// Thrown by a solver whose CancelToken was triggered mid-search. Like
/// TimeoutError this is an operational condition, not a bug, hence
/// runtime_error.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
/// Shared between one CancelSource and all its tokens.
struct CancelState {
  std::atomic<bool> cancelled{false};
  /// Heartbeat: bumped on every token poll, watched by the Watchdog.
  std::atomic<std::uint64_t> polls{0};
};
}  // namespace detail

/// The polling side. Copyable and cheap; a default-constructed token is
/// never cancelled and counts no polls (solvers run ungoverned by default).
class CancelToken {
 public:
  CancelToken() = default;

  /// True when a real source backs this token.
  bool valid() const { return state_ != nullptr; }

  bool cancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_relaxed);
  }

  /// One heartbeat tick without the throw — for loops that want to report
  /// liveness but handle cancellation at a coarser granularity.
  void note_poll() const {
    if (state_ != nullptr)
      state_->polls.fetch_add(1, std::memory_order_relaxed);
  }

  /// The poll: ticks the heartbeat and throws CancelledError when the
  /// source has requested cancellation. `where` names the phase.
  void check(const char* where) const {
    if (state_ == nullptr) return;
    state_->polls.fetch_add(1, std::memory_order_relaxed);
    if (state_->cancelled.load(std::memory_order_relaxed))
      throw CancelledError(std::string("solve cancelled in ") + where);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::CancelState> state_;
};

/// The requesting side. Copies share the underlying state (so a Watchdog
/// can hold one while the solve holds another).
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

  CancelToken token() const { return CancelToken(state_); }

  /// Requests cancellation; every token observes it on its next poll.
  /// Idempotent and safe from any thread.
  void request_cancel() const {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  /// Total polls observed across all tokens — the heartbeat the Watchdog
  /// compares between ticks, and what the bounded-cancellation tests count.
  std::uint64_t polls() const {
    return state_->polls.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace tveg::support
