// The unified solve budget (resource-governance subsystem, see DESIGN.md).
//
// A Budget bundles the three resources a governed solve is accountable to:
//   deadline — wall-clock cutoff (throws TimeoutError when blown),
//   cancel   — cooperative cancellation token (throws CancelledError),
//   mem      — optional shared byte ledger for cache growth.
// Solver options carry one Budget instead of a bare Deadline; check() is
// the combined poll and Budget::Poller the strided variant for hot loops
// (cancellation is still observed on *every* poll — one relaxed load —
// only the clock read strides, so the cancellation-latency bound is
// measured in polls, not in clock reads).
//
// A Budget implicitly converts from a Deadline so existing deadline-only
// call sites (`options.budget = Deadline::after_ms(50)`) read naturally.
#pragma once

#include <utility>

#include "support/cancel.hpp"
#include "support/deadline.hpp"
#include "support/mem_budget.hpp"

namespace tveg::support {

/// Deadline + cancellation + memory ledger, passed by value into solver
/// options (the MemBudget is shared by pointer; the caller owns it).
struct Budget {
  Deadline deadline;
  CancelToken cancel;
  MemBudget* mem = nullptr;

  Budget() = default;
  Budget(Deadline d) : deadline(d) {}  // NOLINT(implicit)
  Budget(Deadline d, CancelToken c, MemBudget* m = nullptr)
      : deadline(d), cancel(std::move(c)), mem(m) {}

  /// True when neither time-limited nor cancellable (the ungoverned
  /// default): pollers can skip work entirely.
  bool unlimited() const { return deadline.unlimited() && !cancel.valid(); }

  /// True when the budget is already spent (expired or cancelled) without
  /// throwing.
  bool exhausted() const { return cancel.cancelled() || deadline.expired(); }

  /// The combined poll: heartbeat + CancelledError on a pending cancel,
  /// then TimeoutError on an expired deadline. Cancellation is checked
  /// first — a force-cancelled stalled solve must surface as cancelled even
  /// when its deadline also lapsed meanwhile.
  void check(const char* where) const {
    cancel.check(where);
    deadline.check(where);
  }

  class Poller;
};

/// Strided budget poller: every poll() ticks the cancel token (relaxed
/// load + heartbeat), the deadline clock is read only every `stride` polls
/// via Deadline::Poller. Create one per loop (or per parallel chunk — it
/// is not thread-safe) and call poll() per iteration.
class Budget::Poller {
 public:
  explicit Poller(const Budget& budget, const char* where,
                  std::uint32_t stride = 64)
      : cancel_(budget.cancel), deadline_(budget.deadline, where, stride),
        where_(where) {}

  void poll() {
    cancel_.check(where_);
    deadline_.poll();
  }

 private:
  CancelToken cancel_;
  Deadline::Poller deadline_;
  const char* where_;
};

}  // namespace tveg::support
