// Generic free-list object pool with RAII handout handles.
//
// The solve core keeps heavyweight scratch objects (Dijkstra workspaces,
// see src/graph/workspace_pool.*) alive across queries instead of
// reconstructing them: acquire() hands out an idle object or default-
// constructs one, and the Handle returns it to the free list on
// destruction. Objects are never shrunk or destroyed while the pool lives,
// so after warmup the pool reaches a steady state in which acquire()
// allocates nothing — observable through the on_create hook (wired to the
// `tveg.alloc.steady_state` counter and asserted zero by
// tests/perf/steady_state_alloc_test).
//
// Thread safety: acquire() and Handle release may race freely (the free
// list is lock-protected); each handed-out object is owned exclusively by
// its Handle until release.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace tveg::support {

template <typename T>
class ObjectPool {
 public:
  /// Observer hooks, called outside the pool lock. `on_create` fires when
  /// acquire() must default-construct (a real allocation); `on_reuse` fires
  /// when an idle object is handed back out.
  struct Hooks {
    std::function<void()> on_create;
    std::function<void()> on_reuse;
  };

  ObjectPool() = default;
  explicit ObjectPool(Hooks hooks) : hooks_(std::move(hooks)) {}
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Exclusive loan of one pooled object; returns it on destruction. The
  /// Handle must not outlive the pool.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          obj_(std::move(other.obj_)) {}
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        obj_ = std::move(other.obj_);
      }
      return *this;
    }
    ~Handle() { release(); }

    explicit operator bool() const { return obj_ != nullptr; }
    T& operator*() const { return *obj_; }
    T* operator->() const { return obj_.get(); }
    T* get() const { return obj_.get(); }

   private:
    friend class ObjectPool;
    Handle(ObjectPool* pool, std::unique_ptr<T> obj)
        : pool_(pool), obj_(std::move(obj)) {}
    void release() {
      if (pool_ && obj_) pool_->put_back(std::move(obj_));
      pool_ = nullptr;
    }

    ObjectPool* pool_ = nullptr;
    std::unique_ptr<T> obj_;
  };

  Handle acquire() {
    std::unique_ptr<T> obj;
    bool reused = false;
    {
      MutexLock lock(mu_);
      if (!free_.empty()) {
        obj = std::move(free_.back());
        free_.pop_back();
        reused = true;
      } else {
        ++created_;
      }
    }
    if (!obj) obj = std::make_unique<T>();
    if (reused) {
      if (hooks_.on_reuse) hooks_.on_reuse();
    } else {
      if (hooks_.on_create) hooks_.on_create();
    }
    return Handle(this, std::move(obj));
  }

  /// Objects default-constructed so far (monotone; equals the pool's total
  /// population, idle + handed out).
  std::size_t created() const {
    MutexLock lock(mu_);
    return created_;
  }
  /// Objects currently idle on the free list.
  std::size_t idle() const {
    MutexLock lock(mu_);
    return free_.size();
  }

 private:
  void put_back(std::unique_ptr<T> obj) {
    MutexLock lock(mu_);
    free_.push_back(std::move(obj));
  }

  const Hooks hooks_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<T>> free_ TVEG_GUARDED_BY(mu_);
  std::size_t created_ TVEG_GUARDED_BY(mu_) = 0;
};

}  // namespace tveg::support
