// Deterministic, splittable random number generation.
//
// All stochastic components of the library (trace generators, RAND baselines,
// Monte-Carlo channel draws) draw from tveg::support::Rng so that every
// experiment is reproducible from a single seed and independent of the
// platform's std::uniform_* implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace tveg::support {

/// xoshiro256** PRNG seeded through splitmix64; deterministic across
/// platforms, `split()`-able for parallel streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value (UniformRandomBitGenerator interface).
  std::uint64_t operator()();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);
  /// Pareto (type I) with scale x_m > 0 and shape alpha > 0: heavy-tailed
  /// inter-contact times as observed in the Haggle trace.
  double pareto(double x_m, double alpha);
  /// Standard normal via Box–Muller (no cached spare: keeps the stream
  /// position independent of call interleaving).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Returns an independently-seeded child stream; the parent stream
  /// advances by one draw.
  Rng split();

  /// Fisher–Yates shuffle of `v` in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Seed of stream `stream` in the family rooted at `seed`: two rounds of
/// splitmix64 with the stream index injected between them. Use this — not
/// `seed ^ f(stream)` — to derive per-trial seeds: XOR with any per-stream
/// offset is linear, so two scenario seeds produce *identical* trial
/// streams at shifted indices (s ^ f(i) == s' ^ f(j) has solutions for
/// every pair s, s'), silently correlating supposedly independent
/// experiments. The double avalanche decorrelates both arguments fully.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream);

}  // namespace tveg::support
