#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tveg::support {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::mean() const {
  TVEG_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  TVEG_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStat::max() const {
  TVEG_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  TVEG_REQUIRE(!samples_.empty(), "mean of empty sample set");
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s2 = 0.0;
  for (double x : samples_) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::quantile(double q) const {
  TVEG_REQUIRE(!samples_.empty(), "quantile of empty sample set");
  TVEG_REQUIRE(q >= 0.0 && q <= 1.0, "quantile parameter must be in [0, 1]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  TVEG_REQUIRE(hi > lo, "histogram range must be non-empty");
  TVEG_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

std::vector<double> Histogram::ccdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  std::size_t tail = total_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(tail) / static_cast<double>(total_);
    tail -= counts_[i];
  }
  return out;
}

}  // namespace tveg::support
