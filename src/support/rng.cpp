#include "support/rng.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace tveg::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t x = seed;
  x = splitmix64(x) ^ stream;
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TVEG_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  TVEG_REQUIRE(n > 0, "uniform_int(n) needs n > 0");
  // Lemire rejection-free-ish multiply-shift with rejection for exactness.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TVEG_REQUIRE(lo <= hi, "uniform_int(lo, hi) needs lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63 in practice
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double lambda) {
  TVEG_REQUIRE(lambda > 0, "exponential rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::pareto(double x_m, double alpha) {
  TVEG_REQUIRE(x_m > 0 && alpha > 0, "pareto needs positive scale and shape");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

std::size_t Rng::index(std::size_t size) {
  TVEG_REQUIRE(size > 0, "cannot pick from an empty range");
  return static_cast<std::size_t>(uniform_int(static_cast<std::uint64_t>(size)));
}

}  // namespace tveg::support
