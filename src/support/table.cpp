#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace tveg::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TVEG_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TVEG_REQUIRE(cells.size() == headers_.size(),
               "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    os << '\n';
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c)
      os << std::string(widths[c] + 2, '-') << "+";
    os << '\n';
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tveg::support
