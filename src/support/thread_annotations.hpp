// Shim over Clang Thread Safety Analysis (static-analysis layer 1, see
// DESIGN.md "Static analysis & concurrency correctness").
//
// The macros expand to the clang `capability` attribute family when the
// compiler supports it (clang with -Wthread-safety) and to nothing
// everywhere else, so the annotated tree stays buildable under GCC while
// clang builds get compile-time lock-discipline checking: every field
// marked TVEG_GUARDED_BY must only be touched with its mutex held, every
// function marked TVEG_REQUIRES must only be called with the capability
// held, and violations are hard errors under -Werror=thread-safety
// (scripts/lint.sh runs that configuration whenever a clang is found).
//
// The annotations also feed tveg-analyze (static-analysis layer 2): the
// cross-TU lock-order pass seeds its graph from TVEG_REQUIRES /
// TVEG_ACQUIRE sites in addition to lock_guard/MutexLock sites, so the
// shim is load-bearing even on toolchains where the attribute is a no-op.
//
// Use the support::Mutex / support::MutexLock / support::CondVar wrappers
// (support/sync.hpp) rather than raw std::mutex for any new guarded state:
// libstdc++'s std types carry no capability attributes, so clang cannot
// see through a bare std::lock_guard<std::mutex>.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define TVEG_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define TVEG_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

/// Declares a type to be a capability ("mutex"-like). Lockable wrapper
/// classes carry this; see support::Mutex.
#define TVEG_CAPABILITY(x) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define TVEG_SCOPED_CAPABILITY \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define TVEG_GUARDED_BY(x) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointed-to data may only be touched while holding `x` (the pointer
/// itself is unguarded).
#define TVEG_PT_GUARDED_BY(x) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities.
#define TVEG_REQUIRES(...) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function may only be called while *not* holding the listed capabilities
/// (deadlock guard for re-entrant call chains).
#define TVEG_EXCLUDES(...) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function acquires the listed capabilities and does not release them.
#define TVEG_ACQUIRE(...) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define TVEG_RELEASE(...) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts to acquire and returns `ret` on success.
#define TVEG_TRY_ACQUIRE(ret, ...) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define TVEG_RETURN_CAPABILITY(x) \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis (condition-variable wait predicates re-entered under the lock,
/// test harness internals). Every use needs a comment saying why.
#define TVEG_NO_THREAD_SAFETY_ANALYSIS \
  TVEG_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
