// Synthetic contact-trace generators.
//
// The paper's evaluation uses the Haggle/iMote conference trace [12]. That
// trace is not redistributable here, so `generate_haggle_like` synthesizes a
// trace with the two statistics the Haggle paper reports as characterizing
// it: power-law (Pareto) inter-contact times and heavy-tailed (log-normal)
// contact durations, plus a pair-activation ramp that reproduces the
// average-degree warm-up visible in the paper's Fig. 7. The other generators
// provide the example scenarios and property-test fodder.
#pragma once

#include <cmath>
#include <cstdint>

#include "trace/contact_trace.hpp"

namespace tveg::trace {

/// Configuration for the Haggle-like conference trace.
struct HaggleLikeConfig {
  NodeId nodes = 20;
  Time horizon = 17000;  ///< the paper's ≈17000 s experiment length
  /// Fraction of node pairs that ever meet (social graph density).
  double pair_probability = 0.35;
  /// Pareto shape of inter-contact gaps (Haggle reports ≈ 1.5 over the
  /// [10 min, 1 day] range).
  double pareto_shape = 1.5;
  /// Pareto scale: minimum inter-contact gap in seconds.
  Time pareto_scale = 120;
  /// Log-normal contact-duration parameters (of the underlying normal).
  double duration_log_mean = std::log(150.0);
  double duration_log_sigma = 0.8;
  /// Hard cap on one contact's duration (keeps the tail sane).
  Time max_duration = 1800;
  /// Distance between nodes during a contact, uniform in this range (m).
  double min_distance = 1.0;
  double max_distance = 10.0;
  /// Pairs become active at a uniform time in [0, activation_ramp_end]:
  /// produces the average-degree ramp of Fig. 7.
  Time activation_ramp_end = 8000;
  std::uint64_t seed = 1;
};

/// Generates a Haggle-like trace (sorted).
ContactTrace generate_haggle_like(const HaggleLikeConfig& config);

/// Configuration for the random-waypoint mobility generator: nodes move in a
/// square arena; contacts (with true, sampled distances) occur when within
/// communication range.
struct RandomWaypointConfig {
  NodeId nodes = 20;
  double area = 100.0;  ///< square side length (m)
  double speed_min = 0.5;
  double speed_max = 2.0;  ///< m/s
  Time pause_max = 60;
  double comm_range = 15.0;
  /// Position sampling step; contacts are merged runs of in-range samples,
  /// split whenever the quantized distance changes.
  Time sample_dt = 5.0;
  /// Distance quantization step for splitting contacts (m).
  double distance_quantum = 2.0;
  Time horizon = 3600;
  std::uint64_t seed = 1;
};

/// Generates a mobility-driven trace with genuine time-varying distances.
ContactTrace generate_random_waypoint(const RandomWaypointConfig& config);

/// Configuration for a duty-cycled static sensor field: nodes at random
/// static positions wake periodically; an edge exists while both endpoints
/// are awake and within range.
struct DutyCycleConfig {
  NodeId nodes = 25;
  double area = 60.0;
  double comm_range = 20.0;
  Time period = 120;
  double duty = 0.3;  ///< awake fraction of each period
  Time horizon = 3600;
  std::uint64_t seed = 1;
};

/// Generates a duty-cycled sensor-field trace.
ContactTrace generate_duty_cycle(const DutyCycleConfig& config);

/// Configuration for slotted Erdős–Rényi temporal snapshots: in each slot of
/// length `slot`, each pair is independently present with probability p.
struct SnapshotConfig {
  NodeId nodes = 12;
  Time slot = 100;
  double p = 0.15;
  double min_distance = 1.0;
  double max_distance = 10.0;
  Time horizon = 2000;
  std::uint64_t seed = 1;
};

/// Generates a slotted random temporal graph trace.
ContactTrace generate_snapshots(const SnapshotConfig& config);

}  // namespace tveg::trace
