#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tveg::trace {

double hill_tail_exponent(std::vector<double> samples, double tail_fraction) {
  TVEG_REQUIRE(tail_fraction > 0 && tail_fraction <= 1,
               "tail fraction must lie in (0, 1]");
  std::vector<double> positive;
  for (double x : samples)
    if (x > 0) positive.push_back(x);
  const std::size_t k = static_cast<std::size_t>(
      std::ceil(tail_fraction * static_cast<double>(positive.size())));
  if (k < 3 || positive.size() < 4) return 0;
  std::sort(positive.begin(), positive.end(), std::greater<>());
  // α̂ = k / Σ_{i<k} ln(x_(i) / x_(k)) over the k largest order statistics.
  const double pivot = positive[k - 1];
  double log_sum = 0;
  for (std::size_t i = 0; i + 1 < k; ++i)
    log_sum += std::log(positive[i] / pivot);
  if (log_sum <= 0) return 0;
  return static_cast<double>(k - 1) / log_sum;
}

std::vector<double> degree_timeline(const ContactTrace& trace,
                                    std::size_t samples) {
  TVEG_REQUIRE(samples > 1, "need at least two samples");
  std::vector<double> out(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const Time t = trace.horizon() * static_cast<double>(i) /
                   static_cast<double>(samples - 1);
    out[i] = trace.average_degree(std::min(t, trace.horizon() * (1 - 1e-12)));
  }
  return out;
}

std::vector<std::size_t> contacts_per_node(const ContactTrace& trace) {
  std::vector<std::size_t> out(static_cast<std::size_t>(trace.node_count()),
                               0);
  for (const Contact& c : trace.contacts()) {
    ++out[static_cast<std::size_t>(c.a)];
    ++out[static_cast<std::size_t>(c.b)];
  }
  return out;
}

TraceSummary summarize(const ContactTrace& trace, std::size_t degree_samples,
                       double tail_fraction) {
  TraceSummary s;
  s.contacts = trace.contact_count();
  s.pairs = trace.pair_count();

  support::RunningStat durations;
  for (const Contact& c : trace.contacts()) durations.add(c.end - c.start);
  if (!durations.empty()) s.mean_contact_duration = durations.mean();

  const auto gaps = trace.inter_contact_times();
  support::RunningStat gap_stat;
  for (double g : gaps) gap_stat.add(g);
  if (!gap_stat.empty()) s.mean_inter_contact = gap_stat.mean();
  s.inter_contact_tail_exponent = hill_tail_exponent(gaps, tail_fraction);

  support::RunningStat degree;
  for (double d : degree_timeline(trace, degree_samples)) degree.add(d);
  if (!degree.empty()) {
    s.mean_degree = degree.mean();
    s.max_degree = degree.max();
  }
  return s;
}

}  // namespace tveg::trace
