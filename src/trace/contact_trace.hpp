// Contact traces: the empirical substrate of the paper's evaluation.
//
// A contact trace is a list of (a, b, start, end, distance) records saying
// that nodes a and b were within communication range during [start, end) at
// (piecewise-constant) distance `distance`. The paper's evaluation is driven
// by the Haggle/iMote trace; this container accepts both parsed real traces
// (trace/io.hpp) and synthetic ones (trace/generators.hpp).
#pragma once

#include <vector>

#include "tvg/time_varying_graph.hpp"
#include "tvg/types.hpp"

namespace tveg::trace {

/// One contact record. `distance` is the node separation in meters during
/// the contact (constant; time-varying separations are encoded as
/// consecutive contacts of the same pair).
struct Contact {
  NodeId a;
  NodeId b;
  Time start;
  Time end;
  double distance = 1.0;

  bool operator==(const Contact&) const = default;
};

/// A validated contact trace over nodes 0..node_count-1 and [0, horizon].
class ContactTrace {
 public:
  ContactTrace(NodeId node_count, Time horizon);

  NodeId node_count() const { return node_count_; }
  Time horizon() const { return horizon_; }
  const std::vector<Contact>& contacts() const { return contacts_; }
  std::size_t contact_count() const { return contacts_.size(); }

  /// Adds one contact (endpoints normalized to a < b). Rejects self-contacts,
  /// out-of-range nodes/times, and non-positive durations or distances.
  void add(Contact c);

  /// Sorts contacts by (start, a, b); generators call this before returning.
  void sort();

  /// Restriction to the time window [lo, hi]: contacts are clipped to the
  /// window and shifted so the window starts at 0 (used by the Fig. 7
  /// windowed experiment).
  ContactTrace window(Time lo, Time hi) const;

  /// Restriction to nodes 0..n-1 (used by the N sweeps in Figs. 4 and 6).
  ContactTrace head_nodes(NodeId n) const;

  /// Builds the TVG induced by the contacts with latency tau.
  TimeVaryingGraph to_graph(Time tau) const;

  /// Mean inter-contact gap lengths per pair, pooled over all pairs that
  /// meet at least twice (the statistic the Haggle paper characterizes).
  std::vector<Time> inter_contact_times() const;

  /// Average node degree (contact-based, ignoring latency) at time t.
  double average_degree(Time t) const;

  /// Total number of distinct node pairs that ever meet.
  std::size_t pair_count() const;

 private:
  NodeId node_count_;
  Time horizon_;
  std::vector<Contact> contacts_;
};

}  // namespace tveg::trace
