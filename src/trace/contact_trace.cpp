#include "trace/contact_trace.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "support/assert.hpp"

namespace tveg::trace {

ContactTrace::ContactTrace(NodeId node_count, Time horizon)
    : node_count_(node_count), horizon_(horizon) {
  TVEG_REQUIRE(node_count > 1, "a trace needs at least two nodes");
  TVEG_REQUIRE(horizon > 0, "horizon must be positive");
}

void ContactTrace::add(Contact c) {
  TVEG_REQUIRE(c.a >= 0 && c.a < node_count_ && c.b >= 0 && c.b < node_count_,
               "contact node out of range");
  TVEG_REQUIRE(c.a != c.b, "self-contact");
  TVEG_REQUIRE(c.start < c.end, "contact must have positive duration");
  TVEG_REQUIRE(c.start >= 0 && c.end <= horizon_, "contact outside horizon");
  TVEG_REQUIRE(c.distance > 0, "contact distance must be positive");
  if (c.a > c.b) std::swap(c.a, c.b);
  contacts_.push_back(c);
}

void ContactTrace::sort() {
  std::sort(contacts_.begin(), contacts_.end(),
            [](const Contact& x, const Contact& y) {
              return std::tie(x.start, x.a, x.b, x.end) <
                     std::tie(y.start, y.a, y.b, y.end);
            });
}

ContactTrace ContactTrace::window(Time lo, Time hi) const {
  TVEG_REQUIRE(lo >= 0 && hi <= horizon_ && lo < hi, "invalid window");
  ContactTrace out(node_count_, hi - lo);
  for (const Contact& c : contacts_) {
    const Time s = std::max(c.start, lo);
    const Time e = std::min(c.end, hi);
    if (s < e) out.add({c.a, c.b, s - lo, e - lo, c.distance});
  }
  out.sort();
  return out;
}

ContactTrace ContactTrace::head_nodes(NodeId n) const {
  TVEG_REQUIRE(n > 1 && n <= node_count_, "invalid node prefix size");
  ContactTrace out(n, horizon_);
  for (const Contact& c : contacts_)
    if (c.a < n && c.b < n) out.add(c);
  out.sort();
  return out;
}

TimeVaryingGraph ContactTrace::to_graph(Time tau) const {
  TimeVaryingGraph g(node_count_, horizon_, tau);
  for (const Contact& c : contacts_) g.add_contact(c.a, c.b, c.start, c.end);
  return g;
}

std::vector<Time> ContactTrace::inter_contact_times() const {
  std::map<std::pair<NodeId, NodeId>, std::vector<std::pair<Time, Time>>>
      per_pair;
  for (const Contact& c : contacts_)
    per_pair[{c.a, c.b}].push_back({c.start, c.end});

  std::vector<Time> gaps;
  for (auto& [pair, meets] : per_pair) {
    std::sort(meets.begin(), meets.end());
    for (std::size_t i = 1; i < meets.size(); ++i) {
      const Time gap = meets[i].first - meets[i - 1].second;
      if (gap > 0) gaps.push_back(gap);
    }
  }
  return gaps;
}

double ContactTrace::average_degree(Time t) const {
  std::size_t live = 0;
  for (const Contact& c : contacts_)
    if (c.start <= t && t < c.end) ++live;
  // Each live contact contributes degree 1 to each endpoint. Overlapping
  // contacts of the same pair were normalized away by generators; real
  // traces may double-count, which matches how degree is usually reported.
  return 2.0 * static_cast<double>(live) / static_cast<double>(node_count_);
}

std::size_t ContactTrace::pair_count() const {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(contacts_.size());
  for (const Contact& c : contacts_) pairs.push_back({c.a, c.b});
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs.size();
}

}  // namespace tveg::trace
