#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace tveg::trace {

using support::Rng;

ContactTrace generate_haggle_like(const HaggleLikeConfig& config) {
  TVEG_REQUIRE(config.pair_probability > 0 && config.pair_probability <= 1,
               "pair probability must lie in (0, 1]");
  TVEG_REQUIRE(config.activation_ramp_end >= 0 &&
                   config.activation_ramp_end < config.horizon,
               "activation ramp must end before the horizon");

  Rng rng(config.seed);
  ContactTrace trace(config.nodes, config.horizon);

  for (NodeId a = 0; a < config.nodes; ++a) {
    for (NodeId b = a + 1; b < config.nodes; ++b) {
      if (!rng.bernoulli(config.pair_probability)) continue;
      // The pair's social relationship "activates" somewhere on the ramp —
      // this is what makes the population-average degree climb early in the
      // trace and plateau afterwards (Fig. 7's shape).
      Time t = rng.uniform(0.0, config.activation_ramp_end);
      for (;;) {
        t += rng.pareto(config.pareto_scale, config.pareto_shape);
        if (t >= config.horizon) break;
        Time duration = rng.lognormal(config.duration_log_mean,
                                      config.duration_log_sigma);
        duration = std::min<Time>(duration, config.max_duration);
        const Time end = std::min(t + duration, config.horizon);
        if (end > t) {
          const double d =
              rng.uniform(config.min_distance, config.max_distance);
          trace.add({a, b, t, end, d});
        }
        t = end;
      }
    }
  }
  trace.sort();
  return trace;
}

namespace {

/// Random-waypoint walker: position as a function of sampled steps.
class Walker {
 public:
  Walker(Rng& rng, double area, double speed_min, double speed_max,
         Time pause_max)
      : area_(area),
        speed_min_(speed_min),
        speed_max_(speed_max),
        pause_max_(pause_max),
        x_(rng.uniform(0.0, area)),
        y_(rng.uniform(0.0, area)) {
    pick_waypoint(rng);
  }

  void advance(Rng& rng, Time dt) {
    while (dt > 0) {
      if (pause_left_ > 0) {
        const Time p = std::min(pause_left_, dt);
        pause_left_ -= p;
        dt -= p;
        continue;
      }
      const double dist_to_target = std::hypot(tx_ - x_, ty_ - y_);
      const double step = speed_ * dt;
      if (step >= dist_to_target) {
        x_ = tx_;
        y_ = ty_;
        dt -= speed_ > 0 ? dist_to_target / speed_ : dt;
        pause_left_ = rng.uniform(0.0, pause_max_);
        pick_waypoint(rng);
      } else {
        const double frac = step / dist_to_target;
        x_ += (tx_ - x_) * frac;
        y_ += (ty_ - y_) * frac;
        dt = 0;
      }
    }
  }

  double x() const { return x_; }
  double y() const { return y_; }

 private:
  void pick_waypoint(Rng& rng) {
    tx_ = rng.uniform(0.0, area_);
    ty_ = rng.uniform(0.0, area_);
    speed_ = rng.uniform(speed_min_, speed_max_);
  }

  double area_, speed_min_, speed_max_;
  Time pause_max_;
  double x_, y_, tx_ = 0, ty_ = 0, speed_ = 1;
  Time pause_left_ = 0;
};

}  // namespace

ContactTrace generate_random_waypoint(const RandomWaypointConfig& config) {
  TVEG_REQUIRE(config.sample_dt > 0, "sample step must be positive");
  TVEG_REQUIRE(config.distance_quantum > 0, "distance quantum must be positive");
  TVEG_REQUIRE(config.speed_min > 0 && config.speed_max >= config.speed_min,
               "speeds must be positive and ordered");

  Rng rng(config.seed);
  std::vector<Walker> walkers;
  walkers.reserve(static_cast<std::size_t>(config.nodes));
  for (NodeId i = 0; i < config.nodes; ++i)
    walkers.emplace_back(rng, config.area, config.speed_min, config.speed_max,
                         config.pause_max);

  ContactTrace trace(config.nodes, config.horizon);
  const auto n = static_cast<std::size_t>(config.nodes);
  // Per pair: (contact start, quantized distance bucket), bucket < 0 when
  // out of range.
  struct Run {
    Time start = 0;
    int bucket = -1;
  };
  std::vector<Run> runs(n * n);
  auto run_of = [&](NodeId a, NodeId b) -> Run& {
    return runs[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)];
  };

  auto flush = [&](NodeId a, NodeId b, Run& run, Time now) {
    if (run.bucket >= 0 && now > run.start) {
      const double d = (static_cast<double>(run.bucket) + 0.5) *
                       config.distance_quantum;
      trace.add({a, b, run.start, now,
                 std::max(d, 0.5 * config.distance_quantum)});
    }
  };

  for (Time t = 0; t < config.horizon; t += config.sample_dt) {
    const Time next = std::min(t + config.sample_dt, config.horizon);
    for (NodeId a = 0; a < config.nodes; ++a) {
      for (NodeId b = a + 1; b < config.nodes; ++b) {
        const double d = std::hypot(walkers[a].x() - walkers[b].x(),
                                    walkers[a].y() - walkers[b].y());
        const int bucket =
            d <= config.comm_range && d > 0
                ? static_cast<int>(d / config.distance_quantum)
                : -1;
        Run& run = run_of(a, b);
        if (bucket != run.bucket) {
          flush(a, b, run, t);
          run = {t, bucket};
        }
      }
    }
    for (auto& w : walkers) w.advance(rng, next - t);
  }
  for (NodeId a = 0; a < config.nodes; ++a)
    for (NodeId b = a + 1; b < config.nodes; ++b)
      flush(a, b, run_of(a, b), config.horizon);

  trace.sort();
  return trace;
}

ContactTrace generate_duty_cycle(const DutyCycleConfig& config) {
  TVEG_REQUIRE(config.duty > 0 && config.duty <= 1, "duty must lie in (0, 1]");
  TVEG_REQUIRE(config.period > 0 && config.period < config.horizon,
               "period must be positive and below the horizon");

  Rng rng(config.seed);
  struct Sensor {
    double x, y;
    Time phase;
  };
  std::vector<Sensor> sensors;
  sensors.reserve(static_cast<std::size_t>(config.nodes));
  for (NodeId i = 0; i < config.nodes; ++i)
    sensors.push_back({rng.uniform(0.0, config.area),
                       rng.uniform(0.0, config.area),
                       rng.uniform(0.0, config.period)});

  // Awake intervals of node i: [phase + k·period, phase + k·period + duty·period).
  auto awake_intervals = [&](const Sensor& s) {
    IntervalSet set;
    const Time on = config.duty * config.period;
    for (Time t = s.phase - config.period; t < config.horizon;
         t += config.period) {
      const Time lo = std::max<Time>(t, 0);
      const Time hi = std::min(t + on, config.horizon);
      if (lo < hi) set.add(lo, hi);
    }
    return set;
  };

  std::vector<IntervalSet> awake;
  awake.reserve(sensors.size());
  for (const auto& s : sensors) awake.push_back(awake_intervals(s));

  ContactTrace trace(config.nodes, config.horizon);
  for (NodeId a = 0; a < config.nodes; ++a) {
    for (NodeId b = a + 1; b < config.nodes; ++b) {
      const double d = std::hypot(sensors[a].x - sensors[b].x,
                                  sensors[a].y - sensors[b].y);
      if (d > config.comm_range || d == 0) continue;
      const IntervalSet both = awake[a].intersect(awake[b]);
      for (const Interval& iv : both.intervals())
        trace.add({a, b, iv.start, iv.end, d});
    }
  }
  trace.sort();
  return trace;
}

ContactTrace generate_snapshots(const SnapshotConfig& config) {
  TVEG_REQUIRE(config.p > 0 && config.p <= 1, "p must lie in (0, 1]");
  TVEG_REQUIRE(config.slot > 0 && config.slot <= config.horizon,
               "slot must be positive and fit the horizon");

  Rng rng(config.seed);
  ContactTrace trace(config.nodes, config.horizon);
  for (Time t = 0; t < config.horizon; t += config.slot) {
    const Time end = std::min(t + config.slot, config.horizon);
    for (NodeId a = 0; a < config.nodes; ++a)
      for (NodeId b = a + 1; b < config.nodes; ++b)
        if (rng.bernoulli(config.p))
          trace.add({a, b, t, end,
                     rng.uniform(config.min_distance, config.max_distance)});
  }
  trace.sort();
  return trace;
}

}  // namespace tveg::trace
