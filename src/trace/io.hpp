// Contact-trace serialization.
//
// Format: whitespace-separated text, one contact per line —
//     <node_a> <node_b> <start> <end> [distance]
// with optional '#' comment lines and an optional header line
//     # tveg-trace nodes=<N> horizon=<T>
// This is a superset of the CRAWDAD imote/haggle contact list format, so a
// real Haggle trace (plus a chosen node count / horizon) drops in directly.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/contact_trace.hpp"

namespace tveg::trace {

/// Reads a trace from a stream. If the header line is absent, `nodes` and
/// `horizon` must be supplied (> 0); contacts beyond the horizon are
/// clipped, node ids are expected to be 0-based and dense.
ContactTrace read_trace(std::istream& in, NodeId nodes = 0, Time horizon = 0,
                        double default_distance = 1.0);

/// Reads a trace from a file path.
ContactTrace read_trace_file(const std::string& path, NodeId nodes = 0,
                             Time horizon = 0, double default_distance = 1.0);

/// Writes a trace (with header) in the format read_trace understands.
void write_trace(std::ostream& out, const ContactTrace& trace);

/// Writes a trace to a file path.
void write_trace_file(const std::string& path, const ContactTrace& trace);

}  // namespace tveg::trace
