// Contact-trace serialization.
//
// Format: whitespace-separated text, one contact per line —
//     <node_a> <node_b> <start> <end> [distance]
// with optional '#' comment lines and an optional header line
//     # tveg-trace nodes=<N> horizon=<T>
// This is a superset of the CRAWDAD imote/haggle contact list format, so a
// real Haggle trace (plus a chosen node count / horizon) drops in directly.
//
// Two parsing entry points:
//  * parse_trace / parse_trace_file return Result<ContactTrace> with a
//    structured, line-numbered Error on malformed input — the robust path
//    the CLI and the fault pipeline use;
//  * read_trace / read_trace_file keep the original throwing interface on
//    top of the same parser.
#pragma once

#include <iosfwd>
#include <string>

#include "support/result.hpp"
#include "trace/contact_trace.hpp"

namespace tveg::trace {

/// Parser knobs shared by the robust and throwing entry points.
struct ParseOptions {
  /// Node count / horizon when the header is absent (0 = infer from data).
  NodeId nodes = 0;
  Time horizon = 0;
  /// Distance for 4-column lines.
  double default_distance = 1.0;
};

/// Parses a trace from a stream. Malformed lines (wrong arity, non-numeric
/// fields, trailing garbage), semantically invalid contacts (self-contacts,
/// negative times, end <= start, out-of-range node ids, non-positive
/// distances) and bad headers produce a support::Error carrying the 1-based
/// line number instead of throwing or silently dropping rows. Contacts
/// extending past the declared horizon are clipped (a declared horizon is a
/// view, not a claim about the data).
support::Result<ContactTrace> parse_trace(std::istream& in,
                                          const ParseOptions& options = {});

/// As above from a file path (missing/unreadable file → ErrorCode::kIo).
support::Result<ContactTrace> parse_trace_file(const std::string& path,
                                               const ParseOptions& options = {});

/// Reads a trace from a stream; throws std::invalid_argument rendering the
/// parse error. If the header line is absent, `nodes` and `horizon` must be
/// supplied (> 0).
ContactTrace read_trace(std::istream& in, NodeId nodes = 0, Time horizon = 0,
                        double default_distance = 1.0);

/// Reads a trace from a file path (throwing interface).
ContactTrace read_trace_file(const std::string& path, NodeId nodes = 0,
                             Time horizon = 0, double default_distance = 1.0);

/// Writes a trace (with header) in the format read_trace understands.
void write_trace(std::ostream& out, const ContactTrace& trace);

/// Writes a trace to a file path.
void write_trace_file(const std::string& path, const ContactTrace& trace);

}  // namespace tveg::trace
