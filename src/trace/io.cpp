#include "trace/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace tveg::trace {

using support::Error;
using support::ErrorCode;
using support::Result;

namespace {

Error parse_error(long line, std::string message) {
  return Error{ErrorCode::kParse, std::move(message), line};
}

Error input_error(long line, std::string message) {
  return Error{ErrorCode::kInvalidInput, std::move(message), line};
}

/// Full-token double parse; rejects empty tokens, trailing garbage, inf/nan.
bool parse_number(const std::string& token, double& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE) return false;
  if (!(v == v) || v > 1e300 || v < -1e300) return false;  // nan / inf
  return out = v, true;
}

/// Full-token node-id parse: a non-negative integer that fits NodeId.
bool parse_node(const std::string& token, NodeId& out) {
  if (token.empty()) return false;
  long long v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 0x7fffffffLL) return false;
  }
  return out = static_cast<NodeId>(v), true;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

/// Parses "key=value" tokens from the "# tveg-trace ..." header. Returns
/// false when the comment is not a tveg-trace header at all; malformed
/// values inside a recognized header are reported through `error`.
bool parse_header(const std::string& line, long line_no, NodeId& nodes,
                  Time& horizon, std::optional<Error>& error) {
  std::istringstream is(line);
  std::string hash, tag;
  is >> hash >> tag;
  if (hash != "#" || tag != "tveg-trace") return false;
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    double v = 0;
    if (key == "nodes") {
      NodeId n = 0;
      if (!parse_node(value, n) || n <= 0) {
        error = parse_error(line_no, "bad header node count '" + value + "'");
        return true;
      }
      nodes = n;
    } else if (key == "horizon") {
      if (!parse_number(value, v) || v <= 0) {
        error = parse_error(line_no, "bad header horizon '" + value + "'");
        return true;
      }
      horizon = v;
    }
  }
  return true;
}

}  // namespace

Result<ContactTrace> parse_trace(std::istream& in,
                                 const ParseOptions& options) {
  struct Row {
    NodeId a, b;
    Time start, end;
    double distance;
    long line;
  };
  NodeId nodes = options.nodes;
  Time horizon = options.horizon;
  std::vector<Row> rows;
  std::string line;
  long line_no = 0;
  NodeId max_node = -1;
  Time max_time = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::optional<Error> header_error;
      parse_header(line, line_no, nodes, horizon, header_error);
      if (header_error) return *header_error;
      continue;
    }
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;  // whitespace-only line
    if (tokens.size() < 4 || tokens.size() > 5)
      return parse_error(line_no, "expected 4 or 5 fields, got " +
                                      std::to_string(tokens.size()));
    Row r{};
    r.line = line_no;
    r.distance = options.default_distance;
    if (!parse_node(tokens[0], r.a))
      return parse_error(line_no, "bad node id '" + tokens[0] + "'");
    if (!parse_node(tokens[1], r.b))
      return parse_error(line_no, "bad node id '" + tokens[1] + "'");
    if (!parse_number(tokens[2], r.start))
      return parse_error(line_no, "bad start time '" + tokens[2] + "'");
    if (!parse_number(tokens[3], r.end))
      return parse_error(line_no, "bad end time '" + tokens[3] + "'");
    if (tokens.size() == 5 && !parse_number(tokens[4], r.distance))
      return parse_error(line_no, "bad distance '" + tokens[4] + "'");

    if (r.a == r.b)
      return input_error(r.line,
                         "self-contact on node " + std::to_string(r.a));
    if (r.start < 0)
      return input_error(r.line, "negative contact start " +
                                     std::to_string(r.start));
    if (r.end <= r.start)
      return input_error(
          r.line, "empty or inverted contact interval [" +
                      std::to_string(r.start) + ", " + std::to_string(r.end) +
                      ")");
    if (r.distance <= 0)
      return input_error(r.line, "non-positive contact distance " +
                                     std::to_string(r.distance));

    rows.push_back(r);
    max_node = std::max({max_node, r.a, r.b});
    max_time = std::max(max_time, r.end);
  }
  if (in.bad()) return Error{ErrorCode::kIo, "stream read failure", line_no};

  if (nodes <= 0) nodes = max_node + 1;
  if (horizon <= 0) horizon = max_time;
  if (nodes <= 1)
    return Error{ErrorCode::kInvalidInput, "trace declares fewer than two nodes"};
  if (horizon <= 0)
    return Error{ErrorCode::kInvalidInput, "trace has no positive horizon"};

  // Reject overlapping intervals for the same pair: they double-count the
  // link and usually indicate a corrupted or mis-merged trace. (Touching
  // intervals are fine — alternating contact/gap sequences produce them.)
  {
    std::vector<std::size_t> order(rows.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto pair_key = [&](const Row& r) {
      return std::pair<NodeId, NodeId>(std::min(r.a, r.b), std::max(r.a, r.b));
    };
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      const auto kx = pair_key(rows[x]), ky = pair_key(rows[y]);
      if (kx != ky) return kx < ky;
      return rows[x].start < rows[y].start;
    });
    for (std::size_t i = 1; i < order.size(); ++i) {
      const Row& prev = rows[order[i - 1]];
      const Row& cur = rows[order[i]];
      if (pair_key(prev) == pair_key(cur) && cur.start < prev.end - 1e-12)
        return input_error(
            cur.line, "overlapping contact intervals for pair (" +
                          std::to_string(cur.a) + ", " + std::to_string(cur.b) +
                          ") (previous interval from line " +
                          std::to_string(prev.line) + " ends at " +
                          std::to_string(prev.end) + ")");
    }
  }

  ContactTrace trace(nodes, horizon);
  for (const Row& r : rows) {
    if (r.a >= nodes || r.b >= nodes)
      return input_error(r.line, "node id " + std::to_string(std::max(r.a, r.b)) +
                                     " out of range (trace declares " +
                                     std::to_string(nodes) + " nodes)");
    // A declared horizon is a view, not a claim about the data: clip, and
    // drop contacts that fall entirely outside it.
    const Time s = r.start;
    const Time e = std::min(r.end, horizon);
    if (s < e) trace.add({r.a, r.b, s, e, r.distance});
  }
  trace.sort();
  return trace;
}

Result<ContactTrace> parse_trace_file(const std::string& path,
                                      const ParseOptions& options) {
  std::ifstream in(path);
  if (!in.good())
    return Error{ErrorCode::kIo, "cannot open trace file: " + path};
  return parse_trace(in, options);
}

ContactTrace read_trace(std::istream& in, NodeId nodes, Time horizon,
                        double default_distance) {
  return parse_trace(in, {nodes, horizon, default_distance}).take_or_throw();
}

ContactTrace read_trace_file(const std::string& path, NodeId nodes,
                             Time horizon, double default_distance) {
  return parse_trace_file(path, {nodes, horizon, default_distance})
      .take_or_throw();
}

void write_trace(std::ostream& out, const ContactTrace& trace) {
  out << "# tveg-trace nodes=" << trace.node_count()
      << " horizon=" << trace.horizon() << '\n';
  out.precision(17);  // round-trip exact doubles
  for (const Contact& c : trace.contacts())
    out << c.a << ' ' << c.b << ' ' << c.start << ' ' << c.end << ' '
        << c.distance << '\n';
}

void write_trace_file(const std::string& path, const ContactTrace& trace) {
  std::ofstream out(path);
  TVEG_REQUIRE(out.good(), "cannot open output file: " + path);
  write_trace(out, trace);
}

}  // namespace tveg::trace
