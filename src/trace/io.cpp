#include "trace/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace tveg::trace {

namespace {

/// Parses "key=value" tokens from the "# tveg-trace ..." header.
bool parse_header(const std::string& line, NodeId& nodes, Time& horizon) {
  std::istringstream is(line);
  std::string hash, tag;
  is >> hash >> tag;
  if (hash != "#" || tag != "tveg-trace") return false;
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "nodes") nodes = static_cast<NodeId>(std::stol(value));
    if (key == "horizon") horizon = std::stod(value);
  }
  return true;
}

}  // namespace

ContactTrace read_trace(std::istream& in, NodeId nodes, Time horizon,
                        double default_distance) {
  struct Row {
    NodeId a, b;
    Time start, end;
    double distance;
  };
  std::vector<Row> rows;
  std::string line;
  NodeId max_node = -1;
  Time max_time = 0;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      parse_header(line, nodes, horizon);
      continue;
    }
    std::istringstream is(line);
    Row r{};
    r.distance = default_distance;
    if (!(is >> r.a >> r.b >> r.start >> r.end)) {
      TVEG_REQUIRE(false, "malformed trace line: " + line);
    }
    double d;
    if (is >> d) r.distance = d;
    rows.push_back(r);
    max_node = std::max({max_node, r.a, r.b});
    max_time = std::max(max_time, r.end);
  }

  if (nodes <= 0) nodes = max_node + 1;
  if (horizon <= 0) horizon = max_time;
  TVEG_REQUIRE(nodes > 1, "trace declares fewer than two nodes");
  TVEG_REQUIRE(horizon > 0, "trace has no positive horizon");

  ContactTrace trace(nodes, horizon);
  for (const Row& r : rows) {
    const Time s = std::max<Time>(r.start, 0);
    const Time e = std::min(r.end, horizon);
    if (s < e && r.a < nodes && r.b < nodes)
      trace.add({r.a, r.b, s, e, r.distance});
  }
  trace.sort();
  return trace;
}

ContactTrace read_trace_file(const std::string& path, NodeId nodes,
                             Time horizon, double default_distance) {
  std::ifstream in(path);
  TVEG_REQUIRE(in.good(), "cannot open trace file: " + path);
  return read_trace(in, nodes, horizon, default_distance);
}

void write_trace(std::ostream& out, const ContactTrace& trace) {
  out << "# tveg-trace nodes=" << trace.node_count()
      << " horizon=" << trace.horizon() << '\n';
  out.precision(17);  // round-trip exact doubles
  for (const Contact& c : trace.contacts())
    out << c.a << ' ' << c.b << ' ' << c.start << ' ' << c.end << ' '
        << c.distance << '\n';
}

void write_trace_file(const std::string& path, const ContactTrace& trace) {
  std::ofstream out(path);
  TVEG_REQUIRE(out.good(), "cannot open output file: " + path);
  write_trace(out, trace);
}

}  // namespace tveg::trace
