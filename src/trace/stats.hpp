// Trace statistics: the quantities used to characterize contact traces in
// the opportunistic-networking literature (and to check that the synthetic
// Haggle-like generator actually is Haggle-like): inter-contact power-law
// tails, contact durations, degree timelines, and per-node activity.
#pragma once

#include <vector>

#include "trace/contact_trace.hpp"

namespace tveg::trace {

/// Summary statistics of one trace.
struct TraceSummary {
  std::size_t contacts = 0;
  std::size_t pairs = 0;
  double mean_contact_duration = 0;
  double mean_inter_contact = 0;
  /// Hill estimator of the inter-contact tail exponent (the Pareto shape
  /// the Haggle measurements report as ≈1.5); 0 when too few samples.
  double inter_contact_tail_exponent = 0;
  double mean_degree = 0;  ///< time-averaged node degree
  double max_degree = 0;
};

/// Computes the summary. `degree_samples` controls the timeline resolution;
/// `tail_fraction` is the upper-order-statistics share used by the Hill
/// estimator.
TraceSummary summarize(const ContactTrace& trace,
                       std::size_t degree_samples = 200,
                       double tail_fraction = 0.25);

/// Average degree sampled at `samples` uniform times over the horizon.
std::vector<double> degree_timeline(const ContactTrace& trace,
                                    std::size_t samples);

/// Hill estimator of a power-law tail exponent from raw samples: uses the
/// ⌈tail_fraction·n⌉ largest values. Returns 0 when fewer than 3 tail
/// samples are available.
double hill_tail_exponent(std::vector<double> samples, double tail_fraction);

/// Number of contacts each node participates in.
std::vector<std::size_t> contacts_per_node(const ContactTrace& trace);

}  // namespace tveg::trace
