// Graceful solver degradation (robustness subsystem, layer 2).
//
// Production broadcast scheduling cannot answer "the solver blew its time
// budget" with a crash or an empty hand: something must transmit. The
// fallback ladder runs the requested scheduler under a wall-clock budget
// and, when it times out (or throws, or fails to cover), descends to
// structurally simpler rungs:
//
//     EEDCB  (Steiner pipeline, best energy, slowest)
//       ↓ timeout / error / uncovered
//     BIP    (incremental-power heuristic, mid energy, faster)
//       ↓ timeout / error / uncovered
//     GREED  (one greedy sweep, costliest, effectively never fails)
//
// The final rung always runs without a deadline and always returns a
// schedule — some schedule beats no schedule. Coverage at the bottom is
// best-effort: a timed-out rung leaves nothing behind, so when GREED's
// heuristic covers less than EEDCB would have with more budget, that
// shortfall is visible in result.covered_all (and counted as a descent
// when an earlier rung failed for it). Results are tagged with the rung
// that produced them and every descent is counted in the obs registry
// under tveg.fault.solve.*.
#pragma once

#include <vector>

#include "core/energy_allocation.hpp"
#include "core/fr.hpp"
#include "support/budget.hpp"
#include "support/result.hpp"
#include "tvg/dts.hpp"

namespace tveg::fault {

/// The ladder's rungs, best-first.
enum class SolverRung { kEedcb, kBip, kGreed };

const char* rung_name(SolverRung rung);

/// Options for one robust solve.
struct RobustSolveOptions {
  /// Wall-clock budget for the whole ladder in ms; < 0 = unlimited. The
  /// final rung ignores what is left of it (it must produce a schedule).
  double budget_ms = -1;
  /// First rung to try (lower rungs are already their own fallback).
  SolverRung start = SolverRung::kEedcb;
  /// Optional cancel token observed by every rung *including* the final
  /// one: a fired token makes robust_solve throw support::CancelledError
  /// instead of descending — cancellation means "stop", not "try cheaper".
  /// Default: never cancelled.
  support::CancelToken cancel;
  core::EedcbOptions eedcb;
};

/// A robust solve outcome: the schedule, the rung that produced it, and the
/// structured errors of every rung that was abandoned on the way down.
struct RobustSolveResult {
  core::SchedulerResult result;
  SolverRung rung = SolverRung::kEedcb;
  /// Why higher rungs were abandoned (kTimeout / kInternal / kInfeasible),
  /// in descent order; empty when the first rung succeeded.
  std::vector<support::Error> descents;

  bool degraded() const { return !descents.empty(); }
};

/// Runs the ladder on `instance` over `dts`. Never throws for timeouts or
/// rung failures (those are recorded in `descents`); only programming
/// errors (invalid instance) still propagate.
RobustSolveResult robust_solve(const core::TmedbInstance& instance,
                               const DiscreteTimeSet& dts,
                               const RobustSolveOptions& options = {});

/// FR variant: backbone ladder on the (fading) instance followed by NLP
/// energy allocation with bounded retry (see AllocationOptions::max_retries).
struct RobustFrResult {
  RobustSolveResult backbone;
  core::AllocationOutcome allocation;
  const core::Schedule& schedule() const { return allocation.schedule; }
  bool feasible() const {
    return backbone.result.covered_all && allocation.feasible;
  }
};

RobustFrResult robust_solve_fr(
    const core::TmedbInstance& instance, const DiscreteTimeSet& dts,
    const RobustSolveOptions& options = {},
    const core::AllocationOptions& allocation_options = {});

}  // namespace tveg::fault
