#include "fault/degrade.hpp"

#include <exception>
#include <stdexcept>
#include <string>

#include "core/baselines.hpp"
#include "core/bip.hpp"
#include "core/eedcb.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tveg::fault {

using support::Error;
using support::ErrorCode;

const char* rung_name(SolverRung rung) {
  switch (rung) {
    case SolverRung::kEedcb: return "eedcb";
    case SolverRung::kBip: return "bip";
    case SolverRung::kGreed: return "greed";
  }
  return "?";
}

namespace {

core::SchedulerResult run_rung(SolverRung rung,
                               const core::TmedbInstance& instance,
                               const DiscreteTimeSet& dts,
                               const RobustSolveOptions& options,
                               const support::Budget& budget) {
  switch (rung) {
    case SolverRung::kEedcb: {
      core::EedcbOptions eedcb = options.eedcb;
      eedcb.budget = budget;
      return core::run_eedcb(instance, dts, eedcb);
    }
    case SolverRung::kBip: {
      core::BipOptions bip;
      bip.budget = budget;
      return core::run_bip(instance, dts, bip);
    }
    case SolverRung::kGreed: {
      core::BaselineOptions greed;
      greed.rule = core::BaselineRule::kGreedy;
      return core::run_baseline(instance, dts, greed);
    }
  }
  throw std::logic_error("unknown rung");
}

void count_descent(const Error& error) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& descents = registry.counter(obs::keys::kFaultSolveDescents);
  static obs::Counter& timeouts = registry.counter(obs::keys::kFaultSolveTimeouts);
  descents.add(1);
  if (error.code == ErrorCode::kTimeout) timeouts.add(1);
}

}  // namespace

RobustSolveResult robust_solve(const core::TmedbInstance& instance,
                               const DiscreteTimeSet& dts,
                               const RobustSolveOptions& options) {
  obs::TraceSpan span("robust_solve");
  instance.validate();
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& solves = registry.counter(obs::keys::kFaultSolveAttempts);
  static obs::Counter& degraded_metric =
      registry.counter(obs::keys::kFaultSolveDegraded);
  solves.add(1);

  // One budget for the whole ladder: a rung that burns the clock leaves
  // less for the next, and the final rung ignores what is left of the
  // deadline (but still honors the cancel token — cancellation is "stop",
  // not "try cheaper", and propagates as CancelledError).
  const support::Deadline deadline = options.budget_ms < 0
                                         ? support::Deadline()
                                         : support::Deadline::after_ms(
                                               options.budget_ms);
  const support::Budget budget(deadline, options.cancel);
  const support::Budget last_budget(support::Deadline(), options.cancel);

  using obs::FlightEventKind;
  obs::flight_recorder().record(FlightEventKind::kSolveStart,
                                static_cast<std::uint64_t>(options.start),
                                static_cast<std::uint64_t>(
                                    options.budget_ms < 0 ? 0
                                                          : options.budget_ms));

  static obs::Counter& skips = registry.counter(obs::keys::kFaultSolveRungSkips);

  RobustSolveResult out;
  SolverRung rung = options.start;
  for (;;) {
    const bool last = rung == SolverRung::kGreed;
    // Short-circuit a rung whose budget is already spent: entering it would
    // only burn scheduler setup (DTS walks, aux-graph allocation) before the
    // first poll threw anyway. The descent record is identical to the one a
    // first-poll timeout would have produced, so ladder observers (tests,
    // flight dumps) see the same shape either way — plus a rung_skipped
    // marker saying no solver work ran at all.
    if (!last && deadline.expired()) {
      obs::flight_recorder().record(FlightEventKind::kDeadlineExpired,
                                    static_cast<std::uint64_t>(rung), 0,
                                    rung_name(rung));
      obs::flight_recorder().record(FlightEventKind::kRungSkipped,
                                    static_cast<std::uint64_t>(rung), 0,
                                    rung_name(rung));
      skips.add(1);
      Error skipped{ErrorCode::kTimeout,
                    std::string(rung_name(rung)) +
                        " skipped: ladder budget already expired",
                    -1};
      count_descent(skipped);
      obs::flight_recorder().record(
          FlightEventKind::kRungDemoted, static_cast<std::uint64_t>(rung),
          static_cast<std::uint64_t>(skipped.code), rung_name(rung));
      obs::flight_dump("fallback-ladder demotion");
      out.descents.push_back(std::move(skipped));
      rung = rung == SolverRung::kEedcb ? SolverRung::kBip : SolverRung::kGreed;
      continue;
    }
    obs::flight_recorder().record(FlightEventKind::kRungStart,
                                  static_cast<std::uint64_t>(rung), 0,
                                  rung_name(rung));
    Error descent{ErrorCode::kInternal, "", -1};
    try {
      out.result = run_rung(rung, instance, dts, options,
                            last ? last_budget : budget);
      if (out.result.covered_all || last) {
        out.rung = rung;
        obs::flight_recorder().record(FlightEventKind::kRungSelected,
                                      static_cast<std::uint64_t>(rung),
                                      out.descents.size(), rung_name(rung));
        if (out.degraded()) degraded_metric.add(1);
        return out;
      }
      descent = {ErrorCode::kInfeasible,
                 std::string(rung_name(rung)) +
                     " left nodes uncovered within the deadline",
                 -1};
    } catch (const support::CancelledError&) {
      throw;  // cancellation aborts the ladder, it never descends
    } catch (const support::TimeoutError& e) {
      descent = {ErrorCode::kTimeout, e.what(), -1};
      obs::flight_recorder().record(FlightEventKind::kDeadlineExpired,
                                    static_cast<std::uint64_t>(rung), 0,
                                    rung_name(rung));
    } catch (const std::exception& e) {
      descent = {ErrorCode::kInternal,
                 std::string(rung_name(rung)) + " threw: " + e.what(), -1};
    }
    count_descent(descent);
    obs::flight_recorder().record(
        FlightEventKind::kRungDemoted, static_cast<std::uint64_t>(rung),
        static_cast<std::uint64_t>(descent.code), rung_name(rung));
    // A demotion is exactly the "what just happened?" moment the recorder
    // exists for: dump the ring before the next rung overwrites context.
    obs::flight_dump("fallback-ladder demotion");
    out.descents.push_back(std::move(descent));
    rung = rung == SolverRung::kEedcb ? SolverRung::kBip : SolverRung::kGreed;
  }
}

RobustFrResult robust_solve_fr(const core::TmedbInstance& instance,
                               const DiscreteTimeSet& dts,
                               const RobustSolveOptions& options,
                               const core::AllocationOptions& alloc) {
  RobustFrResult out;
  out.backbone = robust_solve(instance, dts, options);
  out.allocation =
      core::allocate_energy(instance, out.backbone.result.schedule, alloc);
  return out;
}

}  // namespace tveg::fault
