#include "fault/repair.hpp"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "online/driver.hpp"
#include "online/policy.hpp"
#include "support/math.hpp"

namespace tveg::fault {

using support::kInf;

namespace {
constexpr double kTimeTol = 1e-9;
}

std::vector<Time> replay_informed_times(const core::TmedbInstance& instance,
                                        const core::Schedule& schedule,
                                        std::vector<char>* fired_out) {
  instance.validate();
  const core::Tveg& tveg = *instance.tveg;
  const Time tau = tveg.latency();
  const double eps = instance.effective_epsilon();
  const auto n = static_cast<std::size_t>(tveg.node_count());
  const auto& txs = schedule.transmissions();

  // Cumulative coverage in log space, exactly as run_cascade evaluates
  // Eq. 6: a node is informed once the *product* of failure probabilities
  // over all its arrivals drops to ε — fading schedules (FR-*) split the
  // failure budget across overlapping transmissions, so a per-transmission
  // threshold would wrongly declare their nodes uncovered.
  std::vector<double> log_p(n, 0.0);
  log_p[static_cast<std::size_t>(instance.source)] = -kInf;
  std::vector<Time> informed(n, kInf);
  informed[static_cast<std::size_t>(instance.source)] = 0;
  std::vector<char> fired(txs.size(), 0);

  struct Arrival {
    Time arrival;
    NodeId receiver;
    double log_phi;
  };
  std::vector<Arrival> pending;
  std::size_t drained = 0;
  auto drain = [&](Time upto) {
    while (drained < pending.size() &&
           pending[drained].arrival <= upto + kTimeTol) {
      const Arrival& a = pending[drained++];
      const auto r = static_cast<std::size_t>(a.receiver);
      log_p[r] += a.log_phi;
      if (std::exp(log_p[r]) <= eps + 1e-12)
        informed[r] = std::min(informed[r], a.arrival);
    }
  };

  std::size_t k = 0;
  while (k < txs.size()) {
    const Time t = txs[k].time;
    if (t + tau > instance.deadline + kTimeTol) break;
    std::size_t group_end = k + 1;
    while (group_end < txs.size() && txs[group_end].time - t <= kTimeTol)
      ++group_end;

    drain(t);

    // Same-time fixpoint, mirroring run_cascade's causal semantics.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t q = k; q < group_end; ++q) {
        if (fired[q]) continue;
        const core::Transmission& tx = txs[q];
        if (informed[static_cast<std::size_t>(tx.relay)] > tx.time + kTimeTol)
          continue;  // relay does not hold the packet
        fired[q] = 1;
        progress = true;
        for (NodeId j : tveg.graph().neighbors_at(tx.relay, tx.time)) {
          if (j == instance.source) continue;
          const double phi =
              tveg.failure_probability(tx.relay, j, tx.time, tx.cost);
          pending.push_back({tx.time + tau, j, support::safe_log(phi)});
        }
        if (tau <= kTimeTol) drain(t);  // same-instant delivery
      }
    }
    k = group_end;
  }
  drain(instance.deadline);

  if (fired_out) *fired_out = std::move(fired);
  return informed;
}

RepairOutcome repair_schedule(const core::TmedbInstance& planned_instance,
                              const core::TmedbInstance& instance,
                              const DiscreteTimeSet& dts,
                              const core::Schedule& planned,
                              const RepairOptions& options) {
  obs::TraceSpan span("schedule_repair");
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& passes = registry.counter(obs::keys::kFaultRepairPasses);
  static obs::Counter& diverged_metric =
      registry.counter(obs::keys::kFaultRepairDiverged);
  static obs::Counter& patched_txs =
      registry.counter(obs::keys::kFaultRepairPatchTransmissions);
  static obs::Counter& recovered =
      registry.counter(obs::keys::kFaultRepairNodesRecovered);
  passes.add(1);

  RepairOutcome out;
  std::vector<char> fired;
  out.informed_time = replay_informed_times(instance, planned, &fired);
  const std::vector<Time> expected =
      replay_informed_times(planned_instance, planned);

  const auto n = out.informed_time.size();
  out.uncovered_before = 0;
  // First divergence: a node the clean replay informs at time t that the
  // faulted replay has not informed by t. Detection happens at the expected
  // arrival — the moment an ack/beacon would have been missed.
  out.detect_time = instance.deadline;
  bool diverged = false;
  for (std::size_t v = 0; v < n; ++v) {
    if (out.informed_time[v] == kInf) ++out.uncovered_before;
    if (expected[v] < kInf &&
        out.informed_time[v] > expected[v] + kTimeTol) {
      diverged = true;
      out.detect_time = std::min(out.detect_time, expected[v]);
    }
  }

  // The executed part of the plan: transmissions that actually fired.
  const auto& txs = planned.transmissions();
  for (std::size_t q = 0; q < txs.size(); ++q)
    if (fired[q]) out.repaired.add(txs[q]);

  if (!diverged || out.uncovered_before == 0) {
    out.uncovered_after = out.uncovered_before;
    return out;
  }
  diverged_metric.add(1);
  obs::flight_recorder().record(obs::FlightEventKind::kRepairDivergence,
                                out.uncovered_before,
                                static_cast<std::uint64_t>(txs.size()));
  obs::flight_dump("schedule-repair divergence");

  // Incremental re-solve on the faulted instance from what reality actually
  // achieved, starting at the detection time. Epidemic is the right patch
  // policy: after a fault the priority is coverage, not energy.
  online::EpidemicPolicy patch_policy;
  online::OnlineOptions online_options;
  online_options.seed = options.seed;
  const core::SchedulerResult patched = online::run_online_from(
      instance, dts, patch_policy, out.informed_time, out.detect_time,
      online_options);
  out.patch = patched.schedule;
  for (const core::Transmission& tx : out.patch.transmissions())
    out.repaired.add(tx);

  const std::vector<Time> after =
      replay_informed_times(instance, out.repaired);
  out.uncovered_after = 0;
  for (Time t : after)
    if (t == kInf) ++out.uncovered_after;

  patched_txs.add(out.patch.size());
  obs::flight_recorder().record(obs::FlightEventKind::kRepairPatched,
                                out.uncovered_after, out.patch.size());
  if (out.uncovered_before > out.uncovered_after)
    recovered.add(out.uncovered_before - out.uncovered_after);
  return out;
}

}  // namespace tveg::fault
