#include "fault/fault_plan.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace tveg::fault {

using support::Error;
using support::ErrorCode;
using support::Result;

namespace {

constexpr double kMinDuration = 1e-9;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void count_injected(FaultKind kind, std::uint64_t n = 1) {
  auto& registry = obs::MetricsRegistry::global();
  registry
      .counter(std::string(obs::keys::kFaultInjectedPrefix) + fault_kind_name(kind))
      .add(n);
  obs::flight_recorder().record(obs::FlightEventKind::kFaultInjected,
                                static_cast<std::uint64_t>(kind), n,
                                fault_kind_name(kind));
}

/// Subtracts [w0, w1) from every fragment in `fragments` in place.
void subtract_window(std::vector<std::pair<Time, Time>>& fragments, Time w0,
                     Time w1) {
  std::vector<std::pair<Time, Time>> out;
  for (const auto& [s, e] : fragments) {
    if (w1 <= s || w0 >= e) {
      out.emplace_back(s, e);
      continue;
    }
    if (s < w0) out.emplace_back(s, w0);
    if (w1 < e) out.emplace_back(w1, e);
  }
  fragments = std::move(out);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEdgeDropout:
      return "edge_dropout";
    case FaultKind::kNodeChurn:
      return "node_churn";
    case FaultKind::kContactTruncation:
      return "contact_truncation";
    case FaultKind::kContactJitter:
      return "contact_jitter";
    case FaultKind::kCostInflation:
      return "cost_inflation";
    case FaultKind::kTxFailure:
      return "tx_failure";
  }
  return "unknown";
}

std::string FaultLog::serialize() const {
  std::ostringstream os;
  os << std::setprecision(17);
  for (const FaultEvent& e : events)
    os << fault_kind_name(e.kind) << ' ' << e.a << ' ' << e.b << ' ' << e.t0
       << ' ' << e.t1 << ' ' << e.magnitude << '\n';
  return os.str();
}

bool FaultPlan::any() const {
  return any_trace_fault() || tx_failure > 0;
}

bool FaultPlan::any_trace_fault() const {
  return edge_dropout > 0 || node_churn > 0 || contact_truncation > 0 ||
         contact_jitter_s > 0 || cost_inflation > 0;
}

Result<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      return Error{ErrorCode::kParse,
                   "fault plan item '" + item + "' is not key=value"};
    const std::string key = item.substr(0, eq);
    const std::string text = item.substr(eq + 1);
    double value = 0;
    try {
      std::size_t used = 0;
      value = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
    } catch (const std::exception&) {
      return Error{ErrorCode::kParse,
                   "fault plan value for '" + key + "' is not a number: '" +
                       text + "'"};
    }

    auto probability = [&](double& field) -> Result<FaultPlan> {
      if (value < 0 || value > 1)
        return Error{ErrorCode::kInvalidInput,
                     "fault plan '" + key + "' must lie in [0, 1], got " +
                         text};
      field = value;
      return plan;
    };

    if (key == "seed") {
      if (value < 0)
        return Error{ErrorCode::kInvalidInput, "fault plan seed must be >= 0"};
      plan.seed = static_cast<std::uint64_t>(value);
    } else if (key == "edge_dropout") {
      if (auto r = probability(plan.edge_dropout); !r.ok()) return r.error();
    } else if (key == "node_churn") {
      if (auto r = probability(plan.node_churn); !r.ok()) return r.error();
    } else if (key == "churn_span") {
      if (value <= 0 || value > 1)
        return Error{ErrorCode::kInvalidInput,
                     "fault plan churn_span must lie in (0, 1]"};
      plan.churn_span = value;
    } else if (key == "truncation") {
      if (auto r = probability(plan.contact_truncation); !r.ok())
        return r.error();
    } else if (key == "truncation_keep") {
      if (value <= 0 || value > 1)
        return Error{ErrorCode::kInvalidInput,
                     "fault plan truncation_keep must lie in (0, 1]"};
      plan.truncation_keep = value;
    } else if (key == "jitter") {
      if (value < 0)
        return Error{ErrorCode::kInvalidInput,
                     "fault plan jitter must be >= 0 seconds"};
      plan.contact_jitter_s = value;
    } else if (key == "cost_inflation") {
      if (auto r = probability(plan.cost_inflation); !r.ok()) return r.error();
    } else if (key == "inflation_factor") {
      if (value < 1)
        return Error{ErrorCode::kInvalidInput,
                     "fault plan inflation_factor must be >= 1"};
      plan.cost_inflation_factor = value;
    } else if (key == "tx_failure") {
      if (auto r = probability(plan.tx_failure); !r.ok()) return r.error();
    } else {
      return Error{ErrorCode::kParse, "unknown fault plan key '" + key + "'"};
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << std::setprecision(17) << "seed=" << seed;
  if (edge_dropout > 0) os << ",edge_dropout=" << edge_dropout;
  if (node_churn > 0)
    os << ",node_churn=" << node_churn << ",churn_span=" << churn_span;
  if (contact_truncation > 0)
    os << ",truncation=" << contact_truncation
       << ",truncation_keep=" << truncation_keep;
  if (contact_jitter_s > 0) os << ",jitter=" << contact_jitter_s;
  if (cost_inflation > 0)
    os << ",cost_inflation=" << cost_inflation
       << ",inflation_factor=" << cost_inflation_factor;
  if (tx_failure > 0) os << ",tx_failure=" << tx_failure;
  return os.str();
}

FaultedTrace apply_plan(const trace::ContactTrace& input,
                        const FaultPlan& plan) {
  const Time horizon = input.horizon();
  const NodeId n = input.node_count();
  support::Rng rng(plan.seed);
  FaultLog log;

  obs::MetricsRegistry::global().counter(obs::keys::kFaultPlansApplied).add(1);

  // Canonical contact order: the draw sequence must not depend on how the
  // caller happened to order the contacts.
  std::vector<trace::Contact> contacts = input.contacts();
  std::sort(contacts.begin(), contacts.end(),
            [](const trace::Contact& x, const trace::Contact& y) {
              return std::tie(x.start, x.a, x.b, x.end) <
                     std::tie(y.start, y.a, y.b, y.end);
            });

  // Draw 1 — edge dropout, over the sorted pair set.
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (const trace::Contact& c : contacts)
    pairs.emplace(std::min(c.a, c.b), std::max(c.a, c.b));
  std::set<std::pair<NodeId, NodeId>> dropped;
  if (plan.edge_dropout > 0) {
    for (const auto& p : pairs) {
      if (!rng.bernoulli(plan.edge_dropout)) continue;
      dropped.insert(p);
      log.events.push_back({FaultKind::kEdgeDropout, p.first, p.second, 0,
                            horizon, 0});
      count_injected(FaultKind::kEdgeDropout);
    }
  }

  // Draw 2 — node churn: per node, one outage window.
  std::vector<std::pair<Time, Time>> outage(static_cast<std::size_t>(n),
                                            {0, 0});
  if (plan.node_churn > 0) {
    const Time span = plan.churn_span * horizon;
    for (NodeId v = 0; v < n; ++v) {
      if (!rng.bernoulli(plan.node_churn)) continue;
      const Time w0 = rng.uniform(0.0, std::max(horizon - span, 0.0));
      const Time w1 = std::min(w0 + span, horizon);
      outage[static_cast<std::size_t>(v)] = {w0, w1};
      log.events.push_back({FaultKind::kNodeChurn, v, kNoNode, w0, w1, 0});
      count_injected(FaultKind::kNodeChurn);
    }
  }

  // Draw 3 — per-contact truncation / jitter / inflation, then assembly.
  trace::ContactTrace out(n, horizon);
  for (const trace::Contact& c : contacts) {
    Time s = c.start, e = c.end;
    double distance = c.distance;
    const NodeId a = std::min(c.a, c.b), b = std::max(c.a, c.b);

    if (plan.contact_truncation > 0 && rng.bernoulli(plan.contact_truncation)) {
      e = s + plan.truncation_keep * (e - s);
      log.events.push_back(
          {FaultKind::kContactTruncation, a, b, s, e, plan.truncation_keep});
      count_injected(FaultKind::kContactTruncation);
    }
    if (plan.contact_jitter_s > 0) {
      const double shift =
          rng.uniform(-plan.contact_jitter_s, plan.contact_jitter_s);
      s += shift;
      e += shift;
      s = std::max<Time>(s, 0);
      e = std::min(e, horizon);
      log.events.push_back({FaultKind::kContactJitter, a, b, s, e, shift});
      count_injected(FaultKind::kContactJitter);
    }
    if (plan.cost_inflation > 0 && rng.bernoulli(plan.cost_inflation)) {
      distance *= plan.cost_inflation_factor;
      log.events.push_back({FaultKind::kCostInflation, a, b, s, e,
                            plan.cost_inflation_factor});
      count_injected(FaultKind::kCostInflation);
    }

    if (dropped.count({a, b})) continue;
    if (e - s <= kMinDuration) continue;

    std::vector<std::pair<Time, Time>> fragments{{s, e}};
    for (NodeId v : {a, b}) {
      const auto& w = outage[static_cast<std::size_t>(v)];
      if (w.second > w.first) subtract_window(fragments, w.first, w.second);
    }
    for (const auto& [fs, fe] : fragments)
      if (fe - fs > kMinDuration) out.add({a, b, fs, fe, distance});
  }
  out.sort();
  return {std::move(out), std::move(log)};
}

bool TxFaultModel::fails(std::size_t trial, std::size_t tx_index) const {
  if (probability_ <= 0) return false;
  const std::uint64_t h = splitmix64(
      seed_ ^ (0x9e3779b97f4a7c15ULL * (trial + 1)) ^
      (0xc2b2ae3d27d4eb4fULL * (tx_index + 1)));
  // 53-bit mantissa → uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < probability_;
}

}  // namespace tveg::fault
