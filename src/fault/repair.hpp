// Schedule repair (robustness subsystem, layer 3).
//
// A schedule computed on the planned TVEG can be invalidated by reality:
// injected faults (fault/fault_plan.hpp) drop edges, churn nodes and shrink
// contacts, so relay entries silently stop delivering. Repair replays the
// planned schedule against the *faulted* instance, detects the first time
// the broadcast diverges from plan (a relay never receives the packet, or a
// planned delivery is lost), and incrementally re-solves from the informed
// set actually achieved at that moment via the online driver
// (online::run_online_from) — the already-disseminated packets are kept,
// only the uncovered remainder is re-planned. Counters live under
// tveg.fault.repair.*.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "support/math.hpp"
#include "tvg/dts.hpp"

namespace tveg::fault {

/// Options for one repair pass.
struct RepairOptions {
  /// RNG seed for the patch policy (the default epidemic patch policy is
  /// deterministic; the seed only matters for stochastic policies).
  std::uint64_t seed = 1;
};

/// Outcome of replaying a planned schedule on a (faulted) instance and
/// patching the divergence.
struct RepairOutcome {
  /// When each node actually received the packet under the planned schedule
  /// on the faulted instance (+inf = never), before any repair.
  std::vector<Time> informed_time;
  /// Earliest time the execution diverged from plan (= deadline when the
  /// plan survived the faults untouched).
  Time detect_time = 0;
  /// Nodes left uninformed by the deadline without / with the patch.
  std::size_t uncovered_before = 0;
  std::size_t uncovered_after = 0;
  /// The incremental transmissions added by the repair pass.
  core::Schedule patch;
  /// Planned transmissions that actually fired, plus the patch — the
  /// schedule that was really executed.
  core::Schedule repaired;

  bool diverged() const { return uncovered_before > 0; }
  bool repaired_all() const { return uncovered_after == 0; }
};

/// Deterministic replay of `schedule` on `instance`: a transmission fires
/// iff its relay holds the packet at its time, and a node counts as
/// informed once the cumulative product of failure probabilities over all
/// its arrivals drops to the instance's ε (Eq. 6, same accumulation as
/// core::run_cascade — fading schedules split the failure budget across
/// overlapping transmissions). Returns per-node informed times (+inf =
/// never) and flags the transmissions that fired.
std::vector<Time> replay_informed_times(const core::TmedbInstance& instance,
                                        const core::Schedule& schedule,
                                        std::vector<char>* fired = nullptr);

/// Replays `planned` on the (faulted) `instance`, detects divergence from
/// the expectation established by replaying it on `planned_instance` (the
/// clean view the scheduler saw), and re-solves the uncovered remainder
/// from the actually-informed set at the divergence time.
RepairOutcome repair_schedule(const core::TmedbInstance& planned_instance,
                              const core::TmedbInstance& instance,
                              const DiscreteTimeSet& dts,
                              const core::Schedule& planned,
                              const RepairOptions& options = {});

}  // namespace tveg::fault
