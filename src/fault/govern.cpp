#include "fault/govern.hpp"

#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "core/aux_graph.hpp"
#include "graph/steiner.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/cancel.hpp"
#include "support/deadline.hpp"
#include "support/watchdog.hpp"

namespace tveg::fault {

using support::Error;
using support::ErrorCode;

namespace {

struct GovernCounters {
  obs::Counter& requests;
  obs::Counter& ok;
  obs::Counter& degraded;
  obs::Counter& cancelled;
  obs::Counter& errors;
  obs::Counter& shed;

  static GovernCounters& get() {
    auto& registry = obs::MetricsRegistry::global();
    static GovernCounters c{
        registry.counter(obs::keys::kGovernRequests),
        registry.counter(obs::keys::kGovernOk),
        registry.counter(obs::keys::kGovernDegraded),
        registry.counter(obs::keys::kGovernCancelled),
        registry.counter(obs::keys::kGovernErrors),
        registry.counter(obs::keys::kGovernShed),
    };
    return c;
  }
};

/// The GREED tail of the ladder for a request whose primary attempt is gone
/// (budget blown or admission-shed): always yields a schedule unless the
/// instance itself is poisoned.
void shed_to_greed(const core::TmedbInstance& instance,
                   const DiscreteTimeSet& dts, const GovernOptions& options,
                   Error why, GovernedSolve& out) {
  out.descents.push_back(std::move(why));
  if (options.shed_policy == ShedPolicy::kError) {
    out.outcome = out.descents.back();
    GovernCounters::get().errors.add(1);
    return;
  }
  try {
    RobustSolveOptions ladder;
    ladder.start = SolverRung::kGreed;
    ladder.eedcb = options.eedcb;
    RobustSolveResult r = robust_solve(instance, dts, ladder);
    for (Error& e : r.descents) out.descents.push_back(std::move(e));
    out.rung = r.rung;
    out.outcome = std::move(r.result);
    GovernCounters::get().degraded.add(1);
  } catch (const std::exception& e) {
    out.outcome = Error{ErrorCode::kInternal,
                        std::string("shed rung threw: ") + e.what(), -1};
    GovernCounters::get().errors.add(1);
  }
}

}  // namespace

std::vector<GovernedSolve> solve_many_governed(
    const core::Tveg& tveg, const std::vector<core::SolveRequest>& requests,
    const GovernOptions& options) {
  const DiscreteTimeSet dts = tveg.build_dts(options.eedcb.dts);
  return solve_many_governed(tveg, dts, requests, options);
}

std::vector<GovernedSolve> solve_many_governed(
    const core::Tveg& tveg, const DiscreteTimeSet& dts,
    const std::vector<core::SolveRequest>& requests,
    const GovernOptions& options) {
  return solve_many_governed(tveg, dts, requests, options, {});
}

std::vector<GovernedSolve> solve_many_governed(
    const core::Tveg& tveg, const DiscreteTimeSet& dts,
    const std::vector<core::SolveRequest>& requests,
    const GovernOptions& options,
    const std::vector<support::CancelSource>& cancels) {
  obs::TraceSpan span("solve_many_governed");
  std::vector<GovernedSolve> results(requests.size());
  if (requests.empty()) return results;
  GovernCounters& counters = GovernCounters::get();
  counters.requests.add(requests.size());

  // One watchdog serves the batch; each request registers only for the
  // duration of its own budgeted attempt.
  std::optional<support::Watchdog> watchdog;
  if (options.stall_ms > 0)
    watchdog.emplace(support::Watchdog::Options{options.stall_ms, 0});

  // Same grouping as core::solve_many — by deadline, exact equality, in
  // first-appearance order — so un-governed requests reuse aux graphs and
  // Dijkstra-tree caches in the identical sequence and their schedules stay
  // byte-identical to the ungoverned batch.
  struct Group {
    Time deadline;
    std::vector<std::size_t> indices;
  };
  std::vector<Group> groups;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    Group* group = nullptr;
    for (Group& g : groups)
      if (g.deadline == requests[r].deadline) {
        group = &g;
        break;
      }
    if (group == nullptr) {
      groups.push_back({requests[r].deadline, {}});
      group = &groups.back();
    }
    group->indices.push_back(r);
  }

  std::size_t attempted = 0;  // admission control, in processing order
  for (const Group& group : groups) {
    // Lazily built: the first request of the group that survives admission
    // pays for the build under ITS budget, so an aux-graph timeout is that
    // request's failure, and the next request simply retries the build.
    std::optional<core::AuxGraph> aux;
    std::optional<graph::SteinerSolver> solver;

    for (std::size_t r : group.indices) {
      GovernedSolve& out = results[r];
      const core::TmedbInstance instance =
          core::to_instance(tveg, requests[r]);

      if (options.max_inflight > 0 && attempted >= options.max_inflight) {
        out.shed = true;
        counters.shed.add(1);
        obs::flight_recorder().record(obs::FlightEventKind::kRequestShed,
                                      r, attempted, "max_inflight");
        shed_to_greed(instance, dts, options,
                      Error{ErrorCode::kTimeout,
                            "request shed: admission bound reached", -1},
                      out);
        continue;
      }
      ++attempted;

      // Fresh per-request budget: deadline starts now, the cancel source is
      // private unless the test seam supplied one, and the shared memory
      // ledger (when present) rides along into every cache the solve touches.
      const support::CancelSource source =
          r < cancels.size() ? cancels[r] : support::CancelSource();
      const support::Deadline deadline =
          options.request_budget_ms < 0
              ? support::Deadline()
              : support::Deadline::after_ms(options.request_budget_ms);
      const support::Budget budget(deadline, source.token(), options.mem);

      std::optional<support::Watchdog::Scope> watch;
      if (watchdog.has_value()) watch.emplace(*watchdog, source);

      try {
        if (!aux.has_value()) {
          aux.emplace(instance, dts,
                      core::AuxGraph::Options{
                          .power_expansion = options.eedcb.power_expansion,
                          .pool = options.eedcb.pool,
                          .budget = budget});
          solver.emplace(aux->digraph());
        }
        core::EedcbOptions per = options.eedcb;
        per.budget = budget;
        out.outcome = core::run_eedcb_on_aux(instance, dts, *aux, *solver,
                                             per);
        out.rung = SolverRung::kEedcb;
        counters.ok.add(1);
      } catch (const support::CancelledError& e) {
        out.outcome = Error{ErrorCode::kCancelled, e.what(), -1};
        counters.cancelled.add(1);
      } catch (const support::TimeoutError& e) {
        watch.reset();  // the shed rung runs unbudgeted; don't stall on it
        shed_to_greed(instance, dts, options,
                      Error{ErrorCode::kTimeout, e.what(), -1}, out);
      } catch (const std::exception& e) {
        // A poisoned request (invalid source, malformed targets, …) costs
        // exactly its own slot; a degrade attempt would re-validate and
        // throw again, so return the failure directly.
        out.outcome = Error{ErrorCode::kInternal, e.what(), -1};
        counters.errors.add(1);
      }
    }
  }
  return results;
}

}  // namespace tveg::fault
