// Deterministic fault injection (robustness subsystem, layer 1).
//
// A FaultPlan describes how reality deviates from the contact-trace model a
// schedule was computed on: whole edges vanish (dropout), nodes go dark for
// a window (churn), contacts end early (truncation) or shift (jitter), the
// channel demands more energy than modeled (cost inflation), and individual
// scheduled transmissions fail outright (transmission failure, applied by
// the Monte-Carlo simulator via TxFaultModel).
//
// Injection is *deterministic*: apply_plan(trace, plan) draws every fault
// from Rng(plan.seed) over the trace's pairs/contacts in their canonical
// (sorted) order, so the same (trace, plan) always yields the same faulted
// trace and the same FaultLog — replayable and auditable. Every injected
// event is also counted in the obs registry under tveg.fault.injected.*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.hpp"
#include "trace/contact_trace.hpp"

namespace tveg::fault {

/// One fault family. Values are stable (they appear in serialized logs).
enum class FaultKind {
  kEdgeDropout,        ///< a node pair loses every contact
  kNodeChurn,          ///< a node loses all contacts inside an outage window
  kContactTruncation,  ///< one contact keeps only a prefix of its duration
  kContactJitter,      ///< one contact's interval shifts in time
  kCostInflation,      ///< one contact's distance grows (raises energy demand)
  kTxFailure,          ///< a scheduled transmission is forced to fail (sim)
};

const char* fault_kind_name(FaultKind kind);

/// One injected fault, in the order it was drawn.
struct FaultEvent {
  FaultKind kind;
  NodeId a = kNoNode;    ///< affected node (churn) or pair endpoint
  NodeId b = kNoNode;    ///< second pair endpoint (kNoNode for churn)
  Time t0 = 0;           ///< affected interval start
  Time t1 = 0;           ///< affected interval end
  double magnitude = 0;  ///< shift seconds / kept fraction / inflation factor

  bool operator==(const FaultEvent&) const = default;
};

/// The audit trail of one apply_plan run.
struct FaultLog {
  std::vector<FaultEvent> events;

  /// Byte-stable text rendering (one event per line, fixed formatting):
  /// equal logs serialize identically, which is what the deterministic-
  /// replay test asserts.
  std::string serialize() const;
};

/// A seedable fault plan. All probabilities are per-draw in [0, 1]; a
/// default-constructed plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// P(a pair loses every contact).
  double edge_dropout = 0;
  /// P(a node suffers one outage window).
  double node_churn = 0;
  /// Outage window length as a fraction of the horizon.
  double churn_span = 0.25;
  /// P(a contact is truncated) and the duration fraction it keeps.
  double contact_truncation = 0;
  double truncation_keep = 0.5;
  /// Max absolute contact shift in seconds (uniform in [-j, +j]; 0 = off).
  double contact_jitter_s = 0;
  /// P(a contact's distance is inflated) and the inflation factor.
  double cost_inflation = 0;
  double cost_inflation_factor = 1.5;
  /// P(a scheduled transmission is forced to fail) — consumed by
  /// TxFaultModel / the Monte-Carlo simulator, not by apply_plan.
  double tx_failure = 0;

  /// True when any fault family is active.
  bool any() const;
  /// True when any *topology* fault is active (i.e. apply_plan would act).
  bool any_trace_fault() const;

  /// Parses "key=value,key=value" (e.g. "seed=7,edge_dropout=0.2,jitter=5").
  /// Keys: seed, edge_dropout, node_churn, churn_span, truncation,
  /// truncation_keep, jitter, cost_inflation, inflation_factor, tx_failure.
  static support::Result<FaultPlan> parse(const std::string& spec);

  /// Canonical "key=value,..." rendering of the non-default fields.
  std::string to_string() const;
};

/// A faulted trace plus the log of what was injected.
struct FaultedTrace {
  trace::ContactTrace trace;
  FaultLog log;
};

/// Applies the plan's topology faults to `input` deterministically (same
/// input + same plan → identical output and log). The returned trace keeps
/// the input's node count and horizon even when faults silence nodes.
FaultedTrace apply_plan(const trace::ContactTrace& input,
                        const FaultPlan& plan);

/// Deterministic per-(trial, transmission) forced-failure model, the
/// Monte-Carlo arm of FaultPlan::tx_failure. Stateless: the decision is a
/// counter-based hash of (seed, trial, tx index), so simulator threads can
/// query it concurrently and replays are exact.
class TxFaultModel {
 public:
  TxFaultModel() = default;
  TxFaultModel(std::uint64_t seed, double probability)
      : seed_(seed), probability_(probability) {}

  bool active() const { return probability_ > 0; }
  double probability() const { return probability_; }

  /// True when transmission `tx_index` of trial `trial` is forced to fail.
  bool fails(std::size_t trial, std::size_t tx_index) const;

 private:
  std::uint64_t seed_ = 0;
  double probability_ = 0;
};

}  // namespace tveg::fault
