// Per-request resource governance for batched solves (robustness subsystem,
// layer 3 — above the fallback ladder of degrade.hpp).
//
// core::solve_many answers a poisoned batch the only way it can: the first
// request that times out or throws aborts every request behind it. The
// governed variant isolates requests instead — each one runs under its own
// support::Budget (deadline + cancel token + shared memory ledger) and
// returns its own support::Result, so one pathological instance costs the
// batch exactly one error slot:
//
//   * a request that blows its budget triggers the fallback ladder
//     (shed-to-GREED) or, under ShedPolicy::kError, returns the timeout as
//     a structured error;
//   * a request cancelled by its token (caller or watchdog) returns
//     ErrorCode::kCancelled;
//   * a request past the max_inflight admission bound is shed immediately,
//     before any solver work;
//   * an optional watchdog force-cancels any request whose solve stops
//     polling its budget for a stall window (a wedged rung cannot wedge the
//     batch forever).
//
// Un-governed requests take the exact solve_many code path (same grouping,
// same aux-graph reuse, same run_eedcb_on_aux tail), so their schedules are
// byte-identical to the ungoverned baseline — tests/diff pins this.
// Outcomes are counted under tveg.govern.* and landmark decisions
// (shed, stall, demotion) land in the flight recorder.
#pragma once

#include <cstddef>
#include <vector>

#include "core/eedcb.hpp"
#include "core/solve_many.hpp"
#include "core/tveg.hpp"
#include "fault/degrade.hpp"
#include "support/budget.hpp"
#include "support/result.hpp"
#include "tvg/dts.hpp"

namespace tveg::fault {

/// What to do with a request that exhausts its budget.
enum class ShedPolicy {
  /// Re-run the fallback ladder from GREED (always yields a schedule; the
  /// timeout is recorded in the outcome's descents).
  kDegrade,
  /// Return the timeout as a structured error — no schedule.
  kError,
};

/// Options for one governed batch.
struct GovernOptions {
  /// Per-request wall-clock budget in ms; < 0 = unlimited. Each request gets
  /// a FRESH deadline (unlike the ladder's shared one) so an expensive
  /// request cannot starve its successors.
  double request_budget_ms = -1;
  /// Admission bound: requests beyond the first `max_inflight` are shed
  /// without running (kTimeout under kDegrade still yields a GREED
  /// schedule; kError returns the shed as an error). 0 = unbounded.
  std::size_t max_inflight = 0;
  /// Budget-exhaustion policy (see ShedPolicy).
  ShedPolicy shed_policy = ShedPolicy::kDegrade;
  /// Stall window in ms for the watchdog: a request whose solve does not
  /// poll its budget for this long is force-cancelled. <= 0 disables the
  /// watchdog.
  double stall_ms = -1;
  /// Optional shared memory ledger, handed to every request's Budget (and
  /// typically also attached to the TVEG's EdWeightCache) so aggregate
  /// cache growth across the batch stays bounded. Must outlive the call.
  support::MemBudget* mem = nullptr;
  /// Scheduler options for the primary attempt (budget/pool fields are
  /// overridden per request).
  core::EedcbOptions eedcb;
};

/// Outcome of one governed request.
struct GovernedSolve {
  /// The schedule (possibly from a degraded rung), or the structured error.
  support::Result<core::SchedulerResult> outcome{support::Error{}};
  /// Rung that produced the ok() outcome (kEedcb when ungoverned/clean).
  SolverRung rung = SolverRung::kEedcb;
  /// Descents of the shed ladder, when the request degraded.
  std::vector<support::Error> descents;
  /// True when the request never got its primary attempt (admission shed).
  bool shed = false;

  bool degraded() const { return !descents.empty(); }
};

/// Solves every request over one shared DTS with per-request isolation; see
/// the file comment for semantics. Outcomes are in request order.
std::vector<GovernedSolve> solve_many_governed(
    const core::Tveg& tveg, const DiscreteTimeSet& dts,
    const std::vector<core::SolveRequest>& requests,
    const GovernOptions& options = {});

/// As above, building the DTS from options.eedcb.dts.
std::vector<GovernedSolve> solve_many_governed(
    const core::Tveg& tveg, const std::vector<core::SolveRequest>& requests,
    const GovernOptions& options = {});

/// Test seam: as the governed batch, but request r uses `cancels[r]` as its
/// cancel source (shared state — a harness can fire it mid-solve, and the
/// watchdog cancels through the same source). Requests beyond
/// `cancels.size()` get a fresh private source.
std::vector<GovernedSolve> solve_many_governed(
    const core::Tveg& tveg, const DiscreteTimeSet& dts,
    const std::vector<core::SolveRequest>& requests,
    const GovernOptions& options,
    const std::vector<support::CancelSource>& cancels);

}  // namespace tveg::fault
