// Augmented-Lagrangian solver for box-constrained inequality NLPs — the
// "existing methods [19]" the paper leans on for Eq. 14–17. Inner problem is
// solved by projected gradient descent with backtracking (Armijo) line
// search; outer loop updates multipliers and grows the penalty when the
// infeasibility fails to shrink.
#pragma once

#include <vector>

#include "nlp/problem.hpp"
#include "support/budget.hpp"

namespace tveg::nlp {

/// Solver knobs.
struct AugmentedLagrangianOptions {
  std::size_t max_outer_iterations = 40;
  std::size_t max_inner_iterations = 400;
  /// Cooperative solve budget, polled (strided) in the projected-gradient
  /// inner loop; expiry raises support::TimeoutError, a fired cancel token
  /// support::CancelledError. Default: unlimited.
  support::Budget budget;
  double initial_penalty = 1.0;
  double penalty_growth = 4.0;
  /// Outer stop: max constraint violation below this.
  double feasibility_tolerance = 1e-8;
  /// Inner stop: projected-gradient norm below this.
  double gradient_tolerance = 1e-10;
  /// Armijo parameters.
  double armijo_c = 1e-4;
  double backtrack_factor = 0.5;
  std::size_t max_backtracks = 60;
};

/// Result of one solve.
struct NlpResult {
  std::vector<double> w;
  double objective = 0;
  double max_violation = 0;
  std::size_t outer_iterations = 0;
  std::size_t inner_iterations = 0;
  bool feasible = false;
};

/// Minimizes `problem` starting from `w0` (projected into the box).
NlpResult solve_augmented_lagrangian(
    const NlpProblem& problem, std::vector<double> w0,
    const AugmentedLagrangianOptions& options = {});

}  // namespace tveg::nlp
