// The optimal-energy-allocation problem of FR-EEDCB (paper Eq. 14–17),
// expressed over "coverage constraints".
//
// After backbone selection the schedule's relays and times are fixed; what
// remains is choosing the cost w_k of every transmission k so that, for each
// node j, the product of failure probabilities over the transmissions that
// reach j is at most ε:
//
//     min Σ_k w_k   s.t.  Σ_{k covering j} ln φ_{k,j}(w_k) <= ln ε  ∀j,
//                         w_min <= w_k <= w_max.
//
// Two solvers: a monotone coordinate descent exploiting the closed-form
// per-coordinate minimum (each pass can only lower the objective), and the
// generic augmented-Lagrangian path via EnergyAllocationProblem for
// cross-checking and for ED-functions without a cheap inverse.
#pragma once

#include <memory>
#include <vector>

#include "channel/ed_function.hpp"
#include "nlp/problem.hpp"
#include "tvg/types.hpp"

namespace tveg::nlp {

/// One term of a coverage constraint: transmission `tx` reaches the
/// constrained receiver through ED-function `ed` (not owned; must outlive
/// the allocation call).
struct CoverageTerm {
  std::size_t tx;
  const channel::EdFunction* ed;
};

/// One receiver's constraint: Π_terms φ(w_tx) <= ε.
struct CoverageConstraint {
  std::vector<CoverageTerm> terms;
};

/// Result of an allocation solve.
struct AllocationResult {
  std::vector<Cost> w;
  Cost total = 0;
  bool feasible = false;
  std::size_t passes = 0;
};

/// Options for the coordinate-descent solver.
struct CoordinateDescentOptions {
  std::size_t max_passes = 200;
  /// Stop when no coordinate moves by more than this relative amount.
  double relative_tolerance = 1e-10;
};

/// Starting point: every receiver is served at level ε by its single
/// cheapest covering transmission (ignores cross-coverage). Always feasible
/// when w_max permits.
std::vector<Cost> independent_allocation(
    std::size_t tx_count, const std::vector<CoverageConstraint>& constraints,
    double epsilon, Cost w_min, Cost w_max);

/// Monotone coordinate descent from the independent allocation: each sweep
/// sets w_k to the smallest value satisfying all of k's constraints given
/// the other coordinates (closed form via EdFunction::min_cost_for). The
/// objective is non-increasing across sweeps; converges to a KKT point of
/// this monotone program.
AllocationResult allocate_coordinate_descent(
    std::size_t tx_count, const std::vector<CoverageConstraint>& constraints,
    double epsilon, Cost w_min, Cost w_max,
    const CoordinateDescentOptions& options = {});

/// Eq. 14–17 as a generic NlpProblem (for solve_augmented_lagrangian).
/// Variables are internally rescaled by a characteristic cost so the solver
/// sees O(1) magnitudes regardless of the physical energy scale.
class EnergyAllocationProblem final : public NlpProblem {
 public:
  EnergyAllocationProblem(std::size_t tx_count,
                          std::vector<CoverageConstraint> constraints,
                          double epsilon, Cost w_min, Cost w_max);

  std::size_t dimension() const override { return tx_count_; }
  double lower(std::size_t i) const override;
  double upper(std::size_t i) const override;
  double objective(const std::vector<double>& x) const override;
  std::vector<double> objective_gradient(
      const std::vector<double>& x) const override;
  std::size_t constraint_count() const override { return constraints_.size(); }
  double constraint(std::size_t j, const std::vector<double>& x) const override;
  std::vector<double> constraint_gradient(
      std::size_t j, const std::vector<double>& x) const override;

  /// The internal variable scale (physical cost per solver unit).
  Cost scale() const { return scale_; }
  /// Converts solver-space variables to physical costs.
  std::vector<Cost> to_costs(const std::vector<double>& x) const;
  /// Converts physical costs to solver-space variables.
  std::vector<double> from_costs(const std::vector<Cost>& w) const;

 private:
  std::size_t tx_count_;
  std::vector<CoverageConstraint> constraints_;
  double log_epsilon_;
  Cost w_min_, w_max_;
  Cost scale_;
};

}  // namespace tveg::nlp
