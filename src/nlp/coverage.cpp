#include "nlp/coverage.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::nlp {

using support::kInf;
using support::safe_log;

namespace {

void check_inputs(std::size_t tx_count,
                  const std::vector<CoverageConstraint>& constraints,
                  double epsilon, Cost w_min, Cost w_max) {
  TVEG_REQUIRE(epsilon > 0 && epsilon < 1, "epsilon must lie in (0, 1)");
  TVEG_REQUIRE(w_min >= 0 && w_max > w_min, "invalid cost bounds");
  for (const auto& c : constraints) {
    TVEG_REQUIRE(!c.terms.empty(), "coverage constraint with no terms");
    for (const auto& term : c.terms) {
      TVEG_REQUIRE(term.tx < tx_count, "coverage term tx out of range");
      TVEG_REQUIRE(term.ed != nullptr, "coverage term with null ED-function");
    }
  }
}

}  // namespace

std::vector<Cost> independent_allocation(
    std::size_t tx_count, const std::vector<CoverageConstraint>& constraints,
    double epsilon, Cost w_min, Cost w_max) {
  check_inputs(tx_count, constraints, epsilon, w_min, w_max);
  std::vector<Cost> w(tx_count, w_min);
  for (const auto& c : constraints) {
    // Serve this receiver entirely through its cheapest covering tx.
    std::size_t best_tx = c.terms.front().tx;
    Cost best_cost = kInf;
    for (const auto& term : c.terms) {
      const Cost need = term.ed->min_cost_for(epsilon);
      if (need < best_cost) {
        best_cost = need;
        best_tx = term.tx;
      }
    }
    w[best_tx] = std::clamp(std::max(w[best_tx], best_cost), w_min, w_max);
  }
  return w;
}

AllocationResult allocate_coordinate_descent(
    std::size_t tx_count, const std::vector<CoverageConstraint>& constraints,
    double epsilon, Cost w_min, Cost w_max,
    const CoordinateDescentOptions& options) {
  check_inputs(tx_count, constraints, epsilon, w_min, w_max);
  const double log_eps = std::log(epsilon);

  AllocationResult result;
  result.w = independent_allocation(tx_count, constraints, epsilon, w_min,
                                    w_max);

  // Constraints touching each transmission.
  std::vector<std::vector<std::size_t>> touching(tx_count);
  for (std::size_t j = 0; j < constraints.size(); ++j)
    for (const auto& term : constraints[j].terms)
      touching[term.tx].push_back(j);

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    double max_rel_change = 0;

    for (std::size_t k = 0; k < tx_count; ++k) {
      if (touching[k].empty()) {
        result.w[k] = w_min;
        continue;
      }
      // Smallest w_k satisfying every constraint that contains k, with the
      // other coordinates fixed.
      Cost need = w_min;
      for (std::size_t j : touching[k]) {
        double sum_others = 0;
        const channel::EdFunction* my_ed = nullptr;
        for (const auto& term : constraints[j].terms) {
          if (term.tx == k) {
            my_ed = term.ed;
          } else {
            sum_others +=
                safe_log(term.ed->failure_probability(result.w[term.tx]));
          }
        }
        TVEG_ASSERT(my_ed != nullptr);
        const double target_log = log_eps - sum_others;
        if (target_log >= 0) continue;  // others already satisfy receiver j
        need = std::max(need, my_ed->min_cost_for(std::exp(target_log)));
      }
      need = std::clamp(need, w_min, w_max);
      const double denom = std::max({result.w[k], need, 1e-300});
      max_rel_change =
          std::max(max_rel_change, std::fabs(result.w[k] - need) / denom);
      result.w[k] = need;
    }

    if (max_rel_change <= options.relative_tolerance) break;
  }

  result.total = 0;
  for (Cost w : result.w) result.total += w;

  result.feasible = true;
  for (const auto& c : constraints) {
    double log_prod = 0;
    for (const auto& term : c.terms)
      log_prod += safe_log(term.ed->failure_probability(result.w[term.tx]));
    if (log_prod > std::log(epsilon) + 1e-6) {
      result.feasible = false;
      break;
    }
  }
  return result;
}

EnergyAllocationProblem::EnergyAllocationProblem(
    std::size_t tx_count, std::vector<CoverageConstraint> constraints,
    double epsilon, Cost w_min, Cost w_max)
    : tx_count_(tx_count),
      constraints_(std::move(constraints)),
      log_epsilon_(std::log(epsilon)),
      w_min_(w_min),
      w_max_(w_max) {
  check_inputs(tx_count_, constraints_, epsilon, w_min_, w_max_);
  // Characteristic cost: the largest single-hop ε-cost over all terms makes
  // solver-space variables O(1).
  scale_ = 0;
  for (const auto& c : constraints_)
    for (const auto& term : c.terms) {
      const Cost need = term.ed->min_cost_for(epsilon);
      if (need < kInf) scale_ = std::max(scale_, need);
    }
  if (scale_ <= 0) scale_ = 1;
}

double EnergyAllocationProblem::lower(std::size_t) const {
  return w_min_ / scale_;
}

double EnergyAllocationProblem::upper(std::size_t) const {
  return w_max_ == kInf ? kInf : w_max_ / scale_;
}

double EnergyAllocationProblem::objective(const std::vector<double>& x) const {
  double sum = 0;
  for (double v : x) sum += v;
  return sum;  // Σ w / scale — same minimizer as Σ w
}

std::vector<double> EnergyAllocationProblem::objective_gradient(
    const std::vector<double>& x) const {
  return std::vector<double>(x.size(), 1.0);
}

double EnergyAllocationProblem::constraint(std::size_t j,
                                           const std::vector<double>& x) const {
  double log_prod = 0;
  for (const auto& term : constraints_[j].terms)
    log_prod += safe_log(term.ed->failure_probability(x[term.tx] * scale_));
  return log_prod - log_epsilon_;
}

std::vector<double> EnergyAllocationProblem::constraint_gradient(
    std::size_t j, const std::vector<double>& x) const {
  std::vector<double> grad(tx_count_, 0.0);
  for (const auto& term : constraints_[j].terms) {
    const Cost w = x[term.tx] * scale_;
    const double phi = term.ed->failure_probability(w);
    if (w <= 0 || phi <= 0) continue;  // flat or already perfect
    // d/dx ln φ(x·scale) = φ'(w)·scale / φ(w).
    grad[term.tx] += term.ed->failure_derivative(w) * scale_ / phi;
  }
  return grad;
}

std::vector<Cost> EnergyAllocationProblem::to_costs(
    const std::vector<double>& x) const {
  std::vector<Cost> w(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) w[i] = x[i] * scale_;
  return w;
}

std::vector<double> EnergyAllocationProblem::from_costs(
    const std::vector<Cost>& w) const {
  std::vector<double> x(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) x[i] = w[i] / scale_;
  return x;
}

}  // namespace tveg::nlp
