#include "nlp/augmented_lagrangian.hpp"

#include <algorithm>
#include <cmath>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "support/assert.hpp"

namespace tveg::nlp {

namespace {

/// Augmented-Lagrangian value for inequality constraints (Rockafellar form):
///   L(w) = f(w) + Σ_j ψ(g_j(w); λ_j, μ)
/// with ψ(g; λ, μ) = λg + μg²/2 when g >= -λ/μ, else -λ²/(2μ).
double augmented_value(const NlpProblem& p, const std::vector<double>& w,
                       const std::vector<double>& lambda, double mu) {
  double value = p.objective(w);
  for (std::size_t j = 0; j < p.constraint_count(); ++j) {
    const double g = p.constraint(j, w);
    if (g >= -lambda[j] / mu) {
      value += lambda[j] * g + 0.5 * mu * g * g;
    } else {
      value -= lambda[j] * lambda[j] / (2.0 * mu);
    }
  }
  return value;
}

std::vector<double> augmented_gradient(const NlpProblem& p,
                                       const std::vector<double>& w,
                                       const std::vector<double>& lambda,
                                       double mu) {
  std::vector<double> grad = p.objective_gradient(w);
  for (std::size_t j = 0; j < p.constraint_count(); ++j) {
    const double g = p.constraint(j, w);
    if (g >= -lambda[j] / mu) {
      const double coeff = lambda[j] + mu * g;
      const std::vector<double> cg = p.constraint_gradient(j, w);
      for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += coeff * cg[i];
    }
  }
  return grad;
}

}  // namespace

NlpResult solve_augmented_lagrangian(const NlpProblem& problem,
                                     std::vector<double> w0,
                                     const AugmentedLagrangianOptions& opt) {
  const std::size_t n = problem.dimension();
  TVEG_REQUIRE(w0.size() == n, "starting point has wrong dimension");
  problem.project_box(w0);

  std::vector<double> lambda(problem.constraint_count(), 0.0);
  double mu = opt.initial_penalty;

  NlpResult result;
  result.w = std::move(w0);
  double previous_violation = problem.max_violation(result.w);

  for (std::size_t outer = 0; outer < opt.max_outer_iterations; ++outer) {
    ++result.outer_iterations;

    // Inner: projected gradient descent on the augmented Lagrangian.
    double step = 1.0;
    support::Budget::Poller poller(opt.budget, "nlp_inner", /*stride=*/8);
    for (std::size_t inner = 0; inner < opt.max_inner_iterations; ++inner) {
      ++result.inner_iterations;
      poller.poll();
      const std::vector<double> grad =
          augmented_gradient(problem, result.w, lambda, mu);
      const double value = augmented_value(problem, result.w, lambda, mu);

      // Projected-gradient stationarity measure.
      double pg_norm = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double trial =
            std::clamp(result.w[i] - grad[i], problem.lower(i),
                       problem.upper(i));
        const double d = trial - result.w[i];
        pg_norm += d * d;
      }
      if (std::sqrt(pg_norm) < opt.gradient_tolerance) break;

      // Backtracking Armijo line search along the projected direction.
      bool accepted = false;
      double local_step = step;
      for (std::size_t bt = 0; bt < opt.max_backtracks; ++bt) {
        std::vector<double> trial(n);
        double descent = 0;
        for (std::size_t i = 0; i < n; ++i) {
          trial[i] = std::clamp(result.w[i] - local_step * grad[i],
                                problem.lower(i), problem.upper(i));
          descent += grad[i] * (result.w[i] - trial[i]);
        }
        const double trial_value =
            augmented_value(problem, trial, lambda, mu);
        if (trial_value <= value - opt.armijo_c * descent) {
          result.w = std::move(trial);
          step = local_step * 1.5;  // be a little more ambitious next time
          accepted = true;
          break;
        }
        local_step *= opt.backtrack_factor;
      }
      if (!accepted) break;  // no acceptable step: inner converged
    }

    // Multiplier update and penalty growth.
    const double violation = problem.max_violation(result.w);
    for (std::size_t j = 0; j < problem.constraint_count(); ++j) {
      const double g = problem.constraint(j, result.w);
      lambda[j] = std::max(0.0, lambda[j] + mu * g);
    }
    if (violation <= opt.feasibility_tolerance) break;
    if (violation > 0.5 * previous_violation) mu *= opt.penalty_growth;
    previous_violation = violation;
  }

  result.objective = problem.objective(result.w);
  result.max_violation = problem.max_violation(result.w);
  result.feasible = result.max_violation <= opt.feasibility_tolerance * 10;

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& solves = registry.counter(obs::keys::kNlpAlSolves);
  static obs::Counter& outer_total =
      registry.counter(obs::keys::kNlpAlOuterIterations);
  static obs::Counter& inner_total =
      registry.counter(obs::keys::kNlpAlInnerIterations);
  static obs::Histogram& violation =
      registry.histogram(obs::keys::kNlpAlFinalViolation);
  solves.add(1);
  outer_total.add(result.outer_iterations);
  inner_total.add(result.inner_iterations);
  violation.observe(result.max_violation);
  return result;
}

}  // namespace tveg::nlp
