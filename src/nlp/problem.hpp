// Generic smooth box-constrained nonlinear program with inequality
// constraints, the abstraction behind the optimal-energy-allocation step of
// FR-EEDCB (paper Eq. 14–17):
//
//     min f(w)   s.t.  g_j(w) <= 0  ∀j,   lower_i <= w_i <= upper_i.
#pragma once

#include <cstddef>
#include <vector>

namespace tveg::nlp {

/// Abstract NLP description consumed by the solvers in this module.
class NlpProblem {
 public:
  virtual ~NlpProblem() = default;

  /// Number of decision variables.
  virtual std::size_t dimension() const = 0;
  /// Box bounds for variable i.
  virtual double lower(std::size_t i) const = 0;
  virtual double upper(std::size_t i) const = 0;

  /// Objective f(w).
  virtual double objective(const std::vector<double>& w) const = 0;
  /// ∇f(w).
  virtual std::vector<double> objective_gradient(
      const std::vector<double>& w) const = 0;

  /// Number of inequality constraints g_j(w) <= 0.
  virtual std::size_t constraint_count() const = 0;
  /// g_j(w); feasible iff <= 0.
  virtual double constraint(std::size_t j,
                            const std::vector<double>& w) const = 0;
  /// ∇g_j(w).
  virtual std::vector<double> constraint_gradient(
      std::size_t j, const std::vector<double>& w) const = 0;

  /// Max_j g_j(w)+ : zero iff w is feasible (helper, non-virtual).
  double max_violation(const std::vector<double>& w) const;

  /// Clamps w into the box in place (helper, non-virtual).
  void project_box(std::vector<double>& w) const;
};

}  // namespace tveg::nlp
