#include "nlp/problem.hpp"

#include <algorithm>

namespace tveg::nlp {

double NlpProblem::max_violation(const std::vector<double>& w) const {
  double worst = 0.0;
  for (std::size_t j = 0; j < constraint_count(); ++j)
    worst = std::max(worst, constraint(j, w));
  return worst;
}

void NlpProblem::project_box(std::vector<double>& w) const {
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = std::clamp(w[i], lower(i), upper(i));
}

}  // namespace tveg::nlp
