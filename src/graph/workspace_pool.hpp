// Process-wide pool of DijkstraWorkspace objects.
//
// Every traversal site in the solve core (SteinerSolver queries, AuxGraph
// helpers, solve_many batch workers) borrows its scratch through here
// instead of stack-allocating, so the dist/parent/heap buffers warm up once
// per thread-pool width and are reused for the life of the process.
// Acquisition is counted on `tveg.steiner.heap.acquires` /
// `tveg.steiner.heap.reuses`; each default construction (a real heap
// allocation) additionally bumps `tveg.alloc.steady_state`, which the
// Overhead-style ctest pins at zero delta once warm.
#pragma once

#include "graph/digraph.hpp"
#include "support/object_pool.hpp"

namespace tveg::graph {

using WorkspacePool = support::ObjectPool<DijkstraWorkspace>;
using WorkspaceHandle = WorkspacePool::Handle;

/// The global workspace pool (function-local static, thread-safe).
WorkspacePool& dijkstra_workspaces();

/// Borrows one workspace from the global pool.
WorkspaceHandle acquire_workspace();

}  // namespace tveg::graph
