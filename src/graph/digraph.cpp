#include "graph/digraph.hpp"

#include <algorithm>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::graph {

Digraph::Digraph(VertexId n) : vertices_(n) {
  TVEG_REQUIRE(n >= 0, "vertex count must be non-negative");
}

VertexId Digraph::add_vertex() {
  TVEG_REQUIRE(!frozen_, "cannot add vertices to a frozen graph");
  return vertices_++;
}

void Digraph::check_vertex(VertexId v) const {
  TVEG_REQUIRE(v >= 0 && v < vertices_, "vertex id out of range");
}

void Digraph::add_arc(VertexId from, VertexId to, double weight) {
  TVEG_REQUIRE(!frozen_, "cannot add arcs to a frozen graph");
  check_vertex(from);
  check_vertex(to);
  TVEG_REQUIRE(weight >= 0, "arc weight must be non-negative");
  staged_from_.push_back(from);
  staged_.push_back({to, weight});
}

void Digraph::reserve_arcs(std::size_t arcs) {
  staged_from_.reserve(arcs);
  staged_.reserve(arcs);
}

void Digraph::freeze() {
  if (frozen_) return;
  const auto n = static_cast<std::size_t>(vertices_);
  const std::size_t m = staged_.size();
  offsets_.assign(n + 1, 0);
  for (const VertexId from : staged_from_)
    ++offsets_[static_cast<std::size_t>(from) + 1];
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  arcs_.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    arcs_[cursor_[static_cast<std::size_t>(staged_from_[i])]++] = staged_[i];
  staged_from_.clear();
  staged_from_.shrink_to_fit();
  staged_.clear();
  staged_.shrink_to_fit();
  frozen_ = true;
  obs::MetricsRegistry::global().counter(obs::keys::kGraphFreezes).add(1);
  obs::MetricsRegistry::global()
      .counter(obs::keys::kGraphFrozenArcs)
      .add(static_cast<std::int64_t>(m));
}

void Digraph::reset(VertexId n) {
  TVEG_REQUIRE(n >= 0, "vertex count must be non-negative");
  vertices_ = n;
  frozen_ = false;
  staged_from_.clear();
  staged_.clear();
  offsets_.clear();
  arcs_.clear();
}

void Digraph::ensure_frozen() const {
  // Lazy freeze keeps the historical "build then query" call sites working
  // unchanged; logically const (the arc set is unaffected), hence the cast.
  // Not safe to race — callers sharing a graph across threads freeze first.
  if (!frozen_) const_cast<Digraph*>(this)->freeze();
}

std::span<const Arc> Digraph::out(VertexId v) const {
  check_vertex(v);
  ensure_frozen();
  const auto i = static_cast<std::size_t>(v);
  return {arcs_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

Digraph Digraph::reversed() const {
  ensure_frozen();
  Digraph r(vertices_);
  const auto n = static_cast<std::size_t>(vertices_);
  // Counting sort by head vertex; scanning arcs_ in (source, position) order
  // replays the historical per-source add_arc loop, so each reversed
  // vertex's arc order matches the old representation exactly.
  r.offsets_.assign(n + 1, 0);
  for (const Arc& a : arcs_) ++r.offsets_[static_cast<std::size_t>(a.to) + 1];
  for (std::size_t v = 0; v < n; ++v) r.offsets_[v + 1] += r.offsets_[v];
  r.cursor_.assign(r.offsets_.begin(), r.offsets_.end() - 1);
  r.arcs_.resize(arcs_.size());
  for (VertexId v = 0; v < vertices_; ++v) {
    const auto i = static_cast<std::size_t>(v);
    for (std::size_t j = offsets_[i]; j < offsets_[i + 1]; ++j) {
      const Arc& a = arcs_[j];
      r.arcs_[r.cursor_[static_cast<std::size_t>(a.to)]++] = {v, a.weight};
    }
  }
  r.frozen_ = true;
  obs::MetricsRegistry::global().counter(obs::keys::kGraphFreezes).add(1);
  obs::MetricsRegistry::global()
      .counter(obs::keys::kGraphFrozenArcs)
      .add(static_cast<std::int64_t>(r.arcs_.size()));
  return r;
}

namespace {

// Shared Dijkstra core writing into caller-provided flat arrays. `heap` is a
// min-heap over (dist, vertex) pairs maintained with push_heap/pop_heap and
// std::greater<> — the exact algorithm std::priority_queue runs, so the pop
// order (and therefore every tie-break downstream) is byte-identical to the
// historical implementation.
void dijkstra_core(const Digraph& g, VertexId src, double* dist,
                   VertexId* parent,
                   std::vector<std::pair<double, VertexId>>& heap,
                   std::size_t& settled, std::size_t& relaxations) {
  using Entry = std::pair<double, VertexId>;
  heap.clear();
  heap.emplace_back(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    ++settled;
    for (const Arc& a : g.out(u)) {
      const double nd = d + a.weight;
      if (nd < dist[static_cast<std::size_t>(a.to)]) {
        dist[static_cast<std::size_t>(a.to)] = nd;
        parent[static_cast<std::size_t>(a.to)] = u;
        heap.emplace_back(nd, a.to);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        ++relaxations;
      }
    }
  }
}

}  // namespace

ShortestPaths dijkstra(const Digraph& g, VertexId src) {
  DijkstraWorkspace ws;
  return dijkstra(g, src, ws);
}

ShortestPaths dijkstra(const Digraph& g, VertexId src, DijkstraWorkspace& ws) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  TVEG_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < n,
               "source vertex out of range");
  ShortestPaths sp;
  sp.dist.assign(n, support::kInf);
  sp.parent.assign(n, kNoVertex);
  sp.dist[static_cast<std::size_t>(src)] = 0;
  dijkstra_core(g, src, sp.dist.data(), sp.parent.data(), ws.heap_,
                sp.settled, sp.relaxations);
  return sp;
}

void dijkstra_scratch(const Digraph& g, VertexId src, DijkstraWorkspace& ws) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  TVEG_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < n,
               "source vertex out of range");
  ws.begin(n);
  // The epoch-marked arrays cannot host the plain core loop (stale slots
  // must read as +inf), so the relaxation test goes through the mark.
  auto& heap = ws.heap_;
  heap.clear();
  const auto s = static_cast<std::size_t>(src);
  ws.dist_[s] = 0;
  ws.parent_[s] = kNoVertex;
  ws.mark_[s] = ws.epoch_;
  heap.emplace_back(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
    if (d > ws.dist_[static_cast<std::size_t>(u)]) continue;
    ++ws.settled_;
    for (const Arc& a : g.out(u)) {
      const auto t = static_cast<std::size_t>(a.to);
      const double nd = d + a.weight;
      const bool fresh = ws.mark_[t] == ws.epoch_;
      if (!fresh || nd < ws.dist_[t]) {
        ws.dist_[t] = nd;
        ws.parent_[t] = u;
        ws.mark_[t] = ws.epoch_;
        heap.emplace_back(nd, a.to);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        ++ws.relaxations_;
      }
    }
  }
}

std::vector<VertexId> extract_path(const ShortestPaths& sp, VertexId dst) {
  TVEG_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < sp.dist.size(),
               "destination out of range");
  if (sp.dist[static_cast<std::size_t>(dst)] == support::kInf) return {};
  std::vector<VertexId> path{dst};
  while (sp.parent[static_cast<std::size_t>(path.back())] != kNoVertex)
    path.push_back(sp.parent[static_cast<std::size_t>(path.back())]);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace tveg::graph
