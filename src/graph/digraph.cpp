#include "graph/digraph.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::graph {

Digraph::Digraph(VertexId n) : out_(static_cast<std::size_t>(n)) {
  TVEG_REQUIRE(n >= 0, "vertex count must be non-negative");
}

VertexId Digraph::add_vertex() {
  out_.emplace_back();
  return static_cast<VertexId>(out_.size() - 1);
}

void Digraph::check_vertex(VertexId v) const {
  TVEG_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < out_.size(),
               "vertex id out of range");
}

void Digraph::add_arc(VertexId from, VertexId to, double weight) {
  check_vertex(from);
  check_vertex(to);
  TVEG_REQUIRE(weight >= 0, "arc weight must be non-negative");
  out_[static_cast<std::size_t>(from)].push_back({to, weight});
  ++arc_count_;
}

const std::vector<Arc>& Digraph::out(VertexId v) const {
  check_vertex(v);
  return out_[static_cast<std::size_t>(v)];
}

Digraph Digraph::reversed() const {
  Digraph r(vertex_count());
  for (VertexId v = 0; v < vertex_count(); ++v)
    for (const Arc& a : out(v)) r.add_arc(a.to, v, a.weight);
  return r;
}

ShortestPaths dijkstra(const Digraph& g, VertexId src) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  TVEG_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < n,
               "source vertex out of range");
  ShortestPaths sp;
  sp.dist.assign(n, support::kInf);
  sp.parent.assign(n, kNoVertex);
  sp.dist[static_cast<std::size_t>(src)] = 0;

  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > sp.dist[static_cast<std::size_t>(u)]) continue;
    ++sp.settled;
    for (const Arc& a : g.out(u)) {
      const double nd = d + a.weight;
      if (nd < sp.dist[static_cast<std::size_t>(a.to)]) {
        sp.dist[static_cast<std::size_t>(a.to)] = nd;
        sp.parent[static_cast<std::size_t>(a.to)] = u;
        pq.emplace(nd, a.to);
        ++sp.relaxations;
      }
    }
  }
  return sp;
}

std::vector<VertexId> extract_path(const ShortestPaths& sp, VertexId dst) {
  TVEG_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < sp.dist.size(),
               "destination out of range");
  if (sp.dist[static_cast<std::size_t>(dst)] == support::kInf) return {};
  std::vector<VertexId> path{dst};
  while (sp.parent[static_cast<std::size_t>(path.back())] != kNoVertex)
    path.push_back(sp.parent[static_cast<std::size_t>(path.back())]);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace tveg::graph
