#include "graph/steiner.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg::graph {

using support::kInf;

namespace {

std::uint64_t arc_key(VertexId from, VertexId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

/// Accumulates a subgraph as a deduplicated arc set.
//
// Deliberately still an unordered_map: finalize() replays its iteration
// order into the scratch Digraph, and that order feeds the cleanup
// Dijkstra's tie-breaking — swapping the container would silently change
// golden schedules. Local per query, never on the steady-state alloc path.
struct TreeBuilder {
  std::unordered_map<std::uint64_t, double> arcs;

  void add_arc(VertexId from, VertexId to, double w) {
    arcs.emplace(arc_key(from, to), w);
  }

  /// Adds every arc of the shortest path sp-root → dst.
  void add_path(const ShortestPaths& sp, VertexId dst) {
    VertexId cur = dst;
    while (sp.parent[static_cast<std::size_t>(cur)] != kNoVertex) {
      const VertexId p = sp.parent[static_cast<std::size_t>(cur)];
      add_arc(p, cur,
              sp.dist[static_cast<std::size_t>(cur)] -
                  sp.dist[static_cast<std::size_t>(p)]);
      cur = p;
    }
  }
};

/// Converts an arbitrary selected subgraph into a clean arborescence: runs
/// Dijkstra inside the subgraph from the root, keeps only arcs on the
/// resulting paths to terminals. Never increases the cost. `scratch` and
/// `ws` are reused across queries (reset per call, capacity kept).
SteinerResult finalize(const TreeBuilder& builder, VertexId root,
                       const std::vector<VertexId>& terminals,
                       VertexId vertex_count, Digraph& scratch,
                       DijkstraWorkspace& ws) {
  scratch.reset(vertex_count);
  scratch.reserve_arcs(builder.arcs.size());
  for (const auto& [key, w] : builder.arcs)
    scratch.add_arc(static_cast<VertexId>(key >> 32),
                    static_cast<VertexId>(key & 0xffffffffu), w);
  scratch.freeze();

  dijkstra_scratch(scratch, root, ws);

  SteinerResult result;
  result.feasible = true;
  std::unordered_set<std::uint64_t> kept;
  for (VertexId t : terminals) {
    if (ws.dist(t) == kInf) {
      result.feasible = false;
      continue;
    }
    VertexId cur = t;
    while (ws.parent(cur) != kNoVertex) {
      const VertexId p = ws.parent(cur);
      const std::uint64_t key = arc_key(p, cur);
      if (kept.insert(key).second) {
        const double w = ws.dist(cur) - ws.dist(p);
        result.arcs.push_back({p, cur, w});
        result.cost += w;
      }
      cur = p;
    }
  }
  return result;
}

}  // namespace

SteinerSolver::SteinerSolver(const Digraph& g)
    : g_(g),
      reversed_(g.reversed()),
      forward_slot_(static_cast<std::size_t>(g.vertex_count()), -1),
      ws_(acquire_workspace()) {}

/// Clears per-query stats on entry to a public solver method and flushes
/// them into the registry when the query finishes.
struct SteinerSolver::QueryScope {
  explicit QueryScope(SteinerSolver& solver) : solver_(solver) {
    solver_.stats_ = QueryStats{};
  }
  ~QueryScope() {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& queries = registry.counter(obs::keys::kSteinerQueries);
    static obs::Counter& runs = registry.counter(obs::keys::kSteinerDijkstraRuns);
    static obs::Counter& expanded =
        registry.counter(obs::keys::kSteinerNodesExpanded);
    static obs::Counter& relaxations =
        registry.counter(obs::keys::kSteinerRelaxations);
    queries.add(1);
    runs.add(solver_.stats_.dijkstra_runs);
    expanded.add(solver_.stats_.nodes_expanded);
    relaxations.add(solver_.stats_.relaxations);
  }
  SteinerSolver& solver_;
};

void SteinerSolver::note_run(const ShortestPaths& sp) {
  ++stats_.dijkstra_runs;
  stats_.nodes_expanded += sp.settled;
  stats_.relaxations += sp.relaxations;
}

const ShortestPaths& SteinerSolver::forward_from(VertexId v) {
  const auto i = static_cast<std::size_t>(v);
  std::int32_t slot = forward_slot_[i];
  if (slot < 0) {
    budget_.check("steiner");
    slot = static_cast<std::int32_t>(forward_store_.size());
    forward_store_.push_back(dijkstra(g_, v, *ws_));
    forward_slot_[i] = slot;
    note_run(forward_store_.back());
  }
  return forward_store_[static_cast<std::size_t>(slot)];
}

SteinerResult SteinerSolver::shortest_path_heuristic(
    VertexId root, const std::vector<VertexId>& terminals) {
  const QueryScope scope(*this);
  const ShortestPaths& sp = forward_from(root);
  TreeBuilder builder;
  for (VertexId t : terminals)
    if (t != root && sp.dist[static_cast<std::size_t>(t)] < kInf)
      builder.add_path(sp, t);
  SteinerResult result = finalize(builder, root, terminals, g_.vertex_count(),
                                  scratch_sub_, *ws_);
  for (VertexId t : terminals)
    if (sp.dist[static_cast<std::size_t>(t)] == kInf) result.feasible = false;
  return result;
}

struct SteinerSolver::GreedyState {
  std::vector<VertexId> terminals;  ///< deduplicated, root removed
  std::vector<char> covered;        ///< parallel to terminals
  TreeBuilder tree;
};

void SteinerSolver::greedy_cover(GreedyState& state, VertexId v, int level,
                                 std::size_t want) {
  const ShortestPaths& sp = forward_from(v);

  if (level <= 1) {
    // Level 1: the bunch — the `want` cheapest shortest paths v → terminal.
    std::vector<std::pair<double, std::size_t>> cand;
    for (std::size_t k = 0; k < state.terminals.size(); ++k) {
      if (state.covered[k]) continue;
      const double d = sp.dist[static_cast<std::size_t>(state.terminals[k])];
      if (d < kInf) cand.push_back({d, k});
    }
    std::sort(cand.begin(), cand.end());
    if (cand.size() > want) cand.resize(want);
    for (const auto& [d, k] : cand) {
      state.tree.add_path(sp, state.terminals[k]);
      state.covered[k] = 1;
    }
    return;
  }

  // Level >= 2: repeatedly pick the intermediate root u and count k' whose
  // level-1 bunch has the best density estimate
  //   (dist(v→u) + Σ k'-cheapest dist(u→terminal)) / k'.
  std::size_t remaining = want;
  const std::size_t kTerms = term_count_;
  while (remaining > 0) {
    budget_.check("steiner");

    // One scan pass over a contiguous vertex range, keeping the first
    // (u, k') attaining the minimum density (strict <, u then k' ascending).
    struct Best {
      double density = kInf;
      VertexId u = kNoVertex;
      std::size_t k = 0;
    };
    const auto scan_range = [&](VertexId lo, VertexId hi) {
      Best best;
      std::vector<double> dists;
      // Strided budget poller: one relaxed cancel load per vertex, one clock
      // read per stride. Constructed per invocation, so each pool chunk
      // counts its own stride — pollers are not shared across threads.
      support::Budget::Poller poller(budget_, "steiner_density_scan");
      for (VertexId u = lo; u < hi; ++u) {
        poller.poll();
        const double to_u = sp.dist[static_cast<std::size_t>(u)];
        if (to_u == kInf) continue;
        dists.clear();
        // dist_to_term_ is terminal-major: the k loop walks one contiguous
        // row of the matrix.
        const double* row = dist_to_term_.data() +
                            static_cast<std::size_t>(u) * kTerms;
        for (std::size_t k = 0; k < kTerms; ++k) {
          if (state.covered[k]) continue;
          const double d = row[k];
          if (d < kInf) dists.push_back(d);
        }
        if (dists.empty()) continue;
        const std::size_t take = std::min(remaining, dists.size());
        std::partial_sort(dists.begin(),
                          dists.begin() + static_cast<std::ptrdiff_t>(take),
                          dists.end());
        double sum = to_u;
        for (std::size_t kp = 1; kp <= take; ++kp) {
          sum += dists[kp - 1];
          const double density = sum / static_cast<double>(kp);
          if (density < best.density) {
            best.density = density;
            best.u = u;
            best.k = kp;
          }
        }
      }
      return best;
    };

    Best best;
    const auto n = static_cast<std::size_t>(g_.vertex_count());
    if (pool_ != nullptr && n > 1) {
      // Chunked scan: each chunk finds its local first-minimum; merging the
      // chunk results in ascending-range order with strict < reproduces the
      // serial winner exactly (including float-tie behavior).
      const std::size_t chunks = std::min(n, pool_->thread_count() + 1);
      const std::size_t per = (n + chunks - 1) / chunks;
      std::vector<Best> local(chunks);
      pool_->parallel_for(0, chunks, [&](std::size_t c) {
        obs::ScopedSpan chunk_span("steiner_density_scan");
        const auto lo = static_cast<VertexId>(c * per);
        const auto hi = static_cast<VertexId>(std::min(n, (c + 1) * per));
        local[c] = scan_range(lo, hi);
      }, budget_.cancel);
      for (const Best& b : local)
        if (b.density < best.density) best = b;
    } else {
      best = scan_range(0, g_.vertex_count());
    }
    const VertexId best_u = best.u;
    const std::size_t best_k = best.k;

    if (best_u == kNoVertex) return;  // nothing more reachable
    state.tree.add_path(sp, best_u);
    const std::size_t covered_before =
        static_cast<std::size_t>(std::count(state.covered.begin(),
                                            state.covered.end(), char{1}));
    greedy_cover(state, best_u, level - 1, best_k);
    const std::size_t covered_after =
        static_cast<std::size_t>(std::count(state.covered.begin(),
                                            state.covered.end(), char{1}));
    if (covered_after == covered_before) return;  // no progress — stop
    remaining -= std::min(remaining, covered_after - covered_before);
  }
}

SteinerResult SteinerSolver::recursive_greedy(
    VertexId root, const std::vector<VertexId>& terminals, int level) {
  TVEG_REQUIRE(level >= 1, "recursion level must be >= 1");
  const QueryScope scope(*this);
  level = std::min(level, 2);

  GreedyState state;
  std::unordered_set<VertexId> seen;
  for (VertexId t : terminals)
    if (t != root && seen.insert(t).second) state.terminals.push_back(t);
  state.covered.assign(state.terminals.size(), 0);

  // dist(u → terminal) for every u, via Dijkstra on the reversed graph.
  // Each run fills an indexed row and the work counters are summed in
  // terminal order afterwards, so the pooled path is bit-identical (results
  // and stats) to the serial one. Rows are transposed into the terminal-
  // major matrix the density scan reads (one serial pass — the parallel
  // runs never write shared cache lines).
  const auto n = static_cast<std::size_t>(g_.vertex_count());
  term_count_ = state.terminals.size();
  dist_to_term_.assign(n * term_count_, kInf);
  const auto scatter_row = [&](std::size_t k, const std::vector<double>& d) {
    for (std::size_t u = 0; u < n; ++u)
      dist_to_term_[u * term_count_ + k] = d[u];
  };
  if (pool_ != nullptr && state.terminals.size() > 1) {
    std::vector<ShortestPaths> runs(state.terminals.size());
    pool_->parallel_for(0, state.terminals.size(), [&](std::size_t k) {
      obs::ScopedSpan run_span("steiner_reverse_dijkstra");
      budget_.check("steiner");
      auto ws = acquire_workspace();
      runs[k] = dijkstra(reversed_, state.terminals[k], *ws);
    }, budget_.cancel);
    for (std::size_t k = 0; k < runs.size(); ++k) {
      note_run(runs[k]);
      scatter_row(k, runs[k].dist);
    }
    static obs::Counter& par_runs = obs::MetricsRegistry::global().counter(
        obs::keys::kParallelSteinerDijkstras);
    par_runs.add(state.terminals.size());
  } else {
    support::Budget::Poller poller(budget_, "steiner", /*stride=*/16);
    for (std::size_t k = 0; k < state.terminals.size(); ++k) {
      poller.poll();
      const ShortestPaths sp = dijkstra(reversed_, state.terminals[k], *ws_);
      note_run(sp);
      scatter_row(k, sp.dist);
    }
  }

  greedy_cover(state, root, level, state.terminals.size());
  dist_to_term_.clear();
  term_count_ = 0;

  return finalize(state.tree, root, terminals, g_.vertex_count(), scratch_sub_,
                  *ws_);
}

SteinerResult SteinerSolver::exact_small(
    VertexId root, const std::vector<VertexId>& terminals) {
  const QueryScope scope(*this);
  std::vector<VertexId> terms;
  std::unordered_set<VertexId> seen;
  for (VertexId t : terminals)
    if (t != root && seen.insert(t).second) terms.push_back(t);
  const std::size_t k = terms.size();
  TVEG_REQUIRE(k <= 16, "exact solver limited to 16 terminals");
  const auto n = static_cast<std::size_t>(g_.vertex_count());
  TVEG_REQUIRE(n <= 1500, "exact solver limited to 1500 vertices "
                          "(quadratic distance/parent storage)");

  if (k == 0) {
    SteinerResult r;
    r.feasible = true;
    return r;
  }

  // Full single-source trees from every vertex: distances for the DP plus
  // parents for arc reconstruction. Indexed slots + in-order stats keep the
  // pooled path bit-identical to the serial one.
  std::vector<ShortestPaths> sp(n);
  if (pool_ != nullptr && n > 1) {
    pool_->parallel_for(0, n, [&](std::size_t v) {
      obs::ScopedSpan run_span("steiner_all_source");
      budget_.check("steiner_all_source");
      auto ws = acquire_workspace();
      sp[v] = dijkstra(g_, static_cast<VertexId>(v), *ws);
    }, budget_.cancel);
    static obs::Counter& par_runs = obs::MetricsRegistry::global().counter(
        obs::keys::kParallelSteinerDijkstras);
    par_runs.add(n);
  } else {
    support::Budget::Poller poller(budget_, "steiner_all_source",
                                   /*stride=*/16);
    for (std::size_t v = 0; v < n; ++v) {
      poller.poll();
      sp[v] = dijkstra(g_, static_cast<VertexId>(v), *ws_);
    }
  }
  for (std::size_t v = 0; v < n; ++v) note_run(sp[v]);
  auto dist = [&](std::size_t v, std::size_t u) { return sp[v].dist[u]; };

  const std::size_t full = (std::size_t{1} << k) - 1;
  // dp[S][v]: min arborescence cost rooted at v covering terminal subset S.
  // graft_u[S][v]: the vertex the split/base happens at (reached from v by
  // a shortest path). split_a[S][u]: the subset A of the split at u
  // (0 = singleton base case, path straight to the terminal).
  std::vector<std::vector<double>> dp(full + 1, std::vector<double>(n, kInf));
  std::vector<std::vector<VertexId>> graft_u(
      full + 1, std::vector<VertexId>(n, kNoVertex));
  std::vector<std::vector<std::uint32_t>> split_a(
      full + 1, std::vector<std::uint32_t>(n, 0));

  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t S = std::size_t{1} << i;
    for (std::size_t v = 0; v < n; ++v) {
      dp[S][v] = dist(v, static_cast<std::size_t>(terms[i]));
      graft_u[S][v] = static_cast<VertexId>(v);  // base: path v → terminal
    }
  }

  std::vector<double> merged(n);
  std::vector<std::uint32_t> merged_a(n);
  for (std::size_t S = 1; S <= full; ++S) {
    if ((S & (S - 1)) == 0) continue;  // singletons are the base case
    // Split step: best partition of S at the same root.
    for (std::size_t v = 0; v < n; ++v) {
      double best = kInf;
      std::uint32_t best_a = 0;
      for (std::size_t A = (S - 1) & S; A > (S ^ A); A = (A - 1) & S) {
        const std::size_t B = S ^ A;
        if (dp[A][v] < kInf && dp[B][v] < kInf && dp[A][v] + dp[B][v] < best) {
          best = dp[A][v] + dp[B][v];
          best_a = static_cast<std::uint32_t>(A);
        }
      }
      merged[v] = best;
      merged_a[v] = best_a;
    }
    // Graft step: reach the split vertex u from v by a shortest path.
    for (std::size_t v = 0; v < n; ++v) {
      double best = merged[v];
      std::size_t best_u = v;
      for (std::size_t u = 0; u < n; ++u) {
        if (merged[u] == kInf || dist(v, u) == kInf) continue;
        if (dist(v, u) + merged[u] < best) {
          best = dist(v, u) + merged[u];
          best_u = u;
        }
      }
      dp[S][v] = best;
      graft_u[S][v] = static_cast<VertexId>(best_u);
      split_a[S][v] = merged_a[best_u];
    }
  }

  SteinerResult r;
  const double opt = dp[full][static_cast<std::size_t>(root)];
  if (opt == kInf) return r;  // infeasible, empty result

  // Reconstruct: realize dp[S][v] recursively into a TreeBuilder.
  TreeBuilder builder;
  struct Frame {
    std::size_t S;
    std::size_t v;
  };
  std::vector<Frame> stack{{full, static_cast<std::size_t>(root)}};
  while (!stack.empty()) {
    const auto [S, v] = stack.back();
    stack.pop_back();
    const auto u = static_cast<std::size_t>(graft_u[S][v]);
    TVEG_ASSERT(graft_u[S][v] != kNoVertex);
    builder.add_path(sp[v], static_cast<VertexId>(u));
    if ((S & (S - 1)) == 0) {
      // Singleton: shortest path u → terminal.
      std::size_t i = 0;
      while (!(S & (std::size_t{1} << i))) ++i;
      builder.add_path(sp[u], terms[i]);
    } else {
      const std::size_t A = split_a[S][v];
      TVEG_ASSERT(A != 0 && (A & S) == A);
      stack.push_back({A, u});
      stack.push_back({S ^ A, u});
    }
  }

  r = finalize(builder, root, terminals, g_.vertex_count(), scratch_sub_,
               *ws_);
  TVEG_ASSERT_MSG(r.feasible, "exact reconstruction lost a terminal");
  // Shared arcs can only make the realized tree cheaper than the DP value,
  // and no tree beats the optimum — so they must agree.
  TVEG_ASSERT_MSG(r.cost <= opt + 1e-9 * (1 + opt), "cost above DP optimum");
  return r;
}

bool SteinerSolver::validate(const SteinerResult& r, VertexId root,
                             const std::vector<VertexId>& terminals) const {
  // Check arcs exist in the graph with the claimed (or better) weight, and
  // that every terminal is reachable from the root using only tree arcs.
  Digraph sub(g_.vertex_count());
  for (const auto& arc : r.arcs) {
    bool found = false;
    for (const Arc& a : g_.out(arc.from))
      if (a.to == arc.to && a.weight <= arc.weight + 1e-9) {
        found = true;
        break;
      }
    if (!found) return false;
    sub.add_arc(arc.from, arc.to, arc.weight);
  }
  const ShortestPaths sp = dijkstra(sub, root);
  for (VertexId t : terminals)
    if (sp.dist[static_cast<std::size_t>(t)] == kInf) return false;
  return true;
}

}  // namespace tveg::graph
