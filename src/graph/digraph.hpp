// Static directed weighted graph: the substrate for the auxiliary graph of
// Sec. VI-A and the directed Steiner tree solvers that implement the MEMT
// reduction of Liang [3].
//
// Memory layout (DESIGN.md "Data layout & hot-path memory"): a Digraph is
// built arc-by-arc into a flat staging list and then *frozen* into CSR form
// — one contiguous arc array plus a V+1 offset table — before any traversal.
// Freezing is a stable counting sort, so each vertex's out-arcs keep their
// insertion order and every traversal (hence every schedule downstream) is
// byte-identical to the historical vector-of-vectors representation.
// Traversals on a never-frozen graph freeze it lazily on first access;
// mutation after freezing throws. freeze() is NOT safe to race with itself —
// construction happens on one thread before a graph is shared (AuxGraph and
// SteinerSolver both freeze eagerly at build time).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace tveg::graph {

/// Vertex identifier in a static digraph (dense 0..V-1).
using VertexId = std::int32_t;

inline constexpr VertexId kNoVertex = -1;

/// One outgoing arc.
struct Arc {
  VertexId to;
  double weight;
};

/// Build-then-freeze CSR digraph with non-negative arc weights.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(VertexId n);

  /// Appends a vertex, returning its id. Building-state only.
  VertexId add_vertex();
  /// Adds an arc from → to with weight >= 0. Building-state only.
  void add_arc(VertexId from, VertexId to, double weight);
  /// Reserves staging capacity for `arcs` arcs (one allocation up front;
  /// AuxGraph computes the exact count before assembly).
  void reserve_arcs(std::size_t arcs);

  /// Compacts the staged arcs into the frozen CSR form (stable counting
  /// sort, O(V + E), single arena pass). Idempotent; implied by the first
  /// traversal of a never-frozen graph.
  void freeze();
  bool frozen() const { return frozen_; }

  /// Returns to an empty building state with `n` vertices, keeping every
  /// buffer's capacity — the reuse hook for per-query scratch subgraphs.
  void reset(VertexId n);

  VertexId vertex_count() const { return vertices_; }
  std::size_t arc_count() const {
    return frozen_ ? arcs_.size() : staged_.size();
  }
  /// The out-arcs of v in insertion order (freezes a never-frozen graph).
  std::span<const Arc> out(VertexId v) const;

  /// The reversed graph, already frozen (used for distance-to-terminal
  /// preprocessing). Per-vertex arc order is by (source vertex, position) —
  /// identical to the historical add_arc replay.
  Digraph reversed() const;

 private:
  void check_vertex(VertexId v) const;
  void ensure_frozen() const;

  VertexId vertices_ = 0;
  bool frozen_ = false;
  /// Building state: staged arcs in insertion order, sources parallel to
  /// the Arc payloads (two flat arrays, no per-vertex allocations).
  std::vector<VertexId> staged_from_;
  std::vector<Arc> staged_;
  /// Frozen state: out(v) = arcs_[offsets_[v] .. offsets_[v+1]).
  std::vector<std::size_t> offsets_;
  std::vector<Arc> arcs_;
  /// Scatter cursors, kept as a member so reset()+freeze() cycles reuse the
  /// allocation.
  std::vector<std::size_t> cursor_;
};

/// Single-source shortest paths result.
struct ShortestPaths {
  std::vector<double> dist;       ///< +inf when unreachable
  std::vector<VertexId> parent;   ///< kNoVertex for source/unreachable
  std::size_t settled = 0;        ///< queue pops that expanded a vertex
  std::size_t relaxations = 0;    ///< successful distance improvements
};

/// Reusable Dijkstra scratch: the binary heap plus epoch-marked dist/parent
/// arrays. One workspace serves one run at a time (not thread-safe); pooled
/// workers each hold their own via support::ObjectPool. Buffers only grow,
/// so steady-state runs allocate nothing.
class DijkstraWorkspace {
 public:
  /// Distance of the most recent dijkstra_scratch run; +inf if v was not
  /// reached in that run (epoch-checked — stale runs never alias).
  double dist(VertexId v) const {
    const auto i = static_cast<std::size_t>(v);
    return mark_[i] == epoch_ ? dist_[i] : kInfDist;
  }
  /// Parent of v in the most recent dijkstra_scratch tree; kNoVertex for
  /// the source and unreached vertices.
  VertexId parent(VertexId v) const {
    const auto i = static_cast<std::size_t>(v);
    return mark_[i] == epoch_ ? parent_[i] : kNoVertex;
  }

  std::size_t settled() const { return settled_; }
  std::size_t relaxations() const { return relaxations_; }

  /// Test hook: jump the epoch counter (e.g. to the wraparound boundary) to
  /// prove stale marks never alias a fresh run.
  void force_epoch_for_test(std::uint32_t epoch) { epoch_ = epoch; }
  std::uint32_t epoch_for_test() const { return epoch_; }

 private:
  friend ShortestPaths dijkstra(const Digraph& g, VertexId src,
                                DijkstraWorkspace& ws);
  friend void dijkstra_scratch(const Digraph& g, VertexId src,
                               DijkstraWorkspace& ws);

  static constexpr double kInfDist = __builtin_huge_val();

  /// Opens a new epoch over `n` vertices: O(1) amortized — marks are
  /// invalidated by the counter bump, not by clearing. On wraparound the
  /// mark array is cleared once so epoch reuse can never alias a run from
  /// 2^32 epochs ago.
  void begin(std::size_t n) {
    if (mark_.size() < n) mark_.resize(n, 0);
    if (dist_.size() < n) dist_.resize(n, 0);
    if (parent_.size() < n) parent_.resize(n, kNoVertex);
    if (++epoch_ == 0) {
      std::fill(mark_.begin(), mark_.end(), 0u);
      epoch_ = 1;
    }
    settled_ = 0;
    relaxations_ = 0;
  }

  std::vector<std::pair<double, VertexId>> heap_;
  std::vector<double> dist_;
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
  std::size_t settled_ = 0;
  std::size_t relaxations_ = 0;
};

/// Dijkstra from src (weights must be non-negative).
ShortestPaths dijkstra(const Digraph& g, VertexId src);

/// As above, reusing `ws`'s heap storage; the returned tree owns its own
/// dist/parent arrays (callers cache them). Byte-identical to the
/// workspace-free overload.
ShortestPaths dijkstra(const Digraph& g, VertexId src, DijkstraWorkspace& ws);

/// Allocation-free variant for scratch queries whose tree is consumed
/// immediately: results live in `ws` (dist()/parent()) until its next run.
void dijkstra_scratch(const Digraph& g, VertexId src, DijkstraWorkspace& ws);

/// Vertex sequence src..dst from a ShortestPaths tree; empty if unreachable.
std::vector<VertexId> extract_path(const ShortestPaths& sp, VertexId dst);

}  // namespace tveg::graph
