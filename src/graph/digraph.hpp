// Static directed weighted graph: the substrate for the auxiliary graph of
// Sec. VI-A and the directed Steiner tree solvers that implement the MEMT
// reduction of Liang [3].
#pragma once

#include <cstdint>
#include <vector>

namespace tveg::graph {

/// Vertex identifier in a static digraph (dense 0..V-1).
using VertexId = std::int32_t;

inline constexpr VertexId kNoVertex = -1;

/// One outgoing arc.
struct Arc {
  VertexId to;
  double weight;
};

/// Adjacency-list digraph with non-negative arc weights.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(VertexId n);

  /// Appends a vertex, returning its id.
  VertexId add_vertex();
  /// Adds an arc from → to with weight >= 0.
  void add_arc(VertexId from, VertexId to, double weight);

  VertexId vertex_count() const { return static_cast<VertexId>(out_.size()); }
  std::size_t arc_count() const { return arc_count_; }
  const std::vector<Arc>& out(VertexId v) const;

  /// The reversed graph (used for distance-to-terminal preprocessing).
  Digraph reversed() const;

 private:
  void check_vertex(VertexId v) const;
  std::vector<std::vector<Arc>> out_;
  std::size_t arc_count_ = 0;
};

/// Single-source shortest paths result.
struct ShortestPaths {
  std::vector<double> dist;       ///< +inf when unreachable
  std::vector<VertexId> parent;   ///< kNoVertex for source/unreachable
  std::size_t settled = 0;        ///< queue pops that expanded a vertex
  std::size_t relaxations = 0;    ///< successful distance improvements
};

/// Dijkstra from src (weights must be non-negative).
ShortestPaths dijkstra(const Digraph& g, VertexId src);

/// Vertex sequence src..dst from a ShortestPaths tree; empty if unreachable.
std::vector<VertexId> extract_path(const ShortestPaths& sp, VertexId dst);

}  // namespace tveg::graph
