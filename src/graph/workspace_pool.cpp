#include "graph/workspace_pool.hpp"

#include "obs/keys.hpp"
#include "obs/metrics.hpp"

namespace tveg::graph {

WorkspacePool& dijkstra_workspaces() {
  static WorkspacePool pool(WorkspacePool::Hooks{
      .on_create =
          [] {
            auto& reg = obs::MetricsRegistry::global();
            reg.counter(obs::keys::kSteinerHeapAcquires).add(1);
            reg.counter(obs::keys::kAllocSteadyState).add(1);
          },
      .on_reuse =
          [] {
            auto& reg = obs::MetricsRegistry::global();
            reg.counter(obs::keys::kSteinerHeapAcquires).add(1);
            reg.counter(obs::keys::kSteinerHeapReuses).add(1);
          },
  });
  return pool;
}

WorkspaceHandle acquire_workspace() { return dijkstra_workspaces().acquire(); }

}  // namespace tveg::graph
