// Directed Steiner tree solvers.
//
// TMEDB-S reduces (via the auxiliary graph of Sec. VI-A) to the directed
// Steiner tree problem: given a root r and terminal set X, find a minimum-
// weight out-arborescence subgraph containing a path r→x for every x ∈ X.
// Three solvers with different cost/quality points:
//
//  * recursive_greedy — Charikar et al.'s level-i algorithm, the one Liang's
//    MEMT approximation [3] builds on; level i gives ratio O(|X|^{1/i})
//    (levels 1 and 2 implemented; the paper's O(N^ε) bound corresponds to
//    running at level ⌈1/ε⌉).
//  * shortest_path_heuristic — union of shortest paths root→terminal with a
//    leaf-pruning cleanup; fast, no worst-case guarantee, strong in practice.
//  * exact_small — Dreyfus–Wagner-style subset DP, exponential in |X|;
//    ground truth for tests and for the approximation-ratio benches.
//
// Memory layout (DESIGN.md "Data layout & hot-path memory"): all per-query
// state is dense and index-addressed — the forward-tree cache is a slot
// array into a stable deque, terminal distances live in one flat
// terminal-major matrix, and every Dijkstra runs on a pooled workspace — so
// repeated queries against one solver allocate nothing in steady state.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/workspace_pool.hpp"
#include "support/budget.hpp"
#include "support/thread_pool.hpp"

namespace tveg::graph {

/// A (partial) Steiner arborescence.
struct SteinerResult {
  /// Tree arcs as (from, to, weight) triples; forms an out-arborescence
  /// rooted at the query root when feasible.
  struct TreeArc {
    VertexId from;
    VertexId to;
    double weight;
  };
  std::vector<TreeArc> arcs;
  double cost = 0;
  /// True iff every terminal is reachable in the tree.
  bool feasible = false;
};

/// Directed Steiner solver bound to one digraph; caches single-source
/// shortest-path trees across queries. Construction freezes the graph (CSR
/// form) — do not mutate it afterwards.
class SteinerSolver {
 public:
  explicit SteinerSolver(const Digraph& g);

  /// Cooperative solve budget: the heuristic solvers poll it between
  /// shortest-path runs and (via strided pollers) inside the density scans,
  /// throwing support::TimeoutError on expiry and support::CancelledError
  /// when the budget's cancel token fires. Default: unlimited.
  void set_budget(support::Budget budget) { budget_ = std::move(budget); }

  /// Optional worker pool for the embarrassingly parallel phases: the
  /// per-terminal reverse Dijkstras and the level-2 density scan of
  /// recursive_greedy, and exact_small's all-sources trees. Results are
  /// bit-identical to the serial path — every parallel phase either writes
  /// indexed slots or reduces chunk-local minima in serial chunk order (the
  /// level-2 winner is the lexicographically first (u, k') attaining the
  /// minimum density, same as the serial strict-< scan). nullptr = serial.
  void set_pool(support::ThreadPool* pool) { pool_ = pool; }

  /// Union of shortest paths to each terminal, then non-terminal leaves are
  /// pruned. O(|X|·SP) after one Dijkstra from the root.
  SteinerResult shortest_path_heuristic(VertexId root,
                                        const std::vector<VertexId>& terminals);

  /// Charikar recursive greedy at the given level (1 or 2; higher levels
  /// clamp to 2). Level 1 equals the shortest-path bunch; level 2 selects
  /// intermediate roots by best density.
  SteinerResult recursive_greedy(VertexId root,
                                 const std::vector<VertexId>& terminals,
                                 int level);

  /// Exact subset DP (Dreyfus–Wagner adapted to digraphs); |terminals| must
  /// be <= 16 and the graph reasonably small (3^k·V time, V² distance
  /// storage). Returns the optimal arborescence *with* its arcs.
  SteinerResult exact_small(VertexId root,
                            const std::vector<VertexId>& terminals);

  /// Validates that `r` is an arborescence rooted at `root` covering all
  /// terminals with arcs that exist in the graph; used by tests.
  bool validate(const SteinerResult& r, VertexId root,
                const std::vector<VertexId>& terminals) const;

  /// Work counters of the most recent solver query (cached Dijkstra trees
  /// count no work twice). Also accumulated into the global metrics
  /// registry under tveg.steiner.*.
  struct QueryStats {
    std::size_t dijkstra_runs = 0;
    std::size_t nodes_expanded = 0;  ///< settled vertices across runs
    std::size_t relaxations = 0;
  };
  const QueryStats& last_query_stats() const { return stats_; }

 private:
  const ShortestPaths& forward_from(VertexId v);
  /// Accounts a freshly computed shortest-path tree to the current query.
  void note_run(const ShortestPaths& sp);
  /// Resets per-query stats; flushes them to the registry on destruction.
  struct QueryScope;

  QueryStats stats_;
  support::Budget budget_;
  support::ThreadPool* pool_ = nullptr;

  /// dist(u → terminals_[k]) of the current recursive_greedy query, stored
  /// terminal-major at [u*term_count_ + k] so the density scan's inner loop
  /// over k is one contiguous read per vertex.
  std::vector<double> dist_to_term_;
  std::size_t term_count_ = 0;

  struct GreedyState;
  void greedy_cover(GreedyState& state, VertexId v, int level,
                    std::size_t want);

  const Digraph& g_;
  Digraph reversed_;
  /// Forward-tree cache: forward_slot_[v] indexes forward_store_, -1 when
  /// absent. A deque so cached trees keep stable addresses while
  /// greedy_cover holds references across recursive inserts.
  std::vector<std::int32_t> forward_slot_;
  std::deque<ShortestPaths> forward_store_;
  /// Reusable scratch for finalize()'s subgraph cleanup pass.
  Digraph scratch_sub_;
  /// This solver's serial-phase workspace, leased for the solver lifetime;
  /// parallel phases lease per-task workspaces from the same pool.
  WorkspaceHandle ws_;
};

}  // namespace tveg::graph
