// The canonical journey metrics of temporal-graph theory (Bui-Xuan,
// Ferreira & Jarry; surveyed by Casteigts et al., the paper's TVG
// framework): beyond the *foremost* journeys already provided by
// TimeVaryingGraph::earliest_arrival, this module computes
//
//   * min-hop journeys      — fewest transmissions (topological length),
//   * latest departures     — how long one may wait and still deliver,
//   * fastest journeys      — minimum in-network time (arrival − departure),
//   * reachability matrices — who can reach whom within a window
//                             (Whitbeck et al.'s temporal reachability).
//
// These are analysis tools over TVGs; the TMEDB schedulers do not depend on
// them, but trace exploration and the examples do.
#pragma once

#include <vector>

#include "tvg/time_varying_graph.hpp"

namespace tveg {

/// Result of a min-hop search from one source.
struct HopInfo {
  /// hops[v]: fewest hops of any journey src→v departing >= t0
  /// (-1 when unreachable, 0 for the source).
  std::vector<int> hops;
  /// arrival[v]: earliest arrival within hops[v] hops (== the foremost
  /// arrival once the hop bound reaches v's minimum).
  std::vector<Time> arrival;
};

/// Fewest-hops journeys from `src`, departing at or after `t0` (BFS over
/// hop layers, tracking the earliest arrival achievable per layer).
HopInfo min_hop_journeys(const TimeVaryingGraph& g, NodeId src, Time t0);

/// latest[v]: the latest time v may still be holding the packet and yet
/// deliver it to `dst` by `deadline` (reverse max-Dijkstra); -inf when v
/// cannot deliver at all, `deadline` for dst itself.
std::vector<Time> latest_departures(const TimeVaryingGraph& g, NodeId dst,
                                    Time deadline);

/// A fastest journey src→dst departing at or after t0.
struct FastestJourney {
  bool exists = false;
  Time departure = 0;  ///< when the packet leaves src
  Time arrival = 0;    ///< when dst receives it
  Time duration() const { return arrival - departure; }
  Journey journey;
};

/// Minimizes arrival − departure over all departure times >= t0. Exact up
/// to `slack`: candidate departures are the DTS-style event points of the
/// source plus points `slack` before each, which bracket every breakpoint
/// of the (piecewise-constant) arrival function.
FastestJourney fastest_journey(const TimeVaryingGraph& g, NodeId src,
                               NodeId dst, Time t0, double slack = 1e-6);

/// R[i][j] = 1 iff a journey i→j departs at or after t0 and arrives by
/// `deadline` (diagonal is 1). One temporal Dijkstra per row.
std::vector<std::vector<char>> reachability_matrix(const TimeVaryingGraph& g,
                                                   Time t0, Time deadline);

}  // namespace tveg
