#include "tvg/interval_set.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg {

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  for (const auto& iv : intervals_)
    TVEG_REQUIRE(iv.start < iv.end, "interval must have positive length");
  normalize();
}

void IntervalSet::add(Time start, Time end) {
  TVEG_REQUIRE(start < end, "interval must have positive length");
  intervals_.push_back({start, end});
  normalize();
}

void IntervalSet::normalize() {
  if (intervals_.empty()) return;
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  std::vector<Interval> merged;
  merged.reserve(intervals_.size());
  merged.push_back(intervals_.front());
  for (std::size_t i = 1; i < intervals_.size(); ++i) {
    Interval& last = merged.back();
    const Interval& cur = intervals_[i];
    if (cur.start <= last.end) {
      last.end = std::max(last.end, cur.end);  // overlap or touch: merge
    } else {
      merged.push_back(cur);
    }
  }
  intervals_ = std::move(merged);
}

bool IntervalSet::contains(Time t) const {
  // First interval with start > t, then check its predecessor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Time value, const Interval& iv) { return value < iv.start; });
  if (it == intervals_.begin()) return false;
  --it;
  return t < it->end;
}

bool IntervalSet::covers_closed(Time a, Time b) const {
  TVEG_REQUIRE(a <= b, "covers_closed needs a <= b");
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), a,
      [](Time value, const Interval& iv) { return value < iv.start; });
  if (it == intervals_.begin()) return false;
  --it;
  // The start must lie strictly inside the interval (a transmission cannot
  // begin the instant the contact ends); the end may touch the boundary.
  return a < it->end && b <= it->end;
}

Time IntervalSet::total_length() const {
  Time sum = 0;
  for (const auto& iv : intervals_) sum += iv.length();
  return sum;
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    const Time lo = std::max(a.start, b.start);
    const Time hi = std::min(a.end, b.end);
    if (lo < hi) out.push_back({lo, hi});
    if (a.end < b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  IntervalSet result;
  result.intervals_ = std::move(out);  // already sorted and disjoint
  return result;
}

IntervalSet IntervalSet::complement(Time lo, Time hi) const {
  TVEG_REQUIRE(lo <= hi, "complement range must be ordered");
  IntervalSet result;
  Time cursor = lo;
  for (const auto& iv : intervals_) {
    if (iv.end <= lo) continue;
    if (iv.start >= hi) break;
    if (iv.start > cursor) result.intervals_.push_back({cursor, iv.start});
    cursor = std::max(cursor, iv.end);
  }
  if (cursor < hi) result.intervals_.push_back({cursor, hi});
  return result;
}

IntervalSet IntervalSet::shrink_right(Time tau) const {
  TVEG_REQUIRE(tau >= 0, "latency must be non-negative");
  if (tau == 0) return *this;
  IntervalSet result;
  for (const auto& iv : intervals_) {
    if (iv.end - tau > iv.start)
      result.intervals_.push_back({iv.start, iv.end - tau});
  }
  return result;  // shrinking preserves order and disjointness
}

std::vector<Time> IntervalSet::boundary_points() const {
  std::vector<Time> pts;
  pts.reserve(intervals_.size() * 2);
  for (const auto& iv : intervals_) {
    pts.push_back(iv.start);
    pts.push_back(iv.end);
  }
  return pts;
}

Time IntervalSet::next_point_in(Time t) const {
  if (contains(t)) return t;
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Time value, const Interval& iv) { return value < iv.start; });
  if (it == intervals_.end()) return support::kInf;
  return it->start;
}

}  // namespace tveg
