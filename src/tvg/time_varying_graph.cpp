#include "tvg/time_varying_graph.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace tveg {

Time Journey::departure() const {
  TVEG_REQUIRE(!hops.empty(), "departure of an empty journey");
  return hops.front().depart;
}

Time Journey::arrival(Time tau) const {
  TVEG_REQUIRE(!hops.empty(), "arrival of an empty journey");
  return hops.back().depart + tau;
}

TimeVaryingGraph::TimeVaryingGraph(NodeId n, Time horizon, Time tau)
    : n_(n), horizon_(horizon), tau_(tau), incident_(static_cast<std::size_t>(n)) {
  TVEG_REQUIRE(n > 0, "graph needs at least one node");
  TVEG_REQUIRE(horizon > 0, "horizon must be positive");
  TVEG_REQUIRE(tau >= 0, "latency must be non-negative");
  TVEG_REQUIRE(tau < horizon, "latency must be smaller than the horizon");
}

void TimeVaryingGraph::check_node(NodeId v) const {
  TVEG_REQUIRE(v >= 0 && v < n_, "node id out of range");
}

std::uint64_t TimeVaryingGraph::pair_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

std::size_t TimeVaryingGraph::edge_index(NodeId a, NodeId b) const {
  auto it = edge_lookup_.find(pair_key(a, b));
  return it == edge_lookup_.end() ? npos : it->second;
}

void TimeVaryingGraph::add_contact(NodeId a, NodeId b, Time start, Time end) {
  check_node(a);
  check_node(b);
  TVEG_REQUIRE(a != b, "self-contacts are not allowed");
  TVEG_REQUIRE(start < end, "contact must have positive duration");
  TVEG_REQUIRE(start >= 0 && end <= horizon_, "contact outside the time span");
  if (a > b) std::swap(a, b);
  std::size_t e = edge_index(a, b);
  if (e == npos) {
    e = edges_.size();
    edges_.push_back({a, b, IntervalSet{}});
    edge_lookup_.emplace(pair_key(a, b), e);
    incident_[static_cast<std::size_t>(a)].push_back(e);
    incident_[static_cast<std::size_t>(b)].push_back(e);
  }
  edges_[e].presence.add(start, end);
}

std::pair<NodeId, NodeId> TimeVaryingGraph::edge_nodes(std::size_t e) const {
  TVEG_REQUIRE(e < edges_.size(), "edge index out of range");
  return {edges_[e].a, edges_[e].b};
}

const IntervalSet& TimeVaryingGraph::edge_presence(std::size_t e) const {
  TVEG_REQUIRE(e < edges_.size(), "edge index out of range");
  return edges_[e].presence;
}

const std::vector<std::size_t>& TimeVaryingGraph::incident_edges(NodeId i) const {
  check_node(i);
  return incident_[static_cast<std::size_t>(i)];
}

bool TimeVaryingGraph::has_edge(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return edge_index(a, b) != npos;
}

std::size_t TimeVaryingGraph::edge_id(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return edge_index(a, b);
}

const IntervalSet& TimeVaryingGraph::presence(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const std::size_t e = edge_index(a, b);
  return e == npos ? empty_set_ : edges_[e].presence;
}

bool TimeVaryingGraph::present(NodeId a, NodeId b, Time t) const {
  return presence(a, b).contains(t);
}

bool TimeVaryingGraph::adjacent(NodeId a, NodeId b, Time t) const {
  if (t < 0 || t + tau_ > horizon_) return false;
  return presence(a, b).covers_closed(t, t + tau_);
}

std::vector<NodeId> TimeVaryingGraph::neighbors_at(NodeId i, Time t) const {
  check_node(i);
  std::vector<NodeId> out;
  for (std::size_t e : incident_[static_cast<std::size_t>(i)]) {
    const Edge& edge = edges_[e];
    const NodeId other = edge.a == i ? edge.b : edge.a;
    if (adjacent(i, other, t)) out.push_back(other);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Time TimeVaryingGraph::next_valid_start(NodeId a, NodeId b, Time t) const {
  const IntervalSet& pres = presence(a, b);
  if (t < 0) t = 0;
  for (const Interval& iv : pres.intervals()) {
    if (iv.end < t + tau_) continue;  // transmission cannot finish inside
    const Time cand = std::max(t, iv.start);
    if (cand + tau_ <= iv.end && cand + tau_ <= horizon_) return cand;
  }
  return support::kInf;
}

Time TimeVaryingGraph::last_valid_start(NodeId a, NodeId b,
                                        Time latest_arrival) const {
  const IntervalSet& pres = presence(a, b);
  const auto& ivs = pres.intervals();
  const Time limit = std::min(latest_arrival, horizon_);
  for (auto it = ivs.rbegin(); it != ivs.rend(); ++it) {
    if (it->start + tau_ > limit) continue;  // opens too late
    const Time cand = std::min(it->end, limit) - tau_;
    if (cand >= it->start) return cand;
  }
  return -support::kInf;
}

Partition TimeVaryingGraph::pair_partition(NodeId a, NodeId b,
                                           double tolerance) const {
  // Boundary points of the adjacency (valid-start) intervals: within each
  // resulting interval the pair's ρ_τ adjacency is constant.
  const IntervalSet& pres = presence(a, b);
  std::vector<Time> pts;
  for (const Interval& iv : pres.intervals()) {
    if (iv.end - iv.start < tau_) continue;  // never adjacent in this contact
    pts.push_back(iv.start);
    pts.push_back(iv.end - tau_);
  }
  return Partition(horizon_, std::move(pts), tolerance);
}

Partition TimeVaryingGraph::adjacent_partition(NodeId i,
                                               double tolerance) const {
  check_node(i);
  std::vector<Time> pts;
  for (std::size_t e : incident_[static_cast<std::size_t>(i)]) {
    const Edge& edge = edges_[e];
    for (const Interval& iv : edge.presence.intervals()) {
      if (iv.end - iv.start < tau_) continue;
      pts.push_back(iv.start);
      pts.push_back(iv.end - tau_);
    }
  }
  return Partition(horizon_, std::move(pts), tolerance);
}

ArrivalInfo TimeVaryingGraph::earliest_arrival(NodeId src, Time t0) const {
  check_node(src);
  TVEG_REQUIRE(t0 >= 0 && t0 <= horizon_, "start time outside the time span");

  ArrivalInfo info;
  info.arrival.assign(static_cast<std::size_t>(n_), support::kInf);
  info.parent.assign(static_cast<std::size_t>(n_), kNoNode);
  info.depart.assign(static_cast<std::size_t>(n_), support::kInf);
  info.arrival[static_cast<std::size_t>(src)] = t0;

  using Entry = std::pair<Time, NodeId>;  // (arrival, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  pq.emplace(t0, src);

  while (!pq.empty()) {
    const auto [at, u] = pq.top();
    pq.pop();
    if (at > info.arrival[static_cast<std::size_t>(u)]) continue;  // stale
    for (std::size_t e : incident_[static_cast<std::size_t>(u)]) {
      const Edge& edge = edges_[e];
      const NodeId v = edge.a == u ? edge.b : edge.a;
      const Time start = next_valid_start(u, v, at);
      if (start == support::kInf) continue;
      const Time arr = start + tau_;
      if (arr < info.arrival[static_cast<std::size_t>(v)]) {
        info.arrival[static_cast<std::size_t>(v)] = arr;
        info.parent[static_cast<std::size_t>(v)] = u;
        info.depart[static_cast<std::size_t>(v)] = start;
        pq.emplace(arr, v);
      }
    }
  }
  return info;
}

Journey TimeVaryingGraph::extract_journey(const ArrivalInfo& info,
                                          NodeId dst) const {
  check_node(dst);
  Journey j;
  NodeId cur = dst;
  while (info.parent[static_cast<std::size_t>(cur)] != kNoNode) {
    const NodeId p = info.parent[static_cast<std::size_t>(cur)];
    j.hops.push_back({p, cur, info.depart[static_cast<std::size_t>(cur)]});
    cur = p;
  }
  std::reverse(j.hops.begin(), j.hops.end());
  return j;
}

std::vector<NodeId> TimeVaryingGraph::reachable_set(NodeId src, Time t0,
                                                    Time deadline) const {
  const ArrivalInfo info = earliest_arrival(src, t0);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < n_; ++v)
    if (info.arrival[static_cast<std::size_t>(v)] <= deadline)
      out.push_back(v);
  return out;
}

double TimeVaryingGraph::average_degree(Time t) const {
  std::size_t adjacent_pairs = 0;
  for (const Edge& edge : edges_)
    if (adjacent(edge.a, edge.b, t)) ++adjacent_pairs;
  return 2.0 * static_cast<double>(adjacent_pairs) / static_cast<double>(n_);
}

}  // namespace tveg
