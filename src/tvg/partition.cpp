#include "tvg/partition.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tveg {

Partition::Partition(Time horizon, double tolerance)
    : horizon_(horizon), tolerance_(tolerance) {
  TVEG_REQUIRE(horizon > 0, "partition horizon must be positive");
  TVEG_REQUIRE(tolerance >= 0, "tolerance must be non-negative");
  points_ = {0.0, horizon};
}

Partition::Partition(Time horizon, std::vector<Time> points, double tolerance)
    : Partition(horizon, tolerance) {
  points.push_back(0.0);
  points.push_back(horizon);
  std::sort(points.begin(), points.end());
  std::vector<Time> cleaned;
  cleaned.reserve(points.size());
  for (Time t : points) {
    if (t < -tolerance_ || t > horizon_ + tolerance_) continue;
    t = std::clamp(t, 0.0, horizon_);
    if (cleaned.empty() || t - cleaned.back() > tolerance_)
      cleaned.push_back(t);
  }
  // Ensure the exact endpoints survive clamping/merging.
  cleaned.front() = 0.0;
  cleaned.back() = horizon_;
  points_ = std::move(cleaned);
}

bool Partition::insert(Time t) {
  if (t < -tolerance_ || t > horizon_ + tolerance_) return false;
  t = std::clamp(t, 0.0, horizon_);
  auto it = std::lower_bound(points_.begin(), points_.end(), t);
  if (it != points_.end() && *it - t <= tolerance_) return false;
  if (it != points_.begin() && t - *(it - 1) <= tolerance_) return false;
  points_.insert(it, t);
  return true;
}

bool Partition::contains(Time t) const {
  auto it = std::lower_bound(points_.begin(), points_.end(), t);
  if (it != points_.end() && *it - t <= tolerance_) return true;
  if (it != points_.begin() && t - *(it - 1) <= tolerance_) return true;
  return false;
}

std::size_t Partition::interval_index(Time t) const {
  TVEG_REQUIRE(t >= -tolerance_ && t <= horizon_ + tolerance_,
               "time outside the partition span");
  t = std::clamp(t, 0.0, horizon_);
  // Last point <= t (+tolerance to land exactly-on-point queries on their
  // own interval rather than the previous one).
  auto it = std::upper_bound(points_.begin(), points_.end(), t + tolerance_);
  TVEG_ASSERT(it != points_.begin());
  std::size_t idx = static_cast<std::size_t>(it - points_.begin()) - 1;
  if (idx + 1 == points_.size()) --idx;  // t == horizon -> last interval
  return idx;
}

Partition Partition::combine(const Partition& other) const {
  TVEG_REQUIRE(std::fabs(horizon_ - other.horizon_) <= tolerance_,
               "cannot combine partitions with different horizons");
  std::vector<Time> merged = points_;
  merged.insert(merged.end(), other.points_.begin(), other.points_.end());
  return Partition(horizon_, std::move(merged),
                   std::max(tolerance_, other.tolerance_));
}

}  // namespace tveg
