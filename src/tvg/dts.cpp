#include "tvg/dts.hpp"

#include <algorithm>
#include <deque>

#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"

namespace tveg {

namespace {

/// Sorted insert with tolerance dedup; returns true if the point was new.
bool insert_point(std::vector<Time>& pts, Time t, double tol) {
  auto it = std::lower_bound(pts.begin(), pts.end(), t);
  if (it != pts.end() && *it - t <= tol) return false;
  if (it != pts.begin() && t - *(it - 1) <= tol) return false;
  pts.insert(it, t);
  return true;
}

}  // namespace

DiscreteTimeSet DiscreteTimeSet::build(const TimeVaryingGraph& g,
                                       const DtsOptions& options) {
  obs::TraceSpan span("dts_build");
  const auto n = static_cast<std::size_t>(g.node_count());
  TVEG_REQUIRE(options.extra_points.empty() || options.extra_points.size() == n,
               "extra_points must be empty or have one entry per node");

  DiscreteTimeSet dts;
  dts.tol_ = options.tolerance;
  dts.points_.assign(n, {});

  struct Pending {
    NodeId node;
    Time t;
  };
  std::deque<Pending> worklist;

  auto add = [&](NodeId v, Time t) {
    auto& pts = dts.points_[static_cast<std::size_t>(v)];
    if (pts.size() >= options.max_points_per_node) {
      dts.truncated_ = true;
      return;
    }
    if (insert_point(pts, t, options.tolerance)) worklist.push_back({v, t});
  };

  // Seed: adjacent partitions (Eq. 9) plus caller-supplied event points.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const Partition adj = g.adjacent_partition(v, options.tolerance);
    for (Time t : adj.points()) add(v, t);
    if (!options.extra_points.empty())
      for (Time t : options.extra_points[static_cast<std::size_t>(v)])
        add(v, t);
  }

  // Fixpoint closure under +τ propagation: if v may transmit at t and u is
  // adjacent, u's status may change at t + τ and u may transmit then.
  const Time tau = g.latency();
  std::size_t propagations = 0;
  while (!worklist.empty()) {
    const auto [v, t] = worklist.front();
    worklist.pop_front();
    ++propagations;
    if (t + tau > g.horizon()) continue;
    for (NodeId u : g.neighbors_at(v, t)) add(u, t + tau);
  }

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& builds = registry.counter(obs::keys::kDtsBuilds);
  static obs::Counter& points = registry.counter(obs::keys::kDtsPoints);
  static obs::Counter& closure = registry.counter(obs::keys::kDtsClosureSteps);
  static obs::Counter& truncations = registry.counter(obs::keys::kDtsTruncations);
  builds.add(1);
  points.add(dts.total_points());
  closure.add(propagations);
  if (dts.truncated_) truncations.add(1);
  return dts;
}

const std::vector<Time>& DiscreteTimeSet::points(NodeId i) const {
  TVEG_REQUIRE(i >= 0 && static_cast<std::size_t>(i) < points_.size(),
               "node id out of range");
  return points_[static_cast<std::size_t>(i)];
}

std::size_t DiscreteTimeSet::total_points() const {
  std::size_t total = 0;
  for (const auto& pts : points_) total += pts.size();
  return total;
}

std::size_t DiscreteTimeSet::lower_bound(NodeId i, Time t) const {
  const auto& pts = points(i);
  auto it = std::lower_bound(pts.begin(), pts.end(), t - tol_);
  return static_cast<std::size_t>(it - pts.begin());
}

bool DiscreteTimeSet::contains(NodeId i, Time t) const {
  const auto& pts = points(i);
  const std::size_t k = lower_bound(i, t);
  return k < pts.size() && std::abs(pts[k] - t) <= tol_;
}

std::vector<Time> DiscreteTimeSet::global_points() const {
  std::vector<Time> all;
  all.reserve(total_points());
  for (const auto& pts : points_) all.insert(all.end(), pts.begin(), pts.end());
  std::sort(all.begin(), all.end());
  std::vector<Time> out;
  out.reserve(all.size());
  for (Time t : all)
    if (out.empty() || t - out.back() > tol_) out.push_back(t);
  return out;
}

}  // namespace tveg
