// Time-span partitions (paper Def. 5.1) and their combination operator
// (Eq. 8): the machinery behind adjacent partitions and the DTS.
#pragma once

#include <initializer_list>
#include <vector>

#include "tvg/types.hpp"

namespace tveg {

/// A partition of the time span [0, horizon]: a strictly increasing sequence
/// of time points t_0 = 0 < t_1 < ... < t_m = horizon. Points closer than
/// `tolerance` are considered identical (time points arise from +τ floating
/// arithmetic).
class Partition {
 public:
  /// The trivial partition {0, horizon}.
  Partition(Time horizon, double tolerance = 1e-9);
  /// Builds from arbitrary points; 0 and horizon are inserted, points outside
  /// [0, horizon] are discarded, near-duplicates are merged.
  Partition(Time horizon, std::vector<Time> points, double tolerance = 1e-9);
  /// Braced-list convenience; without it, `Partition(h, {3.0})` would bind
  /// the single-element list to the tolerance overload above.
  Partition(Time horizon, std::initializer_list<Time> points,
            double tolerance = 1e-9)
      : Partition(horizon, std::vector<Time>(points), tolerance) {}

  Time horizon() const { return horizon_; }
  double tolerance() const { return tolerance_; }
  const std::vector<Time>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  /// Inserts one point (no-op if within tolerance of an existing point).
  /// Returns true if the partition changed.
  bool insert(Time t);

  /// True if t coincides (within tolerance) with a partition point.
  bool contains(Time t) const;

  /// Index k such that t ∈ [t_k, t_{k+1}); requires 0 <= t <= horizon (the
  /// final point maps to the last interval).
  std::size_t interval_index(Time t) const;

  /// Left endpoint of the interval containing t — the ET-law candidate
  /// transmission time (Prop. 5.1).
  Time interval_start(Time t) const { return points_[interval_index(t)]; }

  /// Combination P1 ∪ P2 (Eq. 8): ordered union of the two point sets.
  Partition combine(const Partition& other) const;

  bool operator==(const Partition& other) const {
    return horizon_ == other.horizon_ && points_ == other.points_;
  }

 private:
  Time horizon_;
  double tolerance_;
  std::vector<Time> points_;
};

}  // namespace tveg
