#include "tvg/journeys.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"
#include "support/math.hpp"
#include "tvg/dts.hpp"

namespace tveg {

using support::kInf;

HopInfo min_hop_journeys(const TimeVaryingGraph& g, NodeId src, Time t0) {
  const auto n = static_cast<std::size_t>(g.node_count());
  TVEG_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < n,
               "source out of range");
  TVEG_REQUIRE(t0 >= 0 && t0 <= g.horizon(), "start time out of range");

  HopInfo info;
  info.hops.assign(n, -1);
  info.hops[static_cast<std::size_t>(src)] = 0;

  // Bellman–Ford over hop counts with "earliest arrival within <= h hops"
  // labels: an earlier arrival dominates (its valid start times are a
  // superset), so one time label per (node, hop bound) suffices. hops[v]
  // is the first round in which v's label becomes finite.
  std::vector<Time> arr(n, kInf);       // earliest arrival within <= h hops
  info.arrival.assign(n, kInf);         // snapshot at each node's min layer
  arr[static_cast<std::size_t>(src)] = t0;
  info.arrival[static_cast<std::size_t>(src)] = t0;
  for (int hop = 1; hop <= g.node_count(); ++hop) {
    const std::vector<Time> prev = arr;
    bool changed = false;
    for (std::size_t e = 0; e < g.edge_count(); ++e) {
      const auto [a, b] = g.edge_nodes(e);
      for (const auto& [u, v] : {std::pair{a, b}, std::pair{b, a}}) {
        const auto ui = static_cast<std::size_t>(u);
        const auto vi = static_cast<std::size_t>(v);
        if (prev[ui] == kInf) continue;
        const Time start = g.next_valid_start(u, v, prev[ui]);
        if (start == kInf) continue;
        const Time at = start + g.latency();
        if (at < arr[vi]) {
          arr[vi] = at;
          changed = true;
          if (info.hops[vi] == -1) info.hops[vi] = hop;
          // Record the arrival achievable at the node's own minimum layer;
          // deeper layers keep improving the internal label only.
          if (info.hops[vi] == hop) info.arrival[vi] = at;
        }
      }
    }
    if (!changed) break;
  }
  return info;
}

std::vector<Time> latest_departures(const TimeVaryingGraph& g, NodeId dst,
                                    Time deadline) {
  const auto n = static_cast<std::size_t>(g.node_count());
  TVEG_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < n,
               "destination out of range");
  TVEG_REQUIRE(deadline > 0 && deadline <= g.horizon(),
               "deadline out of range");

  std::vector<Time> latest(n, -kInf);
  latest[static_cast<std::size_t>(dst)] = deadline;

  // Max-Dijkstra backwards in time: pop the node with the LARGEST holding
  // deadline; relax each neighbor u — u may forward to v no later than the
  // last valid start whose arrival meets v's deadline.
  using Entry = std::pair<Time, NodeId>;
  std::priority_queue<Entry> pq;
  pq.emplace(deadline, dst);
  while (!pq.empty()) {
    const auto [lt, v] = pq.top();
    pq.pop();
    if (lt < latest[static_cast<std::size_t>(v)]) continue;  // stale
    for (std::size_t e : g.incident_edges(v)) {
      const auto [a, b] = g.edge_nodes(e);
      const NodeId u = a == v ? b : a;
      const Time start = g.last_valid_start(u, v, lt);
      if (start == -kInf) continue;
      if (start > latest[static_cast<std::size_t>(u)]) {
        latest[static_cast<std::size_t>(u)] = start;
        pq.emplace(start, u);
      }
    }
  }
  return latest;
}

FastestJourney fastest_journey(const TimeVaryingGraph& g, NodeId src,
                               NodeId dst, Time t0, double slack) {
  const auto n = static_cast<std::size_t>(g.node_count());
  TVEG_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < n &&
                   dst >= 0 && static_cast<std::size_t>(dst) < n,
               "node out of range");
  TVEG_REQUIRE(slack > 0, "slack must be positive");

  // Candidate departures: the source's DTS points (the breakpoints of the
  // piecewise-constant earliest-arrival function) and a point `slack`
  // before each (the right-limit of the previous piece, where duration is
  // minimized).
  const DiscreteTimeSet dts = DiscreteTimeSet::build(g);
  std::vector<Time> candidates{t0};
  for (Time p : dts.points(src)) {
    if (p < t0) continue;
    candidates.push_back(p);
    if (p - slack > t0) candidates.push_back(p - slack);
  }
  std::sort(candidates.begin(), candidates.end());

  FastestJourney best;
  for (Time s : candidates) {
    if (s > g.horizon()) break;
    const ArrivalInfo info = g.earliest_arrival(src, s);
    const Time arr = info.arrival[static_cast<std::size_t>(dst)];
    if (arr == kInf) continue;
    const Journey j = g.extract_journey(info, dst);
    // The packet "leaves" src at the first hop's departure, not at s.
    const Time departure = j.empty() ? s : j.departure();
    const Time duration = arr - departure;
    if (!best.exists || duration < best.duration()) {
      best.exists = true;
      best.departure = departure;
      best.arrival = arr;
      best.journey = j;
    }
  }
  return best;
}

std::vector<std::vector<char>> reachability_matrix(const TimeVaryingGraph& g,
                                                   Time t0, Time deadline) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::vector<char>> r(n, std::vector<char>(n, 0));
  for (NodeId i = 0; i < g.node_count(); ++i) {
    const ArrivalInfo info = g.earliest_arrival(i, t0);
    for (NodeId j = 0; j < g.node_count(); ++j)
      r[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          info.arrival[static_cast<std::size_t>(j)] <= deadline ? 1 : 0;
  }
  return r;
}

}  // namespace tveg
