// Disjoint-interval algebra over continuous time.
//
// An IntervalSet is a normalized (sorted, disjoint, non-empty) union of
// half-open intervals [start, end). It is the representation of the paper's
// presence function ρ(e, ·) for one edge: ρ(e,t) = 1 iff t lies in the set.
#pragma once

#include <vector>

#include "tvg/types.hpp"

namespace tveg {

/// One half-open interval [start, end); invariant start < end.
struct Interval {
  Time start;
  Time end;

  Time length() const { return end - start; }
  bool contains(Time t) const { return start <= t && t < end; }
  bool operator==(const Interval&) const = default;
};

/// Normalized union of disjoint half-open intervals, the presence set of an
/// edge over the time span.
class IntervalSet {
 public:
  IntervalSet() = default;
  /// Builds from arbitrary (possibly overlapping, unsorted) intervals.
  explicit IntervalSet(std::vector<Interval> intervals);

  /// Adds [start, end), merging with any overlapping or touching intervals.
  /// Empty or inverted inputs are rejected.
  void add(Time start, Time end);

  bool empty() const { return intervals_.empty(); }
  std::size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// ρ(e, t): membership of a single point.
  bool contains(Time t) const;

  /// ρ_τ-style query: true iff the closed interval [a, b] lies inside the
  /// closure of one member interval (b may equal a member's right endpoint —
  /// a transmission may finish exactly when the contact ends).
  bool covers_closed(Time a, Time b) const;

  /// Total measure of the set.
  Time total_length() const;

  /// Set union.
  IntervalSet unite(const IntervalSet& other) const;
  /// Set intersection.
  IntervalSet intersect(const IntervalSet& other) const;
  /// Complement within [lo, hi).
  IntervalSet complement(Time lo, Time hi) const;

  /// The set of valid transmission start times for edge-traversal latency
  /// tau: { t : covers_closed(t, t+tau) }, i.e. each [s, e) shrinks to
  /// [s, e - tau] (dropped if degenerate, kept as [s, e - tau) + closed right
  /// endpoint semantics handled by covers_closed at query time).
  IntervalSet shrink_right(Time tau) const;

  /// All interval endpoints in ascending order (starts and ends interleaved).
  std::vector<Time> boundary_points() const;

  /// First member point at or after t, or +inf if none ( = t if contained).
  Time next_point_in(Time t) const;

  bool operator==(const IntervalSet&) const = default;

 private:
  void normalize();
  std::vector<Interval> intervals_;
};

}  // namespace tveg
