// Discrete time set construction (paper Sec. V).
//
// The DTS restricts the continuous-time TMEDB problem to finitely many
// candidate transmission times per node without losing optimality
// (Theorem 5.2). Each node's discrete time partition is the combination of
// its adjacent partition (contact boundary points, Eq. 9) and a status
// partition: the closure of all points under "+τ propagation" — if v_i may
// transmit at t and v_j is adjacent, v_j's status may change at t + τ, so
// v_j may itself transmit at t + τ (the cascade of Fig. 2).
#pragma once

#include <cstddef>
#include <vector>

#include "tvg/time_varying_graph.hpp"
#include "tvg/types.hpp"

namespace tveg {

/// Knobs for DTS construction.
struct DtsOptions {
  /// Two time points closer than this are identified.
  double tolerance = 1e-9;
  /// Hard cap on points per node; construction records truncation instead of
  /// running away on pathological τ/contact combinations.
  std::size_t max_points_per_node = 50000;
  /// Additional per-node event points to seed with (e.g. channel-parameter
  /// breakpoints, so that every DTS interval also has a constant channel).
  /// Either empty or indexed by node.
  std::vector<std::vector<Time>> extra_points;
};

/// The DTS D_V = {P_1^di, ..., P_N^di}: one sorted point vector per node.
class DiscreteTimeSet {
 public:
  /// Builds the DTS of `g` by fixpoint closure (Def. 5.2).
  static DiscreteTimeSet build(const TimeVaryingGraph& g,
                               const DtsOptions& options = {});

  NodeId node_count() const { return static_cast<NodeId>(points_.size()); }
  /// P_i^di as a sorted vector (first point 0, last point horizon).
  const std::vector<Time>& points(NodeId i) const;
  /// Σ_i |P_i^di|.
  std::size_t total_points() const;
  /// True if any node hit max_points_per_node during construction.
  bool truncated() const { return truncated_; }
  double tolerance() const { return tol_; }

  /// Index of the first point of node i at or after t - tolerance
  /// ( == points(i).size() when none).
  std::size_t lower_bound(NodeId i, Time t) const;

  /// True if t coincides (within tolerance) with one of node i's points.
  bool contains(NodeId i, Time t) const;

  /// Sorted union of all nodes' points (deduplicated) — the global event
  /// timeline used by the chronological GREED/RAND sweeps.
  std::vector<Time> global_points() const;

 private:
  std::vector<std::vector<Time>> points_;
  double tol_ = 1e-9;
  bool truncated_ = false;
};

}  // namespace tveg
