// Deterministic time-varying graph (paper Sec. III-A).
//
// A TimeVaryingGraph is the tuple (V, E, T, ρ, ζ) with a deterministic
// presence function ρ (edges exist on unions of contact intervals) and a
// constant latency function ζ(e, t) = τ. It supports the temporal queries
// the TMEDB algorithms need: adjacency under latency (ρ_τ), adjacent
// partitions (Eq. 9), and foremost (earliest-arrival) journeys.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tvg/interval_set.hpp"
#include "tvg/partition.hpp"
#include "tvg/types.hpp"

namespace tveg {

/// One hop of a journey: edge (from → to) traversed starting at `depart`,
/// arriving at `depart + τ` (Def. 3.1).
struct JourneyHop {
  NodeId from;
  NodeId to;
  Time depart;
};

/// A journey: time-respecting path; hops[l+1].depart >= hops[l].depart + τ.
struct Journey {
  std::vector<JourneyHop> hops;

  bool empty() const { return hops.empty(); }
  std::size_t topological_length() const { return hops.size(); }
  /// departure(J) — start time of the first hop.
  Time departure() const;
  /// arrival(J) given latency tau — end time of the last hop.
  Time arrival(Time tau) const;
};

/// Earliest-arrival information from a single temporal-Dijkstra run.
struct ArrivalInfo {
  /// arrival[v] = earliest time v can hold the packet (+inf if unreachable).
  std::vector<Time> arrival;
  /// parent[v] = predecessor on a foremost journey (kNoNode for source or
  /// unreachable nodes).
  std::vector<NodeId> parent;
  /// depart[v] = departure time of the final hop into v.
  std::vector<Time> depart;
};

/// Deterministic continuous-time TVG with constant edge-traversal latency.
class TimeVaryingGraph {
 public:
  /// Creates a graph over nodes 0..n-1, time span [0, horizon], latency tau.
  TimeVaryingGraph(NodeId n, Time horizon, Time tau);

  NodeId node_count() const { return n_; }
  Time horizon() const { return horizon_; }
  /// ζ(e, t) = τ for all edges and times.
  Time latency() const { return tau_; }

  /// Registers a contact: ρ(e_{a,b}, t) = 1 for t in [start, end). Contacts
  /// may overlap; they are merged. Self-loops are rejected.
  void add_contact(NodeId a, NodeId b, Time start, Time end);

  std::size_t edge_count() const { return edges_.size(); }
  /// Endpoints of the e-th registered edge (a < b).
  std::pair<NodeId, NodeId> edge_nodes(std::size_t e) const;
  /// Presence set of the e-th registered edge.
  const IntervalSet& edge_presence(std::size_t e) const;
  /// Edge ids incident to node i.
  const std::vector<std::size_t>& incident_edges(NodeId i) const;

  bool has_edge(NodeId a, NodeId b) const;
  /// Dense edge id of pair (a, b), or SIZE_MAX when no edge exists.
  std::size_t edge_id(NodeId a, NodeId b) const;
  /// Presence set of pair (a, b); the empty set when no edge exists.
  const IntervalSet& presence(NodeId a, NodeId b) const;
  /// ρ(e_{a,b}, t).
  bool present(NodeId a, NodeId b, Time t) const;
  /// ρ_τ(e_{a,b}, t): the pair is connected throughout [t, t + τ].
  bool adjacent(NodeId a, NodeId b, Time t) const;
  /// All nodes adjacent (under ρ_τ) to i at time t.
  std::vector<NodeId> neighbors_at(NodeId i, Time t) const;

  /// Earliest valid transmission start >= t on pair (a, b): the smallest
  /// t* >= t with ρ_τ(e_{a,b}, t*) = 1, or +inf if none before the horizon.
  Time next_valid_start(NodeId a, NodeId b, Time t) const;

  /// Latest valid transmission start on pair (a, b) whose traversal
  /// completes by `latest_arrival`: the largest t* with ρ_τ(e_{a,b}, t*) = 1
  /// and t* + τ <= latest_arrival, or -inf if none.
  Time last_valid_start(NodeId a, NodeId b, Time latest_arrival) const;

  /// Pair partition P^ad_{i,j}: boundary points of (a, b)'s adjacency
  /// intervals as a Partition of [0, horizon].
  Partition pair_partition(NodeId a, NodeId b, double tolerance = 1e-9) const;

  /// Adjacent partition P^ad_i = ∪_j P^ad_{i,j} (Eq. 9).
  Partition adjacent_partition(NodeId i, double tolerance = 1e-9) const;

  /// Foremost-journey search (temporal Dijkstra) from src holding the packet
  /// at time t0.
  ArrivalInfo earliest_arrival(NodeId src, Time t0) const;

  /// Extracts a foremost journey src→dst from an earliest_arrival result;
  /// empty journey if dst is the source or unreachable.
  Journey extract_journey(const ArrivalInfo& info, NodeId dst) const;

  /// Nodes v with arrival[v] <= deadline when the packet starts at src, t0.
  std::vector<NodeId> reachable_set(NodeId src, Time t0, Time deadline) const;

  /// Average node degree at time t under ρ_τ adjacency.
  double average_degree(Time t) const;

 private:
  std::size_t edge_index(NodeId a, NodeId b) const;  // npos when absent
  static std::uint64_t pair_key(NodeId a, NodeId b);
  void check_node(NodeId v) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  NodeId n_;
  Time horizon_;
  Time tau_;
  struct Edge {
    NodeId a, b;  // a < b
    IntervalSet presence;
  };
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, std::size_t> edge_lookup_;
  std::vector<std::vector<std::size_t>> incident_;
  IntervalSet empty_set_;
};

}  // namespace tveg
