// Fundamental identifiers and scalar types for the temporal-graph layer.
#pragma once

#include <cstdint>

namespace tveg {

/// Node identifier; nodes are dense 0..N-1.
using NodeId = std::int32_t;

/// Continuous time in seconds (the paper's T = R+ temporal domain).
using Time = double;

/// Transmit energy cost (the paper's w ∈ W).
using Cost = double;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = -1;

}  // namespace tveg
