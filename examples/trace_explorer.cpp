// Scenario: exploring a contact trace before scheduling on it.
//
// Shows the analysis surface of the temporal-graph substrate: degree over
// time, inter-contact-time CCDF (the statistic that makes human-contact
// traces "Haggle-like"), temporal reachability, and foremost journeys.
//
// Usage:  ./build/examples/trace_explorer [trace-file]
// With no argument a Haggle-like trace is generated in memory.
#include <iostream>

#include "support/stats.hpp"
#include "support/table.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "tvg/time_varying_graph.hpp"

int main(int argc, char** argv) {
  using namespace tveg;

  const trace::ContactTrace contacts = [&] {
    if (argc > 1) return trace::read_trace_file(argv[1]);
    trace::HaggleLikeConfig cfg;
    cfg.nodes = 20;
    cfg.horizon = 17000;
    cfg.seed = 99;
    return trace::generate_haggle_like(cfg);
  }();

  std::cout << "trace: " << contacts.node_count() << " nodes, "
            << contacts.contact_count() << " contacts, "
            << contacts.pair_count() << " pairs, horizon "
            << contacts.horizon() << " s\n\n";

  // Degree over time (Fig. 7's x-axis companion).
  {
    support::Table table({"time_s", "avg_degree"});
    for (int i = 0; i <= 10; ++i) {
      const Time t = contacts.horizon() * i / 10.0;
      table.add_row({support::Table::fmt(t, 0),
                     support::Table::fmt(contacts.average_degree(t), 2)});
    }
    std::cout << "average degree over time:\n";
    table.print(std::cout);
  }

  // Inter-contact time CCDF — heavy tail is the Haggle signature.
  {
    const auto gaps = contacts.inter_contact_times();
    support::Histogram hist(0.0, 4000.0, 8);
    for (Time g : gaps) hist.add(g);
    const auto ccdf = hist.ccdf();
    support::Table table({"gap_s", "P(gap >= x)"});
    for (std::size_t b = 0; b < hist.bin_count(); ++b)
      table.add_row({support::Table::fmt(hist.bin_center(b), 0),
                     support::Table::fmt(ccdf[b], 3)});
    std::cout << "\ninter-contact CCDF (" << gaps.size() << " gaps):\n";
    table.print(std::cout);
  }

  // Temporal reachability and a foremost journey.
  {
    const TimeVaryingGraph g = contacts.to_graph(/*tau=*/0.0);
    const ArrivalInfo info = g.earliest_arrival(0, 0.0);
    NodeId farthest = 0;
    for (NodeId v = 0; v < g.node_count(); ++v)
      if (info.arrival[v] < info.arrival[farthest] * 0 + 1e300 &&
          info.arrival[v] > info.arrival[farthest] &&
          info.arrival[v] < 1e300)
        farthest = v;
    std::cout << "\nreachable from node 0 by horizon: "
              << g.reachable_set(0, 0.0, g.horizon()).size() << "/"
              << g.node_count() << " nodes\n";
    const Journey j = g.extract_journey(info, farthest);
    std::cout << "foremost journey to the last-reached node (" << farthest
              << "), arrival " << info.arrival[farthest] << " s:\n";
    for (const JourneyHop& hop : j.hops)
      std::cout << "  " << hop.from << " -> " << hop.to << " departing at "
                << hop.depart << " s\n";
  }
  return 0;
}
