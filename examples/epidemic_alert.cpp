// Scenario: emergency alert dissemination at a conference.
//
// The intro's motivating workload: a packet (an alert) must reach every
// attendee's device within a delay budget, over a human-contact network —
// Bluetooth-class links that exist only while people are near each other,
// and whose channels fade. Compares the static-design pipeline (EEDCB,
// cheap but fragile under fading) against the fading-resistant pipeline
// (FR-EEDCB) on a Haggle-like synthetic conference trace.
//
// Build & run:  ./build/examples/epidemic_alert
#include <iostream>

#include "sim/experiment.hpp"
#include "support/table.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace tveg;

  trace::HaggleLikeConfig cfg;
  cfg.nodes = 20;            // attendees
  cfg.horizon = 17000;       // ~4.7 h of conference time
  cfg.pair_probability = 0.45;
  cfg.activation_ramp_end = 500;  // everyone is mingling from the start
  cfg.seed = 2026;
  const auto contacts = trace::generate_haggle_like(cfg);
  std::cout << "conference trace: " << contacts.contact_count()
            << " contacts between " << contacts.node_count()
            << " attendees over " << contacts.horizon() << " s\n\n";

  const sim::Workbench bench(contacts, sim::paper_radio());
  const NodeId alert_origin = 3;

  support::Table table({"deadline_s", "algorithm", "energy(norm)",
                        "delivery_under_fading", "transmissions"});

  for (Time deadline : {1500.0, 3000.0, 6000.0}) {
    for (sim::Algorithm algo :
         {sim::Algorithm::kEedcb, sim::Algorithm::kFrEedcb}) {
      const auto outcome = bench.run(algo, alert_origin, deadline);
      if (!outcome.covered_all) {
        table.add_row({support::Table::fmt(deadline, 0),
                       sim::algorithm_name(algo), "-", "unreachable", "-"});
        continue;
      }
      const auto delivery = bench.delivery_under_fading(
          alert_origin, outcome.schedule, {.trials = 2000, .seed = 7});
      table.add_row(
          {support::Table::fmt(deadline, 0), sim::algorithm_name(algo),
           support::Table::fmt(outcome.normalized_energy, 1),
           support::Table::fmt(delivery.mean_delivery_ratio, 3),
           support::Table::fmt(static_cast<double>(outcome.schedule.size()),
                               0)});
    }
  }

  table.print(std::cout);
  std::cout << "\nReading: EEDCB's schedules assume links are deterministic "
               "— under Rayleigh fading\nmost attendees never get the alert. "
               "FR-EEDCB spends more energy and delivers to\n(nearly) "
               "everyone. Looser deadlines make both cheaper: the scheduler "
               "can wait for\nmoments when one transmission reaches many "
               "neighbors.\n";
  return 0;
}
