// Quickstart — the library in ~60 lines:
//  1. describe a small time-varying network as contacts,
//  2. wrap it in a TVEG (step channel),
//  3. ask EEDCB for a minimum-energy delay-constrained broadcast schedule,
//  4. verify it and print it.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/eedcb.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace tveg;

  // A 5-node network over a 100 s span. Node 0 meets 1 and 2 early; node 2
  // meets 3 mid-span; node 3 meets 4 late. Distances in meters.
  trace::ContactTrace contacts(/*node_count=*/5, /*horizon=*/100.0);
  contacts.add({0, 1, 0.0, 40.0, 2.0});
  contacts.add({0, 2, 5.0, 35.0, 4.0});
  contacts.add({2, 3, 40.0, 70.0, 3.0});
  contacts.add({3, 4, 65.0, 95.0, 2.5});
  contacts.sort();

  // The paper's radio parameters (N0 = 4.32e-21 W/Hz, γ_th = 25.9 dB,
  // α = 2, ε = 0.01) and a deterministic (step) channel.
  const core::Tveg tveg(contacts, sim::paper_radio(),
                        {.model = channel::ChannelModel::kStep});

  // Broadcast from node 0; everyone must be informed within 90 s.
  const core::TmedbInstance instance{&tveg, /*source=*/0, /*deadline=*/90.0};

  const core::SchedulerResult result = run_eedcb(instance);
  if (!result.covered_all) {
    std::cerr << "no schedule reaches every node by the deadline\n";
    return 1;
  }

  std::cout << "EEDCB schedule:\n" << result.schedule << "\n\n";

  const auto report = check_feasibility(instance, result.schedule);
  std::cout << "feasible:            " << (report.feasible ? "yes" : "no")
            << "\n"
            << "normalized energy:   "
            << normalized_energy(instance, result.schedule) << "\n"
            << "broadcast completes: " << result.schedule.latest_finish(0.0)
            << " s\n";

  // Per-node uninformed probabilities at the deadline (all 0 on a step
  // channel when the schedule is feasible).
  const auto p = uninformed_probabilities(instance, result.schedule, 90.0);
  std::cout << "p_uninformed at T:  ";
  for (double v : p) std::cout << ' ' << v;
  std::cout << '\n';
  return report.feasible ? 0 : 1;
}
