// Scenario: planning a broadcast before committing to a deadline.
//
// Three planning questions answered by the temporal-graph APIs, on a
// duty-cycled sensor field:
//   1. What is the earliest time a broadcast from the gateway can possibly
//      complete? (foremost journeys — no deadline below this is feasible)
//   2. How long may the gateway hold a fresh packet and still meet a given
//      deadline? (latest departures, run backwards from each node)
//   3. What does the full delay-energy tradeoff look like? (EEDCB sweep)
//
// Build & run:  ./build/examples/deadline_planning
#include <algorithm>
#include <iostream>

#include "core/tradeoff.hpp"
#include "sim/experiment.hpp"
#include "support/table.hpp"
#include "trace/generators.hpp"
#include "tvg/journeys.hpp"

int main() {
  using namespace tveg;

  trace::DutyCycleConfig cfg;
  cfg.nodes = 20;
  cfg.area = 55.0;
  cfg.comm_range = 22.0;
  cfg.period = 150.0;
  cfg.duty = 0.35;
  cfg.horizon = 3600.0;
  cfg.seed = 17;
  const auto contacts = trace::generate_duty_cycle(cfg);
  const core::Tveg tveg(contacts, sim::paper_radio(),
                        {.model = channel::ChannelModel::kStep});
  const NodeId gateway = 0;

  // 1. Earliest possible completion.
  const core::TmedbInstance probe{&tveg, gateway, cfg.horizon};
  const Time floor = core::earliest_completion(probe);
  std::cout << "earliest possible broadcast completion from gateway "
            << gateway << ": " << floor << " s\n\n";

  // 2. Latest departures: for a chosen deadline, how much slack does each
  // node have to deliver BACK to the gateway (e.g. an acknowledgment)?
  const Time ack_deadline = std::min(cfg.horizon, floor + 1200.0);
  const auto latest = latest_departures(tveg.graph(), gateway, ack_deadline);
  support::Table slack({"node", "latest_holding_time_s", "slack_s"});
  for (NodeId v = 1; v < std::min<NodeId>(tveg.node_count(), 8); ++v) {
    const bool ok = latest[static_cast<std::size_t>(v)] > 0;
    slack.add_row({support::Table::fmt(v, 0),
                   ok ? support::Table::fmt(latest[v], 0) : "never",
                   ok ? support::Table::fmt(ack_deadline - latest[v], 0)
                      : "-"});
  }
  std::cout << "latest time each node may still start an ack journey to the "
               "gateway\n(deadline "
            << ack_deadline << " s):\n";
  slack.print(std::cout);

  // 3. Delay-energy tradeoff.
  const Time from = std::max(300.0, floor * 0.8);
  const core::TradeoffCurve curve =
      delay_energy_tradeoff(probe, from, std::min(cfg.horizon, floor + 1800),
                            300.0);
  support::Table table({"deadline_s", "feasible", "energy(norm)",
                        "transmissions"});
  for (const core::TradeoffPoint& p : curve.points)
    table.add_row(
        {support::Table::fmt(p.deadline, 0), p.feasible ? "yes" : "no",
         p.feasible ? support::Table::fmt(p.normalized_energy, 1) : "-",
         p.feasible
             ? support::Table::fmt(static_cast<double>(p.transmissions), 0)
             : "-"});
  std::cout << "\ndelay-energy tradeoff (EEDCB):\n";
  table.print(std::cout);
  std::cout << "\nReading: nothing below " << curve.earliest_completion
            << " s is feasible at any energy; beyond it, every extra bit of "
               "patience buys energy.\n";
  return 0;
}
