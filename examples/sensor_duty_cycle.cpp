// Scenario: firmware broadcast in a duty-cycled sensor field.
//
// The paper's second motivating setting: sensor links exist only while both
// endpoints are awake. A base station (node 0) must broadcast a command to
// the whole field within a deadline. This example sweeps the duty cycle and
// shows the energy/latency price of sleeping more — and how the DTS size
// (the scheduler's search space) scales with wake-up structure.
//
// Build & run:  ./build/examples/sensor_duty_cycle
#include <iostream>

#include "core/eedcb.hpp"
#include "sim/experiment.hpp"
#include "support/table.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace tveg;

  support::Table table({"duty", "contacts", "dts_points", "covered",
                        "energy(norm)", "latency_s"});

  for (double duty : {0.15, 0.3, 0.5, 0.8}) {
    trace::DutyCycleConfig cfg;
    cfg.nodes = 25;
    cfg.area = 60.0;
    cfg.comm_range = 22.0;
    cfg.period = 120.0;
    cfg.duty = duty;
    cfg.horizon = 3600.0;
    cfg.seed = 42;
    const auto contacts = trace::generate_duty_cycle(cfg);

    const core::Tveg tveg(contacts, sim::paper_radio(),
                          {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance instance{&tveg, 0, 1800.0};
    const auto result = run_eedcb(instance);

    table.add_row(
        {support::Table::fmt(duty, 2),
         support::Table::fmt(static_cast<double>(contacts.contact_count()), 0),
         support::Table::fmt(static_cast<double>(result.stats.dts_points), 0),
         result.covered_all ? "yes" : "no",
         result.covered_all
             ? support::Table::fmt(normalized_energy(instance,
                                                     result.schedule), 1)
             : "-",
         result.covered_all
             ? support::Table::fmt(result.schedule.latest_finish(0.0), 0)
             : "-"});
  }

  table.print(std::cout);
  std::cout << "\nReading: lower duty cycles mean fewer, shorter link "
               "windows — the broadcast\nneeds more (and farther) "
               "transmissions to finish in time, or fails outright.\n";
  return 0;
}
