// Scenario: choosing a fading model (paper footnote 1 extensions).
//
// Compares the Rayleigh, Nakagami-m and Rician ED-functions on the same
// link budget: failure probability vs transmit cost, and the ε-cost each
// model demands. Then runs FR-EEDCB under each model on the same trace to
// show how line-of-sight (Rician K, Nakagami m) cuts the energy bill.
//
// Build & run:  ./build/examples/fading_models
#include <iostream>
#include <memory>

#include "channel/ed_function.hpp"
#include "core/fr.hpp"
#include "sim/experiment.hpp"
#include "support/table.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace tveg;
  const auto radio = sim::paper_radio();
  const double beta = radio.rayleigh_beta(/*distance=*/5.0);

  // Failure probability vs cost (in multiples of β) per model.
  {
    channel::RayleighEdFunction rayleigh(beta);
    channel::NakagamiEdFunction nakagami(3.0, beta);
    channel::RicianEdFunction rician(6.0, beta);
    support::Table table(
        {"cost/beta", "rayleigh", "nakagami(m=3)", "rician(K=6)"});
    for (double m : {0.5, 1.0, 2.0, 5.0, 20.0, 100.0}) {
      const Cost w = m * beta;
      table.add_row({support::Table::fmt(m, 1),
                     support::Table::fmt(rayleigh.failure_probability(w), 4),
                     support::Table::fmt(nakagami.failure_probability(w), 4),
                     support::Table::fmt(rician.failure_probability(w), 4)});
    }
    std::cout << "failure probability at distance 5 m:\n";
    table.print(std::cout);

    support::Table cost_table({"model", "eps_cost/beta"});
    cost_table.add_row(
        {"rayleigh",
         support::Table::fmt(rayleigh.min_cost_for(0.01) / beta, 1)});
    cost_table.add_row(
        {"nakagami(m=3)",
         support::Table::fmt(nakagami.min_cost_for(0.01) / beta, 1)});
    cost_table.add_row(
        {"rician(K=6)",
         support::Table::fmt(rician.min_cost_for(0.01) / beta, 1)});
    std::cout << "\nsingle-hop cost for 99% decoding:\n";
    cost_table.print(std::cout);
  }

  // FR-EEDCB under each model on one trace.
  {
    trace::HaggleLikeConfig cfg;
    cfg.nodes = 12;
    cfg.horizon = 8000;
    cfg.activation_ramp_end = 500;
    cfg.pair_probability = 0.6;
    cfg.seed = 5;
    const auto contacts = trace::generate_haggle_like(cfg);

    support::Table table({"channel", "energy(norm)", "feasible"});
    const struct {
      const char* name;
      channel::ChannelModel model;
    } models[] = {
        {"rayleigh", channel::ChannelModel::kRayleigh},
        {"nakagami(m=2)", channel::ChannelModel::kNakagami},
        {"rician(K=3)", channel::ChannelModel::kRician},
    };
    for (const auto& m : models) {
      const core::Tveg tveg(contacts, radio, {.model = m.model});
      const core::TmedbInstance inst{&tveg, 0, 6000.0};
      const auto r = run_fr_eedcb(inst);
      table.add_row({m.name,
                     support::Table::fmt(normalized_energy(inst, r.schedule()),
                                         1),
                     r.feasible() ? "yes" : "no"});
    }
    std::cout << "\nFR-EEDCB energy under different fading models:\n";
    table.print(std::cout);
    std::cout << "\nReading: diversity (Nakagami m > 1) and a line-of-sight "
                 "component (Rician K > 0)\nmake deep fades rarer, so the "
                 "same delivery guarantee costs less energy.\n";
  }
  return 0;
}
