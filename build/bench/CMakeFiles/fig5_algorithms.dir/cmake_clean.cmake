file(REMOVE_RECURSE
  "CMakeFiles/fig5_algorithms.dir/fig5_algorithms.cpp.o"
  "CMakeFiles/fig5_algorithms.dir/fig5_algorithms.cpp.o.d"
  "fig5_algorithms"
  "fig5_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
