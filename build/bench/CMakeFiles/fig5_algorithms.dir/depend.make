# Empty dependencies file for fig5_algorithms.
# This may be replaced when dependencies are built.
