file(REMOVE_RECURSE
  "CMakeFiles/ablation_power_expansion.dir/ablation_power_expansion.cpp.o"
  "CMakeFiles/ablation_power_expansion.dir/ablation_power_expansion.cpp.o.d"
  "ablation_power_expansion"
  "ablation_power_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
