# Empty dependencies file for ablation_power_expansion.
# This may be replaced when dependencies are built.
