# Empty dependencies file for approx_quality.
# This may be replaced when dependencies are built.
