file(REMOVE_RECURSE
  "CMakeFiles/approx_quality.dir/approx_quality.cpp.o"
  "CMakeFiles/approx_quality.dir/approx_quality.cpp.o.d"
  "approx_quality"
  "approx_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
