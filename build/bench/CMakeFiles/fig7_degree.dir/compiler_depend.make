# Empty compiler generated dependencies file for fig7_degree.
# This may be replaced when dependencies are built.
