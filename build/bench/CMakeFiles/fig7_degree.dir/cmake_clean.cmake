file(REMOVE_RECURSE
  "CMakeFiles/fig7_degree.dir/fig7_degree.cpp.o"
  "CMakeFiles/fig7_degree.dir/fig7_degree.cpp.o.d"
  "fig7_degree"
  "fig7_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
