file(REMOVE_RECURSE
  "CMakeFiles/fig6_fading.dir/fig6_fading.cpp.o"
  "CMakeFiles/fig6_fading.dir/fig6_fading.cpp.o.d"
  "fig6_fading"
  "fig6_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
