# Empty compiler generated dependencies file for fig6_fading.
# This may be replaced when dependencies are built.
