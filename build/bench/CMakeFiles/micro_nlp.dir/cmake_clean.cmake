file(REMOVE_RECURSE
  "CMakeFiles/micro_nlp.dir/micro_nlp.cpp.o"
  "CMakeFiles/micro_nlp.dir/micro_nlp.cpp.o.d"
  "micro_nlp"
  "micro_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
