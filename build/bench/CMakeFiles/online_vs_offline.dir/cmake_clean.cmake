file(REMOVE_RECURSE
  "CMakeFiles/online_vs_offline.dir/online_vs_offline.cpp.o"
  "CMakeFiles/online_vs_offline.dir/online_vs_offline.cpp.o.d"
  "online_vs_offline"
  "online_vs_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_vs_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
