file(REMOVE_RECURSE
  "CMakeFiles/micro_dts.dir/micro_dts.cpp.o"
  "CMakeFiles/micro_dts.dir/micro_dts.cpp.o.d"
  "micro_dts"
  "micro_dts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
