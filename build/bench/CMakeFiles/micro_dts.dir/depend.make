# Empty dependencies file for micro_dts.
# This may be replaced when dependencies are built.
