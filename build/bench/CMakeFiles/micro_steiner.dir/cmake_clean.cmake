file(REMOVE_RECURSE
  "CMakeFiles/micro_steiner.dir/micro_steiner.cpp.o"
  "CMakeFiles/micro_steiner.dir/micro_steiner.cpp.o.d"
  "micro_steiner"
  "micro_steiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
