# Empty dependencies file for micro_steiner.
# This may be replaced when dependencies are built.
