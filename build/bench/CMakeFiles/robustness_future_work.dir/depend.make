# Empty dependencies file for robustness_future_work.
# This may be replaced when dependencies are built.
