file(REMOVE_RECURSE
  "CMakeFiles/robustness_future_work.dir/robustness_future_work.cpp.o"
  "CMakeFiles/robustness_future_work.dir/robustness_future_work.cpp.o.d"
  "robustness_future_work"
  "robustness_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
