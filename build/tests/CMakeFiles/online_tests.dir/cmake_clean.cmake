file(REMOVE_RECURSE
  "CMakeFiles/online_tests.dir/online/online_test.cpp.o"
  "CMakeFiles/online_tests.dir/online/online_test.cpp.o.d"
  "online_tests"
  "online_tests.pdb"
  "online_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
