# Empty dependencies file for online_tests.
# This may be replaced when dependencies are built.
