
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aux_graph_test.cpp" "tests/CMakeFiles/core_tests.dir/core/aux_graph_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/aux_graph_test.cpp.o.d"
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/core_tests.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/bip_test.cpp" "tests/CMakeFiles/core_tests.dir/core/bip_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/bip_test.cpp.o.d"
  "/root/repo/tests/core/brute_force_test.cpp" "tests/CMakeFiles/core_tests.dir/core/brute_force_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/brute_force_test.cpp.o.d"
  "/root/repo/tests/core/channel_breakpoint_test.cpp" "tests/CMakeFiles/core_tests.dir/core/channel_breakpoint_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/channel_breakpoint_test.cpp.o.d"
  "/root/repo/tests/core/dcs_test.cpp" "tests/CMakeFiles/core_tests.dir/core/dcs_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dcs_test.cpp.o.d"
  "/root/repo/tests/core/dts_equivalence_test.cpp" "tests/CMakeFiles/core_tests.dir/core/dts_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dts_equivalence_test.cpp.o.d"
  "/root/repo/tests/core/eedcb_test.cpp" "tests/CMakeFiles/core_tests.dir/core/eedcb_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/eedcb_test.cpp.o.d"
  "/root/repo/tests/core/energy_allocation_test.cpp" "tests/CMakeFiles/core_tests.dir/core/energy_allocation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/energy_allocation_test.cpp.o.d"
  "/root/repo/tests/core/fr_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fr_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fr_test.cpp.o.d"
  "/root/repo/tests/core/interference_test.cpp" "tests/CMakeFiles/core_tests.dir/core/interference_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/interference_test.cpp.o.d"
  "/root/repo/tests/core/multicast_test.cpp" "tests/CMakeFiles/core_tests.dir/core/multicast_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multicast_test.cpp.o.d"
  "/root/repo/tests/core/reduction_optimality_test.cpp" "tests/CMakeFiles/core_tests.dir/core/reduction_optimality_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/reduction_optimality_test.cpp.o.d"
  "/root/repo/tests/core/schedule_io_test.cpp" "tests/CMakeFiles/core_tests.dir/core/schedule_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/schedule_io_test.cpp.o.d"
  "/root/repo/tests/core/schedule_test.cpp" "tests/CMakeFiles/core_tests.dir/core/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/schedule_test.cpp.o.d"
  "/root/repo/tests/core/setcover_reduction_test.cpp" "tests/CMakeFiles/core_tests.dir/core/setcover_reduction_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/setcover_reduction_test.cpp.o.d"
  "/root/repo/tests/core/tradeoff_test.cpp" "tests/CMakeFiles/core_tests.dir/core/tradeoff_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tradeoff_test.cpp.o.d"
  "/root/repo/tests/core/tveg_test.cpp" "tests/CMakeFiles/core_tests.dir/core/tveg_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tveg_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tveg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/tveg_online.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tveg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tveg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tveg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/tveg_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/tveg_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/tvg/CMakeFiles/tveg_tvg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tveg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
