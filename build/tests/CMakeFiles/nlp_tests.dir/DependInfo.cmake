
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nlp/augmented_lagrangian_test.cpp" "tests/CMakeFiles/nlp_tests.dir/nlp/augmented_lagrangian_test.cpp.o" "gcc" "tests/CMakeFiles/nlp_tests.dir/nlp/augmented_lagrangian_test.cpp.o.d"
  "/root/repo/tests/nlp/coverage_test.cpp" "tests/CMakeFiles/nlp_tests.dir/nlp/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/nlp_tests.dir/nlp/coverage_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tveg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/tveg_online.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tveg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tveg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tveg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/tveg_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/tveg_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/tvg/CMakeFiles/tveg_tvg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tveg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
