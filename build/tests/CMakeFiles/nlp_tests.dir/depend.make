# Empty dependencies file for nlp_tests.
# This may be replaced when dependencies are built.
