file(REMOVE_RECURSE
  "CMakeFiles/nlp_tests.dir/nlp/augmented_lagrangian_test.cpp.o"
  "CMakeFiles/nlp_tests.dir/nlp/augmented_lagrangian_test.cpp.o.d"
  "CMakeFiles/nlp_tests.dir/nlp/coverage_test.cpp.o"
  "CMakeFiles/nlp_tests.dir/nlp/coverage_test.cpp.o.d"
  "nlp_tests"
  "nlp_tests.pdb"
  "nlp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
