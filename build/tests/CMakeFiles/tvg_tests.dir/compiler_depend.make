# Empty compiler generated dependencies file for tvg_tests.
# This may be replaced when dependencies are built.
