file(REMOVE_RECURSE
  "CMakeFiles/tvg_tests.dir/tvg/dts_test.cpp.o"
  "CMakeFiles/tvg_tests.dir/tvg/dts_test.cpp.o.d"
  "CMakeFiles/tvg_tests.dir/tvg/interval_property_test.cpp.o"
  "CMakeFiles/tvg_tests.dir/tvg/interval_property_test.cpp.o.d"
  "CMakeFiles/tvg_tests.dir/tvg/interval_set_test.cpp.o"
  "CMakeFiles/tvg_tests.dir/tvg/interval_set_test.cpp.o.d"
  "CMakeFiles/tvg_tests.dir/tvg/journeys_test.cpp.o"
  "CMakeFiles/tvg_tests.dir/tvg/journeys_test.cpp.o.d"
  "CMakeFiles/tvg_tests.dir/tvg/partition_test.cpp.o"
  "CMakeFiles/tvg_tests.dir/tvg/partition_test.cpp.o.d"
  "CMakeFiles/tvg_tests.dir/tvg/time_varying_graph_test.cpp.o"
  "CMakeFiles/tvg_tests.dir/tvg/time_varying_graph_test.cpp.o.d"
  "tvg_tests"
  "tvg_tests.pdb"
  "tvg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
