file(REMOVE_RECURSE
  "CMakeFiles/channel_tests.dir/channel/ed_function_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/ed_function_test.cpp.o.d"
  "CMakeFiles/channel_tests.dir/channel/profile_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/profile_test.cpp.o.d"
  "CMakeFiles/channel_tests.dir/channel/radio_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/radio_test.cpp.o.d"
  "CMakeFiles/channel_tests.dir/channel/special_functions_test.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/special_functions_test.cpp.o.d"
  "channel_tests"
  "channel_tests.pdb"
  "channel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
