# Empty dependencies file for epidemic_alert.
# This may be replaced when dependencies are built.
