file(REMOVE_RECURSE
  "CMakeFiles/epidemic_alert.dir/epidemic_alert.cpp.o"
  "CMakeFiles/epidemic_alert.dir/epidemic_alert.cpp.o.d"
  "epidemic_alert"
  "epidemic_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemic_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
