file(REMOVE_RECURSE
  "CMakeFiles/fading_models.dir/fading_models.cpp.o"
  "CMakeFiles/fading_models.dir/fading_models.cpp.o.d"
  "fading_models"
  "fading_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fading_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
