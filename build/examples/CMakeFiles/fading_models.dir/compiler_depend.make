# Empty compiler generated dependencies file for fading_models.
# This may be replaced when dependencies are built.
