file(REMOVE_RECURSE
  "CMakeFiles/deadline_planning.dir/deadline_planning.cpp.o"
  "CMakeFiles/deadline_planning.dir/deadline_planning.cpp.o.d"
  "deadline_planning"
  "deadline_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
