file(REMOVE_RECURSE
  "CMakeFiles/sensor_duty_cycle.dir/sensor_duty_cycle.cpp.o"
  "CMakeFiles/sensor_duty_cycle.dir/sensor_duty_cycle.cpp.o.d"
  "sensor_duty_cycle"
  "sensor_duty_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_duty_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
