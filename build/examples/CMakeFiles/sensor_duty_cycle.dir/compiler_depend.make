# Empty compiler generated dependencies file for sensor_duty_cycle.
# This may be replaced when dependencies are built.
