# Empty dependencies file for tveg_graph.
# This may be replaced when dependencies are built.
