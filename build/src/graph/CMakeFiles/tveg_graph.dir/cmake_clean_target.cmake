file(REMOVE_RECURSE
  "libtveg_graph.a"
)
