file(REMOVE_RECURSE
  "CMakeFiles/tveg_graph.dir/digraph.cpp.o"
  "CMakeFiles/tveg_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/tveg_graph.dir/steiner.cpp.o"
  "CMakeFiles/tveg_graph.dir/steiner.cpp.o.d"
  "libtveg_graph.a"
  "libtveg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
