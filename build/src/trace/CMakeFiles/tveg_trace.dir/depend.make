# Empty dependencies file for tveg_trace.
# This may be replaced when dependencies are built.
