file(REMOVE_RECURSE
  "libtveg_trace.a"
)
