
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/contact_trace.cpp" "src/trace/CMakeFiles/tveg_trace.dir/contact_trace.cpp.o" "gcc" "src/trace/CMakeFiles/tveg_trace.dir/contact_trace.cpp.o.d"
  "/root/repo/src/trace/generators.cpp" "src/trace/CMakeFiles/tveg_trace.dir/generators.cpp.o" "gcc" "src/trace/CMakeFiles/tveg_trace.dir/generators.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/tveg_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/tveg_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/tveg_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/tveg_trace.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tveg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tvg/CMakeFiles/tveg_tvg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
