file(REMOVE_RECURSE
  "CMakeFiles/tveg_trace.dir/contact_trace.cpp.o"
  "CMakeFiles/tveg_trace.dir/contact_trace.cpp.o.d"
  "CMakeFiles/tveg_trace.dir/generators.cpp.o"
  "CMakeFiles/tveg_trace.dir/generators.cpp.o.d"
  "CMakeFiles/tveg_trace.dir/io.cpp.o"
  "CMakeFiles/tveg_trace.dir/io.cpp.o.d"
  "CMakeFiles/tveg_trace.dir/stats.cpp.o"
  "CMakeFiles/tveg_trace.dir/stats.cpp.o.d"
  "libtveg_trace.a"
  "libtveg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
