file(REMOVE_RECURSE
  "libtveg_online.a"
)
