# Empty compiler generated dependencies file for tveg_online.
# This may be replaced when dependencies are built.
