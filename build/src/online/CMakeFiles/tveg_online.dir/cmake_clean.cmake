file(REMOVE_RECURSE
  "CMakeFiles/tveg_online.dir/driver.cpp.o"
  "CMakeFiles/tveg_online.dir/driver.cpp.o.d"
  "libtveg_online.a"
  "libtveg_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
