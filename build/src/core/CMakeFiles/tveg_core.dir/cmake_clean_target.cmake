file(REMOVE_RECURSE
  "libtveg_core.a"
)
