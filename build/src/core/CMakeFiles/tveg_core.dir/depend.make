# Empty dependencies file for tveg_core.
# This may be replaced when dependencies are built.
