
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aux_graph.cpp" "src/core/CMakeFiles/tveg_core.dir/aux_graph.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/aux_graph.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/tveg_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/bip.cpp" "src/core/CMakeFiles/tveg_core.dir/bip.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/bip.cpp.o.d"
  "/root/repo/src/core/brute_force.cpp" "src/core/CMakeFiles/tveg_core.dir/brute_force.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/brute_force.cpp.o.d"
  "/root/repo/src/core/eedcb.cpp" "src/core/CMakeFiles/tveg_core.dir/eedcb.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/eedcb.cpp.o.d"
  "/root/repo/src/core/energy_allocation.cpp" "src/core/CMakeFiles/tveg_core.dir/energy_allocation.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/energy_allocation.cpp.o.d"
  "/root/repo/src/core/fr.cpp" "src/core/CMakeFiles/tveg_core.dir/fr.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/fr.cpp.o.d"
  "/root/repo/src/core/interference.cpp" "src/core/CMakeFiles/tveg_core.dir/interference.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/interference.cpp.o.d"
  "/root/repo/src/core/prune.cpp" "src/core/CMakeFiles/tveg_core.dir/prune.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/prune.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/tveg_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/schedule_io.cpp" "src/core/CMakeFiles/tveg_core.dir/schedule_io.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/schedule_io.cpp.o.d"
  "/root/repo/src/core/tradeoff.cpp" "src/core/CMakeFiles/tveg_core.dir/tradeoff.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/tradeoff.cpp.o.d"
  "/root/repo/src/core/tveg.cpp" "src/core/CMakeFiles/tveg_core.dir/tveg.cpp.o" "gcc" "src/core/CMakeFiles/tveg_core.dir/tveg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tveg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tvg/CMakeFiles/tveg_tvg.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/tveg_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tveg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tveg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/tveg_nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
