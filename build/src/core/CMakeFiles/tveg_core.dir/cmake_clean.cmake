file(REMOVE_RECURSE
  "CMakeFiles/tveg_core.dir/aux_graph.cpp.o"
  "CMakeFiles/tveg_core.dir/aux_graph.cpp.o.d"
  "CMakeFiles/tveg_core.dir/baselines.cpp.o"
  "CMakeFiles/tveg_core.dir/baselines.cpp.o.d"
  "CMakeFiles/tveg_core.dir/bip.cpp.o"
  "CMakeFiles/tveg_core.dir/bip.cpp.o.d"
  "CMakeFiles/tveg_core.dir/brute_force.cpp.o"
  "CMakeFiles/tveg_core.dir/brute_force.cpp.o.d"
  "CMakeFiles/tveg_core.dir/eedcb.cpp.o"
  "CMakeFiles/tveg_core.dir/eedcb.cpp.o.d"
  "CMakeFiles/tveg_core.dir/energy_allocation.cpp.o"
  "CMakeFiles/tveg_core.dir/energy_allocation.cpp.o.d"
  "CMakeFiles/tveg_core.dir/fr.cpp.o"
  "CMakeFiles/tveg_core.dir/fr.cpp.o.d"
  "CMakeFiles/tveg_core.dir/interference.cpp.o"
  "CMakeFiles/tveg_core.dir/interference.cpp.o.d"
  "CMakeFiles/tveg_core.dir/prune.cpp.o"
  "CMakeFiles/tveg_core.dir/prune.cpp.o.d"
  "CMakeFiles/tveg_core.dir/schedule.cpp.o"
  "CMakeFiles/tveg_core.dir/schedule.cpp.o.d"
  "CMakeFiles/tveg_core.dir/schedule_io.cpp.o"
  "CMakeFiles/tveg_core.dir/schedule_io.cpp.o.d"
  "CMakeFiles/tveg_core.dir/tradeoff.cpp.o"
  "CMakeFiles/tveg_core.dir/tradeoff.cpp.o.d"
  "CMakeFiles/tveg_core.dir/tveg.cpp.o"
  "CMakeFiles/tveg_core.dir/tveg.cpp.o.d"
  "libtveg_core.a"
  "libtveg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
