# Empty dependencies file for tveg_sim.
# This may be replaced when dependencies are built.
