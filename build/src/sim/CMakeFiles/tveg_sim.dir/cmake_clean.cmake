file(REMOVE_RECURSE
  "CMakeFiles/tveg_sim.dir/experiment.cpp.o"
  "CMakeFiles/tveg_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/tveg_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/tveg_sim.dir/monte_carlo.cpp.o.d"
  "libtveg_sim.a"
  "libtveg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
