file(REMOVE_RECURSE
  "libtveg_sim.a"
)
