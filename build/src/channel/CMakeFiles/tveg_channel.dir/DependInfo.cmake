
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/ed_function.cpp" "src/channel/CMakeFiles/tveg_channel.dir/ed_function.cpp.o" "gcc" "src/channel/CMakeFiles/tveg_channel.dir/ed_function.cpp.o.d"
  "/root/repo/src/channel/profile.cpp" "src/channel/CMakeFiles/tveg_channel.dir/profile.cpp.o" "gcc" "src/channel/CMakeFiles/tveg_channel.dir/profile.cpp.o.d"
  "/root/repo/src/channel/radio.cpp" "src/channel/CMakeFiles/tveg_channel.dir/radio.cpp.o" "gcc" "src/channel/CMakeFiles/tveg_channel.dir/radio.cpp.o.d"
  "/root/repo/src/channel/special_functions.cpp" "src/channel/CMakeFiles/tveg_channel.dir/special_functions.cpp.o" "gcc" "src/channel/CMakeFiles/tveg_channel.dir/special_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tveg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tvg/CMakeFiles/tveg_tvg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
