file(REMOVE_RECURSE
  "CMakeFiles/tveg_channel.dir/ed_function.cpp.o"
  "CMakeFiles/tveg_channel.dir/ed_function.cpp.o.d"
  "CMakeFiles/tveg_channel.dir/profile.cpp.o"
  "CMakeFiles/tveg_channel.dir/profile.cpp.o.d"
  "CMakeFiles/tveg_channel.dir/radio.cpp.o"
  "CMakeFiles/tveg_channel.dir/radio.cpp.o.d"
  "CMakeFiles/tveg_channel.dir/special_functions.cpp.o"
  "CMakeFiles/tveg_channel.dir/special_functions.cpp.o.d"
  "libtveg_channel.a"
  "libtveg_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
