file(REMOVE_RECURSE
  "libtveg_channel.a"
)
