# Empty compiler generated dependencies file for tveg_channel.
# This may be replaced when dependencies are built.
