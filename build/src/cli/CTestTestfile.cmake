# CMake generated Testfile for 
# Source directory: /root/repo/src/cli
# Build directory: /root/repo/build/src/cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate_info_run "/usr/bin/cmake" "-DTMEDB=/root/repo/build/src/cli/tmedb" "-DWORKDIR=/root/repo/build/src/cli" "-P" "/root/repo/src/cli/smoke_test.cmake")
set_tests_properties(cli_generate_info_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;5;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_usage_on_bad_args "/root/repo/build/src/cli/tmedb" "frobnicate")
set_tests_properties(cli_usage_on_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;10;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_stats_on_sample "/root/repo/build/src/cli/tmedb" "stats" "/root/repo/data/haggle_like_n20.trace")
set_tests_properties(cli_stats_on_sample PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;12;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_run_on_sample "/root/repo/build/src/cli/tmedb" "run" "/root/repo/data/waypoint_n12.trace" "--algorithm" "GREED" "--source" "0" "--deadline" "1500" "--trials" "50")
set_tests_properties(cli_run_on_sample PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;14;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
