file(REMOVE_RECURSE
  "CMakeFiles/tmedb.dir/tmedb_main.cpp.o"
  "CMakeFiles/tmedb.dir/tmedb_main.cpp.o.d"
  "tmedb"
  "tmedb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
