# Empty dependencies file for tmedb.
# This may be replaced when dependencies are built.
