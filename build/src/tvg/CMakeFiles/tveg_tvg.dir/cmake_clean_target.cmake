file(REMOVE_RECURSE
  "libtveg_tvg.a"
)
