
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tvg/dts.cpp" "src/tvg/CMakeFiles/tveg_tvg.dir/dts.cpp.o" "gcc" "src/tvg/CMakeFiles/tveg_tvg.dir/dts.cpp.o.d"
  "/root/repo/src/tvg/interval_set.cpp" "src/tvg/CMakeFiles/tveg_tvg.dir/interval_set.cpp.o" "gcc" "src/tvg/CMakeFiles/tveg_tvg.dir/interval_set.cpp.o.d"
  "/root/repo/src/tvg/journeys.cpp" "src/tvg/CMakeFiles/tveg_tvg.dir/journeys.cpp.o" "gcc" "src/tvg/CMakeFiles/tveg_tvg.dir/journeys.cpp.o.d"
  "/root/repo/src/tvg/partition.cpp" "src/tvg/CMakeFiles/tveg_tvg.dir/partition.cpp.o" "gcc" "src/tvg/CMakeFiles/tveg_tvg.dir/partition.cpp.o.d"
  "/root/repo/src/tvg/time_varying_graph.cpp" "src/tvg/CMakeFiles/tveg_tvg.dir/time_varying_graph.cpp.o" "gcc" "src/tvg/CMakeFiles/tveg_tvg.dir/time_varying_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tveg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
