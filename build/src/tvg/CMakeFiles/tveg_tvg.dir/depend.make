# Empty dependencies file for tveg_tvg.
# This may be replaced when dependencies are built.
