file(REMOVE_RECURSE
  "CMakeFiles/tveg_tvg.dir/dts.cpp.o"
  "CMakeFiles/tveg_tvg.dir/dts.cpp.o.d"
  "CMakeFiles/tveg_tvg.dir/interval_set.cpp.o"
  "CMakeFiles/tveg_tvg.dir/interval_set.cpp.o.d"
  "CMakeFiles/tveg_tvg.dir/journeys.cpp.o"
  "CMakeFiles/tveg_tvg.dir/journeys.cpp.o.d"
  "CMakeFiles/tveg_tvg.dir/partition.cpp.o"
  "CMakeFiles/tveg_tvg.dir/partition.cpp.o.d"
  "CMakeFiles/tveg_tvg.dir/time_varying_graph.cpp.o"
  "CMakeFiles/tveg_tvg.dir/time_varying_graph.cpp.o.d"
  "libtveg_tvg.a"
  "libtveg_tvg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_tvg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
