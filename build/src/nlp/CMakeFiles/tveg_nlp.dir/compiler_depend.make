# Empty compiler generated dependencies file for tveg_nlp.
# This may be replaced when dependencies are built.
