file(REMOVE_RECURSE
  "libtveg_nlp.a"
)
