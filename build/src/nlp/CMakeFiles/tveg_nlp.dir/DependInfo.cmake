
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/augmented_lagrangian.cpp" "src/nlp/CMakeFiles/tveg_nlp.dir/augmented_lagrangian.cpp.o" "gcc" "src/nlp/CMakeFiles/tveg_nlp.dir/augmented_lagrangian.cpp.o.d"
  "/root/repo/src/nlp/coverage.cpp" "src/nlp/CMakeFiles/tveg_nlp.dir/coverage.cpp.o" "gcc" "src/nlp/CMakeFiles/tveg_nlp.dir/coverage.cpp.o.d"
  "/root/repo/src/nlp/problem.cpp" "src/nlp/CMakeFiles/tveg_nlp.dir/problem.cpp.o" "gcc" "src/nlp/CMakeFiles/tveg_nlp.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tveg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/tveg_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/tvg/CMakeFiles/tveg_tvg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
