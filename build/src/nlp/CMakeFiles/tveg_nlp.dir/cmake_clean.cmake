file(REMOVE_RECURSE
  "CMakeFiles/tveg_nlp.dir/augmented_lagrangian.cpp.o"
  "CMakeFiles/tveg_nlp.dir/augmented_lagrangian.cpp.o.d"
  "CMakeFiles/tveg_nlp.dir/coverage.cpp.o"
  "CMakeFiles/tveg_nlp.dir/coverage.cpp.o.d"
  "CMakeFiles/tveg_nlp.dir/problem.cpp.o"
  "CMakeFiles/tveg_nlp.dir/problem.cpp.o.d"
  "libtveg_nlp.a"
  "libtveg_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
