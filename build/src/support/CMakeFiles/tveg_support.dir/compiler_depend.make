# Empty compiler generated dependencies file for tveg_support.
# This may be replaced when dependencies are built.
