file(REMOVE_RECURSE
  "CMakeFiles/tveg_support.dir/rng.cpp.o"
  "CMakeFiles/tveg_support.dir/rng.cpp.o.d"
  "CMakeFiles/tveg_support.dir/stats.cpp.o"
  "CMakeFiles/tveg_support.dir/stats.cpp.o.d"
  "CMakeFiles/tveg_support.dir/table.cpp.o"
  "CMakeFiles/tveg_support.dir/table.cpp.o.d"
  "CMakeFiles/tveg_support.dir/thread_pool.cpp.o"
  "CMakeFiles/tveg_support.dir/thread_pool.cpp.o.d"
  "libtveg_support.a"
  "libtveg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tveg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
