file(REMOVE_RECURSE
  "libtveg_support.a"
)
