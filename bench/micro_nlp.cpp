// Microbenchmark — the optimal-energy-allocation NLP (Eq. 14–17):
// coordinate descent vs augmented Lagrangian on real FR backbones, plus
// objective quality counters.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.hpp"
#include "bench/timing.hpp"
#include "core/energy_allocation.hpp"
#include "core/fr.hpp"

using namespace tveg;

namespace {

struct Fixture {
  std::unique_ptr<core::Tveg> tveg;
  core::Schedule backbone;

  explicit Fixture(NodeId nodes) {
    trace::HaggleLikeConfig cfg;
    cfg.nodes = nodes;
    cfg.horizon = 17000;
    cfg.pair_probability = 0.5;
    cfg.activation_ramp_end = 500;
    cfg.seed = 1;
    tveg = std::make_unique<core::Tveg>(
        trace::generate_haggle_like(cfg), sim::paper_radio(),
        core::Tveg::Options{.model = channel::ChannelModel::kRayleigh});
    const core::TmedbInstance inst{tveg.get(), 0, 4000.0};
    backbone = run_eedcb(inst).schedule;
  }

  core::TmedbInstance instance() const {
    return core::TmedbInstance{tveg.get(), 0, 4000.0};
  }
};

void BM_AllocationCoordinateDescent(benchmark::State& state) {
  Fixture f(static_cast<NodeId>(state.range(0)));
  double total = 0;
  for (auto _ : state) {
    const auto out = allocate_energy(
        f.instance(), f.backbone,
        {.solver = core::AllocationSolver::kCoordinateDescent});
    total = out.schedule.total_cost();
    benchmark::DoNotOptimize(total);
  }
  state.counters["objective_norm"] =
      total / (sim::paper_radio().noise_density *
               sim::paper_radio().gamma_linear());
}
BENCHMARK(BM_AllocationCoordinateDescent)->Arg(10)->Arg(20)->Arg(30);

void BM_AllocationAugmentedLagrangian(benchmark::State& state) {
  Fixture f(static_cast<NodeId>(state.range(0)));
  double total = 0;
  for (auto _ : state) {
    const auto out = allocate_energy(
        f.instance(), f.backbone,
        {.solver = core::AllocationSolver::kAugmentedLagrangian});
    total = out.schedule.total_cost();
    benchmark::DoNotOptimize(total);
  }
  state.counters["objective_norm"] =
      total / (sim::paper_radio().noise_density *
               sim::paper_radio().gamma_linear());
}
BENCHMARK(BM_AllocationAugmentedLagrangian)->Arg(10)->Arg(20);

void BM_EndToEndFrEedcb(benchmark::State& state) {
  Fixture f(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) {
    const auto r = run_fr_eedcb(f.instance());
    benchmark::DoNotOptimize(r.allocation.feasible);
  }
}
BENCHMARK(BM_EndToEndFrEedcb)->Arg(10)->Arg(20);

}  // namespace

// Shared microbench main: timings are mirrored into BENCH_micro_nlp.json
// for scripts/bench_gate.sh, and the report is written only after the timing
// loops finish.
int main(int argc, char** argv) {
  return tveg::bench::run_microbench(argc, argv, "micro_nlp");
}
