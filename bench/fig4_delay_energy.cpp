// Fig. 4 — delay-energy tradeoff of EEDCB (a, static channel) and
// FR-EEDCB (b, Rayleigh fading) for several network sizes N.
//
// Paper setup (Sec. VII): delay constraint swept 2000..6000 s in 500 s
// steps; N ∈ {10, 15, 20}; Haggle trace; random source. Expected shape:
// energy decreases in the delay constraint and increases in N.
#include <iostream>

#include "bench/common.hpp"

using namespace tveg;
using bench::emit;
using bench::paper_trace;
using bench::run_point;
using bench::source_panel;
using support::Table;

int main() {
  bench::Report report("fig4_delay_energy");
  const std::vector<NodeId> sizes{10, 15, 20};
  std::vector<Time> deadlines;
  for (Time t = 2000; t <= 6000; t += 500) deadlines.push_back(t);
  report.set_config("sizes", "10,15,20");
  report.set_config("deadline_from_s", 2000);
  report.set_config("deadline_to_s", 6000);

  for (const auto& [algo, title] :
       {std::pair{sim::Algorithm::kEedcb,
                  "Fig. 4(a): EEDCB, static channel — "
                  "normalized energy vs delay constraint"},
        std::pair{sim::Algorithm::kFrEedcb,
                  "Fig. 4(b): FR-EEDCB, Rayleigh fading — "
                  "normalized energy vs delay constraint"}}) {
    Table table({"deadline_s", "N=10", "N=15", "N=20"});
    std::vector<std::vector<double>> series;
    for (NodeId n : sizes) {
      const sim::Workbench wb(paper_trace(n, /*ramped=*/false),
                              sim::paper_radio());
      series.push_back(
          bench::consistent_sweep(wb, algo, source_panel(n), deadlines));
    }
    for (std::size_t j = 0; j < deadlines.size(); ++j) {
      std::vector<std::string> row{Table::fmt(deadlines[j], 0)};
      for (const auto& s : series) row.push_back(Table::fmt(s[j], 2));
      table.add_row(std::move(row));
    }
    report.emit(title, table);
  }
  std::cout << "\nExpected shape: within each column energy falls as the "
               "deadline grows;\nwithin each row energy rises with N.\n";
  report.write_json();
  return 0;
}
