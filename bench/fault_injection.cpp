// Robustness bench: how much coverage do injected topology faults destroy,
// and how much of it does schedule repair win back? Sweeps fault severity
// (edge dropout + contact truncation at increasing probability), replays
// the clean FR-EEDCB schedule against each faulted reality, and compares
// uncovered nodes and Monte-Carlo delivery with and without repair. Also
// reports the fallback ladder's rung under shrinking solver budgets.
#include <iostream>

#include "bench/common.hpp"
#include "fault/degrade.hpp"
#include "fault/fault_plan.hpp"
#include "fault/repair.hpp"

using namespace tveg;
using bench::paper_trace;
using support::Table;

int main() {
  bench::Report report("fault_injection");
  const NodeId n = 20;
  const Time deadline = 4000;
  report.set_config("nodes", static_cast<double>(n));
  report.set_config("deadline_s", deadline);

  const trace::ContactTrace clean = paper_trace(n, /*ramped=*/false);
  const sim::Workbench bench(clean, sim::paper_radio());
  const auto sources = bench::source_panel(n, 4);

  // Severity sweep: planned schedule vs faulted reality, repair on/off.
  {
    Table table({"severity", "fault_events", "uncovered_no_repair",
                 "uncovered_repaired", "delivery_planned",
                 "delivery_repaired"});
    for (double severity : {0.0, 0.1, 0.2, 0.4}) {
      fault::FaultPlan plan;
      plan.seed = 17;
      plan.edge_dropout = severity;
      plan.contact_truncation = severity;

      support::RunningStat uncovered_before, uncovered_after;
      support::RunningStat delivery_planned, delivery_repaired;
      std::size_t events = 0;
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const auto outcome =
            bench.run(sim::Algorithm::kFrEedcb, sources[i], deadline, i + 1);
        if (!outcome.covered_all || !outcome.allocation_feasible) continue;

        const fault::FaultedTrace faulted = fault::apply_plan(clean, plan);
        events = faulted.log.events.size();
        const sim::Workbench faulted_bench(faulted.trace, sim::paper_radio());
        const auto planned_inst = bench.fading_instance(sources[i], deadline);
        const auto real_inst =
            faulted_bench.fading_instance(sources[i], deadline);

        const auto repair = fault::repair_schedule(
            planned_inst, real_inst, faulted_bench.dts(), outcome.schedule);
        uncovered_before.add(static_cast<double>(repair.uncovered_before));
        uncovered_after.add(static_cast<double>(repair.uncovered_after));

        sim::McOptions mc{.trials = 400, .seed = i + 1};
        delivery_planned.add(
            faulted_bench.delivery_under_fading(sources[i], outcome.schedule,
                                                mc)
                .mean_delivery_ratio);
        delivery_repaired.add(
            faulted_bench.delivery_under_fading(sources[i], repair.repaired,
                                                mc)
                .mean_delivery_ratio);
      }
      table.add_row({Table::fmt(severity, 2),
                     Table::fmt(static_cast<double>(events), 0),
                     Table::fmt(uncovered_before.mean(), 2),
                     Table::fmt(uncovered_after.mean(), 2),
                     Table::fmt(delivery_planned.mean(), 4),
                     Table::fmt(delivery_repaired.mean(), 4)});
    }
    report.emit("Fault severity vs coverage: repair off/on", table);
  }

  // Fallback ladder: rung reached under shrinking budgets.
  {
    Table table({"budget_ms", "rung", "descents", "covered", "energy"});
    const auto instance = bench.step_instance(sources[0], deadline);
    for (double budget : {-1.0, 200.0, 5.0, 0.0}) {
      fault::RobustSolveOptions options;
      options.budget_ms = budget;
      const auto r = fault::robust_solve(instance, bench.dts(), options);
      table.add_row({budget < 0 ? "unlimited" : Table::fmt(budget, 0),
                     fault::rung_name(r.rung),
                     Table::fmt(static_cast<double>(r.descents.size()), 0),
                     r.result.covered_all ? "yes" : "no",
                     Table::fmt(core::normalized_energy(instance,
                                                        r.result.schedule),
                                1)});
    }
    report.emit("Fallback ladder rung vs solver budget", table);
  }

  std::cout << "\nExpected: uncovered nodes grow with severity without "
               "repair and shrink back\nwith it; tighter budgets push the "
               "ladder from eedcb toward greed at higher\nenergy but intact "
               "coverage.\n";
  report.write_json();
  return 0;
}
