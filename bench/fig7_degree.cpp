// Fig. 7 — total normalized energy per broadcast and average node degree
// over trace time, sampled every 500 s on [5000, 15000] s (N = 20,
// T = 2000 s). The ramped Haggle-like trace reproduces the paper's degree
// warm-up; energy falls as the average degree rises because each relay
// informs more nodes per transmission.
#include <iostream>

#include "bench/common.hpp"

using namespace tveg;
using bench::emit;
using bench::paper_trace;
using support::Table;

int main() {
  bench::Report report("fig7_degree");
  const NodeId n = 20;
  const Time deadline = 2000;
  report.set_config("nodes", static_cast<double>(n));
  report.set_config("deadline_s", deadline);
  const auto trace = paper_trace(n, /*ramped=*/true);

  Table stat({"window_start_s", "avg_degree", "EEDCB", "GREED", "RAND"});
  Table fading({"window_start_s", "avg_degree", "FR-EEDCB", "FR-GREED",
                "FR-RAND"});

  for (Time t0 = 5000; t0 <= 15000; t0 += 500) {
    // Average degree over the 500 s reporting window.
    support::RunningStat degree;
    for (Time x = t0; x < t0 + 500; x += 50) degree.add(trace.average_degree(x));

    // Broadcast inside [t0, t0 + deadline]: restrict the trace to the
    // window so every algorithm sees exactly this slice of the graph.
    const Time hi = std::min<Time>(t0 + deadline, trace.horizon());
    if (hi - t0 < deadline / 2) break;
    const auto window = trace.window(t0, hi);
    const sim::Workbench bench(window, sim::paper_radio());
    const auto sources = bench::source_panel(n, 4);

    auto point = [&](sim::Algorithm a) {
      return bench::run_point(bench, a, sources, hi - t0).mean_energy;
    };

    stat.add_row({Table::fmt(t0, 0), Table::fmt(degree.mean(), 2),
                  Table::fmt(point(sim::Algorithm::kEedcb), 2),
                  Table::fmt(point(sim::Algorithm::kGreed), 2),
                  Table::fmt(point(sim::Algorithm::kRand), 2)});
    fading.add_row({Table::fmt(t0, 0), Table::fmt(degree.mean(), 2),
                    Table::fmt(point(sim::Algorithm::kFrEedcb), 2),
                    Table::fmt(point(sim::Algorithm::kFrGreed), 2),
                    Table::fmt(point(sim::Algorithm::kFrRand), 2)});
  }

  report.emit("Fig. 7(a): static channel — energy and average degree over time",
              stat);
  report.emit("Fig. 7(b): Rayleigh fading — energy and average degree over time",
              fading);
  std::cout << "\nExpected: average degree climbs until ~8000 s then "
               "plateaus; energy of every method falls over the ramp and "
               "then flattens.\n";
  report.write_json();
  return 0;
}
