// Microbenchmark — DTS construction (Sec. V) as a function of network size,
// contact density, and latency τ. Validates the complexity discussion:
// τ ≈ 0 keeps the point count near O(N²L); τ > 0 triggers the +τ cascade.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "bench/timing.hpp"
#include "tvg/dts.hpp"

using namespace tveg;

namespace {

trace::ContactTrace make_trace(NodeId nodes, std::uint64_t seed) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 17000;
  cfg.pair_probability = 0.5;
  cfg.activation_ramp_end = 500;
  cfg.seed = seed;
  return trace::generate_haggle_like(cfg);
}

void BM_DtsBuild_Nodes(benchmark::State& state) {
  const auto nodes = static_cast<NodeId>(state.range(0));
  const auto trace = make_trace(nodes, 1);
  const auto g = trace.to_graph(0.0);
  std::size_t points = 0;
  for (auto _ : state) {
    const auto dts = DiscreteTimeSet::build(g);
    points = dts.total_points();
    benchmark::DoNotOptimize(points);
  }
  state.counters["dts_points"] = static_cast<double>(points);
}
BENCHMARK(BM_DtsBuild_Nodes)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

void BM_DtsBuild_Latency(benchmark::State& state) {
  const auto tau = static_cast<double>(state.range(0));
  const auto trace = make_trace(20, 1);
  const auto g = trace.to_graph(tau);
  std::size_t points = 0;
  for (auto _ : state) {
    DtsOptions options;
    options.max_points_per_node = 20000;
    const auto dts = DiscreteTimeSet::build(g, options);
    points = dts.total_points();
    benchmark::DoNotOptimize(points);
  }
  state.counters["dts_points"] = static_cast<double>(points);
}
BENCHMARK(BM_DtsBuild_Latency)->Arg(0)->Arg(1)->Arg(5)->Arg(20);

void BM_AdjacentPartition(benchmark::State& state) {
  const auto trace = make_trace(20, 1);
  const auto g = trace.to_graph(0.0);
  for (auto _ : state) {
    for (NodeId v = 0; v < g.node_count(); ++v)
      benchmark::DoNotOptimize(g.adjacent_partition(v));
  }
}
BENCHMARK(BM_AdjacentPartition);

void BM_EarliestArrival(benchmark::State& state) {
  const auto trace = make_trace(static_cast<NodeId>(state.range(0)), 1);
  const auto g = trace.to_graph(0.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(g.earliest_arrival(0, 0.0));
}
BENCHMARK(BM_EarliestArrival)->Arg(10)->Arg(20)->Arg(40);

}  // namespace

// Shared microbench main: timings are mirrored into BENCH_micro_dts.json
// for scripts/bench_gate.sh, and the report is written only after the timing
// loops finish.
int main(int argc, char** argv) {
  return tveg::bench::run_microbench(argc, argv, "micro_dts");
}
