// Microbenchmark — auxiliary-graph construction hot path (DESIGN.md "Data
// layout & hot-path memory"): whole-build cost, the isolated CSR
// stage+freeze step, the first solver query after a build (reversed-graph
// construction + workspace acquisition), and schedule extraction's
// arithmetic power-vertex decode. scripts/bench_gate.sh diffs these against
// bench/baselines/BENCH_micro_aux.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "bench/timing.hpp"
#include "core/aux_graph.hpp"
#include "graph/digraph.hpp"
#include "graph/steiner.hpp"

using namespace tveg;

namespace {

struct Fixture {
  std::unique_ptr<core::Tveg> tveg;
  std::unique_ptr<DiscreteTimeSet> dts;
  std::unique_ptr<core::AuxGraph> aux;

  explicit Fixture(NodeId nodes) {
    trace::HaggleLikeConfig cfg;
    cfg.nodes = nodes;
    cfg.horizon = 17000;
    cfg.pair_probability = 0.5;
    cfg.activation_ramp_end = 500;
    cfg.seed = 1;
    tveg = std::make_unique<core::Tveg>(
        trace::generate_haggle_like(cfg), sim::paper_radio(),
        core::Tveg::Options{.model = channel::ChannelModel::kStep});
    dts = std::make_unique<DiscreteTimeSet>(tveg->build_dts());
    const core::TmedbInstance inst{tveg.get(), 0, 6000.0};
    aux = std::make_unique<core::AuxGraph>(inst, *dts);
  }
};

void BM_AuxBuild(benchmark::State& state) {
  const auto nodes = static_cast<NodeId>(state.range(0));
  Fixture f(nodes);
  const core::TmedbInstance inst{f.tveg.get(), 0, 6000.0};
  std::size_t arcs = 0;
  for (auto _ : state) {
    const core::AuxGraph aux(inst, *f.dts);
    arcs = aux.arc_count();
    benchmark::DoNotOptimize(arcs);
  }
  state.counters["aux_arcs"] = static_cast<double>(arcs);
}
BENCHMARK(BM_AuxBuild)->Arg(10)->Arg(20)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_AuxDigraphFreeze(benchmark::State& state) {
  // Isolate the CSR step: replay the aux graph's exact arc census into a
  // reusable Digraph and freeze it. The staged->CSR counting-sort scatter
  // plus the staging appends are the whole measured body.
  Fixture f(static_cast<NodeId>(state.range(0)));
  const graph::Digraph& src = f.aux->digraph();
  struct FlatArc {
    graph::VertexId from, to;
    double weight;
  };
  std::vector<FlatArc> arcs;
  arcs.reserve(src.arc_count());
  for (graph::VertexId v = 0; v < src.vertex_count(); ++v)
    for (const auto& a : src.out(v)) arcs.push_back({v, a.to, a.weight});

  graph::Digraph g;
  for (auto _ : state) {
    g.reset(src.vertex_count());
    g.reserve_arcs(arcs.size());
    for (const FlatArc& a : arcs) g.add_arc(a.from, a.to, a.weight);
    g.freeze();
    benchmark::DoNotOptimize(g.arc_count());
  }
  state.counters["arcs"] = static_cast<double>(arcs.size());
}
BENCHMARK(BM_AuxDigraphFreeze)->Arg(10)->Arg(20)->Arg(30);

void BM_AuxFirstSolverQuery(benchmark::State& state) {
  // First query against a freshly built aux graph: SteinerSolver
  // construction (reversed CSR + pooled workspace acquire) plus the SPT
  // heuristic — the latency a caller sees after AuxGraph construction.
  Fixture f(static_cast<NodeId>(state.range(0)));
  double cost = 0;
  for (auto _ : state) {
    graph::SteinerSolver solver(f.aux->digraph());
    const auto tree = solver.shortest_path_heuristic(f.aux->source_vertex(),
                                                     f.aux->terminals());
    cost = tree.cost;
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_AuxFirstSolverQuery)->Arg(10)->Arg(20)->Arg(30);

void BM_AuxExtractSchedule(benchmark::State& state) {
  // Tree -> schedule decode: one subtraction per tree arc to index the flat
  // power-vertex table, plus the coalescing sort in Schedule.
  Fixture f(static_cast<NodeId>(state.range(0)));
  graph::SteinerSolver solver(f.aux->digraph());
  const auto tree = solver.recursive_greedy(f.aux->source_vertex(),
                                            f.aux->terminals(), 2);
  for (auto _ : state) {
    const core::Schedule s = f.aux->extract_schedule(tree);
    benchmark::DoNotOptimize(s.total_cost());
  }
  state.counters["tree_arcs"] = static_cast<double>(tree.arcs.size());
}
BENCHMARK(BM_AuxExtractSchedule)->Arg(10)->Arg(20);

}  // namespace

// Shared microbench main: timings are mirrored into BENCH_micro_aux.json for
// scripts/bench_gate.sh.
int main(int argc, char** argv) {
  return tveg::bench::run_microbench(argc, argv, "micro_aux");
}
