// Empirical approximation quality: the paper proves an O(N^ε) ratio for
// EEDCB and o(log N)-inapproximability for TMEDB; this bench measures what
// the implemented heuristics actually achieve against the exact optimum
// (brute force) on randomized small instances.
#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "core/baselines.hpp"
#include "core/bip.hpp"
#include "core/brute_force.hpp"
#include "core/eedcb.hpp"
#include "support/math.hpp"

using namespace tveg;
using support::Table;

namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

}  // namespace

int main() {
  bench::Report report("approx_quality");
  struct Solver {
    const char* name;
    std::function<core::Schedule(const core::TmedbInstance&,
                                 const DiscreteTimeSet&)> run;
  };
  core::EedcbOptions spt, g1, g2;
  spt.method = core::SteinerMethod::kShortestPath;
  g1.method = core::SteinerMethod::kRecursiveGreedy;
  g1.steiner_level = 1;
  g2.method = core::SteinerMethod::kRecursiveGreedy;
  g2.steiner_level = 2;

  const Solver solvers[] = {
      {"EEDCB(spt)",
       [&](const auto& inst, const auto& dts) {
         return run_eedcb(inst, dts, spt).schedule;
       }},
      {"EEDCB(greedy L1)",
       [&](const auto& inst, const auto& dts) {
         return run_eedcb(inst, dts, g1).schedule;
       }},
      {"EEDCB(greedy L2)",
       [&](const auto& inst, const auto& dts) {
         return run_eedcb(inst, dts, g2).schedule;
       }},
      {"BIP(temporal)",
       [&](const auto& inst, const auto& dts) {
         return run_bip(inst, dts).schedule;
       }},
      {"GREED",
       [&](const auto& inst, const auto& dts) {
         return run_baseline(inst, dts,
                             {.rule = core::BaselineRule::kGreedy})
             .schedule;
       }},
      {"RAND",
       [&](const auto& inst, const auto& dts) {
         return run_baseline(
                    inst, dts,
                    {.rule = core::BaselineRule::kRandom, .seed = 11})
             .schedule;
       }},
  };

  std::vector<support::SampleSet> ratios(std::size(solvers));
  std::size_t instances = 0;

  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    trace::SnapshotConfig cfg;
    cfg.nodes = 7;
    cfg.slot = 25;
    cfg.horizon = 175;
    cfg.p = 0.3;
    cfg.min_distance = 1.0;
    cfg.max_distance = 4.0;
    cfg.seed = seed;
    const core::Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                          {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance inst{&tveg, 0, 175.0};
    const auto opt = brute_force_optimal(inst);
    if (!opt.feasible || opt.cost <= 0) continue;
    ++instances;
    const auto dts = tveg.build_dts();
    for (std::size_t s = 0; s < std::size(solvers); ++s) {
      const core::Schedule schedule = solvers[s].run(inst, dts);
      if (!core::check_feasibility(inst, schedule).feasible) continue;
      ratios[s].add(schedule.total_cost() / opt.cost);
    }
  }

  Table table({"solver", "instances", "mean_ratio", "p90_ratio",
               "max_ratio"});
  for (std::size_t s = 0; s < std::size(solvers); ++s) {
    if (ratios[s].empty()) continue;
    table.add_row({solvers[s].name,
                   Table::fmt(static_cast<double>(ratios[s].count()), 0),
                   Table::fmt(ratios[s].mean(), 3),
                   Table::fmt(ratios[s].quantile(0.9), 3),
                   Table::fmt(ratios[s].quantile(1.0), 3)});
  }
  report.emit("Empirical approximation ratios vs exact optimum "
              "(7-node random temporal graphs)",
              table);
  std::cout << "\nSolved " << instances
            << " feasible instances. Expected: EEDCB variants close to 1, "
               "level 2 <= level 1;\nGREED noticeably above; RAND worst. "
               "All far below the theoretical O(N^eps) envelope.\n";
  report.write_json();
  return 0;
}
