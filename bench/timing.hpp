// Timing capture for the google-benchmark microbenches: a ConsoleReporter
// that mirrors every run into the bench Report, so BENCH_<name>.json carries
// machine-readable per-benchmark wall/cpu times. scripts/bench_gate.sh
// diffs those against the committed baselines and fails the build on
// regressions — which only works if benchmark *names* stay stable.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/common.hpp"

namespace tveg::bench {

/// Console output as usual, plus a record of each per-iteration timing.
class TimingReporter : public benchmark::ConsoleReporter {
 public:
  struct Timing {
    std::string name;
    double real_ms = 0;
    double cpu_ms = 0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      if (run.iterations == 0) continue;
      Timing t;
      t.name = run.benchmark_name();
      const double iters = static_cast<double>(run.iterations);
      t.real_ms = 1e3 * run.real_accumulated_time / iters;
      t.cpu_ms = 1e3 * run.cpu_accumulated_time / iters;
      t.iterations = static_cast<std::int64_t>(run.iterations);
      timings_.push_back(std::move(t));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// Copies the captured timings into the JSON report.
  void attach_to(Report& report) const {
    for (const Timing& t : timings_)
      report.add_timing(t.name, t.real_ms, t.cpu_ms, t.iterations);
  }

 private:
  std::vector<Timing> timings_;
};

/// Shared main body for the microbenches: run everything through a
/// TimingReporter, then write BENCH_<name>.json — after the timed work, so
/// reporting never perturbs the measurements.
inline int run_microbench(int argc, char** argv, const std::string& name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Phase tracing must be on *during* the benchmark loop for the report's
  // "phases" attribution block to carry data (Report's constructor runs
  // only after the timed work here). Present in baseline and current runs
  // alike, so the gate's relative comparison is unaffected.
  obs::set_enabled(true);
  TimingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  Report report(name);
  reporter.attach_to(report);
  report.write_json();
  return 0;
}

}  // namespace tveg::bench
