// Extension bench (the paper's Sec. VIII future work, as evaluation):
// how do EEDCB / FR-EEDCB schedules — computed on the deterministic,
// interference-free model — hold up when
//   (a) the TVG is non-deterministic (each edge up with probability q), and
//   (b) concurrent transmissions interfere (collision = no decode)?
#include <iostream>

#include "bench/common.hpp"

using namespace tveg;
using bench::emit;
using bench::paper_trace;
using support::Table;

int main() {
  bench::Report report("robustness_future_work");
  const NodeId n = 20;
  const Time deadline = 4000;
  report.set_config("nodes", static_cast<double>(n));
  report.set_config("deadline_s", deadline);
  const sim::Workbench bench(paper_trace(n, /*ramped=*/false),
                             sim::paper_radio());
  const auto sources = bench::source_panel(n, 4);

  // Presence-reliability sweep.
  {
    Table table({"edge_up_prob", "EEDCB_delivery", "FR-EEDCB_delivery"});
    for (double q : {1.0, 0.95, 0.9, 0.8, 0.6}) {
      support::RunningStat d_static, d_fr;
      for (std::size_t i = 0; i < sources.size(); ++i) {
        sim::McOptions mc{.trials = 800, .seed = i + 1};
        mc.presence_reliability = q;
        const auto e = bench.run(sim::Algorithm::kEedcb, sources[i],
                                 deadline, i + 1);
        const auto f = bench.run(sim::Algorithm::kFrEedcb, sources[i],
                                 deadline, i + 1);
        if (e.covered_all)
          d_static.add(sim::simulate_delivery(bench.fading(), sources[i],
                                              e.schedule, mc)
                           .mean_delivery_ratio);
        if (f.covered_all && f.allocation_feasible)
          d_fr.add(sim::simulate_delivery(bench.fading(), sources[i],
                                          f.schedule, mc)
                       .mean_delivery_ratio);
      }
      table.add_row({Table::fmt(q, 2),
                     d_static.empty() ? "-" : Table::fmt(d_static.mean(), 4),
                     d_fr.empty() ? "-" : Table::fmt(d_fr.mean(), 4)});
    }
    report.emit(
        "Future work (a): delivery vs presence reliability "
        "(non-deterministic TVG)",
        table);
  }

  // Interference on/off.
  {
    Table table({"interference", "EEDCB_delivery", "FR-EEDCB_delivery"});
    for (bool interference : {false, true}) {
      support::RunningStat d_static, d_fr;
      for (std::size_t i = 0; i < sources.size(); ++i) {
        sim::McOptions mc{.trials = 800, .seed = i + 1};
        mc.model_interference = interference;
        const auto e = bench.run(sim::Algorithm::kEedcb, sources[i],
                                 deadline, i + 1);
        const auto f = bench.run(sim::Algorithm::kFrEedcb, sources[i],
                                 deadline, i + 1);
        if (e.covered_all)
          d_static.add(sim::simulate_delivery(bench.fading(), sources[i],
                                              e.schedule, mc)
                           .mean_delivery_ratio);
        if (f.covered_all && f.allocation_feasible)
          d_fr.add(sim::simulate_delivery(bench.fading(), sources[i],
                                          f.schedule, mc)
                       .mean_delivery_ratio);
      }
      table.add_row({interference ? "on" : "off",
                     d_static.empty() ? "-" : Table::fmt(d_static.mean(), 4),
                     d_fr.empty() ? "-" : Table::fmt(d_fr.mean(), 4)});
    }
    report.emit("Future work (b): delivery with transmission interference",
                table);
  }

  std::cout << "\nExpected: FR-EEDCB degrades gracefully as edges become "
               "unreliable (its failure\nbudget absorbs some losses); "
               "interference costs both pipelines a few points\nwherever "
               "schedules use concurrent or same-instant transmissions.\n";
  report.write_json();
  return 0;
}
