// Fig. 6 — performance in the fading scenario vs network size N
// (T = 2000 s):
//   (a) normalized energy: FR-RAND > FR-GREED > FR-EEDCB > RAND > GREED
//       > EEDCB;
//   (b) Monte-Carlo packet delivery ratio under Rayleigh draws: FR-* ≈ 1,
//       static-designed schedules lose roughly a third of the nodes at
//       N = 20 and degrade as N grows.
#include <iostream>

#include "bench/common.hpp"

using namespace tveg;
using bench::emit;
using bench::paper_trace;
using bench::source_panel;
using support::Table;

int main() {
  bench::Report report("fig6_fading");
  const std::vector<NodeId> sizes{10, 15, 20, 25, 30};
  const Time deadline = 2000;
  report.set_config("deadline_s", deadline);

  Table energy({"N", "EEDCB", "GREED", "RAND", "FR-EEDCB", "FR-GREED",
                "FR-RAND"});
  Table delivery({"N", "EEDCB", "GREED", "RAND", "FR-EEDCB", "FR-GREED",
                  "FR-RAND"});
  const sim::Algorithm order[] = {
      sim::Algorithm::kEedcb,   sim::Algorithm::kGreed,
      sim::Algorithm::kRand,    sim::Algorithm::kFrEedcb,
      sim::Algorithm::kFrGreed, sim::Algorithm::kFrRand,
  };

  for (NodeId n : sizes) {
    const sim::Workbench bench(paper_trace(n, /*ramped=*/false),
                               sim::paper_radio());
    const auto sources = source_panel(n);
    std::vector<std::string> energy_row{Table::fmt(n, 0)};
    std::vector<std::string> delivery_row{Table::fmt(n, 0)};

    for (sim::Algorithm a : order) {
      support::RunningStat e, d;
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const auto outcome = bench.run(a, sources[i], deadline, i + 1);
        if (!outcome.covered_all || !outcome.allocation_feasible) continue;
        e.add(outcome.normalized_energy);
        const auto stats = bench.delivery_under_fading(
            sources[i], outcome.schedule, {.trials = 1000, .seed = i + 1});
        d.add(stats.mean_delivery_ratio);
      }
      energy_row.push_back(e.empty() ? "-" : Table::fmt(e.mean(), 2));
      delivery_row.push_back(d.empty() ? "-" : Table::fmt(d.mean(), 4));
    }
    energy.add_row(std::move(energy_row));
    delivery.add_row(std::move(delivery_row));
  }

  report.emit("Fig. 6(a): fading scenario — normalized energy vs N", energy);
  report.emit("Fig. 6(b): fading scenario — packet delivery ratio vs N",
              delivery);
  std::cout << "\nExpected: energy FR-RAND > FR-GREED > FR-EEDCB > RAND > "
               "GREED ~ EEDCB;\ndelivery FR-* near 1.0, static algorithms "
               "well below and falling with N.\n";
  report.write_json();
  return 0;
}
