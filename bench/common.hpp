// Shared helpers for the figure-reproduction benches. Every bench binary
// prints the same rows/series the paper's corresponding figure reports,
// as an aligned table followed by a CSV block.
#pragma once

#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "trace/generators.hpp"

namespace tveg::bench {

/// The paper's trace substitute: Haggle-like, ≈17000 s (Sec. VII). With
/// `ramped` the pair-activation ramp reproduces Fig. 7's degree warm-up;
/// without it the trace is stationary from t = 0, which the delay-sweep
/// figures need (their broadcasts start at t = 0).
inline trace::ContactTrace paper_trace(NodeId nodes, bool ramped,
                                       std::uint64_t seed = 1) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 17000;
  // Hold the expected social degree constant across N (a constant-density
  // population, as when sub-sampling one real trace): otherwise density —
  // and with it the broadcast advantage — grows with N and inverts the
  // paper's "more nodes cost more energy" trend.
  cfg.pair_probability =
      std::min(1.0, 9.0 / static_cast<double>(nodes - 1));
  cfg.activation_ramp_end = ramped ? 8000 : 500;
  cfg.seed = seed;
  return trace::generate_haggle_like(cfg);
}

/// Sources a figure point is averaged over (the paper picks a random
/// source; we average a fixed panel for stable series).
inline std::vector<NodeId> source_panel(NodeId nodes, std::size_t count = 6) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(static_cast<NodeId>((i * 7 + 1) % nodes));
  return out;
}

/// One figure point: algorithm × (trace view) × deadline, averaged over the
/// source panel. Returns (mean normalized energy, coverage fraction).
struct PointStats {
  double mean_energy = 0;
  double covered_fraction = 0;
  std::size_t runs = 0;
};

inline PointStats run_point(const sim::Workbench& bench, sim::Algorithm algo,
                            const std::vector<NodeId>& sources,
                            Time deadline) {
  support::RunningStat energy;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto outcome =
        bench.run(algo, sources[i], deadline, /*seed=*/i + 1);
    if (outcome.covered_all && outcome.allocation_feasible) {
      energy.add(outcome.normalized_energy);
      ++covered;
    }
  }
  PointStats stats;
  stats.runs = sources.size();
  stats.covered_fraction =
      static_cast<double>(covered) / static_cast<double>(sources.size());
  stats.mean_energy = energy.empty() ? 0.0 : energy.mean();
  return stats;
}

/// Sweep of one algorithm over deadlines, averaged over the subset of
/// sources that is feasible at EVERY deadline — otherwise the set of
/// averaged sources shifts between points and the series picks up jumps
/// unrelated to the delay constraint.
inline std::vector<double> consistent_sweep(const sim::Workbench& bench,
                                            sim::Algorithm algo,
                                            const std::vector<NodeId>& sources,
                                            const std::vector<Time>& deadlines) {
  const std::size_t s = sources.size(), d = deadlines.size();
  std::vector<std::vector<double>> energy(d, std::vector<double>(s, -1));
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t i = 0; i < s; ++i) {
      const auto outcome =
          bench.run(algo, sources[i], deadlines[j], /*seed=*/i + 1);
      if (outcome.covered_all && outcome.allocation_feasible)
        energy[j][i] = outcome.normalized_energy;
    }
  std::vector<char> keep(s, 1);
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t j = 0; j < d; ++j)
      if (energy[j][i] < 0) keep[i] = 0;

  std::vector<double> means(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    support::RunningStat stat;
    for (std::size_t i = 0; i < s; ++i)
      if (keep[i]) stat.add(energy[j][i]);
    means[j] = stat.empty() ? 0.0 : stat.mean();
  }
  return means;
}

/// Prints a table twice: aligned text and CSV (machine-readable).
inline void emit(const std::string& title, const support::Table& table) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "-- csv --\n";
  table.print_csv(std::cout);
}

/// Machine-readable bench report: records every emitted table plus freeform
/// config, and writes `BENCH_<name>.json` (schema tveg-bench-1) with the
/// obs metrics/phase snapshot attached. Construct one per bench binary,
/// route tables through `emit`, call `write_json()` at the end — after the
/// timed work, so snapshotting never perturbs the measurements.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {
    // Aggregate phase tracing on for every bench: the per-phase breakdown
    // ("phases" in the report) is what bench_gate uses to attribute a
    // timing regression to the phase that slowed down. Costs one clock
    // read per phase enter/exit — identical in baseline and current runs.
    obs::set_enabled(true);
  }

  /// Records a bench parameter shown under "config".
  void set_config(const std::string& key, const std::string& value) {
    config_.set(key, obs::Json(value));
  }
  void set_config(const std::string& key, double value) {
    config_.set(key, obs::Json(value));
  }

  /// Prints the table (text + CSV) and records it as a JSON series.
  void emit(const std::string& title, const support::Table& table) {
    bench::emit(title, table);
    obs::Json series = obs::Json::object();
    series.set("title", obs::Json(title));
    obs::Json columns = obs::Json::array();
    for (const auto& h : table.headers()) columns.push_back(obs::Json(h));
    series.set("columns", std::move(columns));
    obs::Json rows = obs::Json::array();
    for (const auto& row : table.data()) {
      obs::Json cells = obs::Json::array();
      for (const auto& cell : row) cells.push_back(obs::Json(cell));
      rows.push_back(std::move(cells));
    }
    series.set("rows", std::move(rows));
    series_.push_back(std::move(series));
  }

  /// Records one measured timing (a google-benchmark run or a manually
  /// timed section). These are what scripts/bench_gate.sh compares against
  /// the committed baselines, so names must be stable across runs.
  void add_timing(const std::string& name, double real_ms, double cpu_ms,
                  std::int64_t iterations) {
    obs::Json t = obs::Json::object();
    t.set("name", obs::Json(name));
    t.set("real_ms", obs::Json(real_ms));
    t.set("cpu_ms", obs::Json(cpu_ms));
    t.set("iterations", obs::Json(static_cast<double>(iterations)));
    timings_.push_back(std::move(t));
  }

  /// Writes BENCH_<name>.json in the working directory.
  void write_json() const {
    obs::Json doc = obs::Json::object();
    doc.set("schema", obs::Json("tveg-bench-1"));
    doc.set("bench", obs::Json(name_));
    doc.set("config", config_);
    obs::Json series = obs::Json::array();
    for (const auto& s : series_) series.push_back(s);
    doc.set("series", std::move(series));
    obs::Json timings = obs::Json::array();
    for (const auto& t : timings_) timings.push_back(t);
    doc.set("timings", std::move(timings));
    doc.set("obs", obs::snapshot());
    // Per-phase attribution (count, wall_ms, p50/p95/p99 duration): the
    // bench gate joins this against the committed baseline to name the
    // phase responsible when a top-level timing regresses.
    doc.set("phases", obs::phase_attribution());

    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << doc.dump(2) << "\n";
    if (!out) throw std::runtime_error("cannot write " + path);
    std::cout << "\nreport written to " << path << "\n";
  }

 private:
  std::string name_;
  obs::Json config_ = obs::Json::object();
  std::vector<obs::Json> series_;
  std::vector<obs::Json> timings_;
};

}  // namespace tveg::bench
