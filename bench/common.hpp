// Shared helpers for the figure-reproduction benches. Every bench binary
// prints the same rows/series the paper's corresponding figure reports,
// as an aligned table followed by a CSV block.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "trace/generators.hpp"

namespace tveg::bench {

/// The paper's trace substitute: Haggle-like, ≈17000 s (Sec. VII). With
/// `ramped` the pair-activation ramp reproduces Fig. 7's degree warm-up;
/// without it the trace is stationary from t = 0, which the delay-sweep
/// figures need (their broadcasts start at t = 0).
inline trace::ContactTrace paper_trace(NodeId nodes, bool ramped,
                                       std::uint64_t seed = 1) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 17000;
  // Hold the expected social degree constant across N (a constant-density
  // population, as when sub-sampling one real trace): otherwise density —
  // and with it the broadcast advantage — grows with N and inverts the
  // paper's "more nodes cost more energy" trend.
  cfg.pair_probability =
      std::min(1.0, 9.0 / static_cast<double>(nodes - 1));
  cfg.activation_ramp_end = ramped ? 8000 : 500;
  cfg.seed = seed;
  return trace::generate_haggle_like(cfg);
}

/// Sources a figure point is averaged over (the paper picks a random
/// source; we average a fixed panel for stable series).
inline std::vector<NodeId> source_panel(NodeId nodes, std::size_t count = 6) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(static_cast<NodeId>((i * 7 + 1) % nodes));
  return out;
}

/// One figure point: algorithm × (trace view) × deadline, averaged over the
/// source panel. Returns (mean normalized energy, coverage fraction).
struct PointStats {
  double mean_energy = 0;
  double covered_fraction = 0;
  std::size_t runs = 0;
};

inline PointStats run_point(const sim::Workbench& bench, sim::Algorithm algo,
                            const std::vector<NodeId>& sources,
                            Time deadline) {
  support::RunningStat energy;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto outcome =
        bench.run(algo, sources[i], deadline, /*seed=*/i + 1);
    if (outcome.covered_all && outcome.allocation_feasible) {
      energy.add(outcome.normalized_energy);
      ++covered;
    }
  }
  PointStats stats;
  stats.runs = sources.size();
  stats.covered_fraction =
      static_cast<double>(covered) / static_cast<double>(sources.size());
  stats.mean_energy = energy.empty() ? 0.0 : energy.mean();
  return stats;
}

/// Sweep of one algorithm over deadlines, averaged over the subset of
/// sources that is feasible at EVERY deadline — otherwise the set of
/// averaged sources shifts between points and the series picks up jumps
/// unrelated to the delay constraint.
inline std::vector<double> consistent_sweep(const sim::Workbench& bench,
                                            sim::Algorithm algo,
                                            const std::vector<NodeId>& sources,
                                            const std::vector<Time>& deadlines) {
  const std::size_t s = sources.size(), d = deadlines.size();
  std::vector<std::vector<double>> energy(d, std::vector<double>(s, -1));
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t i = 0; i < s; ++i) {
      const auto outcome =
          bench.run(algo, sources[i], deadlines[j], /*seed=*/i + 1);
      if (outcome.covered_all && outcome.allocation_feasible)
        energy[j][i] = outcome.normalized_energy;
    }
  std::vector<char> keep(s, 1);
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t j = 0; j < d; ++j)
      if (energy[j][i] < 0) keep[i] = 0;

  std::vector<double> means(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    support::RunningStat stat;
    for (std::size_t i = 0; i < s; ++i)
      if (keep[i]) stat.add(energy[j][i]);
    means[j] = stat.empty() ? 0.0 : stat.mean();
  }
  return means;
}

/// Prints a table twice: aligned text and CSV (machine-readable).
inline void emit(const std::string& title, const support::Table& table) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "-- csv --\n";
  table.print_csv(std::cout);
}

}  // namespace tveg::bench
