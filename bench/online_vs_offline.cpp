// Extension bench: the value of future knowledge. The paper's schedulers
// are offline oracles (full TVEG, future included); deployed nodes can only
// run online policies. Compares normalized energy and coverage of both
// worlds on the paper-scale workload.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "online/driver.hpp"

using namespace tveg;
using support::Table;

int main() {
  bench::Report report("online_vs_offline");
  // Wall-clock the whole comparison so scripts/bench_gate.sh can diff this
  // bench against its committed baseline too (it has no google-benchmark
  // timing loop of its own).
  const auto wall_start = std::chrono::steady_clock::now();
  const NodeId n = 20;
  report.set_config("nodes", static_cast<double>(n));
  const auto trace = bench::paper_trace(n, /*ramped=*/false);
  const sim::Workbench bench(trace, sim::paper_radio());
  const auto sources = bench::source_panel(n);

  online::EpidemicPolicy epidemic;
  online::DeadlineAwarePolicy aware2(2), aware3(3);
  online::GossipPolicy gossip(0.5);
  struct Entry {
    const char* name;
    online::Policy* policy;  // null = offline algorithm below
    sim::Algorithm offline;
  };
  const Entry entries[] = {
      {"EEDCB (offline oracle)", nullptr, sim::Algorithm::kEedcb},
      {"GREED (offline)", nullptr, sim::Algorithm::kGreed},
      {"online epidemic", &epidemic, sim::Algorithm::kEedcb},
      {"online deadline-aware(2)", &aware2, sim::Algorithm::kEedcb},
      {"online deadline-aware(3)", &aware3, sim::Algorithm::kEedcb},
      {"online gossip(0.5)", &gossip, sim::Algorithm::kEedcb},
  };

  Table table({"scheduler", "T=2000", "T=4000", "T=6000", "coverage"});
  for (const Entry& entry : entries) {
    std::vector<std::string> row{entry.name};
    double covered = 0, runs = 0;
    for (Time deadline : {2000.0, 4000.0, 6000.0}) {
      support::RunningStat energy;
      for (std::size_t i = 0; i < sources.size(); ++i) {
        core::SchedulerResult r;
        if (entry.policy) {
          const auto inst = bench.step_instance(sources[i], deadline);
          r = run_online(inst, bench.dts(), *entry.policy, {.seed = i + 1});
        } else {
          const auto outcome =
              bench.run(entry.offline, sources[i], deadline, i + 1);
          r.schedule = outcome.schedule;
          r.covered_all = outcome.covered_all;
        }
        ++runs;
        if (r.covered_all) {
          covered += 1;
          const auto inst = bench.step_instance(sources[i], deadline);
          energy.add(core::normalized_energy(inst, r.schedule));
        }
      }
      row.push_back(energy.empty() ? "-" : Table::fmt(energy.mean(), 1));
    }
    row.push_back(Table::fmt(covered / runs, 2));
    table.add_row(std::move(row));
  }

  report.emit("Online policies vs offline oracles — normalized energy "
              "(static channel)",
              table);
  std::cout << "\nExpected: offline EEDCB cheapest (it sees the future); "
               "deadline-aware online\npolicies close much of the epidemic "
               "gap by waiting for multi-neighbor moments.\n";
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  report.add_timing("online_vs_offline/full", wall_ms, wall_ms, 1);
  report.write_json();
  return 0;
}
