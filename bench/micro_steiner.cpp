// Microbenchmark — directed Steiner solvers on real auxiliary graphs:
// runtime and tree cost of SPT+prune vs recursive greedy level 1/2
// (the quality/time tradeoff behind EEDCB's O(N^ε) knob).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "bench/timing.hpp"
#include "core/aux_graph.hpp"
#include "core/ed_weight_cache.hpp"
#include "core/eedcb.hpp"
#include "core/solve_many.hpp"
#include "graph/steiner.hpp"
#include "support/thread_pool.hpp"

using namespace tveg;

namespace {

struct Fixture {
  std::unique_ptr<core::Tveg> tveg;
  std::unique_ptr<DiscreteTimeSet> dts;
  std::unique_ptr<core::AuxGraph> aux;

  explicit Fixture(NodeId nodes) {
    trace::HaggleLikeConfig cfg;
    cfg.nodes = nodes;
    cfg.horizon = 17000;
    cfg.pair_probability = 0.5;
    cfg.activation_ramp_end = 500;
    cfg.seed = 1;
    tveg = std::make_unique<core::Tveg>(
        trace::generate_haggle_like(cfg), sim::paper_radio(),
        core::Tveg::Options{.model = channel::ChannelModel::kStep});
    dts = std::make_unique<DiscreteTimeSet>(tveg->build_dts());
    const core::TmedbInstance inst{tveg.get(), 0, 6000.0};
    aux = std::make_unique<core::AuxGraph>(inst, *dts);
  }
};

void BM_SteinerSpt(benchmark::State& state) {
  Fixture f(static_cast<NodeId>(state.range(0)));
  double cost = 0;
  for (auto _ : state) {
    graph::SteinerSolver solver(f.aux->digraph());
    const auto tree = solver.shortest_path_heuristic(f.aux->source_vertex(),
                                                     f.aux->terminals());
    cost = tree.cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["tree_cost_norm"] =
      cost / (sim::paper_radio().noise_density *
              sim::paper_radio().gamma_linear());
}
BENCHMARK(BM_SteinerSpt)->Arg(10)->Arg(20)->Arg(30);

void BM_SteinerGreedy(benchmark::State& state) {
  Fixture f(static_cast<NodeId>(state.range(0)));
  const int level = static_cast<int>(state.range(1));
  double cost = 0;
  for (auto _ : state) {
    graph::SteinerSolver solver(f.aux->digraph());
    const auto tree = solver.recursive_greedy(f.aux->source_vertex(),
                                              f.aux->terminals(), level);
    cost = tree.cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["tree_cost_norm"] =
      cost / (sim::paper_radio().noise_density *
              sim::paper_radio().gamma_linear());
}
BENCHMARK(BM_SteinerGreedy)
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({20, 1})
    ->Args({20, 2})
    ->Args({30, 2});

void BM_AuxGraphBuild(benchmark::State& state) {
  const auto nodes = static_cast<NodeId>(state.range(0));
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 17000;
  cfg.pair_probability = 0.5;
  cfg.activation_ramp_end = 500;
  cfg.seed = 1;
  const core::Tveg tveg(trace::generate_haggle_like(cfg), sim::paper_radio(),
                        {.model = channel::ChannelModel::kStep});
  const auto dts = tveg.build_dts();
  const core::TmedbInstance inst{&tveg, 0, 6000.0};
  std::size_t arcs = 0;
  for (auto _ : state) {
    const core::AuxGraph aux(inst, dts);
    arcs = aux.arc_count();
    benchmark::DoNotOptimize(arcs);
  }
  state.counters["aux_arcs"] = static_cast<double>(arcs);
}
BENCHMARK(BM_AuxGraphBuild)->Arg(10)->Arg(20)->Arg(30);

// ---------------------------------------------------------------------------
// Full-pipeline benchmarks for the parallel solve path (DESIGN.md "Parallel
// solve & caching"): serial memo-free oracle vs EdWeightCache + 8-thread
// pool, and per-request loops vs solve_many batching. Rician channels make
// every min-cost evaluation a bisection over Marcum-Q tail sums — the
// workload the cache exists for. scripts/bench_gate.sh asserts the cached +
// pooled pipeline is >= 2x the serial baseline on the largest scenario here.

support::ThreadPool& bench_pool() {
  static support::ThreadPool pool(8);
  return pool;
}

core::Tveg pipeline_tveg(NodeId nodes) {
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 17000;
  cfg.pair_probability = 0.5;
  cfg.activation_ramp_end = 500;
  cfg.seed = 1;
  return core::Tveg(
      trace::generate_haggle_like(cfg), sim::paper_radio(),
      core::Tveg::Options{.model = channel::ChannelModel::kRician});
}

void BM_EedcbPipelineSerial(benchmark::State& state) {
  const core::Tveg tveg = pipeline_tveg(static_cast<NodeId>(state.range(0)));
  const core::TmedbInstance inst{&tveg, 0, 6000.0};
  for (auto _ : state) {
    const auto r = core::run_eedcb(inst, core::EedcbOptions{});
    benchmark::DoNotOptimize(r.schedule.total_cost());
  }
}
BENCHMARK(BM_EedcbPipelineSerial)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_EedcbPipelineCachedPool(benchmark::State& state) {
  core::Tveg tveg = pipeline_tveg(static_cast<NodeId>(state.range(0)));
  tveg.attach_cache(std::make_shared<core::EdWeightCache>());
  const core::TmedbInstance inst{&tveg, 0, 6000.0};
  core::EedcbOptions options;
  options.pool = &bench_pool();
  for (auto _ : state) {
    const auto r = core::run_eedcb(inst, options);
    benchmark::DoNotOptimize(r.schedule.total_cost());
  }
}
BENCHMARK(BM_EedcbPipelineCachedPool)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

std::vector<core::SolveRequest> sweep_requests(NodeId nodes) {
  std::vector<core::SolveRequest> requests;
  for (NodeId s : bench::source_panel(nodes))
    requests.push_back({.source = s, .deadline = 6000.0});
  return requests;
}

void BM_SweepPerRequestLoop(benchmark::State& state) {
  core::Tveg tveg = pipeline_tveg(static_cast<NodeId>(state.range(0)));
  tveg.attach_cache(std::make_shared<core::EdWeightCache>());
  const auto requests = sweep_requests(static_cast<NodeId>(state.range(0)));
  core::EedcbOptions options;
  options.pool = &bench_pool();
  for (auto _ : state) {
    double total = 0;
    for (const auto& req : requests)
      total += core::run_eedcb(core::to_instance(tveg, req), options)
                   .schedule.total_cost();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SweepPerRequestLoop)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_SweepSolveManyBatch(benchmark::State& state) {
  core::Tveg tveg = pipeline_tveg(static_cast<NodeId>(state.range(0)));
  tveg.attach_cache(std::make_shared<core::EdWeightCache>());
  const auto requests = sweep_requests(static_cast<NodeId>(state.range(0)));
  core::EedcbOptions options;
  options.pool = &bench_pool();
  for (auto _ : state) {
    double total = 0;
    for (const auto& r : core::solve_many(tveg, requests, options))
      total += r.schedule.total_cost();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SweepSolveManyBatch)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

// Shared microbench main: timings are mirrored into BENCH_micro_steiner.json
// for scripts/bench_gate.sh, and the report is written only after the timing
// loops finish.
int main(int argc, char** argv) {
  return tveg::bench::run_microbench(argc, argv, "micro_steiner");
}
