// Microbenchmark — directed Steiner solvers on real auxiliary graphs:
// runtime and tree cost of SPT+prune vs recursive greedy level 1/2
// (the quality/time tradeoff behind EEDCB's O(N^ε) knob).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.hpp"
#include "core/aux_graph.hpp"
#include "graph/steiner.hpp"

using namespace tveg;

namespace {

struct Fixture {
  std::unique_ptr<core::Tveg> tveg;
  std::unique_ptr<DiscreteTimeSet> dts;
  std::unique_ptr<core::AuxGraph> aux;

  explicit Fixture(NodeId nodes) {
    trace::HaggleLikeConfig cfg;
    cfg.nodes = nodes;
    cfg.horizon = 17000;
    cfg.pair_probability = 0.5;
    cfg.activation_ramp_end = 500;
    cfg.seed = 1;
    tveg = std::make_unique<core::Tveg>(
        trace::generate_haggle_like(cfg), sim::paper_radio(),
        core::Tveg::Options{.model = channel::ChannelModel::kStep});
    dts = std::make_unique<DiscreteTimeSet>(tveg->build_dts());
    const core::TmedbInstance inst{tveg.get(), 0, 6000.0};
    aux = std::make_unique<core::AuxGraph>(inst, *dts);
  }
};

void BM_SteinerSpt(benchmark::State& state) {
  Fixture f(static_cast<NodeId>(state.range(0)));
  double cost = 0;
  for (auto _ : state) {
    graph::SteinerSolver solver(f.aux->digraph());
    const auto tree = solver.shortest_path_heuristic(f.aux->source_vertex(),
                                                     f.aux->terminals());
    cost = tree.cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["tree_cost_norm"] =
      cost / (sim::paper_radio().noise_density *
              sim::paper_radio().gamma_linear());
}
BENCHMARK(BM_SteinerSpt)->Arg(10)->Arg(20)->Arg(30);

void BM_SteinerGreedy(benchmark::State& state) {
  Fixture f(static_cast<NodeId>(state.range(0)));
  const int level = static_cast<int>(state.range(1));
  double cost = 0;
  for (auto _ : state) {
    graph::SteinerSolver solver(f.aux->digraph());
    const auto tree = solver.recursive_greedy(f.aux->source_vertex(),
                                              f.aux->terminals(), level);
    cost = tree.cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["tree_cost_norm"] =
      cost / (sim::paper_radio().noise_density *
              sim::paper_radio().gamma_linear());
}
BENCHMARK(BM_SteinerGreedy)
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({20, 1})
    ->Args({20, 2})
    ->Args({30, 2});

void BM_AuxGraphBuild(benchmark::State& state) {
  const auto nodes = static_cast<NodeId>(state.range(0));
  trace::HaggleLikeConfig cfg;
  cfg.nodes = nodes;
  cfg.horizon = 17000;
  cfg.pair_probability = 0.5;
  cfg.activation_ramp_end = 500;
  cfg.seed = 1;
  const core::Tveg tveg(trace::generate_haggle_like(cfg), sim::paper_radio(),
                        {.model = channel::ChannelModel::kStep});
  const auto dts = tveg.build_dts();
  const core::TmedbInstance inst{&tveg, 0, 6000.0};
  std::size_t arcs = 0;
  for (auto _ : state) {
    const core::AuxGraph aux(inst, dts);
    arcs = aux.arc_count();
    benchmark::DoNotOptimize(arcs);
  }
  state.counters["aux_arcs"] = static_cast<double>(arcs);
}
BENCHMARK(BM_AuxGraphBuild)->Arg(10)->Arg(20)->Arg(30);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the obs snapshot is taken and
// the BENCH report written only after the timing loops finish, so the
// reporting itself never shows up in the measurements.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tveg::bench::Report report("micro_steiner");
  report.write_json();
  return 0;
}
