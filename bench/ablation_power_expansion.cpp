// Ablation — the power-level (broadcast-advantage) expansion of Sec. VI-A
// versus naive per-edge weights in the auxiliary graph (DESIGN.md,
// interpretive decision 2).
//
// Reports, per deadline: the Steiner tree cost the optimizer sees, and the
// realized schedule cost after extraction (+ coalescing + pruning). The
// expansion should win on both, most visibly on the tree objective.
#include <iostream>

#include "bench/common.hpp"
#include "core/eedcb.hpp"

using namespace tveg;
using bench::emit;
using bench::paper_trace;
using support::Table;

int main() {
  bench::Report report("ablation_power_expansion");
  const NodeId n = 20;
  report.set_config("nodes", static_cast<double>(n));
  const auto trace = paper_trace(n, /*ramped=*/false);
  const auto radio = sim::paper_radio();
  const core::Tveg tveg(trace, radio,
                        {.model = channel::ChannelModel::kStep});
  const auto dts = tveg.build_dts();
  const double unit = radio.noise_density * radio.gamma_linear();

  Table table({"deadline_s", "schedule_with", "schedule_without",
               "overhead_pct"});
  for (Time deadline = 2000; deadline <= 6000; deadline += 1000) {
    support::RunningStat with_cost, without_cost;
    for (NodeId src : bench::source_panel(n, 4)) {
      const core::TmedbInstance inst{&tveg, src, deadline};
      core::EedcbOptions opt;
      opt.method = core::SteinerMethod::kRecursiveGreedy;
      opt.steiner_level = 2;
      opt.power_expansion = true;
      const auto with = run_eedcb(inst, dts, opt);
      opt.power_expansion = false;
      const auto without = run_eedcb(inst, dts, opt);
      if (!with.covered_all || !without.covered_all) continue;
      with_cost.add(with.schedule.total_cost() / unit);
      without_cost.add(without.schedule.total_cost() / unit);
    }
    if (with_cost.empty()) continue;
    const double overhead =
        100.0 * (without_cost.mean() - with_cost.mean()) / with_cost.mean();
    table.add_row({Table::fmt(deadline, 0), Table::fmt(with_cost.mean(), 2),
                   Table::fmt(without_cost.mean(), 2),
                   Table::fmt(overhead, 1)});
  }
  report.emit(
      "Ablation: auxiliary-graph power-level expansion (normalized energy)",
      table);
  std::cout << "\nExpected: the per-edge (without) variant pays more; the "
               "expansion realizes Property 6.1's broadcast nature.\n";
  report.write_json();
  return 0;
}
