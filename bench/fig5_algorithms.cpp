// Fig. 5 — delay-energy tradeoff of all algorithms at N = 20:
//   (a) static channel:  EEDCB < GREED < RAND,
//   (b) Rayleigh fading: FR-EEDCB < FR-GREED < FR-RAND.
#include <iostream>

#include "bench/common.hpp"

using namespace tveg;
using bench::emit;
using bench::paper_trace;
using bench::run_point;
using bench::source_panel;
using support::Table;

int main() {
  bench::Report report("fig5_algorithms");
  const NodeId n = 20;
  report.set_config("nodes", static_cast<double>(n));
  const sim::Workbench bench(paper_trace(n, /*ramped=*/false),
                             sim::paper_radio());
  const auto sources = source_panel(n);
  std::vector<Time> deadlines;
  for (Time t = 2000; t <= 6000; t += 500) deadlines.push_back(t);

  auto sweep_table = [&](const char* title,
                         std::initializer_list<sim::Algorithm> algos,
                         std::vector<std::string> headers) {
    Table table(std::move(headers));
    std::vector<std::vector<double>> series;
    for (sim::Algorithm a : algos)
      series.push_back(bench::consistent_sweep(bench, a, sources, deadlines));
    for (std::size_t j = 0; j < deadlines.size(); ++j) {
      std::vector<std::string> row{Table::fmt(deadlines[j], 0)};
      for (const auto& s : series) row.push_back(Table::fmt(s[j], 2));
      table.add_row(std::move(row));
    }
    report.emit(title, table);
  };

  sweep_table("Fig. 5(a): static channel — normalized energy vs delay "
              "constraint",
              {sim::Algorithm::kEedcb, sim::Algorithm::kGreed,
               sim::Algorithm::kRand},
              {"deadline_s", "EEDCB", "GREED", "RAND"});
  sweep_table("Fig. 5(b): Rayleigh fading — normalized energy vs delay "
              "constraint",
              {sim::Algorithm::kFrEedcb, sim::Algorithm::kFrGreed,
               sim::Algorithm::kFrRand},
              {"deadline_s", "FR-EEDCB", "FR-GREED", "FR-RAND"});
  std::cout << "\nExpected ordering per row: EEDCB < GREED < RAND and "
               "FR-EEDCB < FR-GREED < FR-RAND.\n";
  report.write_json();
  return 0;
}
