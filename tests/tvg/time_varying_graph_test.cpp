#include "tvg/time_varying_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/math.hpp"

namespace tveg {
namespace {

/// 4-node line TVG with staggered contacts:
///   0-1 on [0, 10), 1-2 on [5, 15), 2-3 on [12, 20).
TimeVaryingGraph line_graph(Time tau = 1.0) {
  TimeVaryingGraph g(4, 20.0, tau);
  g.add_contact(0, 1, 0.0, 10.0);
  g.add_contact(1, 2, 5.0, 15.0);
  g.add_contact(2, 3, 12.0, 20.0);
  return g;
}

TEST(TimeVaryingGraph, BasicConstruction) {
  const auto g = line_graph();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_DOUBLE_EQ(g.horizon(), 20.0);
  EXPECT_DOUBLE_EQ(g.latency(), 1.0);
}

TEST(TimeVaryingGraph, RejectsInvalidContacts) {
  TimeVaryingGraph g(3, 10.0, 0.0);
  EXPECT_THROW(g.add_contact(0, 0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(g.add_contact(0, 5, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(g.add_contact(0, 1, 2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(g.add_contact(0, 1, 1.0, 12.0), std::invalid_argument);
}

TEST(TimeVaryingGraph, PresenceIsSymmetric) {
  const auto g = line_graph();
  EXPECT_TRUE(g.present(0, 1, 5.0));
  EXPECT_TRUE(g.present(1, 0, 5.0));
  EXPECT_FALSE(g.present(0, 1, 10.0));
  EXPECT_FALSE(g.present(0, 2, 5.0));  // no edge
}

TEST(TimeVaryingGraph, AdjacencyRequiresFullTraversalWindow) {
  const auto g = line_graph(1.0);
  EXPECT_TRUE(g.adjacent(0, 1, 0.0));
  EXPECT_TRUE(g.adjacent(0, 1, 9.0));   // finishes exactly at contact end
  EXPECT_FALSE(g.adjacent(0, 1, 9.5));  // would finish at 10.5
}

TEST(TimeVaryingGraph, AdjacencyAtZeroLatencyMatchesPresence) {
  const auto g = line_graph(0.0);
  EXPECT_TRUE(g.adjacent(0, 1, 9.99));
  EXPECT_FALSE(g.adjacent(0, 1, 10.0));
}

TEST(TimeVaryingGraph, NeighborsAt) {
  const auto g = line_graph(1.0);
  EXPECT_EQ(g.neighbors_at(1, 6.0), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(g.neighbors_at(1, 12.0), (std::vector<NodeId>{2}));
  EXPECT_TRUE(g.neighbors_at(3, 0.0).empty());
}

TEST(TimeVaryingGraph, NextValidStart) {
  const auto g = line_graph(1.0);
  EXPECT_DOUBLE_EQ(g.next_valid_start(0, 1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(g.next_valid_start(2, 3, 0.0), 12.0);
  EXPECT_DOUBLE_EQ(g.next_valid_start(0, 1, 8.5), 8.5);
  EXPECT_TRUE(std::isinf(g.next_valid_start(0, 1, 9.5)));
}

TEST(TimeVaryingGraph, EdgeIdLookup) {
  const auto g = line_graph();
  EXPECT_NE(g.edge_id(0, 1), static_cast<std::size_t>(-1));
  EXPECT_EQ(g.edge_id(0, 1), g.edge_id(1, 0));
  EXPECT_EQ(g.edge_id(0, 3), static_cast<std::size_t>(-1));
}

TEST(TimeVaryingGraph, PairPartitionBoundaries) {
  const auto g = line_graph(1.0);
  // Contact [0,10) with tau 1 → adjacency start-interval [0, 9].
  const Partition p = g.pair_partition(0, 1);
  EXPECT_TRUE(p.contains(0.0));
  EXPECT_TRUE(p.contains(9.0));
  EXPECT_TRUE(p.contains(20.0));
}

TEST(TimeVaryingGraph, AdjacentPartitionCombinesPairs) {
  const auto g = line_graph(1.0);
  const Partition p = g.adjacent_partition(1);
  // From 0-1: 0, 9. From 1-2: 5, 14. Plus span ends.
  EXPECT_TRUE(p.contains(0.0));
  EXPECT_TRUE(p.contains(5.0));
  EXPECT_TRUE(p.contains(9.0));
  EXPECT_TRUE(p.contains(14.0));
}

TEST(TimeVaryingGraph, EarliestArrivalChainsThroughTime) {
  const auto g = line_graph(1.0);
  const ArrivalInfo info = g.earliest_arrival(0, 0.0);
  EXPECT_DOUBLE_EQ(info.arrival[0], 0.0);
  EXPECT_DOUBLE_EQ(info.arrival[1], 1.0);   // 0→1 departs at 0
  EXPECT_DOUBLE_EQ(info.arrival[2], 6.0);   // 1→2 departs at 5
  EXPECT_DOUBLE_EQ(info.arrival[3], 13.0);  // 2→3 departs at 12
}

TEST(TimeVaryingGraph, EarliestArrivalRespectsStartTime) {
  const auto g = line_graph(1.0);
  const ArrivalInfo info = g.earliest_arrival(0, 9.5);
  // 0-1 contact closes for tau=1 transmissions after 9.0 — unreachable.
  EXPECT_TRUE(std::isinf(info.arrival[1]));
}

TEST(TimeVaryingGraph, EarliestArrivalBackwardInTimeImpossible) {
  const auto g = line_graph(1.0);
  // From node 3 at t=0: 2-3 opens at 12, but 1-2 closes at 15 (still open)
  // and 0-1 closes at 10 < 13 — node 0 unreachable (temporal asymmetry).
  const ArrivalInfo info = g.earliest_arrival(3, 0.0);
  EXPECT_DOUBLE_EQ(info.arrival[2], 13.0);
  EXPECT_DOUBLE_EQ(info.arrival[1], 14.0);
  EXPECT_TRUE(std::isinf(info.arrival[0]));
}

TEST(TimeVaryingGraph, ExtractJourneyIsTimeRespecting) {
  const auto g = line_graph(1.0);
  const ArrivalInfo info = g.earliest_arrival(0, 0.0);
  const Journey j = g.extract_journey(info, 3);
  ASSERT_EQ(j.topological_length(), 3u);
  EXPECT_EQ(j.hops[0].from, 0);
  EXPECT_EQ(j.hops[2].to, 3);
  for (std::size_t l = 1; l < j.hops.size(); ++l)
    EXPECT_GE(j.hops[l].depart, j.hops[l - 1].depart + g.latency());
  EXPECT_DOUBLE_EQ(j.departure(), 0.0);
  EXPECT_DOUBLE_EQ(j.arrival(1.0), 13.0);
}

TEST(TimeVaryingGraph, ExtractJourneyOfSourceIsEmpty) {
  const auto g = line_graph(1.0);
  const ArrivalInfo info = g.earliest_arrival(0, 0.0);
  EXPECT_TRUE(g.extract_journey(info, 0).empty());
}

TEST(TimeVaryingGraph, ReachableSetRespectsDeadline) {
  const auto g = line_graph(1.0);
  EXPECT_EQ(g.reachable_set(0, 0.0, 6.0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(g.reachable_set(0, 0.0, 20.0), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(g.reachable_set(0, 0.0, 0.5), (std::vector<NodeId>{0}));
}

TEST(TimeVaryingGraph, AverageDegree) {
  const auto g = line_graph(1.0);
  // At t=6: edges 0-1 and 1-2 adjacent → degree sum 4 over 4 nodes.
  EXPECT_DOUBLE_EQ(g.average_degree(6.0), 1.0);
  // At t=16: only 2-3 → 0.5.
  EXPECT_DOUBLE_EQ(g.average_degree(16.0), 0.5);
}

TEST(TimeVaryingGraph, OverlappingContactsMerge) {
  TimeVaryingGraph g(2, 10.0, 0.0);
  g.add_contact(0, 1, 1.0, 3.0);
  g.add_contact(0, 1, 2.0, 5.0);
  EXPECT_EQ(g.presence(0, 1).size(), 1u);
  EXPECT_TRUE(g.adjacent(0, 1, 4.0));
}

}  // namespace
}  // namespace tveg
