#include "tvg/interval_set.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/math.hpp"

namespace tveg {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0.0));
  EXPECT_DOUBLE_EQ(s.total_length(), 0.0);
}

TEST(IntervalSet, AddAndContainsHalfOpen) {
  IntervalSet s;
  s.add(1.0, 3.0);
  EXPECT_TRUE(s.contains(1.0));
  EXPECT_TRUE(s.contains(2.9));
  EXPECT_FALSE(s.contains(3.0));  // half-open right end
  EXPECT_FALSE(s.contains(0.999));
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.add(1.0, 3.0);
  s.add(2.0, 5.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].start, 1.0);
  EXPECT_DOUBLE_EQ(s.intervals()[0].end, 5.0);
}

TEST(IntervalSet, MergesTouching) {
  IntervalSet s;
  s.add(1.0, 2.0);
  s.add(2.0, 3.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.total_length(), 2.0);
}

TEST(IntervalSet, KeepsDisjoint) {
  IntervalSet s;
  s.add(1.0, 2.0);
  s.add(3.0, 4.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.total_length(), 2.0);
}

TEST(IntervalSet, RejectsEmptyInterval) {
  IntervalSet s;
  EXPECT_THROW(s.add(2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(s.add(3.0, 1.0), std::invalid_argument);
}

TEST(IntervalSet, ConstructorNormalizes) {
  IntervalSet s({{3.0, 4.0}, {1.0, 2.5}, {2.0, 3.5}});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].start, 1.0);
  EXPECT_DOUBLE_EQ(s.intervals()[0].end, 4.0);
}

TEST(IntervalSet, CoversClosedIncludesRightEndpoint) {
  IntervalSet s;
  s.add(1.0, 3.0);
  EXPECT_TRUE(s.covers_closed(1.0, 3.0));  // a transmission may end at 3.0
  EXPECT_TRUE(s.covers_closed(2.0, 2.5));
  EXPECT_FALSE(s.covers_closed(0.5, 2.0));
  EXPECT_FALSE(s.covers_closed(2.0, 3.1));
}

TEST(IntervalSet, CoversClosedAcrossGap) {
  IntervalSet s;
  s.add(0.0, 1.0);
  s.add(2.0, 3.0);
  EXPECT_FALSE(s.covers_closed(0.5, 2.5));
}

TEST(IntervalSet, Unite) {
  IntervalSet a, b;
  a.add(0.0, 2.0);
  b.add(1.0, 3.0);
  b.add(5.0, 6.0);
  const IntervalSet u = a.unite(b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u.total_length(), 4.0);
}

TEST(IntervalSet, Intersect) {
  IntervalSet a, b;
  a.add(0.0, 5.0);
  a.add(7.0, 9.0);
  b.add(3.0, 8.0);
  const IntervalSet i = a.intersect(b);
  ASSERT_EQ(i.size(), 2u);
  EXPECT_DOUBLE_EQ(i.intervals()[0].start, 3.0);
  EXPECT_DOUBLE_EQ(i.intervals()[0].end, 5.0);
  EXPECT_DOUBLE_EQ(i.intervals()[1].start, 7.0);
  EXPECT_DOUBLE_EQ(i.intervals()[1].end, 8.0);
}

TEST(IntervalSet, IntersectDisjointIsEmpty) {
  IntervalSet a, b;
  a.add(0.0, 1.0);
  b.add(2.0, 3.0);
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(IntervalSet, ComplementWithin) {
  IntervalSet s;
  s.add(1.0, 2.0);
  s.add(3.0, 4.0);
  const IntervalSet c = s.complement(0.0, 5.0);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.total_length(), 3.0);
  EXPECT_TRUE(c.contains(0.5));
  EXPECT_TRUE(c.contains(2.5));
  EXPECT_TRUE(c.contains(4.5));
  EXPECT_FALSE(c.contains(1.5));
}

TEST(IntervalSet, ComplementOfEmptyIsWhole) {
  IntervalSet s;
  const IntervalSet c = s.complement(0.0, 10.0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.total_length(), 10.0);
}

TEST(IntervalSet, DeMorganComplementOfUnion) {
  IntervalSet a, b;
  a.add(1.0, 3.0);
  b.add(2.0, 5.0);
  const IntervalSet lhs = a.unite(b).complement(0.0, 10.0);
  const IntervalSet rhs =
      a.complement(0.0, 10.0).intersect(b.complement(0.0, 10.0));
  EXPECT_EQ(lhs, rhs);
}

TEST(IntervalSet, ShrinkRight) {
  IntervalSet s;
  s.add(0.0, 10.0);
  s.add(20.0, 21.0);
  const IntervalSet shrunk = s.shrink_right(2.0);
  ASSERT_EQ(shrunk.size(), 1u);  // [20,21) shorter than tau drops out
  EXPECT_DOUBLE_EQ(shrunk.intervals()[0].end, 8.0);
}

TEST(IntervalSet, ShrinkRightZeroIsIdentity) {
  IntervalSet s;
  s.add(1.0, 2.0);
  EXPECT_EQ(s.shrink_right(0.0), s);
}

TEST(IntervalSet, BoundaryPointsSorted) {
  IntervalSet s;
  s.add(5.0, 6.0);
  s.add(1.0, 2.0);
  const auto pts = s.boundary_points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[0], 1.0);
  EXPECT_DOUBLE_EQ(pts[3], 6.0);
}

TEST(IntervalSet, NextPointIn) {
  IntervalSet s;
  s.add(2.0, 4.0);
  EXPECT_DOUBLE_EQ(s.next_point_in(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.next_point_in(3.0), 3.0);
  EXPECT_TRUE(std::isinf(s.next_point_in(4.0)));
}

}  // namespace
}  // namespace tveg
