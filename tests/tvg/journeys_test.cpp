#include "tvg/journeys.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/math.hpp"

namespace tveg {
namespace {

/// Diamond with a shortcut: 0-1-3 fast path (2 hops), 0-3 direct contact
/// later (1 hop, but arrives last). Latency 1.
///   0-1 on [0, 10), 1-3 on [2, 12), 0-3 on [20, 30), 0-2 on [0, 5).
TimeVaryingGraph diamond() {
  TimeVaryingGraph g(4, 40.0, 1.0);
  g.add_contact(0, 1, 0.0, 10.0);
  g.add_contact(1, 3, 2.0, 12.0);
  g.add_contact(0, 3, 20.0, 30.0);
  g.add_contact(0, 2, 0.0, 5.0);
  return g;
}

TEST(MinHop, CountsAndSource) {
  const auto g = diamond();
  const HopInfo info = min_hop_journeys(g, 0, 0.0);
  EXPECT_EQ(info.hops[0], 0);
  EXPECT_EQ(info.hops[1], 1);
  EXPECT_EQ(info.hops[2], 1);
  EXPECT_EQ(info.hops[3], 1);  // direct (slow) contact still counts 1 hop
  EXPECT_DOUBLE_EQ(info.arrival[0], 0.0);
  EXPECT_DOUBLE_EQ(info.arrival[1], 1.0);
  EXPECT_DOUBLE_EQ(info.arrival[3], 21.0);  // 1-hop arrival; 2-hop is faster
}

TEST(MinHop, HopBoundTightensArrival) {
  const auto g = diamond();
  // With unbounded hops (the earliest_arrival search) node 3 is reached at
  // 3.0 via 0→1→3; the 1-hop bound forces the 20 s direct contact.
  const ArrivalInfo foremost = g.earliest_arrival(0, 0.0);
  EXPECT_DOUBLE_EQ(foremost.arrival[3], 3.0);
  const HopInfo info = min_hop_journeys(g, 0, 0.0);
  EXPECT_GT(info.arrival[3], foremost.arrival[3]);
}

TEST(MinHop, UnreachableStaysMinusOne) {
  TimeVaryingGraph g(3, 10.0, 0.0);
  g.add_contact(0, 1, 0.0, 10.0);
  const HopInfo info = min_hop_journeys(g, 0, 0.0);
  EXPECT_EQ(info.hops[2], -1);
  EXPECT_TRUE(std::isinf(info.arrival[2]));
}

TEST(MinHop, LateStartLosesContacts) {
  const auto g = diamond();
  const HopInfo info = min_hop_journeys(g, 0, 15.0);
  EXPECT_EQ(info.hops[1], -1);  // 0-1 contact is over
  EXPECT_EQ(info.hops[3], 1);   // direct contact still ahead
}

TEST(LatestDepartures, BackwardChain) {
  // 0-1 on [0,10), 1-2 on [5,15); deliver to 2 by 12, τ = 1.
  TimeVaryingGraph g(3, 20.0, 1.0);
  g.add_contact(0, 1, 0.0, 10.0);
  g.add_contact(1, 2, 5.0, 15.0);
  const auto latest = latest_departures(g, 2, 12.0);
  EXPECT_DOUBLE_EQ(latest[2], 12.0);
  // 1 must transmit by 11 (arrive 12): last valid start is 11.
  EXPECT_DOUBLE_EQ(latest[1], 11.0);
  // 0 must hand to 1 while 0-1 lives: last start 9 (arrive 10 <= 11).
  EXPECT_DOUBLE_EQ(latest[0], 9.0);
}

TEST(LatestDepartures, TightDeadlinePropagates) {
  TimeVaryingGraph g(3, 20.0, 1.0);
  g.add_contact(0, 1, 0.0, 10.0);
  g.add_contact(1, 2, 5.0, 15.0);
  const auto latest = latest_departures(g, 2, 6.5);
  EXPECT_DOUBLE_EQ(latest[1], 5.5);  // arrive by 6.5 via contact from 5
  EXPECT_DOUBLE_EQ(latest[0], 4.5);
}

TEST(LatestDepartures, UnreachableIsMinusInfinity) {
  TimeVaryingGraph g(3, 20.0, 1.0);
  g.add_contact(0, 1, 0.0, 10.0);
  const auto latest = latest_departures(g, 2, 20.0);
  EXPECT_TRUE(std::isinf(latest[0]));
  EXPECT_LT(latest[0], 0);
}

TEST(LatestDepartures, ConsistentWithEarliestArrival) {
  // Wherever latest[v] >= t, a journey v→dst meeting the deadline must
  // exist from t — checked via forward search.
  const auto g = diamond();
  const Time deadline = 25.0;
  const auto latest = latest_departures(g, 3, deadline);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (latest[v] == -support::kInf) continue;
    const ArrivalInfo fwd = g.earliest_arrival(v, latest[v]);
    EXPECT_LE(fwd.arrival[3], deadline + 1e-9) << "node " << v;
  }
}

TEST(FastestJourney, PrefersWaitingForDirectContact) {
  // 0→3 via relay arrives at 3 (duration 3 from departure 0); waiting for
  // the direct 20 s contact gives duration 1 — strictly faster in-network.
  const auto g = diamond();
  const FastestJourney fj = fastest_journey(g, 0, 3, 0.0);
  ASSERT_TRUE(fj.exists);
  EXPECT_NEAR(fj.duration(), 1.0, 1e-6);
  EXPECT_GE(fj.departure, 20.0 - 1e-6);
  EXPECT_EQ(fj.journey.topological_length(), 1u);
}

TEST(FastestJourney, FallsBackToOnlyRoute) {
  TimeVaryingGraph g(3, 20.0, 1.0);
  g.add_contact(0, 1, 0.0, 10.0);
  g.add_contact(1, 2, 5.0, 15.0);
  const FastestJourney fj = fastest_journey(g, 0, 2, 0.0);
  ASSERT_TRUE(fj.exists);
  // Depart at 5 (not 0): 0→1 at 5 arrives 6, 1→2 at 6 arrives 7.
  EXPECT_NEAR(fj.duration(), 2.0, 1e-5);
}

TEST(FastestJourney, NoRouteNoResult) {
  TimeVaryingGraph g(2, 10.0, 1.0);
  const FastestJourney fj = fastest_journey(g, 0, 1, 0.0);
  EXPECT_FALSE(fj.exists);
}

TEST(Reachability, MatrixIsTemporallyAsymmetric) {
  TimeVaryingGraph g(3, 20.0, 1.0);
  g.add_contact(0, 1, 0.0, 5.0);
  g.add_contact(1, 2, 10.0, 15.0);
  const auto r = reachability_matrix(g, 0.0, 20.0);
  EXPECT_TRUE(r[0][2]);   // forward in time: 0→1 then 1→2
  EXPECT_FALSE(r[2][0]);  // backwards: 1-2 fires after 0-1 closed
  for (NodeId v = 0; v < 3; ++v) EXPECT_TRUE(r[v][v]);
}

TEST(Reachability, DeadlineShrinksTheMatrix) {
  TimeVaryingGraph g(3, 20.0, 1.0);
  g.add_contact(0, 1, 0.0, 5.0);
  g.add_contact(1, 2, 10.0, 15.0);
  const auto tight = reachability_matrix(g, 0.0, 8.0);
  EXPECT_TRUE(tight[0][1]);
  EXPECT_FALSE(tight[0][2]);  // second hop arrives at 11 > 8
}

}  // namespace
}  // namespace tveg
