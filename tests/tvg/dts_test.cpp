#include "tvg/dts.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tveg {
namespace {

TimeVaryingGraph line_graph(Time tau) {
  TimeVaryingGraph g(4, 20.0, tau);
  g.add_contact(0, 1, 0.0, 10.0);
  g.add_contact(1, 2, 5.0, 15.0);
  g.add_contact(2, 3, 12.0, 20.0);
  return g;
}

TEST(Dts, ContainsAdjacentPartitionPoints) {
  const auto g = line_graph(1.0);
  const auto dts = DiscreteTimeSet::build(g);
  // Node 1's adjacent partition: contact boundaries minus tau.
  EXPECT_TRUE(dts.contains(1, 0.0));
  EXPECT_TRUE(dts.contains(1, 5.0));
  EXPECT_TRUE(dts.contains(1, 9.0));
  EXPECT_TRUE(dts.contains(1, 14.0));
}

TEST(Dts, TauPropagationCreatesCascadePoints) {
  const auto g = line_graph(1.0);
  const auto dts = DiscreteTimeSet::build(g);
  // 0 may transmit at 0 → 1 informed at 1 → 1 may transmit at... the 1-2
  // contact opens later, but 1 is adjacent to 0 at 1 → 0 gains point 2.
  EXPECT_TRUE(dts.contains(1, 1.0));  // 0's point 0 + τ
  EXPECT_TRUE(dts.contains(0, 1.0));  // 1's point 0 (shared contact) + τ
  // 1 transmits at 5 (contact 1-2 opens) → 2 gains 6; 2-3 closed then, but
  // 2 is adjacent to 1 at 6 → 1 gains 7.
  EXPECT_TRUE(dts.contains(2, 6.0));
  EXPECT_TRUE(dts.contains(1, 7.0));
}

TEST(Dts, ZeroLatencySharesPointsAcrossComponent) {
  const auto g = line_graph(0.0);
  const auto dts = DiscreteTimeSet::build(g);
  // With τ = 0 the contact-open point of 1-2 (t = 5) propagates to node 0
  // (adjacent to 1 at 5) without creating new offsets.
  EXPECT_TRUE(dts.contains(0, 5.0));
}

TEST(Dts, PointsAreSortedAndBounded) {
  const auto g = line_graph(1.0);
  const auto dts = DiscreteTimeSet::build(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& pts = dts.points(v);
    EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
    EXPECT_GE(pts.front(), 0.0);
    EXPECT_LE(pts.back(), g.horizon());
    EXPECT_TRUE(dts.contains(v, 0.0));
  }
  EXPECT_FALSE(dts.truncated());
}

TEST(Dts, ExtraPointsAreIncludedAndPropagated) {
  const auto g = line_graph(1.0);
  DtsOptions options;
  options.extra_points.assign(4, {});
  options.extra_points[0] = {2.5};  // e.g. a channel breakpoint on node 0
  const auto dts = DiscreteTimeSet::build(g, options);
  EXPECT_TRUE(dts.contains(0, 2.5));
  EXPECT_TRUE(dts.contains(1, 3.5));  // 0 adjacent to 1 at 2.5 → 2.5 + τ
}

TEST(Dts, ExtraPointsArityChecked) {
  const auto g = line_graph(1.0);
  DtsOptions options;
  options.extra_points.assign(2, {});  // wrong: 4 nodes
  EXPECT_THROW(DiscreteTimeSet::build(g, options), std::invalid_argument);
}

TEST(Dts, TruncationFlag) {
  const auto g = line_graph(0.5);
  DtsOptions options;
  options.max_points_per_node = 3;
  const auto dts = DiscreteTimeSet::build(g, options);
  EXPECT_TRUE(dts.truncated());
  for (NodeId v = 0; v < 4; ++v) EXPECT_LE(dts.points(v).size(), 3u);
}

TEST(Dts, GlobalPointsSortedUnique) {
  const auto g = line_graph(1.0);
  const auto dts = DiscreteTimeSet::build(g);
  const auto pts = dts.global_points();
  EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GT(pts[i] - pts[i - 1], 1e-10);
  EXPECT_LE(pts.size(), dts.total_points());
}

TEST(Dts, LowerBoundSemantics) {
  const auto g = line_graph(1.0);
  const auto dts = DiscreteTimeSet::build(g);
  const auto& pts = dts.points(1);
  const std::size_t k = dts.lower_bound(1, 5.0);
  ASSERT_LT(k, pts.size());
  EXPECT_NEAR(pts[k], 5.0, 1e-9);
  EXPECT_EQ(dts.lower_bound(1, g.horizon() + 1.0), pts.size());
}

TEST(Dts, IsolatedNodeHasTrivialPartition) {
  TimeVaryingGraph g(3, 10.0, 1.0);
  g.add_contact(0, 1, 0.0, 10.0);
  const auto dts = DiscreteTimeSet::build(g);
  // Node 2 never meets anyone: only the span endpoints.
  EXPECT_EQ(dts.points(2).size(), 2u);
}

}  // namespace
}  // namespace tveg
