#include "tvg/partition.hpp"

#include <gtest/gtest.h>

namespace tveg {
namespace {

TEST(Partition, TrivialHasEndpoints) {
  Partition p(10.0);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.points().front(), 0.0);
  EXPECT_DOUBLE_EQ(p.points().back(), 10.0);
}

TEST(Partition, ConstructionSortsAndDedups) {
  Partition p(10.0, {5.0, 2.0, 5.0 + 1e-12, 8.0});
  ASSERT_EQ(p.size(), 5u);  // 0, 2, 5, 8, 10
  EXPECT_DOUBLE_EQ(p.points()[1], 2.0);
  EXPECT_DOUBLE_EQ(p.points()[2], 5.0);
}

TEST(Partition, DropsOutOfRangePoints) {
  Partition p(10.0, {-5.0, 3.0, 15.0});
  ASSERT_EQ(p.size(), 3u);  // 0, 3, 10
}

TEST(Partition, InsertNewPoint) {
  Partition p(10.0);
  EXPECT_TRUE(p.insert(4.0));
  EXPECT_FALSE(p.insert(4.0));          // duplicate
  EXPECT_FALSE(p.insert(4.0 + 1e-12));  // within tolerance
  EXPECT_EQ(p.size(), 3u);
}

TEST(Partition, InsertOutOfRangeIgnored) {
  Partition p(10.0);
  EXPECT_FALSE(p.insert(11.0));
  EXPECT_FALSE(p.insert(-1.0));
}

TEST(Partition, Contains) {
  Partition p(10.0, {3.0});
  EXPECT_TRUE(p.contains(3.0));
  EXPECT_TRUE(p.contains(3.0 + 1e-12));
  EXPECT_TRUE(p.contains(0.0));
  EXPECT_TRUE(p.contains(10.0));
  EXPECT_FALSE(p.contains(5.0));
}

TEST(Partition, IntervalIndex) {
  Partition p(10.0, {2.0, 7.0});  // points 0, 2, 7, 10
  EXPECT_EQ(p.interval_index(0.0), 0u);
  EXPECT_EQ(p.interval_index(1.9), 0u);
  EXPECT_EQ(p.interval_index(2.0), 1u);
  EXPECT_EQ(p.interval_index(6.5), 1u);
  EXPECT_EQ(p.interval_index(7.0), 2u);
  EXPECT_EQ(p.interval_index(10.0), 2u);  // horizon maps to last interval
}

TEST(Partition, IntervalStartIsEtLawCandidate) {
  Partition p(10.0, {2.0, 7.0});
  EXPECT_DOUBLE_EQ(p.interval_start(5.0), 2.0);
  EXPECT_DOUBLE_EQ(p.interval_start(8.0), 7.0);
}

TEST(Partition, IntervalIndexRejectsOutside) {
  Partition p(10.0);
  EXPECT_THROW(p.interval_index(-1.0), std::invalid_argument);
  EXPECT_THROW(p.interval_index(11.0), std::invalid_argument);
}

TEST(Partition, CombineIsOrderedUnion) {
  Partition a(10.0, {2.0, 6.0});
  Partition b(10.0, {4.0, 6.0});
  const Partition c = a.combine(b);
  ASSERT_EQ(c.size(), 5u);  // 0, 2, 4, 6, 10
  EXPECT_DOUBLE_EQ(c.points()[2], 4.0);
}

TEST(Partition, CombineRejectsDifferentHorizons) {
  Partition a(10.0), b(20.0);
  EXPECT_THROW(a.combine(b), std::invalid_argument);
}

TEST(Partition, CombineCommutative) {
  Partition a(10.0, {1.0, 5.0});
  Partition b(10.0, {3.0});
  EXPECT_EQ(a.combine(b), b.combine(a));
}

TEST(Partition, RejectsBadConstruction) {
  EXPECT_THROW(Partition(0.0), std::invalid_argument);
  EXPECT_THROW(Partition(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace tveg
