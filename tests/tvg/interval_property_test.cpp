// Randomized property tests for the interval algebra: every set operation
// is cross-checked against a dense point-sampling oracle.
#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"
#include "tvg/interval_set.hpp"

namespace tveg {
namespace {

constexpr double kSpan = 100.0;

IntervalSet random_set(support::Rng& rng, int max_intervals) {
  IntervalSet s;
  const int k = static_cast<int>(rng.uniform_int(std::uint64_t(max_intervals))) + 1;
  for (int i = 0; i < k; ++i) {
    const double a = rng.uniform(0.0, kSpan);
    const double len = rng.uniform(0.1, 20.0);
    s.add(a, std::min(a + len, kSpan + 25.0));
  }
  return s;
}

/// Dense sample points avoiding exact interval endpoints (endpoint behavior
/// is covered by the deterministic tests).
std::vector<double> probe_points() {
  std::vector<double> pts;
  for (double x = 0.05; x < kSpan + 25.0; x += 0.493) pts.push_back(x);
  return pts;
}

class IntervalAlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalAlgebraProperty, UnionMatchesPointwiseOr) {
  support::Rng rng(GetParam());
  const IntervalSet a = random_set(rng, 6);
  const IntervalSet b = random_set(rng, 6);
  const IntervalSet u = a.unite(b);
  for (double x : probe_points())
    EXPECT_EQ(u.contains(x), a.contains(x) || b.contains(x)) << "x=" << x;
}

TEST_P(IntervalAlgebraProperty, IntersectionMatchesPointwiseAnd) {
  support::Rng rng(GetParam() * 31 + 7);
  const IntervalSet a = random_set(rng, 6);
  const IntervalSet b = random_set(rng, 6);
  const IntervalSet i = a.intersect(b);
  for (double x : probe_points())
    EXPECT_EQ(i.contains(x), a.contains(x) && b.contains(x)) << "x=" << x;
}

TEST_P(IntervalAlgebraProperty, ComplementMatchesPointwiseNot) {
  support::Rng rng(GetParam() * 57 + 13);
  const IntervalSet a = random_set(rng, 6);
  const IntervalSet c = a.complement(0.0, kSpan + 25.0);
  for (double x : probe_points())
    EXPECT_EQ(c.contains(x), !a.contains(x)) << "x=" << x;
}

TEST_P(IntervalAlgebraProperty, NormalizationInvariants) {
  support::Rng rng(GetParam() * 101 + 3);
  const IntervalSet a = random_set(rng, 10);
  const auto& ivs = a.intervals();
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_LT(ivs[i].start, ivs[i].end);
    if (i > 0) {
      EXPECT_GT(ivs[i].start, ivs[i - 1].end);  // disjoint, sorted
    }
  }
}

TEST_P(IntervalAlgebraProperty, MeasureIsInclusionExclusion) {
  support::Rng rng(GetParam() * 211 + 5);
  const IntervalSet a = random_set(rng, 5);
  const IntervalSet b = random_set(rng, 5);
  const double lhs = a.unite(b).total_length() + a.intersect(b).total_length();
  const double rhs = a.total_length() + b.total_length();
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST_P(IntervalAlgebraProperty, ShrinkRightMatchesCoversClosed) {
  support::Rng rng(GetParam() * 577 + 1);
  const IntervalSet a = random_set(rng, 6);
  const double tau = rng.uniform(0.1, 5.0);
  const IntervalSet valid = a.shrink_right(tau);
  for (double x : probe_points()) {
    // Probe points avoid endpoints (almost surely, against the random τ),
    // so the half-open shrink and the closed-interval query agree.
    EXPECT_EQ(valid.contains(x), a.covers_closed(x, x + tau))
        << "x=" << x << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalAlgebraProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace tveg
