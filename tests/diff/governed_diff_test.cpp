// Differential suite for the governed batch (DESIGN.md "Resource
// governance"): with unlimited budgets, fault::solve_many_governed must be
// a pure reordering-free wrapper — schedules BYTE-identical to the
// ungoverned core::solve_many, transmission lists under exact double
// equality, same serialized text — across seeded random TVEGs, with and
// without cache + pool, and with a poisoned request planted mid-batch.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/ed_weight_cache.hpp"
#include "core/eedcb.hpp"
#include "core/schedule_io.hpp"
#include "core/solve_many.hpp"
#include "core/tveg.hpp"
#include "fault/govern.hpp"
#include "support/math.hpp"
#include "support/thread_pool.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace random_trace(std::uint64_t seed, int nodes) {
  trace::SnapshotConfig cfg;
  cfg.nodes = nodes;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.25 + 0.05 * static_cast<double>(seed % 4);
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

support::ThreadPool& pool() {
  static support::ThreadPool p(8);
  return p;
}

void expect_identical(const Schedule& oracle, const Schedule& candidate,
                      std::uint64_t seed) {
  ASSERT_EQ(oracle.transmissions().size(), candidate.transmissions().size())
      << "seed " << seed;
  EXPECT_TRUE(oracle.transmissions() == candidate.transmissions())
      << "seed " << seed << ": transmission lists differ";
  std::ostringstream a;
  std::ostringstream b;
  write_schedule(a, oracle);
  write_schedule(b, candidate);
  EXPECT_EQ(a.str(), b.str()) << "seed " << seed
                              << ": serialized schedules differ";
}

std::vector<SolveRequest> mixed_panel(int nodes) {
  std::vector<SolveRequest> requests;
  for (NodeId s = 0; s < nodes; ++s)
    requests.push_back({.source = s, .deadline = 200.0});
  for (NodeId s = 0; s < nodes; s += 2)
    requests.push_back({.source = s, .deadline = 120.0});
  requests.push_back({.source = 0, .deadline = 200.0, .targets = {1, 2}});
  return requests;
}

/// Ungoverned budgets: the governed batch must replicate solve_many's
/// grouping and solve path byte for byte, serial and pooled + cached.
TEST(GovernedDiff, UnlimitedBudgetsMatchSolveManyByteForByte) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const int nodes = 6;
    const trace::ContactTrace t = random_trace(seed, nodes);
    const Tveg serial(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    Tveg cached(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    cached.attach_cache(std::make_shared<EdWeightCache>());

    const std::vector<SolveRequest> requests = mixed_panel(nodes);
    const auto baseline = solve_many(serial, requests, {});

    fault::GovernOptions serial_opt;
    const auto governed_serial =
        fault::solve_many_governed(serial, requests, serial_opt);

    fault::GovernOptions pooled_opt;
    pooled_opt.eedcb.pool = &pool();
    const auto governed_pooled =
        fault::solve_many_governed(cached, requests, pooled_opt);

    ASSERT_EQ(governed_serial.size(), requests.size());
    ASSERT_EQ(governed_pooled.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(governed_serial[i].outcome.ok())
          << "seed " << seed << " request " << i;
      ASSERT_TRUE(governed_pooled[i].outcome.ok())
          << "seed " << seed << " request " << i;
      EXPECT_FALSE(governed_serial[i].degraded());
      expect_identical(baseline[i].schedule,
                       governed_serial[i].outcome.value().schedule, seed);
      expect_identical(baseline[i].schedule,
                       governed_pooled[i].outcome.value().schedule, seed);
    }
  }
}

/// One poisoned request planted mid-batch: every other request's schedule
/// must still be byte-identical to a baseline that never saw the poison.
TEST(GovernedDiff, PoisonedRequestLeavesEveryOtherScheduleIdentical) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int nodes = 6;
    const trace::ContactTrace t = random_trace(seed, nodes);
    const Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});

    std::vector<SolveRequest> requests = mixed_panel(nodes);
    const auto baseline = solve_many(tveg, requests, {});

    // Plant a request whose source does not exist in the middle of the
    // 200-deadline group.
    const std::size_t poison_at = 3;
    requests.insert(requests.begin() + static_cast<std::ptrdiff_t>(poison_at),
                    {.source = static_cast<NodeId>(nodes + 50),
                     .deadline = 200.0});

    const auto governed = fault::solve_many_governed(tveg, requests, {});
    ASSERT_EQ(governed.size(), requests.size());
    std::size_t baseline_index = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (i == poison_at) {
        ASSERT_FALSE(governed[i].outcome.ok()) << "seed " << seed;
        EXPECT_EQ(governed[i].outcome.error().code,
                  support::ErrorCode::kInternal);
        continue;
      }
      ASSERT_TRUE(governed[i].outcome.ok())
          << "seed " << seed << " request " << i;
      expect_identical(baseline[baseline_index].schedule,
                       governed[i].outcome.value().schedule, seed);
      ++baseline_index;
    }
  }
}

/// A bounded cache (byte pressure evicting whole shards mid-batch) must not
/// move a single bit of any schedule.
TEST(GovernedDiff, MemoryPressureEvictionsPreserveSchedules) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int nodes = 6;
    const trace::ContactTrace t = random_trace(seed, nodes);
    const Tveg serial(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    Tveg squeezed(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    support::MemBudget mem(8 * EdWeightCache::kApproxEntryBytes);
    EdWeightCache::Options cache_opt;
    cache_opt.mem = &mem;
    auto cache = std::make_shared<EdWeightCache>(cache_opt);
    squeezed.attach_cache(cache);

    const std::vector<SolveRequest> requests = mixed_panel(nodes);
    const auto baseline = solve_many(serial, requests, {});

    fault::GovernOptions options;
    options.mem = &mem;
    const auto governed =
        fault::solve_many_governed(squeezed, requests, options);
    ASSERT_EQ(governed.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(governed[i].outcome.ok())
          << "seed " << seed << " request " << i;
      expect_identical(baseline[i].schedule,
                       governed[i].outcome.value().schedule, seed);
    }
    // The tiny budget actually bit: shards were evicted under pressure.
    EXPECT_GT(cache->stats().pressure_evictions, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tveg::core
