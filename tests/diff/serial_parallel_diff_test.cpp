// Differential suite for the parallel solve pipeline (DESIGN.md "Parallel
// solve & caching"): over hundreds of seeded random TVEGs, the cached +
// pooled pipeline must produce schedules BYTE-identical — same transmission
// list under exact double equality, same serialized text — to the serial,
// memoization-free oracle. Any divergence, even in the last mantissa bit,
// is a bug: the parallel phases are designed as pure reorderings of the
// serial computation (indexed slots, in-order reductions), never as
// "close enough" recomputations.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/ed_weight_cache.hpp"
#include "core/eedcb.hpp"
#include "core/fr.hpp"
#include "core/schedule_io.hpp"
#include "core/solve_many.hpp"
#include "core/tveg.hpp"
#include "support/math.hpp"
#include "support/thread_pool.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace random_trace(std::uint64_t seed, int nodes) {
  trace::SnapshotConfig cfg;
  cfg.nodes = nodes;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.25 + 0.05 * static_cast<double>(seed % 4);
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

/// One worker pool for the whole suite; 8 threads regardless of the host's
/// core count — determinism must not depend on scheduling.
support::ThreadPool& pool() {
  static support::ThreadPool p(8);
  return p;
}

void expect_identical(const Schedule& oracle, const Schedule& candidate,
                      std::uint64_t seed) {
  ASSERT_EQ(oracle.transmissions().size(), candidate.transmissions().size())
      << "seed " << seed;
  EXPECT_TRUE(oracle.transmissions() == candidate.transmissions())
      << "seed " << seed << ": transmission lists differ";
  std::ostringstream a;
  std::ostringstream b;
  write_schedule(a, oracle);
  write_schedule(b, candidate);
  EXPECT_EQ(a.str(), b.str()) << "seed " << seed
                              << ": serialized schedules differ";
}

/// 200+ instances: serial uncached EEDCB (recursive greedy level 2 — the
/// method with the parallel density scan) against the cached + 8-thread
/// pipeline on a twin TVEG built from the same trace.
TEST(SerialParallelDiff, EedcbByteIdenticalAcross200Instances) {
  std::size_t solved = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const trace::ContactTrace t =
        random_trace(seed, 5 + static_cast<int>(seed % 4));
    const Tveg serial(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    Tveg parallel(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    parallel.attach_cache(std::make_shared<EdWeightCache>());

    const Time deadline = (seed % 3 == 0) ? 120.0 : 200.0;
    EedcbOptions serial_opt;
    serial_opt.method = SteinerMethod::kRecursiveGreedy;
    serial_opt.steiner_level = 2;
    EedcbOptions parallel_opt = serial_opt;
    parallel_opt.pool = &pool();

    const auto oracle =
        run_eedcb(TmedbInstance{&serial, 0, deadline}, serial_opt);
    const auto candidate =
        run_eedcb(TmedbInstance{&parallel, 0, deadline}, parallel_opt);
    ASSERT_EQ(oracle.covered_all, candidate.covered_all) << "seed " << seed;
    expect_identical(oracle.schedule, candidate.schedule, seed);
    if (oracle.covered_all) ++solved;
  }
  // The sweep must exercise real schedules, not trivially empty ones.
  EXPECT_GE(solved, 100u);
}

/// The shortest-path method and the power-expansion ablation take different
/// code paths through the aux graph — diff them too.
TEST(SerialParallelDiff, SptAndAblationByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const trace::ContactTrace t = random_trace(seed, 6);
    const Tveg serial(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    Tveg parallel(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    parallel.attach_cache(std::make_shared<EdWeightCache>());

    for (const bool expansion : {true, false}) {
      EedcbOptions serial_opt;
      serial_opt.method = SteinerMethod::kShortestPath;
      serial_opt.power_expansion = expansion;
      EedcbOptions parallel_opt = serial_opt;
      parallel_opt.pool = &pool();
      const auto oracle =
          run_eedcb(TmedbInstance{&serial, 0, 200.0}, serial_opt);
      const auto candidate =
          run_eedcb(TmedbInstance{&parallel, 0, 200.0}, parallel_opt);
      expect_identical(oracle.schedule, candidate.schedule, seed);
    }
  }
}

/// FR-EEDCB runs the same pipeline on fading weights and then the NLP; the
/// cache and pool must not move the allocation either.
TEST(SerialParallelDiff, FrEedcbByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const trace::ContactTrace t = random_trace(seed, 5);
    const Tveg serial(t, unit_radio(),
                      {.model = channel::ChannelModel::kRayleigh});
    Tveg parallel(t, unit_radio(),
                  {.model = channel::ChannelModel::kRayleigh});
    parallel.attach_cache(std::make_shared<EdWeightCache>());

    EedcbOptions serial_opt;
    EedcbOptions parallel_opt = serial_opt;
    parallel_opt.pool = &pool();
    const auto oracle = run_fr_eedcb(TmedbInstance{&serial, 0, 200.0},
                                     serial_opt);
    const auto candidate = run_fr_eedcb(TmedbInstance{&parallel, 0, 200.0},
                                        parallel_opt);
    ASSERT_EQ(oracle.feasible(), candidate.feasible()) << "seed " << seed;
    expect_identical(oracle.backbone.schedule, candidate.backbone.schedule,
                     seed);
    expect_identical(oracle.schedule(), candidate.schedule(), seed);
  }
}

/// solve_many over a mixed panel (every source, two deadlines, one
/// multicast request) against per-request run_eedcb — on top of cache +
/// pool, so the batch path composes with both tentpole levers.
TEST(SerialParallelDiff, SolveManyMatchesPerRequestRuns) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const int nodes = 6;
    const trace::ContactTrace t = random_trace(seed, nodes);
    const Tveg serial(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    Tveg batched(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    batched.attach_cache(std::make_shared<EdWeightCache>());

    std::vector<SolveRequest> requests;
    for (NodeId s = 0; s < nodes; ++s)
      requests.push_back({.source = s, .deadline = 200.0});
    for (NodeId s = 0; s < nodes; s += 2)
      requests.push_back({.source = s, .deadline = 120.0});
    requests.push_back({.source = 0, .deadline = 200.0, .targets = {1, 2}});

    EedcbOptions serial_opt;
    EedcbOptions batch_opt = serial_opt;
    batch_opt.pool = &pool();
    const auto batch = solve_many(batched, requests, batch_opt);
    ASSERT_EQ(batch.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto oracle =
          run_eedcb(to_instance(serial, requests[i]), serial_opt);
      ASSERT_EQ(oracle.covered_all, batch[i].covered_all)
          << "seed " << seed << " request " << i;
      expect_identical(oracle.schedule, batch[i].schedule, seed);
    }
  }
}

/// Running the same cached + pooled solve twice must be deterministic run
/// to run (warm cache vs cold cache included).
TEST(SerialParallelDiff, RepeatedCachedSolvesAreDeterministic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const trace::ContactTrace t = random_trace(seed, 7);
    Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    tveg.attach_cache(std::make_shared<EdWeightCache>());
    EedcbOptions opt;
    opt.pool = &pool();
    const auto first = run_eedcb(TmedbInstance{&tveg, 0, 200.0}, opt);
    const auto second = run_eedcb(TmedbInstance{&tveg, 0, 200.0}, opt);
    expect_identical(first.schedule, second.schedule, seed);
  }
}

}  // namespace
}  // namespace tveg::core
