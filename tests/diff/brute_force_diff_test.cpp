// Cross-checks of the parallel + cached pipeline against exhaustive ground
// truth on tiny instances:
//  * the exact Steiner solver run over the pooled aux graph must reproduce
//    brute_force_optimal's cost on step TVEGs with N <= 6, and
//  * FR-EEDCB's allocated cost must not beat an exhaustive search over
//    small (relay, time) backbones, each allocated by the same NLP —
//    extending the brute-force cross-check to the FR allocation stage.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/brute_force.hpp"
#include "core/ed_weight_cache.hpp"
#include "core/eedcb.hpp"
#include "core/energy_allocation.hpp"
#include "core/fr.hpp"
#include "core/solve_many.hpp"
#include "graph/steiner.hpp"
#include "support/math.hpp"
#include "support/thread_pool.hpp"
#include "trace/generators.hpp"

namespace tveg::core {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace random_trace(std::uint64_t seed, int nodes) {
  trace::SnapshotConfig cfg;
  cfg.nodes = nodes;
  cfg.slot = 25;
  cfg.horizon = 100;
  cfg.p = 0.35;
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

support::ThreadPool& pool() {
  static support::ThreadPool p(8);
  return p;
}

/// Exact Steiner over the pooled aux graph == brute-force optimum, N <= 6.
/// (Theorem 5.2 / reduction optimality, now pinned for the parallel path.)
TEST(BruteForceDiff, ExactPipelineMatchesBruteForceOnCachedParallelPath) {
  std::size_t feasible = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const trace::ContactTrace t =
        random_trace(seed, 4 + static_cast<int>(seed % 3));
    Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    tveg.attach_cache(std::make_shared<EdWeightCache>());
    const TmedbInstance inst{&tveg, 0, 100.0};

    const BruteForceResult opt = brute_force_optimal(inst);

    const DiscreteTimeSet dts = tveg.build_dts();
    const AuxGraph aux(inst, dts, {.pool = &pool()});
    graph::SteinerSolver solver(aux.digraph());
    solver.set_pool(&pool());
    const auto tree = solver.exact_small(aux.source_vertex(), aux.terminals());

    ASSERT_EQ(opt.feasible, tree.feasible) << "seed " << seed;
    if (!opt.feasible) continue;
    ++feasible;
    const Schedule schedule = aux.extract_schedule(tree);
    EXPECT_NEAR(schedule.total_cost(), opt.cost, 1e-9 * (1 + opt.cost))
        << "seed " << seed;
    EXPECT_TRUE(check_feasibility(inst, schedule).feasible) << "seed " << seed;
  }
  EXPECT_GE(feasible, 10u);
}

/// Heuristic pipeline (cached + pooled) stays above the optimum — sanity
/// that memoization never "improves" a schedule below what is possible.
TEST(BruteForceDiff, HeuristicsLowerBoundedByBruteForce) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const trace::ContactTrace t = random_trace(seed, 6);
    Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    tveg.attach_cache(std::make_shared<EdWeightCache>());
    const TmedbInstance inst{&tveg, 0, 100.0};

    const BruteForceResult opt = brute_force_optimal(inst);
    EedcbOptions options;
    options.pool = &pool();
    const SchedulerResult eedcb = run_eedcb(inst, options);
    ASSERT_EQ(opt.feasible, eedcb.covered_all) << "seed " << seed;
    if (!opt.feasible) continue;
    EXPECT_LE(opt.cost, eedcb.schedule.total_cost() + 1e-9) << "seed " << seed;
  }
}

/// Every (relay, time) backbone over the DTS up to `max_size`, allocated by
/// the same NLP the FR pipeline uses; returns the cheapest feasible total
/// (+inf when none).
Cost brute_force_fr_cost(const TmedbInstance& inst, std::size_t max_size) {
  struct Slot {
    NodeId relay;
    Time time;
  };
  std::vector<Slot> slots;
  const DiscreteTimeSet dts = inst.tveg->build_dts();
  for (NodeId i = 0; i < inst.tveg->node_count(); ++i)
    for (Time t : dts.points(i)) {
      if (t > inst.deadline) break;
      if (!inst.tveg->discrete_cost_set(i, t).empty())
        slots.push_back({i, t});
    }

  Cost best = support::kInf;
  // Enumerate subsets by bitmask, skipping those above max_size; slots.size()
  // stays small (tiny N, coarse DTS) so this is a few hundred allocations.
  const std::size_t count = slots.size();
  if (count >= 20) ADD_FAILURE() << "slot set too large: " << count;
  for (std::size_t mask = 1; mask < (std::size_t{1} << count); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) > max_size)
      continue;
    Schedule backbone;
    for (std::size_t s = 0; s < count; ++s)
      if (mask & (std::size_t{1} << s))
        backbone.add(slots[s].relay, slots[s].time, 1.0);
    const AllocationOutcome out = allocate_energy(inst, backbone);
    if (out.feasible && out.schedule.total_cost() < best)
      best = out.schedule.total_cost();
  }
  return best;
}

/// FR-EEDCB (cached + pooled) cannot beat the exhaustive backbone search
/// allocated by the same NLP.
TEST(BruteForceDiff, FrAllocationLowerBoundedByExhaustiveBackboneSearch) {
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trace::SnapshotConfig cfg;
    cfg.nodes = 4;
    cfg.slot = 50;
    cfg.horizon = 100;
    cfg.p = 0.5;
    cfg.seed = seed;
    Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
              {.model = channel::ChannelModel::kRayleigh});
    tveg.attach_cache(std::make_shared<EdWeightCache>());
    const TmedbInstance inst{&tveg, 0, 100.0};

    EedcbOptions options;
    options.pool = &pool();
    const FrResult fr = run_fr_eedcb(inst, options);
    const Cost bf = brute_force_fr_cost(inst, 3);
    if (!fr.feasible() || bf == support::kInf) continue;
    ++compared;
    EXPECT_GE(fr.schedule().total_cost(), bf - 1e-6 * (1 + bf))
        << "seed " << seed;
  }
  EXPECT_GE(compared, 3u);
}

}  // namespace
}  // namespace tveg::core
