#include "online/driver.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/energy_allocation.hpp"
#include "support/math.hpp"
#include "trace/generators.hpp"

namespace tveg::online {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// 0 meets 1 alone early; later 0 meets 1, 2, 3 simultaneously.
core::Tveg staged_star() {
  trace::ContactTrace t(4, 100.0);
  t.add({0, 1, 0.0, 20.0, 2.0});
  t.add({0, 1, 50.0, 90.0, 2.0});
  t.add({0, 2, 50.0, 90.0, 2.0});
  t.add({0, 3, 50.0, 90.0, 2.0});
  return core::Tveg(t, unit_radio(),
                    {.model = channel::ChannelModel::kStep});
}

TEST(Epidemic, TransmitsAtFirstOpportunity) {
  const core::Tveg tveg = staged_star();
  const core::TmedbInstance inst{&tveg, 0, 100.0};
  EpidemicPolicy policy;
  const auto r = run_online(inst, policy);
  ASSERT_TRUE(r.covered_all);
  // Epidemic pays twice: once for node 1 at t = 0, once for 2&3 at t = 50.
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_DOUBLE_EQ(r.schedule.transmissions()[0].time, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.total_cost(), 8.0);  // 4 + 4
  EXPECT_TRUE(core::check_feasibility(inst, r.schedule).feasible);
}

TEST(DeadlineAware, WaitsForTheGoodOpportunity) {
  const core::Tveg tveg = staged_star();
  const core::TmedbInstance inst{&tveg, 0, 100.0};
  DeadlineAwarePolicy policy(/*min_targets=*/2, /*urgency=*/0.1);
  const auto r = run_online(inst, policy);
  ASSERT_TRUE(r.covered_all);
  // Skips the single-target contact at t = 0; one broadcast at t = 50
  // covers all three — beating epidemic's energy.
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(r.schedule.transmissions()[0].time, 50.0);
  EXPECT_DOUBLE_EQ(r.schedule.total_cost(), 4.0);
}

TEST(DeadlineAware, PanicsWhenUrgent) {
  // Only the early single-target contact exists before the deadline: the
  // urgency window must force the transmission despite min_targets = 2.
  trace::ContactTrace t(2, 100.0);
  t.add({0, 1, 80.0, 100.0, 2.0});
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 100.0};
  DeadlineAwarePolicy policy(/*min_targets=*/2, /*urgency=*/0.3);
  const auto r = run_online(inst, policy);
  ASSERT_TRUE(r.covered_all);  // 80 s is inside the 30% urgency window
}

TEST(Gossip, SeededAndDeliversInsideUrgencyWindow) {
  const core::Tveg tveg = staged_star();
  const core::TmedbInstance inst{&tveg, 0, 100.0};
  // Urgency 0.5: the t = 50 opportunity falls inside the panic window, so
  // delivery is guaranteed regardless of the coin flips.
  GossipPolicy policy(0.5, /*urgency=*/0.5);
  const auto a = run_online(inst, policy, {.seed = 3});
  const auto b = run_online(inst, policy, {.seed = 3});
  EXPECT_EQ(a.schedule.transmissions(), b.schedule.transmissions());
  EXPECT_TRUE(a.covered_all);
}

TEST(Gossip, MayMissWithoutFutureKnowledge) {
  // With a narrow urgency window whose span contains no opportunity, a
  // declined coin flip is unrecoverable — the inherent online penalty.
  const core::Tveg tveg = staged_star();
  const core::TmedbInstance inst{&tveg, 0, 100.0};
  GossipPolicy policy(0.5, /*urgency=*/0.05);
  bool missed = false;
  for (std::uint64_t seed = 1; seed <= 20 && !missed; ++seed)
    missed = !run_online(inst, policy, {.seed = seed}).covered_all;
  EXPECT_TRUE(missed);
}

TEST(DeadlineAware, FullUrgencyEqualsEpidemic) {
  const core::Tveg tveg = staged_star();
  const core::TmedbInstance inst{&tveg, 0, 100.0};
  EpidemicPolicy epidemic;
  DeadlineAwarePolicy always(/*min_targets=*/5, /*urgency=*/1.0);
  const auto a = run_online(inst, epidemic);
  const auto b = run_online(inst, always);
  EXPECT_EQ(a.schedule.transmissions(), b.schedule.transmissions());
}

TEST(Online, NeverBeatsTheOfflineOptimum) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trace::SnapshotConfig cfg;
    cfg.nodes = 6;
    cfg.slot = 25;
    cfg.horizon = 150;
    cfg.p = 0.35;
    cfg.seed = seed;
    const core::Tveg tveg(trace::generate_snapshots(cfg), unit_radio(),
                          {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance inst{&tveg, 0, 150.0};
    const auto opt = brute_force_optimal(inst);
    // Epidemic transmits at every opportunity, so it covers exactly what is
    // temporally reachable: coverage must match offline feasibility.
    EpidemicPolicy epidemic;
    {
      const auto r = run_online(inst, epidemic);
      ASSERT_EQ(r.covered_all, opt.feasible) << "seed " << seed;
      if (opt.feasible) {
        EXPECT_GE(r.schedule.total_cost(), opt.cost - 1e-9) << "seed " << seed;
        EXPECT_TRUE(core::check_feasibility(inst, r.schedule).feasible)
            << "seed " << seed;
      }
    }
    // Deadline-aware may miss coverage (the online penalty), but when it
    // covers, it is feasible and no cheaper than the optimum.
    DeadlineAwarePolicy aware(2);
    {
      const auto r = run_online(inst, aware);
      if (opt.feasible && r.covered_all) {
        EXPECT_GE(r.schedule.total_cost(), opt.cost - 1e-9) << "seed " << seed;
        EXPECT_TRUE(core::check_feasibility(inst, r.schedule).feasible)
            << "seed " << seed;
      }
      if (!opt.feasible) {
        EXPECT_FALSE(r.covered_all) << "seed " << seed;
      }
    }
  }
}

TEST(Online, SameTimeCascadeWorks) {
  // 0-1 and 1-2 live simultaneously; with τ = 0 epidemic relays through 1
  // within the same event time.
  trace::ContactTrace t(3, 50.0);
  t.add({0, 1, 0.0, 50.0, 1.0});
  t.add({1, 2, 0.0, 50.0, 1.0});
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 50.0};
  EpidemicPolicy policy;
  const auto r = run_online(inst, policy);
  ASSERT_TRUE(r.covered_all);
  EXPECT_DOUBLE_EQ(r.schedule.latest_finish(0.0), 0.0);  // all at t = 0
}

TEST(Online, ComposesWithNlpAllocation) {
  // "Online FR": run an online backbone under fading weights, then let the
  // NLP choose the powers — the same composition FR-GREED uses.
  trace::HaggleLikeConfig cfg;
  cfg.nodes = 10;
  cfg.horizon = 6000;
  cfg.activation_ramp_end = 500;
  cfg.pair_probability = 0.6;
  cfg.seed = 12;
  auto radio = unit_radio();
  radio.noise_density = 4.32e-21;
  radio.decoding_threshold_db = 25.9;
  const core::Tveg tveg(trace::generate_haggle_like(cfg), radio,
                        {.model = channel::ChannelModel::kRayleigh});
  const core::TmedbInstance inst{&tveg, 0, 5000.0};
  EpidemicPolicy policy;
  const auto backbone = run_online(inst, policy);
  ASSERT_TRUE(backbone.covered_all);
  const auto alloc = allocate_energy(inst, backbone.schedule);
  ASSERT_TRUE(alloc.feasible);
  EXPECT_TRUE(core::check_feasibility(inst, alloc.schedule).feasible);
}

TEST(Online, RejectsMulticastInstances) {
  const core::Tveg tveg = staged_star();
  core::TmedbInstance inst{&tveg, 0, 100.0};
  inst.targets = {1};
  EpidemicPolicy policy;
  EXPECT_THROW(run_online(inst, policy), std::invalid_argument);
}

}  // namespace
}  // namespace tveg::online
