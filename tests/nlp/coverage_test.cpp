#include "nlp/coverage.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/ed_function.hpp"
#include "nlp/augmented_lagrangian.hpp"
#include "support/math.hpp"

namespace tveg::nlp {
namespace {

using channel::RayleighEdFunction;

constexpr double kEps = 0.01;

TEST(IndependentAllocation, SingleTxSingleReceiver) {
  RayleighEdFunction ed(2.0);
  std::vector<CoverageConstraint> cs{{{{0, &ed}}}};
  const auto w = independent_allocation(1, cs, kEps, 0.0, support::kInf);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NEAR(w[0], ed.min_cost_for(kEps), 1e-12);
}

TEST(IndependentAllocation, PicksCheapestCoveringTx) {
  RayleighEdFunction near_ed(1.0), far_ed(100.0);
  // Receiver covered by tx0 (far) and tx1 (near): serve via tx1.
  std::vector<CoverageConstraint> cs{{{{0, &far_ed}, {1, &near_ed}}}};
  const auto w = independent_allocation(2, cs, kEps, 0.0, support::kInf);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_NEAR(w[1], near_ed.min_cost_for(kEps), 1e-12);
}

TEST(IndependentAllocation, IsFeasibleStart) {
  RayleighEdFunction a(1.0), b(3.0), c(0.5);
  std::vector<CoverageConstraint> cs{
      {{{0, &a}, {1, &b}}},
      {{{1, &c}}},
  };
  const auto w = independent_allocation(2, cs, kEps, 0.0, support::kInf);
  for (const auto& constraint : cs) {
    double prod = 1.0;
    for (const auto& term : constraint.terms)
      prod *= term.ed->failure_probability(w[term.tx]);
    EXPECT_LE(prod, kEps + 1e-9);
  }
}

TEST(CoordinateDescent, SingleConstraintMatchesClosedForm) {
  RayleighEdFunction ed(2.0);
  std::vector<CoverageConstraint> cs{{{{0, &ed}}}};
  const auto r =
      allocate_coordinate_descent(1, cs, kEps, 0.0, support::kInf);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.w[0], ed.min_cost_for(kEps), 1e-9);
}

TEST(CoordinateDescent, ExploitsOverlapToSaveEnergy) {
  // Receiver covered by two equally-good transmissions: sharing the failure
  // budget (each φ = √ε) costs 2·β/ln(1/(1-√ε)); serving via one costs
  // β/ln(1/(1-ε)). For ε = 0.01: shared ≈ 2·β/0.105 ≈ 19β vs single ≈ 99.5β
  // — so the solver should end up cheaper than the independent start.
  RayleighEdFunction a(1.0), b(1.0);
  std::vector<CoverageConstraint> cs{{{{0, &a}, {1, &b}}}};
  const auto start = independent_allocation(2, cs, kEps, 0.0, support::kInf);
  double start_total = start[0] + start[1];
  const auto r = allocate_coordinate_descent(2, cs, kEps, 0.0, support::kInf);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.total, start_total + 1e-12);
}

TEST(CoordinateDescent, MonotoneNonIncreasingAcrossPasses) {
  // The final objective never exceeds the independent start.
  RayleighEdFunction e1(1.0), e2(2.0), e3(0.7);
  std::vector<CoverageConstraint> cs{
      {{{0, &e1}, {1, &e2}}},
      {{{1, &e1}, {2, &e3}}},
      {{{0, &e3}}},
  };
  const auto start = independent_allocation(3, cs, kEps, 0.0, support::kInf);
  double start_total = 0;
  for (double w : start) start_total += w;
  const auto r = allocate_coordinate_descent(3, cs, kEps, 0.0, support::kInf);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.total, start_total + 1e-12);
}

TEST(CoordinateDescent, FinalPointSatisfiesAllConstraints) {
  RayleighEdFunction e1(1.5), e2(2.5);
  std::vector<CoverageConstraint> cs{
      {{{0, &e1}}},
      {{{0, &e2}, {1, &e1}}},
      {{{1, &e2}}},
  };
  const auto r = allocate_coordinate_descent(2, cs, kEps, 0.0, support::kInf);
  ASSERT_TRUE(r.feasible);
  for (const auto& constraint : cs) {
    double prod = 1.0;
    for (const auto& term : constraint.terms)
      prod *= term.ed->failure_probability(r.w[term.tx]);
    EXPECT_LE(prod, kEps * (1 + 1e-6));
  }
}

TEST(CoordinateDescent, UntouchedTxGetsWMin) {
  RayleighEdFunction ed(1.0);
  std::vector<CoverageConstraint> cs{{{{0, &ed}}}};
  const auto r = allocate_coordinate_descent(3, cs, kEps, 0.0, support::kInf);
  EXPECT_DOUBLE_EQ(r.w[1], 0.0);
  EXPECT_DOUBLE_EQ(r.w[2], 0.0);
}

TEST(CoordinateDescent, InfeasibleWhenWMaxTooSmall) {
  RayleighEdFunction ed(2.0);
  std::vector<CoverageConstraint> cs{{{{0, &ed}}}};
  // w_max far below the required ε-cost.
  const auto r = allocate_coordinate_descent(1, cs, kEps, 0.0,
                                             ed.min_cost_for(kEps) / 100);
  EXPECT_FALSE(r.feasible);
}

TEST(CoordinateDescent, InputValidation) {
  RayleighEdFunction ed(1.0);
  std::vector<CoverageConstraint> bad_tx{{{{5, &ed}}}};
  EXPECT_THROW(
      allocate_coordinate_descent(1, bad_tx, kEps, 0.0, support::kInf),
      std::invalid_argument);
  std::vector<CoverageConstraint> empty{{}};
  EXPECT_THROW(
      allocate_coordinate_descent(1, empty, kEps, 0.0, support::kInf),
      std::invalid_argument);
  std::vector<CoverageConstraint> ok{{{{0, &ed}}}};
  EXPECT_THROW(allocate_coordinate_descent(1, ok, 1.5, 0.0, support::kInf),
               std::invalid_argument);
}

TEST(EnergyAllocationProblem, ScalingRoundTrip) {
  RayleighEdFunction ed(2.0e-18);  // physically tiny magnitudes
  std::vector<CoverageConstraint> cs{{{{0, &ed}}}};
  EnergyAllocationProblem p(1, cs, kEps, 0.0, support::kInf);
  EXPECT_GT(p.scale(), 0.0);
  const std::vector<Cost> w{3.0e-16};
  EXPECT_NEAR(p.to_costs(p.from_costs(w))[0], w[0], 1e-24);
}

TEST(EnergyAllocationProblem, ConstraintSignConvention) {
  RayleighEdFunction ed(2.0);
  std::vector<CoverageConstraint> cs{{{{0, &ed}}}};
  EnergyAllocationProblem p(1, cs, kEps, 0.0, support::kInf);
  // At the ε-cost the constraint is exactly tight (= 0).
  const auto x_tight = p.from_costs({ed.min_cost_for(kEps)});
  EXPECT_NEAR(p.constraint(0, x_tight), 0.0, 1e-9);
  // Below it: violated (> 0); above it: satisfied (< 0).
  const auto x_low = p.from_costs({ed.min_cost_for(kEps) * 0.5});
  EXPECT_GT(p.constraint(0, x_low), 0.0);
  const auto x_high = p.from_costs({ed.min_cost_for(kEps) * 2.0});
  EXPECT_LT(p.constraint(0, x_high), 0.0);
}

TEST(EnergyAllocationProblem, AugmentedLagrangianAgreesWithCoordinateDescent) {
  RayleighEdFunction e1(1.0), e2(2.0);
  std::vector<CoverageConstraint> cs{
      {{{0, &e1}, {1, &e2}}},
      {{{1, &e1}}},
  };
  const auto cd = allocate_coordinate_descent(2, cs, kEps, 0.0, support::kInf);
  ASSERT_TRUE(cd.feasible);

  EnergyAllocationProblem p(2, cs, kEps, 0.0, support::kInf);
  const auto w0 = independent_allocation(2, cs, kEps, 0.0, support::kInf);
  const NlpResult al = solve_augmented_lagrangian(p, p.from_costs(w0));
  ASSERT_TRUE(al.feasible);
  const auto al_w = p.to_costs(al.w);
  double al_total = al_w[0] + al_w[1];
  // The two solvers should land within a few percent of each other.
  EXPECT_NEAR(al_total, cd.total, 0.1 * cd.total);
}

}  // namespace
}  // namespace tveg::nlp
