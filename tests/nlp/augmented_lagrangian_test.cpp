#include "nlp/augmented_lagrangian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/math.hpp"

namespace tveg::nlp {
namespace {

/// min x² + y²  s.t.  x + y >= 1  (i.e. 1 - x - y <= 0), box [-10, 10]².
/// Optimum at (0.5, 0.5), value 0.5.
class QuadraticProblem final : public NlpProblem {
 public:
  std::size_t dimension() const override { return 2; }
  double lower(std::size_t) const override { return -10; }
  double upper(std::size_t) const override { return 10; }
  double objective(const std::vector<double>& w) const override {
    return w[0] * w[0] + w[1] * w[1];
  }
  std::vector<double> objective_gradient(
      const std::vector<double>& w) const override {
    return {2 * w[0], 2 * w[1]};
  }
  std::size_t constraint_count() const override { return 1; }
  double constraint(std::size_t, const std::vector<double>& w) const override {
    return 1.0 - w[0] - w[1];
  }
  std::vector<double> constraint_gradient(
      std::size_t, const std::vector<double>&) const override {
    return {-1.0, -1.0};
  }
};

TEST(AugmentedLagrangian, SolvesQuadraticWithActiveConstraint) {
  QuadraticProblem p;
  const NlpResult r = solve_augmented_lagrangian(p, {5.0, -3.0});
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.w[0], 0.5, 1e-3);
  EXPECT_NEAR(r.w[1], 0.5, 1e-3);
  EXPECT_NEAR(r.objective, 0.5, 1e-3);
}

/// Unconstrained-in-practice problem: constraint already slack at optimum.
class SlackProblem final : public NlpProblem {
 public:
  std::size_t dimension() const override { return 1; }
  double lower(std::size_t) const override { return -5; }
  double upper(std::size_t) const override { return 5; }
  double objective(const std::vector<double>& w) const override {
    return (w[0] - 2) * (w[0] - 2);
  }
  std::vector<double> objective_gradient(
      const std::vector<double>& w) const override {
    return {2 * (w[0] - 2)};
  }
  std::size_t constraint_count() const override { return 1; }
  double constraint(std::size_t, const std::vector<double>& w) const override {
    return w[0] - 4.0;  // w <= 4, slack at w = 2
  }
  std::vector<double> constraint_gradient(
      std::size_t, const std::vector<double>&) const override {
    return {1.0};
  }
};

TEST(AugmentedLagrangian, IgnoresSlackConstraint) {
  SlackProblem p;
  const NlpResult r = solve_augmented_lagrangian(p, {-4.0});
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.w[0], 2.0, 1e-4);
}

/// Box-bound-active problem: min w, w in [1, 5], no other constraints.
class BoxProblem final : public NlpProblem {
 public:
  std::size_t dimension() const override { return 1; }
  double lower(std::size_t) const override { return 1; }
  double upper(std::size_t) const override { return 5; }
  double objective(const std::vector<double>& w) const override {
    return w[0];
  }
  std::vector<double> objective_gradient(
      const std::vector<double>&) const override {
    return {1.0};
  }
  std::size_t constraint_count() const override { return 0; }
  double constraint(std::size_t, const std::vector<double>&) const override {
    return 0;
  }
  std::vector<double> constraint_gradient(
      std::size_t, const std::vector<double>&) const override {
    return {};
  }
};

TEST(AugmentedLagrangian, StopsAtBoxBound) {
  BoxProblem p;
  const NlpResult r = solve_augmented_lagrangian(p, {3.0});
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.w[0], 1.0, 1e-6);
}

TEST(AugmentedLagrangian, ProjectsStartIntoBox) {
  BoxProblem p;
  const NlpResult r = solve_augmented_lagrangian(p, {-100.0});
  EXPECT_GE(r.w[0], 1.0);
}

TEST(AugmentedLagrangian, RejectsWrongDimension) {
  BoxProblem p;
  EXPECT_THROW(solve_augmented_lagrangian(p, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(NlpProblem, MaxViolationAndProjection) {
  QuadraticProblem p;
  std::vector<double> w{0.0, 0.0};
  EXPECT_DOUBLE_EQ(p.max_violation(w), 1.0);
  w = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(p.max_violation(w), 0.0);
  std::vector<double> z{-20.0, 20.0};
  p.project_box(z);
  EXPECT_DOUBLE_EQ(z[0], -10.0);
  EXPECT_DOUBLE_EQ(z[1], 10.0);
}

}  // namespace
}  // namespace tveg::nlp
