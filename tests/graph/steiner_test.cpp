#include "graph/steiner.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tveg::graph {
namespace {

/// Broadcast star: root 0, power vertex 1 costs 10 and reaches all three
/// terminals for free; individual power vertices cost 6 each. Optimal tree
/// costs 10 (share the broadcast), per-terminal shortest paths cost 18.
struct BroadcastStar {
  Digraph g{Digraph(8)};
  VertexId root = 0;
  std::vector<VertexId> terminals{2, 3, 4};

  BroadcastStar() {
    g.add_arc(0, 1, 10.0);  // shared power vertex
    g.add_arc(1, 2, 0.0);
    g.add_arc(1, 3, 0.0);
    g.add_arc(1, 4, 0.0);
    // Individual power vertices 5, 6, 7 (cheaper per terminal).
    g.add_arc(0, 5, 6.0);
    g.add_arc(5, 2, 0.0);
    g.add_arc(0, 6, 6.0);
    g.add_arc(6, 3, 0.0);
    g.add_arc(0, 7, 6.0);
    g.add_arc(7, 4, 0.0);
  }
};

TEST(SteinerSpt, TakesPerTerminalShortestPaths) {
  BroadcastStar s;
  SteinerSolver solver(s.g);
  const SteinerResult r = solver.shortest_path_heuristic(s.root, s.terminals);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(solver.validate(r, s.root, s.terminals));
  // SPT pays each terminal's 6 — this is exactly the heuristic's blind spot.
  EXPECT_DOUBLE_EQ(r.cost, 18.0);
}

TEST(SteinerGreedyLevel2, FindsSharedBroadcastVertex) {
  BroadcastStar s;
  SteinerSolver solver(s.g);
  const SteinerResult r = solver.recursive_greedy(s.root, s.terminals, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(solver.validate(r, s.root, s.terminals));
  // Density of the shared vertex is 10/3 < 6 → the greedy must pick it.
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
}

TEST(SteinerExact, MatchesKnownOptimum) {
  BroadcastStar s;
  SteinerSolver solver(s.g);
  const SteinerResult r = solver.exact_small(s.root, s.terminals);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
  // The exact solver reconstructs a concrete, valid arborescence.
  EXPECT_FALSE(r.arcs.empty());
  EXPECT_TRUE(solver.validate(r, s.root, s.terminals));
}

TEST(SteinerExact, ReconstructedArcsSumToCost) {
  BroadcastStar s;
  SteinerSolver solver(s.g);
  const SteinerResult r = solver.exact_small(s.root, s.terminals);
  double sum = 0;
  for (const auto& arc : r.arcs) sum += arc.weight;
  EXPECT_NEAR(sum, r.cost, 1e-12);
}

TEST(SteinerExact, ReconstructionValidOnRandomGraphs) {
  for (unsigned seed = 30; seed <= 36; ++seed) {
    Digraph g(14);
    unsigned state = seed * 2654435761u;
    auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 17;
      state ^= state << 5;
      return state;
    };
    for (VertexId u = 0; u < 14; ++u)
      for (VertexId v = 0; v < 14; ++v)
        if (u != v && next() % 100 < 25)
          g.add_arc(u, v, 1.0 + static_cast<double>(next() % 50) / 5.0);
    SteinerSolver solver(g);
    const std::vector<VertexId> terminals{4, 9, 13};
    const SteinerResult r = solver.exact_small(0, terminals);
    if (!r.feasible) continue;
    EXPECT_TRUE(solver.validate(r, 0, terminals)) << "seed " << seed;
    double sum = 0;
    for (const auto& arc : r.arcs) sum += arc.weight;
    EXPECT_NEAR(sum, r.cost, 1e-9) << "seed " << seed;
  }
}

TEST(SteinerGreedyLevel2, NeverWorseThanLevel1OnStar) {
  BroadcastStar s;
  SteinerSolver solver(s.g);
  const double c1 = solver.recursive_greedy(s.root, s.terminals, 1).cost;
  const double c2 = solver.recursive_greedy(s.root, s.terminals, 2).cost;
  EXPECT_LE(c2, c1 + 1e-9);
}

TEST(Steiner, SingleTerminalIsShortestPath) {
  Digraph g(4);
  g.add_arc(0, 1, 1.0);
  g.add_arc(1, 2, 1.0);
  g.add_arc(0, 2, 5.0);
  SteinerSolver solver(g);
  for (int level : {1, 2}) {
    const SteinerResult r = solver.recursive_greedy(0, {2}, level);
    EXPECT_TRUE(r.feasible);
    EXPECT_DOUBLE_EQ(r.cost, 2.0) << "level " << level;
  }
  EXPECT_DOUBLE_EQ(solver.shortest_path_heuristic(0, {2}).cost, 2.0);
  EXPECT_DOUBLE_EQ(solver.exact_small(0, {2}).cost, 2.0);
}

TEST(Steiner, RootAsTerminalIsFree) {
  Digraph g(2);
  g.add_arc(0, 1, 1.0);
  SteinerSolver solver(g);
  const SteinerResult r = solver.recursive_greedy(0, {0}, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(Steiner, UnreachableTerminalReportsInfeasible) {
  Digraph g(3);
  g.add_arc(0, 1, 1.0);  // vertex 2 unreachable
  SteinerSolver solver(g);
  EXPECT_FALSE(solver.shortest_path_heuristic(0, {1, 2}).feasible);
  EXPECT_FALSE(solver.recursive_greedy(0, {1, 2}, 2).feasible);
  EXPECT_FALSE(solver.exact_small(0, {1, 2}).feasible);
}

TEST(Steiner, SharedTrunkCountedOnce) {
  // root → trunk (cost 10) → two branches (cost 1 each).
  Digraph g(4);
  g.add_arc(0, 1, 10.0);
  g.add_arc(1, 2, 1.0);
  g.add_arc(1, 3, 1.0);
  SteinerSolver solver(g);
  for (int level : {1, 2}) {
    const SteinerResult r = solver.recursive_greedy(0, {2, 3}, level);
    EXPECT_DOUBLE_EQ(r.cost, 12.0) << "level " << level;
  }
  EXPECT_DOUBLE_EQ(solver.shortest_path_heuristic(0, {2, 3}).cost, 12.0);
  EXPECT_DOUBLE_EQ(solver.exact_small(0, {2, 3}).cost, 12.0);
}

TEST(Steiner, ExactBeatsOrMatchesHeuristicsRandomGraphs) {
  // Property check over several seeded random DAG-ish graphs.
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const VertexId n = 12;
    Digraph g(n);
    // Deterministic pseudo-random arcs.
    unsigned state = seed * 2654435761u;
    auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 17;
      state ^= state << 5;
      return state;
    };
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = 0; v < n; ++v)
        if (u != v && next() % 100 < 30)
          g.add_arc(u, v, 1.0 + static_cast<double>(next() % 100) / 10.0);

    std::vector<VertexId> terminals{3, 7, 11};
    SteinerSolver solver(g);
    const SteinerResult exact = solver.exact_small(0, terminals);
    const SteinerResult spt = solver.shortest_path_heuristic(0, terminals);
    const SteinerResult g1 = solver.recursive_greedy(0, terminals, 1);
    const SteinerResult g2 = solver.recursive_greedy(0, terminals, 2);
    ASSERT_EQ(exact.feasible, spt.feasible) << "seed " << seed;
    if (!exact.feasible) continue;
    EXPECT_LE(exact.cost, spt.cost + 1e-9) << "seed " << seed;
    EXPECT_LE(exact.cost, g1.cost + 1e-9) << "seed " << seed;
    EXPECT_LE(exact.cost, g2.cost + 1e-9) << "seed " << seed;
    EXPECT_TRUE(solver.validate(spt, 0, terminals));
    EXPECT_TRUE(solver.validate(g1, 0, terminals));
    EXPECT_TRUE(solver.validate(g2, 0, terminals));
  }
}

TEST(Steiner, ValidateRejectsFabricatedTree) {
  Digraph g(3);
  g.add_arc(0, 1, 1.0);
  SteinerSolver solver(g);
  SteinerResult fake;
  fake.arcs.push_back({0, 2, 1.0});  // arc not in graph
  fake.cost = 1.0;
  fake.feasible = true;
  EXPECT_FALSE(solver.validate(fake, 0, {2}));
}

TEST(Steiner, ExactRejectsTooManyTerminals) {
  Digraph g(20);
  SteinerSolver solver(g);
  std::vector<VertexId> terminals;
  for (VertexId v = 1; v < 19; ++v) terminals.push_back(v);
  EXPECT_THROW(solver.exact_small(0, terminals), std::invalid_argument);
}

}  // namespace
}  // namespace tveg::graph
