#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tveg::graph {
namespace {

TEST(Digraph, ConstructionAndGrowth) {
  Digraph g(3);
  EXPECT_EQ(g.vertex_count(), 3);
  EXPECT_EQ(g.add_vertex(), 3);
  EXPECT_EQ(g.vertex_count(), 4);
  EXPECT_EQ(g.arc_count(), 0u);
}

TEST(Digraph, ArcsAreDirected) {
  Digraph g(2);
  g.add_arc(0, 1, 5.0);
  EXPECT_EQ(g.out(0).size(), 1u);
  EXPECT_TRUE(g.out(1).empty());
  EXPECT_EQ(g.arc_count(), 1u);
}

TEST(Digraph, RejectsNegativeWeightAndBadVertices) {
  Digraph g(2);
  EXPECT_THROW(g.add_arc(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(g.add_arc(0, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(g.out(9), std::invalid_argument);
}

TEST(Digraph, ReversedFlipsArcs) {
  Digraph g(3);
  g.add_arc(0, 1, 2.0);
  g.add_arc(1, 2, 3.0);
  const Digraph r = g.reversed();
  ASSERT_EQ(r.out(1).size(), 1u);
  EXPECT_EQ(r.out(1)[0].to, 0);
  EXPECT_DOUBLE_EQ(r.out(1)[0].weight, 2.0);
  EXPECT_TRUE(r.out(0).empty());
}

TEST(Dijkstra, ShortestDistances) {
  Digraph g(5);
  g.add_arc(0, 1, 1.0);
  g.add_arc(0, 2, 4.0);
  g.add_arc(1, 2, 2.0);
  g.add_arc(2, 3, 1.0);
  g.add_arc(1, 3, 6.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(sp.dist[3], 4.0);
  EXPECT_TRUE(std::isinf(sp.dist[4]));
}

TEST(Dijkstra, ZeroWeightArcs) {
  Digraph g(3);
  g.add_arc(0, 1, 0.0);
  g.add_arc(1, 2, 0.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 0.0);
}

TEST(Dijkstra, ExtractPath) {
  Digraph g(4);
  g.add_arc(0, 1, 1.0);
  g.add_arc(1, 2, 1.0);
  g.add_arc(2, 3, 1.0);
  g.add_arc(0, 3, 10.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_EQ(extract_path(sp, 3), (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(extract_path(sp, 0), (std::vector<VertexId>{0}));
}

TEST(Dijkstra, UnreachablePathEmpty) {
  Digraph g(2);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_TRUE(extract_path(sp, 1).empty());
}

TEST(Dijkstra, ParallelArcsTakeCheapest) {
  Digraph g(2);
  g.add_arc(0, 1, 5.0);
  g.add_arc(0, 1, 2.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 2.0);
}

}  // namespace
}  // namespace tveg::graph
