#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tveg::graph {
namespace {

TEST(Digraph, ConstructionAndGrowth) {
  Digraph g(3);
  EXPECT_EQ(g.vertex_count(), 3);
  EXPECT_EQ(g.add_vertex(), 3);
  EXPECT_EQ(g.vertex_count(), 4);
  EXPECT_EQ(g.arc_count(), 0u);
}

TEST(Digraph, ArcsAreDirected) {
  Digraph g(2);
  g.add_arc(0, 1, 5.0);
  EXPECT_EQ(g.out(0).size(), 1u);
  EXPECT_TRUE(g.out(1).empty());
  EXPECT_EQ(g.arc_count(), 1u);
}

TEST(Digraph, RejectsNegativeWeightAndBadVertices) {
  Digraph g(2);
  EXPECT_THROW(g.add_arc(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(g.add_arc(0, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(g.out(9), std::invalid_argument);
}

TEST(Digraph, ReversedFlipsArcs) {
  Digraph g(3);
  g.add_arc(0, 1, 2.0);
  g.add_arc(1, 2, 3.0);
  const Digraph r = g.reversed();
  ASSERT_EQ(r.out(1).size(), 1u);
  EXPECT_EQ(r.out(1)[0].to, 0);
  EXPECT_DOUBLE_EQ(r.out(1)[0].weight, 2.0);
  EXPECT_TRUE(r.out(0).empty());
}

TEST(Dijkstra, ShortestDistances) {
  Digraph g(5);
  g.add_arc(0, 1, 1.0);
  g.add_arc(0, 2, 4.0);
  g.add_arc(1, 2, 2.0);
  g.add_arc(2, 3, 1.0);
  g.add_arc(1, 3, 6.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(sp.dist[3], 4.0);
  EXPECT_TRUE(std::isinf(sp.dist[4]));
}

TEST(Dijkstra, ZeroWeightArcs) {
  Digraph g(3);
  g.add_arc(0, 1, 0.0);
  g.add_arc(1, 2, 0.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 0.0);
}

TEST(Dijkstra, ExtractPath) {
  Digraph g(4);
  g.add_arc(0, 1, 1.0);
  g.add_arc(1, 2, 1.0);
  g.add_arc(2, 3, 1.0);
  g.add_arc(0, 3, 10.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_EQ(extract_path(sp, 3), (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(extract_path(sp, 0), (std::vector<VertexId>{0}));
}

TEST(Dijkstra, UnreachablePathEmpty) {
  Digraph g(2);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_TRUE(extract_path(sp, 1).empty());
}

TEST(Dijkstra, ParallelArcsTakeCheapest) {
  Digraph g(2);
  g.add_arc(0, 1, 5.0);
  g.add_arc(0, 1, 2.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 2.0);
}

TEST(Digraph, FreezeCompactsAndIsIdempotent) {
  Digraph g(3);
  g.add_arc(0, 2, 1.0);
  g.add_arc(0, 1, 2.0);
  g.add_arc(2, 0, 3.0);
  EXPECT_FALSE(g.frozen());
  g.freeze();
  EXPECT_TRUE(g.frozen());
  g.freeze();  // idempotent
  EXPECT_EQ(g.arc_count(), 3u);
  // Per-vertex insertion order survives the counting-sort scatter.
  ASSERT_EQ(g.out(0).size(), 2u);
  EXPECT_EQ(g.out(0)[0].to, 2);
  EXPECT_EQ(g.out(0)[1].to, 1);
  ASSERT_EQ(g.out(2).size(), 1u);
  EXPECT_EQ(g.out(2)[0].to, 0);
}

TEST(Digraph, MutationAfterFreezeThrows) {
  Digraph g(2);
  g.add_arc(0, 1, 1.0);
  g.freeze();
  EXPECT_THROW(g.add_arc(1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_vertex(), std::invalid_argument);
  // out-of-range checks still precede the frozen-state accessors
  EXPECT_THROW(g.out(9), std::invalid_argument);
}

TEST(Digraph, TraversalFreezesLazily) {
  Digraph g(2);
  g.add_arc(0, 1, 1.0);
  EXPECT_FALSE(g.frozen());
  EXPECT_EQ(g.out(0).size(), 1u);  // first access freezes
  EXPECT_TRUE(g.frozen());
}

TEST(Digraph, ResetReturnsToBuildingState) {
  Digraph g(3);
  g.add_arc(0, 1, 1.0);
  g.freeze();
  g.reset(2);
  EXPECT_FALSE(g.frozen());
  EXPECT_EQ(g.vertex_count(), 2);
  EXPECT_EQ(g.arc_count(), 0u);
  g.add_arc(1, 0, 4.0);
  g.freeze();
  ASSERT_EQ(g.out(1).size(), 1u);
  EXPECT_DOUBLE_EQ(g.out(1)[0].weight, 4.0);
  EXPECT_TRUE(g.out(0).empty());
}

TEST(Digraph, ReversedKeepsSourcePositionOrder) {
  // Arcs into vertex 3 from sources 0, 1, 2 (two from 1): the reversed
  // vertex must list them by (source, insertion position) — the order the
  // historical per-source add_arc replay produced.
  Digraph g(4);
  g.add_arc(1, 3, 1.0);
  g.add_arc(0, 3, 2.0);
  g.add_arc(1, 3, 3.0);
  g.add_arc(2, 3, 4.0);
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.frozen());
  ASSERT_EQ(r.out(3).size(), 4u);
  EXPECT_EQ(r.out(3)[0].to, 0);
  EXPECT_DOUBLE_EQ(r.out(3)[0].weight, 2.0);
  EXPECT_EQ(r.out(3)[1].to, 1);
  EXPECT_DOUBLE_EQ(r.out(3)[1].weight, 1.0);
  EXPECT_EQ(r.out(3)[2].to, 1);
  EXPECT_DOUBLE_EQ(r.out(3)[2].weight, 3.0);
  EXPECT_EQ(r.out(3)[3].to, 2);
  EXPECT_DOUBLE_EQ(r.out(3)[3].weight, 4.0);
}

TEST(DijkstraWorkspace, ReuseIsByteIdentical) {
  Digraph g(5);
  g.add_arc(0, 1, 1.0);
  g.add_arc(0, 2, 4.0);
  g.add_arc(1, 2, 2.0);
  g.add_arc(2, 3, 1.0);
  g.add_arc(1, 3, 6.0);
  const ShortestPaths fresh = dijkstra(g, 0);
  DijkstraWorkspace ws;
  for (int round = 0; round < 3; ++round) {
    const ShortestPaths reused = dijkstra(g, 0, ws);
    EXPECT_EQ(reused.dist, fresh.dist) << "round " << round;
    EXPECT_EQ(reused.parent, fresh.parent) << "round " << round;
    EXPECT_EQ(reused.settled, fresh.settled) << "round " << round;
    EXPECT_EQ(reused.relaxations, fresh.relaxations) << "round " << round;
  }
}

TEST(DijkstraWorkspace, ScratchResultsMatchOwnedResults) {
  Digraph g(4);
  g.add_arc(0, 1, 1.5);
  g.add_arc(1, 2, 0.5);
  const ShortestPaths sp = dijkstra(g, 0);
  DijkstraWorkspace ws;
  dijkstra_scratch(g, 0, ws);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_DOUBLE_EQ(ws.dist(v), sp.dist[static_cast<std::size_t>(v)]);
    EXPECT_EQ(ws.parent(v), sp.parent[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(ws.settled(), sp.settled);
  EXPECT_EQ(ws.relaxations(), sp.relaxations);
}

TEST(DijkstraWorkspace, EpochRolloverNeverAliasesStaleState) {
  // Run once from source 0, then force the epoch counter to the wraparound
  // boundary and run from source 3 on a different graph shape: state marked
  // in earlier epochs must read as unreached, not leak through the wrap.
  Digraph a(4);
  a.add_arc(0, 1, 1.0);
  a.add_arc(1, 2, 1.0);
  DijkstraWorkspace ws;
  dijkstra_scratch(a, 0, ws);
  EXPECT_DOUBLE_EQ(ws.dist(2), 2.0);

  ws.force_epoch_for_test(0xffffffffu);  // next begin() wraps to epoch 1
  Digraph b(4);
  b.add_arc(3, 2, 5.0);
  dijkstra_scratch(b, 3, ws);
  EXPECT_EQ(ws.epoch_for_test(), 1u);
  EXPECT_DOUBLE_EQ(ws.dist(3), 0.0);
  EXPECT_DOUBLE_EQ(ws.dist(2), 5.0);
  // Vertices only reached in the pre-wrap run: stale, not aliased. (Their
  // marks were written at earlier epochs, which a wrapped counter could
  // collide with if begin() did not clear on wrap.)
  EXPECT_TRUE(std::isinf(ws.dist(0)));
  EXPECT_TRUE(std::isinf(ws.dist(1)));
  EXPECT_EQ(ws.parent(0), kNoVertex);
  EXPECT_EQ(ws.parent(1), kNoVertex);
}

}  // namespace
}  // namespace tveg::graph
