// Unit tests for the independent certifier itself: strict schedule parsing,
// each feasibility condition on a hand-computed line trace, the tau = 0
// non-stop-journey fixpoint, and the JSON verdict shape. The solver-facing
// acceptance gate lives in certify_sweep_test.cpp; the CLI-level broken
// corpus is pinned under tests/certify/corpus/.
#include "tools/certify/certify.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/math.hpp"
#include "trace/contact_trace.hpp"

namespace tveg::certify {
namespace {

/// 0 -1- 1 -2- 2 -1- 3 with staggered windows plus a weak direct 0-3
/// contact. Unit radio + step channel: decoding needs w >= d^2.
trace::ContactTrace line_trace() {
  trace::ContactTrace t(4, 100.0);
  t.add({0, 1, 0.0, 40.0, 1.0});
  t.add({1, 2, 10.0, 60.0, 2.0});
  t.add({2, 3, 30.0, 100.0, 1.0});
  t.add({0, 3, 0.0, 5.0, 4.0});
  t.sort();
  return t;
}

Options unit_options() {
  Options opt;
  opt.deadline = 50.0;
  opt.epsilon = 0.01;
  opt.noise_density = 1.0;
  opt.decoding_threshold_db = 0.0;
  opt.path_loss_exponent = 2.0;
  return opt;
}

/// The reference feasible schedule: 0@0 informs 1, 1@10 informs 2,
/// 2@30 informs 3, all DTS points, done by t = 30 < T = 50.
std::vector<Transmission> good_schedule() {
  return {{0, 0.0, 1.0}, {1, 10.0, 4.0}, {2, 30.0, 1.0}};
}

void expect_rejected_by(const Verdict& v, const std::string& id) {
  EXPECT_FALSE(v.feasible);
  const Check* failed = v.find(id);
  ASSERT_NE(failed, nullptr) << "check " << id << " missing";
  EXPECT_FALSE(failed->passed) << "expected " << id << " to fail";
}

TEST(CertifyVerify, AcceptsHandFeasibleSchedule) {
  const Verdict v = verify(line_trace(), good_schedule(), unit_options());
  EXPECT_TRUE(v.feasible) << v.json();
  EXPECT_EQ(v.exit_code(), 0);
  EXPECT_EQ(v.transmissions, 3u);
  EXPECT_DOUBLE_EQ(v.total_cost, 6.0);
  EXPECT_DOUBLE_EQ(v.max_uninformed_probability, 0.0);
}

TEST(CertifyVerify, RejectsDelayViolation) {
  // t = 60 is a DTS point of node 2 (end - tau of the 1-2 contact) so only
  // the delay window fails, not membership.
  auto s = good_schedule();
  s.push_back({2, 60.0, 1.0});
  expect_rejected_by(verify(line_trace(), s, unit_options()),
                     "within-deadline");
}

TEST(CertifyVerify, RejectsEpsViolationWhenANodeStaysUninformed) {
  const std::vector<Transmission> s = {{0, 0.0, 1.0}, {1, 10.0, 4.0}};
  const Verdict v = verify(line_trace(), s, unit_options());
  expect_rejected_by(v, "all-informed");
  EXPECT_DOUBLE_EQ(v.max_uninformed_probability, 1.0);  // node 3
}

TEST(CertifyVerify, RejectsNonDtsTransmitTime) {
  auto s = good_schedule();
  s[1].time = 17.5;  // mid-interval: adjacency unchanged, membership broken
  expect_rejected_by(verify(line_trace(), s, unit_options()),
                     "dts-membership");
}

TEST(CertifyVerify, SkipsDtsCheckWhenDisabled) {
  auto s = good_schedule();
  s[1].time = 17.5;
  Options opt = unit_options();
  opt.check_dts = false;
  const Verdict v = verify(line_trace(), s, opt);
  EXPECT_TRUE(v.feasible) << v.json();
  EXPECT_EQ(v.find("dts-membership"), nullptr);
}

TEST(CertifyVerify, RejectsNegativeCost) {
  auto s = good_schedule();
  s[2].cost = -1.0;
  const Verdict v = verify(line_trace(), s, unit_options());
  EXPECT_FALSE(v.feasible);
  ASSERT_NE(v.find("costs-in-range"), nullptr);
  EXPECT_FALSE(v.find("costs-in-range")->passed);
}

TEST(CertifyVerify, RejectsUninformedRelay) {
  // Node 2 forwards without ever having been informed.
  const std::vector<Transmission> s = {{0, 0.0, 1.0}, {2, 30.0, 1.0}};
  const Verdict v = verify(line_trace(), s, unit_options());
  EXPECT_FALSE(v.feasible);
  ASSERT_NE(v.find("relays-informed"), nullptr);
  EXPECT_FALSE(v.find("relays-informed")->passed);
}

TEST(CertifyVerify, RejectsUnderpoweredTransmission) {
  auto s = good_schedule();
  s[1].cost = 3.9;  // below the d^2 = 4 step threshold: never decodes
  expect_rejected_by(verify(line_trace(), s, unit_options()), "all-informed");
}

TEST(CertifyVerify, RejectsBudgetViolation) {
  Options opt = unit_options();
  opt.budget = 5.0;  // reference schedule costs 6
  expect_rejected_by(verify(line_trace(), good_schedule(), opt),
                     "within-budget");
}

TEST(CertifyVerify, RejectsOutOfRangeRelayAsMalformed) {
  auto s = good_schedule();
  s.push_back({9, 30.0, 1.0});
  const Verdict v = verify(line_trace(), s, unit_options());
  EXPECT_FALSE(v.feasible);
  ASSERT_NE(v.find("schedule-well-formed"), nullptr);
  EXPECT_FALSE(v.find("schedule-well-formed")->passed);
  EXPECT_EQ(v.exit_code(), 1);
}

TEST(CertifyVerify, RejectsWMaxViolation) {
  Options opt = unit_options();
  opt.w_max = 2.0;
  const Verdict v = verify(line_trace(), good_schedule(), opt);
  EXPECT_FALSE(v.feasible);
  EXPECT_FALSE(v.find("costs-in-range")->passed);
}

TEST(CertifyVerify, MulticastTargetsRestrictTheInformedSet) {
  // Only node 1 must be informed: dropping the rest of the relay chain is
  // then fine.
  Options opt = unit_options();
  opt.targets = {1};
  const std::vector<Transmission> s = {{0, 0.0, 1.0}};
  EXPECT_TRUE(verify(line_trace(), s, opt).feasible);
  opt.targets = {3};
  EXPECT_FALSE(verify(line_trace(), s, opt).feasible);
}

TEST(CertifyVerify, TauZeroNonStopJourneyChainsWithinOneInstant) {
  // At tau = 0 node 1 may forward at the same instant it is informed —
  // and schedule order within the instant must not matter.
  trace::ContactTrace t(3, 50.0);
  t.add({0, 1, 0.0, 50.0, 1.0});
  t.add({1, 2, 0.0, 50.0, 1.0});
  Options opt = unit_options();
  opt.deadline = 40.0;
  opt.check_dts = false;  // t = 10 is mid-window; this test targets the fixpoint
  const std::vector<Transmission> chain = {{1, 10.0, 1.0}, {0, 10.0, 1.0}};
  EXPECT_TRUE(verify(t, chain, opt).feasible);
}

TEST(CertifyVerify, TauZeroCircularChainIsRejected) {
  // 1 and 2 "informing each other" at one instant with no path from the
  // source must not bootstrap: the fixpoint only applies transmissions
  // whose relay is already informed.
  trace::ContactTrace t(3, 50.0);
  t.add({1, 2, 0.0, 50.0, 1.0});
  Options opt = unit_options();
  opt.deadline = 40.0;
  const std::vector<Transmission> circular = {{1, 10.0, 1.0},
                                              {2, 10.0, 1.0}};
  const Verdict v = verify(t, circular, opt);
  EXPECT_FALSE(v.feasible);
  EXPECT_FALSE(v.find("relays-informed")->passed);
}

TEST(CertifyVerify, PositiveTauDelaysArrivalAcrossTheDeadline) {
  trace::ContactTrace t(2, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  Options opt = unit_options();
  opt.tau = 5.0;
  opt.deadline = 20.0;
  // Fires at 17, arrives 22 > T = 20.
  EXPECT_FALSE(verify(t, {{0, 17.0, 1.0}}, opt).feasible);
  // Fires at 10, arrives 15 <= 20. t = 10 is not an adjacency boundary
  // point, so membership is checked separately from the delay logic.
  Options no_dts = opt;
  no_dts.check_dts = false;
  EXPECT_TRUE(verify(t, {{0, 10.0, 1.0}}, no_dts).feasible);
}

TEST(CertifyVerify, PositiveTauClosurePropagatesPlusTauPoints) {
  // Node 0's window start (t = 0) propagates to node 1 as 0 + tau, and
  // 1's forward at that point reaches 2 in time.
  trace::ContactTrace t(3, 100.0);
  t.add({0, 1, 0.0, 100.0, 1.0});
  t.add({1, 2, 0.0, 100.0, 1.0});
  Options opt = unit_options();
  opt.tau = 5.0;
  opt.deadline = 50.0;
  const std::vector<Transmission> s = {{0, 0.0, 1.0}, {1, 5.0, 1.0}};
  EXPECT_TRUE(verify(t, s, opt).feasible) << verify(t, s, opt).json();
}

TEST(CertifyVerify, RayleighAllocationValidity) {
  Options opt = unit_options();
  opt.model = channel::ChannelModel::kRayleigh;
  // phi(w) = 1 - exp(-d^2/w): w = 500 puts every hop under eps = 0.01.
  const std::vector<Transmission> enough = {
      {0, 0.0, 500.0}, {1, 10.0, 500.0}, {2, 30.0, 500.0}};
  EXPECT_TRUE(verify(line_trace(), enough, opt).feasible);
  // w = 10 on the middle hop leaves phi = 1 - exp(-0.4) ~ 0.33 > eps.
  const std::vector<Transmission> starved = {
      {0, 0.0, 500.0}, {1, 10.0, 10.0}, {2, 30.0, 500.0}};
  const Verdict v = verify(line_trace(), starved, opt);
  EXPECT_FALSE(v.feasible);
  EXPECT_FALSE(v.find("all-informed")->passed);
}

TEST(CertifyVerify, ThrowsOnInvalidParameters) {
  const auto t = line_trace();
  const auto s = good_schedule();
  Options opt = unit_options();
  opt.deadline = 200.0;  // beyond the horizon
  EXPECT_THROW(verify(t, s, opt), std::invalid_argument);
  opt = unit_options();
  opt.source = 7;
  EXPECT_THROW(verify(t, s, opt), std::invalid_argument);
  opt = unit_options();
  opt.epsilon = 1.5;
  EXPECT_THROW(verify(t, s, opt), std::invalid_argument);
  opt = unit_options();
  opt.tau = -1.0;
  EXPECT_THROW(verify(t, s, opt), std::invalid_argument);
  opt = unit_options();
  opt.targets = {42};
  EXPECT_THROW(verify(t, s, opt), std::invalid_argument);
}

TEST(CertifyVerify, EmptyScheduleIsFeasibleOnlyForTrivialTargets) {
  Options opt = unit_options();
  EXPECT_FALSE(verify(line_trace(), {}, opt).feasible);
  opt.targets = {0};  // the source is trivially informed
  EXPECT_TRUE(verify(line_trace(), {}, opt).feasible);
}

TEST(CertifyVerdict, JsonCarriesVerdictAndChecks) {
  const Verdict v = verify(line_trace(), good_schedule(), unit_options());
  const std::string json = v.json();
  EXPECT_NE(json.find("\"feasible\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"transmissions\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":\"all-informed\",\"passed\":true"),
            std::string::npos)
      << json;
}

TEST(CertifyParse, AcceptsHeaderCommentsAndCrlf) {
  std::istringstream in(
      "# tveg-schedule\r\n\r\n0 370 3.78e-16\r\n# trailing comment\n");
  const auto s = parse_schedule(in);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].relay, 0);
  EXPECT_DOUBLE_EQ(s[0].time, 370.0);
}

TEST(CertifyParse, AcceptsValueLevelGarbageForVerifyToReject) {
  // Negative costs / out-of-range relays are verdicts, not parse errors.
  std::istringstream in("-7 1 5\n99999 1 -5\n");
  const auto s = parse_schedule(in);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].relay, -7);
  EXPECT_DOUBLE_EQ(s[1].cost, -5.0);
}

TEST(CertifyParse, RejectsMalformedLines) {
  for (const char* text :
       {"0 1\n", "0 1 2 3\n", "x 1 2\n", "0.5 1 2\n", "0 one 2\n",
        "0 1 junk\n", "0 nan 2\n", "0 1 inf\n", "0 1 1e999\n",
        "99999999999999999999 1 2\n"}) {
    std::istringstream in(text);
    EXPECT_THROW(parse_schedule(in), std::invalid_argument) << text;
  }
}

TEST(CertifyParse, MissingFileThrows) {
  EXPECT_THROW(parse_schedule_file("/nonexistent/x.sched"),
               std::invalid_argument);
}

}  // namespace
}  // namespace tveg::certify
