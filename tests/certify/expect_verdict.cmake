# ctest runner for the broken-schedule corpus: runs tveg-certify and
# asserts the exact exit status (0 = certified, 1 = rejected, 2 = usage)
# plus, optionally, that one specific named check is the one that failed.
# WILL_FAIL would conflate "rejected" (1) with "crashed / bad usage" (2),
# so the exit code is compared exactly here.
#
# Inputs: -DCERTIFY=<tveg-certify path> -DARGS="<cli args>"
#         -DEXPECT_EXIT=<0|1|2> [-DEXPECT_FAIL=<check id>]
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(COMMAND ${CERTIFY} ${arg_list}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc STREQUAL "${EXPECT_EXIT}")
  message(FATAL_ERROR
    "expected exit ${EXPECT_EXIT}, got '${rc}'\nstdout: ${out}\nstderr: ${err}")
endif()
if(EXPECT_FAIL)
  string(FIND "${out}" "\"id\":\"${EXPECT_FAIL}\",\"passed\":false" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "expected check '${EXPECT_FAIL}' to fail\nstdout: ${out}")
  endif()
endif()
if(EXPECT_EXIT EQUAL 0)
  string(FIND "${out}" "\"feasible\":true" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "expected a feasible verdict\nstdout: ${out}")
  endif()
endif()
