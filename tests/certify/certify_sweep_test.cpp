// Solver-acceptance gate: every schedule the production solvers emit across
// a 200-instance seeded sweep — EEDCB (both Steiner methods and the
// power-expansion ablation), FR-EEDCB, solve_many batches, and every rung
// of the robust ladder — must be accepted by the independent certifier.
// This is the anti-"shared misreading" check: the certifier re-derives
// Eq. 6, the delay window and the DTS closure from the contact list alone,
// so a solver bug and a checker bug would have to agree twice to pass.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ed_weight_cache.hpp"
#include "core/eedcb.hpp"
#include "core/fr.hpp"
#include "core/solve_many.hpp"
#include "core/tveg.hpp"
#include "fault/degrade.hpp"
#include "support/math.hpp"
#include "tools/certify/certify.hpp"
#include "trace/generators.hpp"

namespace tveg::certify {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace random_trace(std::uint64_t seed, int nodes) {
  trace::SnapshotConfig cfg;
  cfg.nodes = nodes;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.25 + 0.05 * static_cast<double>(seed % 4);
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

Options options_for(const core::TmedbInstance& instance,
                    channel::ChannelModel model) {
  const channel::RadioParams& radio = instance.tveg->radio();
  Options opt;
  opt.source = instance.source;
  opt.deadline = instance.deadline;
  opt.epsilon = instance.effective_epsilon();
  opt.tau = instance.tveg->latency();
  opt.budget = instance.budget;
  opt.targets = instance.targets;
  opt.model = model;
  opt.noise_density = radio.noise_density;
  opt.decoding_threshold_db = radio.decoding_threshold_db;
  opt.path_loss_exponent = radio.path_loss_exponent;
  opt.w_min = radio.w_min;
  opt.w_max = radio.w_max;
  return opt;
}

std::vector<Transmission> to_certify(const core::Schedule& s) {
  std::vector<Transmission> out;
  out.reserve(s.size());
  for (const core::Transmission& tx : s.transmissions())
    out.push_back({tx.relay, tx.time, tx.cost});
  return out;
}

/// A covering schedule must certify outright. A non-covering one (the
/// instance itself is infeasible) must still pass every structural check —
/// only all-informed may fail.
void expect_certified(const trace::ContactTrace& t,
                      const core::TmedbInstance& instance,
                      const core::Schedule& schedule,
                      channel::ChannelModel model, bool covering,
                      std::uint64_t seed) {
  const Verdict v = verify(t, to_certify(schedule),
                           options_for(instance, model));
  if (covering) {
    EXPECT_TRUE(v.feasible) << "seed " << seed << ": " << v.json();
    return;
  }
  for (const Check& c : v.checks) {
    if (c.id == "all-informed") continue;
    EXPECT_TRUE(c.passed) << "seed " << seed << " check " << c.id << ": "
                          << c.detail;
  }
}

TEST(CertifySweep, EedcbSchedulesCertifyAcross200Instances) {
  std::size_t certified = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const trace::ContactTrace t =
        random_trace(seed, 5 + static_cast<int>(seed % 4));
    const core::Tveg tveg(t, unit_radio(),
                          {.model = channel::ChannelModel::kStep});
    const Time deadline = (seed % 3 == 0) ? 120.0 : 200.0;
    const core::TmedbInstance instance{&tveg, 0, deadline};
    const auto outcome = core::run_eedcb(instance, core::EedcbOptions{});
    expect_certified(t, instance, outcome.schedule,
                     channel::ChannelModel::kStep, outcome.covered_all, seed);
    if (outcome.covered_all) ++certified;
  }
  EXPECT_GE(certified, 100u);  // the sweep must exercise real schedules
}

TEST(CertifySweep, SteinerMethodsAndAblationCertify) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const trace::ContactTrace t = random_trace(seed, 6);
    const core::Tveg tveg(t, unit_radio(),
                          {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance instance{&tveg, 0, 200.0};
    for (const core::SteinerMethod method :
         {core::SteinerMethod::kShortestPath,
          core::SteinerMethod::kRecursiveGreedy}) {
      for (const bool expansion : {true, false}) {
        core::EedcbOptions opt;
        opt.method = method;
        opt.power_expansion = expansion;
        const auto outcome = core::run_eedcb(instance, opt);
        expect_certified(t, instance, outcome.schedule,
                         channel::ChannelModel::kStep, outcome.covered_all,
                         seed);
      }
    }
  }
}

TEST(CertifySweep, FrEedcbAllocationsCertifyUnderRayleigh) {
  std::size_t certified = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const trace::ContactTrace t = random_trace(seed, 5);
    const core::Tveg tveg(t, unit_radio(),
                          {.model = channel::ChannelModel::kRayleigh});
    const core::TmedbInstance instance{&tveg, 0, 200.0};
    const auto outcome = core::run_fr_eedcb(instance, core::EedcbOptions{});
    if (!outcome.feasible()) continue;
    expect_certified(t, instance, outcome.schedule(),
                     channel::ChannelModel::kRayleigh, true, seed);
    ++certified;
  }
  EXPECT_GE(certified, 10u);
}

TEST(CertifySweep, SolveManyBatchesCertifyIncludingMulticast) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int nodes = 6;
    const trace::ContactTrace t = random_trace(seed, nodes);
    core::Tveg tveg(t, unit_radio(), {.model = channel::ChannelModel::kStep});
    tveg.attach_cache(std::make_shared<core::EdWeightCache>());

    std::vector<core::SolveRequest> requests;
    for (NodeId s = 0; s < nodes; ++s)
      requests.push_back({.source = s, .deadline = 200.0});
    requests.push_back({.source = 0, .deadline = 120.0, .targets = {1, 2}});

    const auto batch = core::solve_many(tveg, requests, {});
    ASSERT_EQ(batch.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const core::TmedbInstance instance = core::to_instance(tveg, requests[i]);
      expect_certified(t, instance, batch[i].schedule,
                       channel::ChannelModel::kStep, batch[i].covered_all,
                       seed);
    }
  }
}

TEST(CertifySweep, EveryRobustLadderRungCertifies) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const trace::ContactTrace t = random_trace(seed, 6);
    const core::Tveg tveg(t, unit_radio(),
                          {.model = channel::ChannelModel::kStep});
    const core::TmedbInstance instance{&tveg, 0, 200.0};
    const DiscreteTimeSet dts = tveg.build_dts();
    for (const fault::SolverRung start :
         {fault::SolverRung::kEedcb, fault::SolverRung::kBip,
          fault::SolverRung::kGreed}) {
      fault::RobustSolveOptions opt;
      opt.start = start;
      const auto outcome = fault::robust_solve(instance, dts, opt);
      expect_certified(t, instance, outcome.result.schedule,
                       channel::ChannelModel::kStep,
                       outcome.result.covered_all, seed);
    }
  }
}

TEST(CertifySweep, RobustFrLadderCertifies) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const trace::ContactTrace t = random_trace(seed, 5);
    const core::Tveg tveg(t, unit_radio(),
                          {.model = channel::ChannelModel::kRayleigh});
    const core::TmedbInstance instance{&tveg, 0, 200.0};
    const DiscreteTimeSet dts = tveg.build_dts();
    const auto outcome = fault::robust_solve_fr(instance, dts);
    if (!outcome.feasible()) continue;
    expect_certified(t, instance, outcome.schedule(),
                     channel::ChannelModel::kRayleigh, true, seed);
  }
}

}  // namespace
}  // namespace tveg::certify
