#!/usr/bin/env bash
# Pins the bench gate's regression-attribution path: synthetic baseline and
# current BENCH_*.json pairs (one bench regressed, one phase blown up) are fed
# through scripts/bench_gate.sh --skip-run via the BASELINE_DIR/WORK_DIR
# overrides, and the failure output must name the regressing benchmark AND
# the slowest-regressing phase with its delta. A second, clean pair must pass.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
GATE="${REPO_ROOT}/scripts/bench_gate.sh"
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

BASE="${TMP}/baselines"
WORK="${TMP}/work"
mkdir -p "${BASE}" "${WORK}"

# Writes one BENCH_<bench>.json. Args: dir bench steiner_ms aux_ms solve_ms
write_report() {
  local dir="$1" bench="$2" steiner_ms="$3" aux_ms="$4" solve_ms="$5"
  python3 - "$dir" "$bench" "$steiner_ms" "$aux_ms" "$solve_ms" <<'PYEOF'
import json
import sys

out_dir, bench = sys.argv[1], sys.argv[2]
steiner_ms, aux_ms, solve_ms = (float(a) for a in sys.argv[3:6])

timings = [{"name": f"BM_{bench}/8", "real_ms": solve_ms}]
if bench == "micro_steiner":
    # The gate's pipeline acceptance bar needs this pair; keep it at a
    # comfortable 4x so only the deliberate regression below can fail.
    timings += [
        {"name": "BM_EedcbPipelineSerial/20", "real_ms": 4000.0},
        {"name": "BM_EedcbPipelineCachedPool/20", "real_ms": 1000.0},
    ]
doc = {
    "timings": timings,
    "phases": [
        {"name": "steiner", "count": 8, "wall_ms": steiner_ms,
         "p50_ms": steiner_ms / 10, "p95_ms": steiner_ms / 5,
         "p99_ms": steiner_ms / 4},
        {"name": "aux_graph", "count": 8, "wall_ms": aux_ms},
        {"name": "dts_build", "count": 1, "wall_ms": 2.0},
    ],
}
with open(f"{out_dir}/BENCH_{bench}.json", "w") as f:
    json.dump(doc, f, indent=1)
PYEOF
}

#  baseline: every bench at nominal cost
for bench in micro_dts micro_steiner micro_aux online_vs_offline; do
  write_report "${BASE}" "${bench}" 50 30 100
done

# --- case 1: regression, blamed on the 'steiner' phase --------------------
# micro_steiner's wall time doubles and its steiner phase grows 50 -> 140 ms
# (aux_graph only 30 -> 40), so the gate must fail and finger 'steiner'.
write_report "${WORK}" micro_dts 50 30 100
write_report "${WORK}" micro_steiner 140 40 200
write_report "${WORK}" micro_aux 50 30 100
write_report "${WORK}" online_vs_offline 50 30 100

out="$(BASELINE_DIR="${BASE}" WORK_DIR="${WORK}" "${GATE}" --skip-run 2>&1)" \
  && { echo "FAIL: gate passed on a 2x regression"; echo "${out}"; exit 1; }

echo "${out}" | grep -q "micro_steiner: BM_micro_steiner/8 regressed" || {
  echo "FAIL: regressed benchmark not named"; echo "${out}"; exit 1; }
echo "${out}" | grep -q "slowest-regressing phase is 'steiner'" || {
  echo "FAIL: 'steiner' not blamed"; echo "${out}"; exit 1; }
echo "${out}" | grep -q "steiner (+90.00 ms)" || {
  echo "FAIL: phase delta missing from the blame line"; echo "${out}"; exit 1; }

# --- case 2: same timings as baseline must pass ---------------------------
for bench in micro_dts micro_steiner micro_aux online_vs_offline; do
  write_report "${WORK}" "${bench}" 50 30 100
done
out="$(BASELINE_DIR="${BASE}" WORK_DIR="${WORK}" "${GATE}" --skip-run 2>&1)" \
  || { echo "FAIL: gate failed on identical timings"; echo "${out}"; exit 1; }
echo "${out}" | grep -q "bench gate passed" || {
  echo "FAIL: pass banner missing"; echo "${out}"; exit 1; }

# --- case 3: regression with NO phase growth names the fallback -----------
write_report "${WORK}" micro_steiner 50 30 200
out="$(BASELINE_DIR="${BASE}" WORK_DIR="${WORK}" "${GATE}" --skip-run 2>&1)" \
  && { echo "FAIL: gate passed on a phase-free regression"; exit 1; }
echo "${out}" | grep -q "no phase grew vs baseline" || {
  echo "FAIL: phase-free fallback message missing"; echo "${out}"; exit 1; }

echo "gate attribution test passed"
