// Twin of guarded_by_violation.cpp with the locks in place. This one must
// compile under clang -Werror=thread-safety — it proves the violation
// fixture is rejected for the lock discipline, not some unrelated error
// (missing include, bad flag, broken sync.hpp).
#include "support/sync.hpp"

class Counter {
 public:
  void bump() {
    tveg::support::MutexLock lock(mutex_);
    ++value_;
  }

  int read() const {
    tveg::support::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable tveg::support::Mutex mutex_;
  int value_ TVEG_GUARDED_BY(mutex_) = 0;
};

int main() {
  Counter c;
  c.bump();
  return c.read();
}
