# Compile-fail harness for the thread-safety annotations (run via
# `cmake -P` by the analyze.thread_safety_compile_fail ctest).
#
# Proves the TVEG_GUARDED_BY discipline is load-bearing, not decorative:
# under clang, guarded_by_violation.cpp must be REJECTED by
# -Werror=thread-safety while its locked twin guarded_by_clean.cpp is
# accepted (so the rejection is the lock discipline, not a broken fixture).
#
# clang is optional in the dev container. When none is found the script
# prints the skip marker below and exits 0; the ctest carries
# SKIP_REGULAR_EXPRESSION on that marker, so ctest reports the test as
# skipped, not passed (cmake 3.25's script mode cannot produce the exit-77
# SKIP_RETURN_CODE itself). Pin a specific clang with TVEG_CLANGXX=... —
# the same override convention as TVEG_CLANG_TIDY in scripts/lint.sh.
if(NOT DEFINED SRC_DIR OR NOT DEFINED FIXTURE_DIR)
  message(FATAL_ERROR
      "usage: cmake -DSRC_DIR=<repo>/src -DFIXTURE_DIR=<this dir> -P "
      "check_compile_fail.cmake")
endif()

set(TVEG_CLANGXX "$ENV{TVEG_CLANGXX}")
if(NOT TVEG_CLANGXX)
  find_program(TVEG_CLANGXX_FOUND NAMES
      clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16
      clang++-15 clang++-14)
  set(TVEG_CLANGXX "${TVEG_CLANGXX_FOUND}")
endif()
if(NOT TVEG_CLANGXX)
  message(STATUS "tveg: clang not found; skipping thread-safety compile-fail")
  return()
endif()

set(FLAGS -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
    "-I${SRC_DIR}")

execute_process(
    COMMAND "${TVEG_CLANGXX}" ${FLAGS} "${FIXTURE_DIR}/guarded_by_clean.cpp"
    RESULT_VARIABLE clean_rc
    ERROR_VARIABLE clean_err)
if(NOT clean_rc EQUAL 0)
  message(FATAL_ERROR
      "guarded_by_clean.cpp must compile under ${TVEG_CLANGXX} — the "
      "harness itself is broken, not the discipline:\n${clean_err}")
endif()

execute_process(
    COMMAND "${TVEG_CLANGXX}" ${FLAGS}
            "${FIXTURE_DIR}/guarded_by_violation.cpp"
    RESULT_VARIABLE bad_rc
    ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR
      "guarded_by_violation.cpp compiled cleanly — TVEG_GUARDED_BY is not "
      "being enforced (annotations no-op'd under clang?)")
endif()
string(FIND "${bad_err}" "thread-safety" ts_diag)
if(ts_diag EQUAL -1)
  message(FATAL_ERROR
      "guarded_by_violation.cpp was rejected, but not by -Wthread-safety; "
      "the fixture has an unrelated error:\n${bad_err}")
endif()

message(STATUS
    "tveg: thread-safety compile-fail check passed (${TVEG_CLANGXX})")
