// Compile-fail fixture: reads and writes a TVEG_GUARDED_BY field without
// holding its mutex. Under clang -Werror=thread-safety this must NOT
// compile — check_compile_fail.cmake asserts the rejection. (GCC compiles
// it happily; the attributes are no-ops there, which is exactly why the
// harness is clang-gated.)
#include "support/sync.hpp"

class Counter {
 public:
  void bump() {
    ++value_;  // no lock held: -Wthread-safety rejects this line
  }

  int read() const {
    return value_;  // and this one
  }

 private:
  mutable tveg::support::Mutex mutex_;
  int value_ TVEG_GUARDED_BY(mutex_) = 0;
};

int main() {
  Counter c;
  c.bump();
  return c.read();
}
