// Manifest for the manifest-dead-key fixture: kUnusedMs is referenced
// nowhere (neither identifier nor literal value) — exactly one finding,
// on its entry line.
#pragma once

namespace fix::keys {

inline constexpr char kSolveMs[] = "tveg.fix.solve_ms";
inline constexpr char kUnusedMs[] = "tveg.fix.unused_ms";

}  // namespace fix::keys
