// manifest-dead-key fixture: uses kSolveMs but never kUnusedMs.
#include "keys.hpp"

void record(const char* key);

void ok() { record(fix::keys::kSolveMs); }
