// metrics-manifest fixture: "tveg.fix.typo_ms" is not declared in
// keys.hpp — exactly one finding, on the typo line.
#include "keys.hpp"

void record(const char* key);

void ok() { record(fix::keys::kSolveMs); }

void typo() { record("tveg.fix.typo_ms"); }
