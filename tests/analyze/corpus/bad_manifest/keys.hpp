// Manifest for the metrics-manifest fixture: declares one key; a.cpp
// emits a second, undeclared one.
#pragma once

namespace fix::keys {

inline constexpr char kSolveMs[] = "tveg.fix.solve_ms";

}  // namespace fix::keys
