// lock-order-cycle fixture, TU 2 of 2: nests g_ring before g_registry,
// the reverse of a.cpp — deadlock-prone, and invisible to any single-TU
// analysis.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};

Mutex g_registry;
Mutex g_ring;

void flush_ring() {
  MutexLock ring(g_ring);
  MutexLock reg(g_registry);
}
