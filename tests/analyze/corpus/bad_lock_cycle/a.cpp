// lock-order-cycle fixture, TU 1 of 2: locally consistent (always
// g_registry before g_ring), but b.cpp nests the opposite way — only the
// cross-TU aggregate graph sees the cycle. No keys.hpp here: the manifest
// rules are exercised by their own fixtures.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};

Mutex g_registry;
Mutex g_ring;

void register_ring() {
  MutexLock reg(g_registry);
  MutexLock ring(g_ring);
}
