// Fixture manifest: the corpus twin of src/obs/keys.hpp. Every entry here
// is referenced by clean/a.cpp, the prefix entry covers the dynamic
// family, and kFlightEventNames lists every enum value a.cpp emits —
// tveg-analyze must come back empty on this tree.
#pragma once

namespace fix::keys {

inline constexpr char kSolveMs[] = "tveg.fix.solve_ms";
inline constexpr char kPoolPrefix[] = "tveg.fix.pool.";

inline constexpr const char* kFlightEventNames[] = {
    "solve_start",
};

}  // namespace fix::keys
