// Clean fixture: uses every manifest key (so no manifest-dead-key), only
// declared keys (so no metrics-manifest), nests the two mutexes in one
// consistent order in both functions (so no lock-order-cycle), keeps the
// noexcept path throw-free, and carries one justified suppression that the
// analyzer must honor.
#include "keys.hpp"

enum class FlightEventKind { kSolveStart };

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};

Mutex g_registry;
Mutex g_ring;

void record(const char* key);

void consistent_a() {
  MutexLock reg(g_registry);
  MutexLock ring(g_ring);
  record(fix::keys::kSolveMs);
}

void consistent_b() {
  MutexLock reg(g_registry);
  MutexLock ring(g_ring);
  record(fix::keys::kPoolPrefix);
  record("tveg.fix.pool.worker0");  // prefix family: matches kPoolPrefix
  (void)FlightEventKind::kSolveStart;
}

void quiet() noexcept { record(fix::keys::kSolveMs); }

void justified() {
  record("tveg.fix.legacy");  // tveg-analyze: allow(metrics-manifest)
}
