// noexcept-throw fixture, TU 2 of 2: two findings — run() reaches the
// throwing fail_fast() (defined in helper.cpp) from a noexcept body, and
// bail() throws directly inside noexcept. safe() wraps the same call in a
// catch (...) barrier and must NOT be flagged.
void fail_fast();

void run() noexcept { fail_fast(); }

void bail() noexcept { throw 1; }

void safe() noexcept {
  try {
    fail_fast();
  } catch (...) {
  }
}
