// noexcept-throw fixture, TU 1 of 2: fail_fast() throws. It is not
// noexcept itself, so this TU alone is clean — the violation is in
// worker.cpp, which calls it from a noexcept function.
#include <stdexcept>

void fail_fast() { throw std::runtime_error("boom"); }
