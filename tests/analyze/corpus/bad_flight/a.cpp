// flight-manifest fixture: kRungDemoted ("rung_demoted") is not listed in
// keys.hpp's kFlightEventNames — exactly one finding, on its use line.
#include "keys.hpp"

enum class FlightEventKind { kSolveStart, kRungDemoted };

void emit(FlightEventKind kind);

void ok() { emit(FlightEventKind::kSolveStart); }

void missing() { emit(FlightEventKind::kRungDemoted); }
