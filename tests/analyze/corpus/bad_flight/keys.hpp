// Manifest for the flight-manifest fixture: lists solve_start only; a.cpp
// also emits FlightEventKind::kRungDemoted, whose snake_case name is
// missing here.
#pragma once

namespace fix::keys {

inline constexpr const char* kFlightEventNames[] = {
    "solve_start",
};

}  // namespace fix::keys
