// tveg-analyze rule tests: each corpus fixture tree is pinned to its exact
// rule-id findings (file + line), mirroring tests/lint/tveg_lint_test.cpp.
// The analyze.corpus.* ctests additionally prove the binary exits non-zero
// on each bad tree, and analyze.clean_tree keeps the real src/ honest.
#include "tools/analyze/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace tveg::analyze {
namespace {

std::vector<Finding> run(const std::string& fixture) {
  return analyze_tree(std::string(TVEG_ANALYZE_CORPUS_DIR) + "/" + fixture,
                      Options{});
}

bool file_is(const Finding& finding, const std::string& base) {
  const std::string& f = finding.file;
  return f.size() >= base.size() &&
         f.compare(f.size() - base.size(), base.size(), base) == 0;
}

TEST(TvegAnalyze, CleanFixtureHasNoFindings) {
  for (const auto& finding : run("clean")) ADD_FAILURE() << to_string(finding);
}

TEST(TvegAnalyze, UndeclaredMetricKeyIsFlagged) {
  const auto findings = run("bad_manifest");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metrics-manifest");
  EXPECT_TRUE(file_is(findings[0], "a.cpp")) << findings[0].file;
  EXPECT_EQ(findings[0].line, 9);
  EXPECT_NE(findings[0].message.find("tveg.fix.typo_ms"), std::string::npos);
}

TEST(TvegAnalyze, DeadManifestKeyIsFlaggedOnItsEntryLine) {
  const auto findings = run("bad_dead_key");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "manifest-dead-key");
  EXPECT_TRUE(file_is(findings[0], "keys.hpp")) << findings[0].file;
  EXPECT_EQ(findings[0].line, 9);
  EXPECT_NE(findings[0].message.find("kUnusedMs"), std::string::npos);
}

TEST(TvegAnalyze, UnlistedFlightEventIsFlagged) {
  const auto findings = run("bad_flight");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "flight-manifest");
  EXPECT_TRUE(file_is(findings[0], "a.cpp")) << findings[0].file;
  EXPECT_EQ(findings[0].line, 11);
  EXPECT_NE(findings[0].message.find("rung_demoted"), std::string::npos);
}

TEST(TvegAnalyze, CrossTuLockOrderCycleIsFlaggedOnce) {
  // Each TU is locally consistent; only the aggregate graph has the cycle.
  // Canonical-form dedup must report it exactly once, naming both edges.
  const auto findings = run("bad_lock_cycle");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order-cycle");
  EXPECT_NE(findings[0].message.find("g_registry"), std::string::npos);
  EXPECT_NE(findings[0].message.find("g_ring"), std::string::npos);
  EXPECT_NE(findings[0].message.find("a.cpp"), std::string::npos)
      << "cycle message must cite the edge site in the other TU: "
      << findings[0].message;
}

TEST(TvegAnalyze, NoexceptReachingThrowIsFlaggedAcrossTus) {
  auto findings = run("bad_noexcept_throw");
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.line < b.line; });
  ASSERT_EQ(findings.size(), 2u);
  // run() noexcept -> fail_fast() defined (and throwing) in the other TU.
  EXPECT_EQ(findings[0].rule, "noexcept-throw");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("fail_fast"), std::string::npos);
  // bail() noexcept throws directly.
  EXPECT_EQ(findings[1].rule, "noexcept-throw");
  EXPECT_EQ(findings[1].line, 9);
  // safe() wraps the same call in catch (...) and produced no finding —
  // implied by the exact count of 2 above.
}

TEST(TvegAnalyze, RuleIdsAreStable) {
  const auto& ids = rule_ids();
  const std::vector<std::string> expected = {
      "metrics-manifest", "flight-manifest", "manifest-dead-key",
      "lock-order-cycle", "noexcept-throw"};
  for (const auto& id : expected)
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
}

TEST(TvegAnalyze, FindingRendersFileLineRuleMessage) {
  const Finding finding{"x.cpp", 7, "metrics-manifest", "boom"};
  EXPECT_EQ(to_string(finding), "x.cpp:7: [metrics-manifest] boom");
}

}  // namespace
}  // namespace tveg::analyze
