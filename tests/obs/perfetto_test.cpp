// Perfetto/Chrome trace export: a real multi-threaded pool run must produce
// a structurally valid trace_event document with worker tracks and
// queue-wait events, and validate_chrome_trace must reject the malformed
// shapes it exists to catch (the regression fixtures).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/json.hpp"
#include "obs/span.hpp"
#include "support/thread_pool.hpp"

namespace tveg::obs {
namespace {

struct SpanTracingGuard {
  SpanTracingGuard() {
    span_reset();
    set_span_tracing(true);
  }
  ~SpanTracingGuard() {
    set_span_tracing(false);
    span_reset();
  }
};

TEST(Perfetto, PoolRunProducesValidTraceWithWorkerTracks) {
  SpanTracingGuard guard;
  set_current_thread_name("main");
  support::ThreadPool pool(4);
  pool.parallel_for(0, 256, [](std::size_t) {
    ScopedSpan span("work_item");
    volatile double sink = 0;
    for (int i = 0; i < 500; ++i) sink = sink + static_cast<double>(i);
  });
  pool.shutdown();

  const Json doc = chrome_trace();
  EXPECT_EQ(validate_chrome_trace(doc), "");

  std::set<double> worker_tids;
  bool queue_wait_seen = false;
  bool work_item_seen = false;
  for (const Json& e : doc.find("traceEvents")->items()) {
    const std::string ph = e.find("ph")->as_string();
    const std::string name = e.find("name")->as_string();
    if (ph == "M" && name == "thread_name") {
      const std::string track = e.find("args")->find("name")->as_string();
      if (track.rfind("pool-worker-", 0) == 0)
        worker_tids.insert(e.find("tid")->as_number());
    }
    if (ph == "X" && name == "queue_wait") queue_wait_seen = true;
    if (ph == "B" && name == "work_item") work_item_seen = true;
  }
  // The acceptance bar: at least two workers visible, with queue-wait and
  // task spans on their tracks.
  EXPECT_GE(worker_tids.size(), 2u);
  EXPECT_TRUE(queue_wait_seen);
  EXPECT_TRUE(work_item_seen);
}

TEST(Perfetto, SerializedTraceRoundTripsThroughParser) {
  SpanTracingGuard guard;
  { ScopedSpan span("roundtrip"); }
  const std::string text = chrome_trace_json();
  const Json parsed = Json::parse(text);
  EXPECT_EQ(validate_chrome_trace(parsed), "");
}

// -- malformed-output regression fixtures ---------------------------------
// Each shape below was a real way an exporter bug could corrupt the file;
// validate_chrome_trace must name a violation for every one.

Json event(const char* ph, double tid, const char* name, double ts) {
  Json e = Json::object();
  e.set("ph", Json(ph));
  e.set("pid", Json(1));
  e.set("tid", Json(tid));
  e.set("name", Json(name));
  e.set("ts", Json(ts));
  return e;
}

Json doc_of(std::initializer_list<Json> events) {
  Json doc = Json::object();
  Json arr = Json::array();
  for (const Json& e : events) arr.push_back(e);
  doc.set("traceEvents", std::move(arr));
  return doc;
}

TEST(Perfetto, RejectsNonObjectDocument) {
  EXPECT_NE(validate_chrome_trace(Json::array()), "");
  EXPECT_NE(validate_chrome_trace(Json("hello")), "");
}

TEST(Perfetto, RejectsMissingTraceEvents) {
  EXPECT_NE(validate_chrome_trace(Json::object()), "");
}

TEST(Perfetto, RejectsUnmatchedBegin) {
  const Json doc = doc_of({event("B", 0, "orphan", 10)});
  EXPECT_NE(validate_chrome_trace(doc), "");
}

TEST(Perfetto, RejectsMismatchedEndName) {
  const Json doc =
      doc_of({event("B", 0, "alpha", 10), event("E", 0, "beta", 20)});
  EXPECT_NE(validate_chrome_trace(doc), "");
}

TEST(Perfetto, RejectsEndWithoutBegin) {
  const Json doc = doc_of({event("E", 0, "stray", 10)});
  EXPECT_NE(validate_chrome_trace(doc), "");
}

TEST(Perfetto, RejectsNonMonotoneTimestampsPerTid) {
  const Json doc = doc_of({event("B", 0, "a", 20), event("E", 0, "a", 10)});
  EXPECT_NE(validate_chrome_trace(doc), "");
}

TEST(Perfetto, RejectsNegativeDuration) {
  Json x = event("X", 1000, "queue_wait", 10);
  x.set("dur", Json(-5));
  EXPECT_NE(validate_chrome_trace(doc_of({std::move(x)})), "");
}

TEST(Perfetto, RejectsUnknownPhase) {
  const Json doc = doc_of({event("Q", 0, "weird", 10)});
  EXPECT_NE(validate_chrome_trace(doc), "");
}

TEST(Perfetto, RejectsNonNumericTid) {
  Json e = event("B", 0, "a", 10);
  e.set("tid", Json("zero"));
  Json e2 = event("E", 0, "a", 20);
  EXPECT_NE(validate_chrome_trace(doc_of({std::move(e), std::move(e2)})), "");
}

TEST(Perfetto, AcceptsInterleavedTracksWithLocalMonotonicity) {
  // Two tids may interleave globally as long as each track's ts is
  // non-decreasing and its B/E stack matches.
  const Json doc = doc_of({
      event("B", 0, "a", 10),
      event("B", 1, "b", 5),
      event("E", 1, "b", 30),
      event("E", 0, "a", 40),
  });
  EXPECT_EQ(validate_chrome_trace(doc), "");
}

}  // namespace
}  // namespace tveg::obs
