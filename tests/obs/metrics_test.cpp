// MetricsRegistry: counter/gauge semantics, histogram percentiles, and
// lossless concurrent updates through the ThreadPool.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "support/thread_pool.hpp"

namespace tveg::obs {
namespace {

TEST(Counter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 3.0);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, ExactCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isinf(h.min()));
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, QuantilesAreBucketAccurate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  // Geometric buckets give ~9% relative resolution; allow 15%.
  EXPECT_NEAR(h.quantile(0.5), 500.0, 75.0);
  EXPECT_NEAR(h.quantile(0.9), 900.0, 135.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 150.0);
  // Quantiles clamp to the exact observed range.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);
}

TEST(Histogram, QuantilesMonotone) {
  Histogram h;
  for (int i = 0; i < 500; ++i) h.observe(std::pow(1.1, i % 40));
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, NonPositiveAndNanGoToUnderflowBucket) {
  Histogram h;
  h.observe(0.0);
  h.observe(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, SnapshotMatchesAccessors) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.observe(static_cast<double>(i));
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, h.count());
  EXPECT_DOUBLE_EQ(s.sum, h.sum());
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
}

TEST(MetricsRegistry, LookupsReturnStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("tveg.test.counter");
  Counter& b = registry.counter("tveg.test.counter");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  Gauge& g = registry.gauge("tveg.test.gauge");
  EXPECT_EQ(&g, &registry.gauge("tveg.test.gauge"));
  Histogram& h = registry.histogram("tveg.test.hist");
  EXPECT_EQ(&h, &registry.histogram("tveg.test.hist"));
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("tveg.b").add(2);
  registry.counter("tveg.a").add(1);
  registry.gauge("tveg.g").set(3.5);
  const MetricsRegistry::Snapshot s = registry.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "tveg.a");
  EXPECT_EQ(s.counters[0].second, 1u);
  EXPECT_EQ(s.counters[1].first, "tveg.b");
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 3.5);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.counter("tveg.r.c");
  Histogram& h = registry.histogram("tveg.r.h");
  c.add(5);
  h.observe(1.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&c, &registry.counter("tveg.r.c"));
}

TEST(MetricsConcurrency, ParallelForLosesNoIncrements) {
  MetricsRegistry registry;
  Counter& c = registry.counter("tveg.conc.counter");
  Histogram& h = registry.histogram("tveg.conc.hist");
  constexpr std::size_t kN = 20000;
  support::ThreadPool pool(4);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    c.add(1);
    h.observe(static_cast<double>(i % 64 + 1));
  });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(h.count(), kN);
}

TEST(MetricsConcurrency, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  support::ThreadPool pool(4);
  pool.parallel_for(0, 256, [&](std::size_t i) {
    registry.counter("tveg.reg." + std::to_string(i % 8)).add(1);
  });
  std::uint64_t total = 0;
  for (const auto& [name, value] : registry.snapshot().counters) total += value;
  EXPECT_EQ(total, 256u);
}

}  // namespace
}  // namespace tveg::obs
