// Flight recorder: lock-free recording semantics, byte-stable dumps for a
// fixed seed, ring retention, and the auto-dump trigger on a forced
// fallback-ladder demotion.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/degrade.hpp"
#include "trace/generators.hpp"

namespace tveg::obs {
namespace {

struct RecorderGuard {
  RecorderGuard() {
    flight_recorder().reset();
    set_flight_dump_path("");
  }
  ~RecorderGuard() {
    flight_recorder().reset();
    set_flight_dump_path("");
  }
};

TEST(FlightRecorder, RecordsAndDumpsInOrder) {
  RecorderGuard guard;
  FlightRecorder& rec = flight_recorder();
  rec.record(FlightEventKind::kSolveStart, 0, 100);
  rec.record(FlightEventKind::kRungStart, 0, 0, "eedcb");
  rec.record(FlightEventKind::kRungDemoted, 0, 2, "eedcb");
  const std::string dump = rec.dump_string();
  EXPECT_NE(dump.find("flight-recorder: 3 event(s), 3 retained"),
            std::string::npos);
  const std::size_t p0 = dump.find("#0 solve_start");
  const std::size_t p1 = dump.find("#1 rung_start");
  const std::size_t p2 = dump.find("#2 rung_demoted");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
}

TEST(FlightRecorder, RingRetainsOnlyLastCapacityEvents) {
  RecorderGuard guard;
  FlightRecorder& rec = flight_recorder();
  const std::size_t total = FlightRecorder::kCapacity + 40;
  for (std::size_t i = 0; i < total; ++i)
    rec.record(FlightEventKind::kNote, i);
  EXPECT_EQ(rec.recorded(), total);
  const std::string dump = rec.dump_string();
  // Oldest retained is #40; #39 must be gone.
  EXPECT_EQ(dump.find("#39 "), std::string::npos);
  EXPECT_NE(dump.find("#40 "), std::string::npos);
  EXPECT_NE(dump.find("#" + std::to_string(total - 1) + " "),
            std::string::npos);
}

TEST(FlightRecorder, ConcurrentWritersNeverCorruptTheDump) {
  RecorderGuard guard;
  FlightRecorder& rec = flight_recorder();
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w)
    writers.emplace_back([&rec, w] {
      for (std::uint64_t i = 0; i < 2000; ++i)
        rec.record(FlightEventKind::kNote, static_cast<std::uint64_t>(w), i);
    });
  // Dump concurrently with the writers: may skip in-flight slots but must
  // not crash or emit torn lines.
  for (int i = 0; i < 20; ++i) {
    const std::string d = rec.dump_string();
    EXPECT_NE(d.find("flight-recorder:"), std::string::npos);
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(rec.recorded(), 4u * 2000u);
}

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

/// A zero-budget robust_solve: both upper rungs demote on timeout, so the
/// recorder sees a deterministic event sequence and the auto-dump fires.
std::string forced_demotion_dump(const std::string& path) {
  flight_recorder().reset();
  set_flight_dump_path(path);

  trace::SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.35;
  cfg.seed = 1;
  const trace::ContactTrace t = trace::generate_snapshots(cfg);
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  fault::RobustSolveOptions options;
  options.budget_ms = 0;
  const fault::RobustSolveResult r = fault::robust_solve(inst, dts, options);
  EXPECT_EQ(r.rung, fault::SolverRung::kGreed);

  set_flight_dump_path("");
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "auto-dump was not written to " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  return buf.str();
}

TEST(FlightRecorder, ForcedDemotionAutoDumpIsByteStable) {
  RecorderGuard guard;
  // Same seed, same budget, two runs: the dump must be byte-identical —
  // the recorder is clock-free, so nothing machine-local can leak in.
  const std::string first =
      forced_demotion_dump(testing::TempDir() + "flight_a.txt");
  const std::string second =
      forced_demotion_dump(testing::TempDir() + "flight_b.txt");
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The demotion chain must be visible: ladder start, both timed-out rungs.
  EXPECT_NE(first.find("solve_start"), std::string::npos);
  EXPECT_NE(first.find("deadline_expired"), std::string::npos);
  EXPECT_NE(first.find("rung_demoted"), std::string::npos);
}

TEST(FlightRecorder, DumpTriggerIsSafeWhenDisarmed) {
  RecorderGuard guard;
  // No path armed: the trigger records its note and returns false.
  EXPECT_FALSE(flight_dump("nothing armed"));
  EXPECT_NE(flight_recorder().dump_string().find("nothing armed"),
            std::string::npos);
}

TEST(FlightRecorder, DumpErrorsAreSwallowed) {
  RecorderGuard guard;
  set_flight_dump_path("/nonexistent-dir/definitely/not/writable.txt");
  EXPECT_FALSE(flight_dump("io failure path"));  // must not throw
}

}  // namespace
}  // namespace tveg::obs
