// Satellite (b): concurrent metric writers racing MetricsRegistry::snapshot.
// Designed for the ThreadSanitizer tier: many threads hammer one Counter,
// Gauge and Histogram (plus registry lookups creating fresh instruments)
// while a reader snapshots in a loop. Any lock-order or data race here is
// exactly what the obs layer promises cannot happen.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace tveg::obs {
namespace {

TEST(MetricsStress, WritersRacingSnapshotAreRaceFree) {
  MetricsRegistry registry;  // private registry: the test owns its lifetime
  Counter& counter = registry.counter("tveg.obs.stress_counter");
  Gauge& gauge = registry.gauge("tveg.obs.stress_gauge");
  Histogram& histogram = registry.histogram("tveg.obs.stress_hist");

  constexpr int kWriters = 4;
  constexpr std::uint64_t kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
        counter.add(1);
        gauge.set(static_cast<double>(i));
        histogram.observe(static_cast<double>((i % 1000) + 1));
        if (i % 4096 == 0)
          // Registry mutation racing the snapshot lock, too.
          registry.counter("tveg.obs.stress_dyn_" + std::to_string(w))
              .add(1);
      }
    });

  std::thread reader([&] {
    std::uint64_t snapshots = 0;
    // do/while: even if this thread is scheduled so late that the writers
    // already finished, it still exercises the snapshot path at least once.
    do {
      const MetricsRegistry::Snapshot s = registry.snapshot();
      for (const auto& [name, h] : s.histograms) {
        // Mid-write snapshots can be momentarily torn (count ahead of
        // min/max); only when the bounds are coherent must the quantiles
        // respect them.
        if (h.count > 0 && h.min <= h.max) {
          EXPECT_GE(h.p50, 0.0) << name;
          EXPECT_LE(h.p99, h.max * 1.0001) << name;
        }
      }
      ++snapshots;
    } while (!stop.load(std::memory_order_acquire));
    EXPECT_GT(snapshots, 0u);
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kWriters) *
                                 kOpsPerWriter);
  const auto final_snapshot = registry.snapshot();
  bool hist_seen = false;
  for (const auto& [name, h] : final_snapshot.histograms)
    if (name == "tveg.obs.stress_hist") {
      hist_seen = true;
      EXPECT_EQ(h.count, static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
      EXPECT_GE(h.p99, h.p50);
      EXPECT_GE(h.p95, h.p50);
    }
  EXPECT_TRUE(hist_seen);
}

TEST(MetricsStress, ConcurrentHistogramResetKeepsSnapshotsSane) {
  Histogram histogram;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w)
    writers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i)
        histogram.observe(static_cast<double>((i % 100) + 1));
    });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // Mid-reset snapshots may be torn (count ahead of min/max); the
      // contract is only that reading them is race-free and quantile never
      // hits UB — no value assertions here on purpose.
      (void)histogram.snapshot();
      histogram.reset();
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  resetter.join();
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
}

}  // namespace
}  // namespace tveg::obs
