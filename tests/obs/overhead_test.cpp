// Satellite (a): the overhead budget. Span tracing is compiled into every
// hot path (cache lookups, MC trials, pool tasks), so the *disabled* cost —
// one relaxed atomic load plus a branch per ScopedSpan — must stay
// negligible: the instrumented spans of a representative solve, priced at
// the measured per-disabled-span cost, must add up to <= 2% of that solve's
// wall time, and the per-span cost itself must stay under an absolute bound.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "core/eedcb.hpp"
#include "obs/json.hpp"
#include "obs/keys.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "trace/generators.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define TVEG_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define TVEG_SANITIZED 1
#endif
#endif
#ifndef TVEG_SANITIZED
#define TVEG_SANITIZED 0
#endif

namespace tveg::obs {
namespace {

using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::nano>(b - a).count();
}

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

core::SchedulerResult run_solve(const core::TmedbInstance& inst,
                                const DiscreteTimeSet& dts) {
  return core::run_eedcb(inst, dts, {});
}

TEST(Overhead, DisabledSpansCostAtMostTwoPercentOfASolve) {
  if (TVEG_SANITIZED)
    GTEST_SKIP() << "sanitizer instrumentation distorts the timing budget";

  set_span_tracing(false);
  set_enabled(false);
  span_reset();

  trace::SnapshotConfig cfg;
  cfg.nodes = 14;
  cfg.slot = 20;
  cfg.horizon = 400;
  cfg.p = 0.3;
  cfg.seed = 7;
  const trace::ContactTrace t = trace::generate_snapshots(cfg);
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 400.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  // 1. Count how many spans this solve actually opens (records + drops);
  //    queue waits do not occur serially, so B events + drops cover it.
  set_span_tracing(true);
  run_solve(inst, dts);
  std::uint64_t spans = span_drop_count();
  const Json trace_doc = chrome_trace();  // keep alive: find() aliases it
  const Json* events = trace_doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const Json& e : events->items())
    if (e.find("ph")->as_string() == "B") ++spans;
  set_span_tracing(false);
  span_reset();
  ASSERT_GT(spans, 0u) << "the solve exercises no instrumented spans";

  // 2. Per-disabled-span cost, amortized over a tight loop. Warm up once so
  //    lazy statics are priced out.
  constexpr std::uint64_t kProbe = 2'000'000;
  { ScopedSpan warm("overhead_probe"); }
  const auto probe_start = Clock::now();
  for (std::uint64_t i = 0; i < kProbe; ++i) {
    ScopedSpan span("overhead_probe");
  }
  const double per_span_ns =
      ns_between(probe_start, Clock::now()) / static_cast<double>(kProbe);

  // 3. The solve's wall time with everything disabled (best of 3, to shrug
  //    off scheduler noise on shared CI hardware).
  double solve_ns = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = Clock::now();
    run_solve(inst, dts);
    solve_ns = std::min(solve_ns, ns_between(start, Clock::now()));
  }

  const double overhead_ns = per_span_ns * static_cast<double>(spans);
  const double fraction = overhead_ns / solve_ns;
  RecordProperty("per_span_ns", std::to_string(per_span_ns));
  RecordProperty("spans_per_solve", std::to_string(spans));
  RecordProperty("overhead_fraction", std::to_string(fraction));

  // The budget: disabled instrumentation must be invisible. 50 ns per span
  // is ~an order of magnitude above what a load+branch should cost, and the
  // aggregate must stay within the 2% bar the issue sets.
  EXPECT_LT(per_span_ns, 50.0);
  EXPECT_LT(fraction, 0.02)
      << "disabled spans cost " << overhead_ns / 1e6 << " ms against a "
      << solve_ns / 1e6 << " ms solve (" << spans << " spans at "
      << per_span_ns << " ns)";
}

TEST(Overhead, SteadyStateSolvesAllocateNoWorkspaces) {
  // tveg.alloc.steady_state counts Dijkstra workspace *creations* (pool
  // misses). The first solve may populate the pool; after that warmup, a
  // serial solve loop must run entirely off reused workspaces — the counter
  // delta over the steady-state window is exactly zero.
  trace::SnapshotConfig cfg;
  cfg.nodes = 10;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.3;
  cfg.seed = 5;
  const trace::ContactTrace t = trace::generate_snapshots(cfg);
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  run_solve(inst, dts);  // warmup: allowed to create pool entries

  auto& alloc = MetricsRegistry::global().counter(keys::kAllocSteadyState);
  const std::uint64_t before = alloc.value();
  core::SchedulerResult last;
  for (int rep = 0; rep < 5; ++rep) last = run_solve(inst, dts);
  EXPECT_TRUE(last.covered_all);
  EXPECT_EQ(alloc.value() - before, 0u)
      << "steady-state solves created new Dijkstra workspaces instead of "
         "reusing the pool";
}

}  // namespace
}  // namespace tveg::obs
