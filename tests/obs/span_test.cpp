// Thread-aware span ring: recording semantics, nesting, reset, drop
// accounting and the disabled-path contract. Export-level structure is
// covered by perfetto_test.cpp.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace tveg::obs {
namespace {

struct SpanTracingGuard {
  SpanTracingGuard() {
    span_reset();
    set_span_tracing(true);
  }
  ~SpanTracingGuard() {
    set_span_tracing(false);
    span_reset();
  }
};

std::vector<const Json*> events_of(const Json& doc, const std::string& ph) {
  std::vector<const Json*> out;
  for (const Json& e : doc.find("traceEvents")->items())
    if (e.find("ph")->as_string() == ph) out.push_back(&e);
  return out;
}

TEST(Span, DisabledRecordsNothing) {
  span_reset();
  set_span_tracing(false);
  { ScopedSpan span("ignored"); }
  const Json doc = chrome_trace();
  EXPECT_TRUE(events_of(doc, "B").empty());
  EXPECT_TRUE(events_of(doc, "X").empty());
}

TEST(Span, ScopedSpanProducesMatchedPair) {
  SpanTracingGuard guard;
  { ScopedSpan span("unit_phase"); }
  const Json doc = chrome_trace();
  EXPECT_EQ(validate_chrome_trace(doc), "");
  const auto begins = events_of(doc, "B");
  const auto ends = events_of(doc, "E");
  ASSERT_EQ(begins.size(), 1u);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(begins[0]->find("name")->as_string(), "unit_phase");
  EXPECT_EQ(begins[0]->find("tid")->as_number(),
            ends[0]->find("tid")->as_number());
  EXPECT_LE(begins[0]->find("ts")->as_number(),
            ends[0]->find("ts")->as_number());
}

TEST(Span, NestedSpansExportInStackOrder) {
  SpanTracingGuard guard;
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
  }
  const Json doc = chrome_trace();
  EXPECT_EQ(validate_chrome_trace(doc), "");
  // Emission order on one track must be B(outer) B(inner) E(inner) E(outer).
  std::vector<std::string> order;
  for (const Json& e : doc.find("traceEvents")->items()) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "B" || ph == "E")
      order.push_back(ph + ":" + e.find("name")->as_string());
  }
  const std::vector<std::string> expected = {"B:outer", "B:inner", "E:inner",
                                             "E:outer"};
  EXPECT_EQ(order, expected);
}

TEST(Span, QueueWaitBecomesCompleteEventOnQueueTrack) {
  SpanTracingGuard guard;
  const std::uint64_t t0 = now_epoch_ns();
  span_queue_wait(t0, t0 + 1500);
  const Json doc = chrome_trace();
  EXPECT_EQ(validate_chrome_trace(doc), "");
  const auto xs = events_of(doc, "X");
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0]->find("name")->as_string(), "queue_wait");
  EXPECT_GE(xs[0]->find("tid")->as_number(), 1000.0);
  EXPECT_GE(xs[0]->find("dur")->as_number(), 0.0);
}

TEST(Span, ResetClearsRecordsAndDrops) {
  SpanTracingGuard guard;
  { ScopedSpan span("before_reset"); }
  span_reset();
  const Json doc = chrome_trace();
  EXPECT_TRUE(events_of(doc, "B").empty());
  EXPECT_EQ(span_drop_count(), 0u);
}

TEST(Span, RingOverflowDropsOldestAndCounts) {
  SpanTracingGuard guard;
  // Well past any plausible ring capacity; the export must stay valid (a
  // dropped parent degrades nesting, never produces unmatched pairs).
  constexpr std::size_t kSpans = 1u << 16;
  for (std::size_t i = 0; i < kSpans; ++i) { ScopedSpan span("flood"); }
  EXPECT_GT(span_drop_count(), 0u);
  const Json doc = chrome_trace();
  EXPECT_EQ(validate_chrome_trace(doc), "");
  EXPECT_LT(events_of(doc, "B").size(), kSpans);
}

TEST(Span, ThreadNameShowsUpAsMetadata) {
  SpanTracingGuard guard;
  set_current_thread_name("span-test-main");
  { ScopedSpan span("named"); }
  const Json doc = chrome_trace();
  bool found = false;
  for (const Json& e : doc.find("traceEvents")->items()) {
    if (e.find("ph")->as_string() != "M") continue;
    const Json* args = e.find("args");
    if (args != nullptr && args->find("name") != nullptr &&
        args->find("name")->as_string() == "span-test-main")
      found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tveg::obs
