// Phase tracing: nested spans aggregate into a tree, disabled mode records
// nothing, and the JSON export round-trips through the bundled parser.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/thread_pool.hpp"

namespace tveg::obs {
namespace {

/// Fresh trace state per test; restores the disabled default afterwards.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    trace_reset();
  }
  void TearDown() override {
    set_enabled(false);
    trace_reset();
  }

  static const TraceNodeSnapshot* find(
      const std::vector<TraceNodeSnapshot>& nodes, const std::string& name) {
    for (const auto& n : nodes)
      if (n.name == name) return &n;
    return nullptr;
  }
};

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
    EXPECT_EQ(outer.elapsed_ms(), 0.0);
  }
  EXPECT_TRUE(trace_snapshot().empty());
  EXPECT_TRUE(phase_totals().empty());
}

TEST_F(TraceTest, NestedSpansFormTree) {
  set_enabled(true);
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
    { TraceSpan inner("inner"); }
  }
  const auto roots = trace_snapshot();
  const TraceNodeSnapshot* outer = find(roots, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const TraceNodeSnapshot* inner = find(outer->children, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);  // same (parent, name) aggregates
  EXPECT_GE(outer->wall_ms, inner->wall_ms);
}

TEST_F(TraceTest, ElapsedTracksWallClock) {
  set_enabled(true);
  TraceSpan span("sleepy");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(span.elapsed_ms(), 4.0);
}

TEST_F(TraceTest, DeclarePhasesSeedsZeroCountNodes) {
  declare_phases({"alpha", "beta"});
  const auto roots = trace_snapshot();
  const TraceNodeSnapshot* alpha = find(roots, "alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->count, 0u);
  EXPECT_EQ(alpha->wall_ms, 0.0);
  ASSERT_NE(find(roots, "beta"), nullptr);
}

TEST_F(TraceTest, PhaseTotalsSumAcrossTheTree) {
  set_enabled(true);
  {
    TraceSpan a("phase_a");
    { TraceSpan b("phase_b"); }
  }
  { TraceSpan b("phase_b"); }  // same name at root level
  const auto totals = phase_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].first, "phase_a");
  EXPECT_EQ(totals[0].second.count, 1u);
  EXPECT_EQ(totals[1].first, "phase_b");
  EXPECT_EQ(totals[1].second.count, 2u);
}

TEST_F(TraceTest, WorkerSpansAttachUnderRoot) {
  set_enabled(true);
  support::ThreadPool pool(2);
  pool.parallel_for(0, 8, [](std::size_t) { TraceSpan span("worker_phase"); });
  const auto totals = phase_totals();
  const TraceNodeSnapshot* worker = nullptr;
  for (const auto& [name, node] : totals)
    if (name == "worker_phase") worker = &node;
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->count, 8u);
}

TEST_F(TraceTest, JsonSnapshotRoundTrips) {
  set_enabled(true);
  declare_phases({"idle_phase"});
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  MetricsRegistry::global().counter("tveg.tracetest.counter").add(3);

  const std::string text = snapshot_json(2);
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.find("schema")->as_string(), "tveg-obs-1");

  // Parse(dump(x)) == x structurally: dump again and compare.
  EXPECT_EQ(Json::parse(doc.dump(2)).dump(), doc.dump());

  const Json* counters = doc.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("tveg.tracetest.counter")->as_number(), 3.0);

  const Json* totals = doc.find("phase_totals");
  ASSERT_NE(totals, nullptr);
  ASSERT_NE(totals->find("outer"), nullptr);
  ASSERT_NE(totals->find("idle_phase"), nullptr);
  EXPECT_EQ(totals->find("idle_phase")->as_number(), 0.0);

  const Json* phases = doc.find("phases");
  ASSERT_NE(phases, nullptr);
  bool found_inner = false;
  for (const Json& phase : phases->items())
    if (phase.find("name")->as_string() == "outer")
      for (const Json& child : phase.find("children")->items())
        if (child.find("name")->as_string() == "inner") found_inner = true;
  EXPECT_TRUE(found_inner);
}

TEST_F(TraceTest, ResetDropsTheTree) {
  set_enabled(true);
  { TraceSpan span("ephemeral"); }
  EXPECT_FALSE(trace_snapshot().empty());
  trace_reset();
  EXPECT_TRUE(trace_snapshot().empty());
}

}  // namespace
}  // namespace tveg::obs
