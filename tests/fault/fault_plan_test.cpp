#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "trace/generators.hpp"

namespace tveg::fault {
namespace {

trace::ContactTrace sample_trace(std::uint64_t seed = 1) {
  trace::SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.35;
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

TEST(FaultPlan, ParsesFullSpec) {
  const auto result = FaultPlan::parse(
      "seed=7,edge_dropout=0.2,node_churn=0.1,churn_span=0.3,"
      "truncation=0.25,truncation_keep=0.4,jitter=5,"
      "cost_inflation=0.15,inflation_factor=2,tx_failure=0.05");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const FaultPlan plan = result.value();
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.edge_dropout, 0.2);
  EXPECT_DOUBLE_EQ(plan.node_churn, 0.1);
  EXPECT_DOUBLE_EQ(plan.churn_span, 0.3);
  EXPECT_DOUBLE_EQ(plan.contact_truncation, 0.25);
  EXPECT_DOUBLE_EQ(plan.truncation_keep, 0.4);
  EXPECT_DOUBLE_EQ(plan.contact_jitter_s, 5.0);
  EXPECT_DOUBLE_EQ(plan.cost_inflation, 0.15);
  EXPECT_DOUBLE_EQ(plan.cost_inflation_factor, 2.0);
  EXPECT_DOUBLE_EQ(plan.tx_failure, 0.05);
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.any_trace_fault());
}

TEST(FaultPlan, ParseRejectsBadInput) {
  EXPECT_FALSE(FaultPlan::parse("edge_dropout=1.5").ok());
  EXPECT_FALSE(FaultPlan::parse("no_such_key=1").ok());
  EXPECT_FALSE(FaultPlan::parse("edge_dropout=abc").ok());
  EXPECT_FALSE(FaultPlan::parse("edge_dropout").ok());
  const auto result = FaultPlan::parse("tx_failure=-0.1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kInvalidInput);
}

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  const trace::ContactTrace input = sample_trace();
  const FaultedTrace out = apply_plan(input, plan);
  EXPECT_TRUE(out.log.events.empty());
  EXPECT_EQ(out.trace.contacts(), input.contacts());
}

TEST(FaultPlan, SameSeedAndPlanYieldByteIdenticalLog) {
  // Tentpole acceptance (a): fault injection is deterministic and the log
  // serialization is byte-stable across repeated applications.
  FaultPlan plan;
  plan.seed = 42;
  plan.edge_dropout = 0.3;
  plan.node_churn = 0.2;
  plan.contact_truncation = 0.3;
  plan.contact_jitter_s = 4.0;
  plan.cost_inflation = 0.25;

  const trace::ContactTrace input = sample_trace();
  const FaultedTrace first = apply_plan(input, plan);
  const FaultedTrace second = apply_plan(input, plan);

  ASSERT_FALSE(first.log.events.empty());
  EXPECT_EQ(first.log.events, second.log.events);
  EXPECT_EQ(first.log.serialize(), second.log.serialize());
  EXPECT_EQ(first.trace.contacts(), second.trace.contacts());
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan plan;
  plan.edge_dropout = 0.3;
  plan.contact_jitter_s = 4.0;
  const trace::ContactTrace input = sample_trace();
  plan.seed = 1;
  const std::string log1 = apply_plan(input, plan).log.serialize();
  plan.seed = 2;
  const std::string log2 = apply_plan(input, plan).log.serialize();
  EXPECT_NE(log1, log2);
}

TEST(FaultPlan, FullDropoutSilencesEveryPair) {
  FaultPlan plan;
  plan.edge_dropout = 1.0;
  const trace::ContactTrace input = sample_trace();
  const FaultedTrace out = apply_plan(input, plan);
  EXPECT_EQ(out.trace.contact_count(), 0u);
  // Node count and horizon survive even a total blackout.
  EXPECT_EQ(out.trace.node_count(), input.node_count());
  EXPECT_DOUBLE_EQ(out.trace.horizon(), input.horizon());
}

TEST(FaultPlan, TruncationShortensEveryContact) {
  FaultPlan plan;
  plan.contact_truncation = 1.0;
  plan.truncation_keep = 0.5;
  const trace::ContactTrace input = sample_trace();
  const FaultedTrace out = apply_plan(input, plan);
  ASSERT_EQ(out.trace.contact_count(), input.contact_count());
  double in_total = 0, out_total = 0;
  for (const auto& c : input.contacts()) in_total += c.end - c.start;
  for (const auto& c : out.trace.contacts()) out_total += c.end - c.start;
  EXPECT_NEAR(out_total, 0.5 * in_total, 1e-6);
}

TEST(FaultPlan, InflationRaisesDistances) {
  FaultPlan plan;
  plan.cost_inflation = 1.0;
  plan.cost_inflation_factor = 2.0;
  const trace::ContactTrace input = sample_trace();
  const FaultedTrace out = apply_plan(input, plan);
  ASSERT_EQ(out.trace.contact_count(), input.contact_count());
  for (std::size_t i = 0; i < input.contact_count(); ++i)
    EXPECT_NEAR(out.trace.contacts()[i].distance,
                2.0 * input.contacts()[i].distance, 1e-9);
}

TEST(FaultPlan, JitterKeepsContactsInsideHorizon) {
  FaultPlan plan;
  plan.contact_jitter_s = 50.0;
  const trace::ContactTrace input = sample_trace();
  const FaultedTrace out = apply_plan(input, plan);
  for (const auto& c : out.trace.contacts()) {
    EXPECT_GE(c.start, 0.0);
    EXPECT_LE(c.end, input.horizon() + 1e-9);
    EXPECT_LT(c.start, c.end);
  }
}

TEST(TxFaultModel, DeterministicAndSeedSensitive) {
  const TxFaultModel model(9, 0.5);
  ASSERT_TRUE(model.active());
  std::set<std::pair<std::size_t, std::size_t>> failing;
  for (std::size_t trial = 0; trial < 50; ++trial)
    for (std::size_t k = 0; k < 20; ++k)
      if (model.fails(trial, k)) failing.insert({trial, k});
  // Re-query: decisions are a pure function of (seed, trial, index).
  for (std::size_t trial = 0; trial < 50; ++trial)
    for (std::size_t k = 0; k < 20; ++k)
      EXPECT_EQ(model.fails(trial, k), failing.count({trial, k}) != 0);
  // ~50% failure rate over 1000 draws, loose deterministic bounds.
  EXPECT_GT(failing.size(), 350u);
  EXPECT_LT(failing.size(), 650u);

  const TxFaultModel other(10, 0.5);
  std::size_t differing = 0;
  for (std::size_t trial = 0; trial < 50; ++trial)
    for (std::size_t k = 0; k < 20; ++k)
      if (other.fails(trial, k) != (failing.count({trial, k}) != 0))
        ++differing;
  EXPECT_GT(differing, 0u);
}

TEST(TxFaultModel, InactiveNeverFails) {
  const TxFaultModel model;
  EXPECT_FALSE(model.active());
  for (std::size_t k = 0; k < 100; ++k) EXPECT_FALSE(model.fails(0, k));
}

TEST(FaultPlan, ToStringParsesBack) {
  FaultPlan plan;
  plan.seed = 13;
  plan.edge_dropout = 0.25;
  plan.tx_failure = 0.1;
  const auto back = FaultPlan::parse(plan.to_string());
  ASSERT_TRUE(back.ok()) << plan.to_string();
  EXPECT_EQ(back.value().seed, 13u);
  EXPECT_DOUBLE_EQ(back.value().edge_dropout, 0.25);
  EXPECT_DOUBLE_EQ(back.value().tx_failure, 0.1);
}

}  // namespace
}  // namespace tveg::fault
