#include "fault/degrade.hpp"

#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "support/deadline.hpp"
#include "trace/generators.hpp"

namespace tveg::fault {
namespace {

channel::RadioParams unit_radio() {
  channel::RadioParams r;
  r.noise_density = 1.0;
  r.decoding_threshold_db = 0.0;
  r.path_loss_exponent = 2.0;
  r.epsilon = 0.01;
  r.w_max = support::kInf;
  return r;
}

trace::ContactTrace sample_trace(std::uint64_t seed = 1) {
  trace::SnapshotConfig cfg;
  cfg.nodes = 8;
  cfg.slot = 20;
  cfg.horizon = 200;
  cfg.p = 0.35;
  cfg.seed = seed;
  return trace::generate_snapshots(cfg);
}

TEST(Degrade, UnlimitedBudgetStaysOnFirstRung) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  const RobustSolveResult r = robust_solve(inst, dts);
  EXPECT_EQ(r.rung, SolverRung::kEedcb);
  EXPECT_FALSE(r.degraded());
  EXPECT_TRUE(r.result.covered_all);
  EXPECT_TRUE(core::check_feasibility(inst, r.result.schedule).feasible);
}

TEST(Degrade, ForcedTimeoutStillYieldsFeasibleSchedule) {
  // Tentpole acceptance (b): a zero budget expires before EEDCB and BIP can
  // run, so the ladder must land on GREED — and still hand back a feasible
  // schedule, tagged with the rung that produced it.
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  RobustSolveOptions options;
  options.budget_ms = 0;
  const RobustSolveResult r = robust_solve(inst, dts, options);

  EXPECT_EQ(r.rung, SolverRung::kGreed);
  ASSERT_TRUE(r.degraded());
  ASSERT_EQ(r.descents.size(), 2u);
  EXPECT_EQ(r.descents[0].code, support::ErrorCode::kTimeout);
  EXPECT_EQ(r.descents[1].code, support::ErrorCode::kTimeout);
  EXPECT_TRUE(r.result.covered_all);
  EXPECT_TRUE(core::check_feasibility(inst, r.result.schedule).feasible);
}

TEST(Degrade, ExpiredBudgetShortCircuitsRungsInsteadOfRunningThem) {
  // Satellite bugfix: with the ladder budget already spent, the EEDCB and
  // BIP rungs must be *skipped* — recorded as timeout descents without
  // building an aux graph that would only be thrown away — and the final
  // rung still runs to completion (it is exempt from the shared deadline).
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  RobustSolveOptions options;
  options.budget_ms = 0;
  const RobustSolveResult r = robust_solve(inst, dts, options);

  ASSERT_EQ(r.descents.size(), 2u);
  for (const auto& d : r.descents) {
    EXPECT_EQ(d.code, support::ErrorCode::kTimeout);
    EXPECT_NE(d.message.find("skipped"), std::string::npos)
        << "expired rung was run instead of short-circuited: "
        << d.to_string();
  }
  EXPECT_EQ(r.rung, SolverRung::kGreed);
  EXPECT_TRUE(r.result.covered_all);
}

TEST(Degrade, CancelledLadderThrowsInsteadOfDescending) {
  // Cancellation is a caller decision, not a solver failure: the ladder
  // must surface it, never downgrade it into a GREED schedule.
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  const support::CancelSource source;
  source.request_cancel();
  RobustSolveOptions options;
  options.cancel = source.token();
  EXPECT_THROW(robust_solve(inst, dts, options), support::CancelledError);
}

TEST(Degrade, StartRungCanSkipEedcb) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg tveg(t, unit_radio(),
                        {.model = channel::ChannelModel::kStep});
  const core::TmedbInstance inst{&tveg, 0, 200.0};
  const DiscreteTimeSet dts = tveg.build_dts();

  RobustSolveOptions options;
  options.start = SolverRung::kBip;
  const RobustSolveResult r = robust_solve(inst, dts, options);
  EXPECT_EQ(r.rung, SolverRung::kBip);
  EXPECT_TRUE(r.result.covered_all);
}

TEST(Degrade, FrLadderUnderForcedTimeoutStillAllocates) {
  const trace::ContactTrace t = sample_trace();
  const core::Tveg fading(t, unit_radio(),
                          {.model = channel::ChannelModel::kRayleigh});
  const core::TmedbInstance inst{&fading, 0, 200.0};
  const DiscreteTimeSet dts = fading.build_dts();

  RobustSolveOptions options;
  options.budget_ms = 0;
  core::AllocationOptions alloc;
  alloc.max_retries = 2;
  const RobustFrResult r = robust_solve_fr(inst, dts, options, alloc);

  EXPECT_EQ(r.backbone.rung, SolverRung::kGreed);
  EXPECT_TRUE(r.backbone.result.covered_all);
  ASSERT_TRUE(r.feasible());
  EXPECT_TRUE(core::check_feasibility(inst, r.schedule()).feasible);
}

TEST(Degrade, RungNamesAreStable) {
  EXPECT_STREQ(rung_name(SolverRung::kEedcb), "eedcb");
  EXPECT_STREQ(rung_name(SolverRung::kBip), "bip");
  EXPECT_STREQ(rung_name(SolverRung::kGreed), "greed");
}

TEST(Deadline, UnlimitedByDefaultAndExpiresWhenForced) {
  const support::Deadline unlimited;
  EXPECT_FALSE(unlimited.expired());
  EXPECT_NO_THROW(unlimited.check("test"));

  const support::Deadline expired = support::Deadline::after_ms(0);
  EXPECT_TRUE(expired.expired());
  EXPECT_THROW(expired.check("test"), support::TimeoutError);
  try {
    expired.check("steiner");
  } catch (const support::TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("steiner"), std::string::npos);
  }
}

}  // namespace
}  // namespace tveg::fault
